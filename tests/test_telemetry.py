"""Tests for the unified telemetry subsystem.

The contracts under test (docs/observability.md):

* the registry's instrument model (kinds, hierarchical names, snapshot),
* busy accumulators agree with analytic bus arithmetic,
* the Perfetto ``trace_event`` export validates and its phase totals
  reproduce the application's reported decomposition,
* **zero cost when disabled**: telemetry never perturbs event counts,
  makespans, or sweep results, and a disabled session is
  indistinguishable from a never-instrumented one,
* determinism: traces and metric snapshots are byte-identical across
  repeated runs and across sweep parallelism (``--jobs N``).
"""

import json

import numpy as np
import pytest

from repro.api import ACEII_PROTOTYPE, Experiment
from repro.telemetry import (
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    TelemetryError,
    TimeWeighted,
    Timeline,
    instrument_cluster,
    phase_totals_from_trace,
    render_metrics,
    render_snapshot,
    render_utilization,
    to_trace_events,
    validate_trace,
)
from repro.sim import Simulator
from repro.sim.bus import FCFSBus


def _fft_session(nodes=4, rows=32, telemetry=True):
    from repro.apps.fft import inic_fft2d

    g = np.random.default_rng(3)
    m = g.standard_normal((rows, rows)) + 1j * g.standard_normal((rows, rows))
    session = (
        Experiment().nodes(nodes).card(ACEII_PROTOTYPE).telemetry(telemetry).build()
    )
    _, res = inic_fft2d(session.cluster, session.manager, m)
    return session, res


# -- registry ----------------------------------------------------------------------
def test_registry_kinds_and_snapshot():
    r = MetricsRegistry()
    r.counter("a.count", lambda: 3)
    r.gauge("a.level", lambda: 0.5)
    r.busy("a.busy_time", lambda: 1.25)
    assert len(r) == 3
    assert "a.count" in r and "missing" not in r
    assert r.read("a.level") == 0.5
    assert r.snapshot() == {"a.busy_time": 1.25, "a.count": 3, "a.level": 0.5}
    assert list(r.snapshot()) == sorted(r.snapshot())  # deterministic order
    assert [i.name for i in r.instruments("busy")] == ["a.busy_time"]


def test_registry_rejects_duplicates_and_bad_kinds():
    r = MetricsRegistry()
    r.counter("x", lambda: 0)
    with pytest.raises(TelemetryError):
        r.counter("x", lambda: 1)
    with pytest.raises(TelemetryError):
        r.register("y", "histogram", lambda: 0)
    with pytest.raises(TelemetryError):
        r.counter("", lambda: 0)


def test_null_registry_is_inert():
    assert not NULL_REGISTRY.enabled
    n = NullRegistry()
    n.counter("anything", lambda: 1)
    n.busy("anything", lambda: 1)  # duplicate name: still a no-op
    assert len(n) == 0
    assert n.snapshot() == {}


def test_time_weighted_integral_and_peak():
    tw = TimeWeighted()
    tw.update(0.0, 1.0)
    tw.update(2.0, 0.0)  # busy for [0, 2)
    tw.update(3.0, 4.0)  # then 4.0 for [3, 4)
    assert tw.average(4.0) == pytest.approx((2.0 * 1.0 + 1.0 * 4.0) / 4.0)
    assert tw.peak == 4.0


# -- busy accumulators vs analytic values ------------------------------------------
def test_bus_busy_time_matches_analytic_transfer_time():
    sim = Simulator()
    bus = FCFSBus(sim, bandwidth=1e6, name="testbus")
    r = MetricsRegistry()
    bus.register_telemetry(r, "node0.pci")
    sim.process(bus.transfer_proc(1000))
    sim.process(bus.transfer_proc(500))
    sim.run()
    # 1500 bytes over 1 MB/s, serialized: 1.5 ms of busy time, exactly.
    assert r.read("node0.pci.busy_time") == pytest.approx(1.5e-3)
    assert r.read("node0.pci.bytes") == 1500
    assert r.read("node0.pci.transfers") == 2
    # clamped to the clock — a snapshot can never claim future busy time
    assert r.read("node0.pci.busy_time") <= sim.now


# -- cluster instrumentation -------------------------------------------------------
def test_instrument_cluster_naming_scheme():
    session = Experiment().nodes(2).telemetry(True).build()
    names = session.registry.names()
    for expected in (
        "node0.cpu.busy_time",
        "node0.pci.busy_time",
        "node0.irq.time",
        "node0.irq.delivered",
        "node0.nic.tx_frames",
        "node0.tcp.messages_sent",
        "node1.cpu.busy_time",
        "switch.forwarded",
        "switch.port0.frames",
        "switch.port0.wire.busy_time",
    ):
        assert expected in names, expected


def test_instrument_cluster_inic_naming_scheme():
    session = Experiment().nodes(2).card(ACEII_PROTOTYPE).telemetry(True).build()
    names = session.registry.names()
    for expected in (
        "node0.pci.busy_time",  # maps to the card's host-side bus
        "node0.inic.bus.busy_time",  # ACEII: one shared 132 MB/s bus
        "node0.inic.fpga.config_time",
        "node0.inic.frames_sent",
        "node0.irq.delivered",
        "node1.inic.uplink.busy_time",
    ):
        assert expected in names, expected


def test_instrument_cluster_null_registry_registers_nothing():
    session = Experiment().nodes(2).build()
    registry = instrument_cluster(NULL_REGISTRY, session.cluster)
    assert len(registry) == 0


# -- Perfetto export ---------------------------------------------------------------
def test_trace_export_validates_and_reproduces_decomposition(tmp_path):
    session, res = _fft_session()
    doc = to_trace_events(session.trace, session.registry, now=session.sim.now)
    assert validate_trace(doc) == []

    totals = phase_totals_from_trace(doc)
    assert set(res.breakdown) <= set(totals)
    for phase, expected in res.breakdown.items():
        assert totals[phase] == pytest.approx(expected, rel=0.01), phase

    # the same totals via the Timeline API
    timeline = session.timeline()
    for phase, expected in res.breakdown.items():
        assert timeline.phase_totals()[phase] == pytest.approx(expected)

    path = session.export_trace(str(tmp_path / "trace.json"))
    on_disk = json.load(open(path))
    assert validate_trace(on_disk) == []
    assert len(on_disk["traceEvents"]) == len(doc["traceEvents"])


def test_trace_export_is_byte_deterministic(tmp_path):
    blobs = []
    for i in range(2):
        session, _ = _fft_session()
        path = session.export_trace(str(tmp_path / f"t{i}.json"))
        blobs.append(open(path, "rb").read())
    assert blobs[0] == blobs[1]


def test_validate_trace_flags_malformed_events():
    bad = {
        "traceEvents": [
            {"ph": "Z", "name": "x", "pid": 0, "tid": 0, "ts": 0},
            {"ph": "X", "name": "y", "pid": 0, "tid": 0, "ts": -1.0},
        ]
    }
    assert len(validate_trace(bad)) >= 2


# -- zero cost when disabled -------------------------------------------------------
def test_telemetry_does_not_perturb_simulation():
    on, on_res = _fft_session(telemetry=True)
    off, off_res = _fft_session(telemetry=False)
    assert on.sim.event_count == off.sim.event_count
    assert on_res.makespan == off_res.makespan
    assert off.metrics() == {}
    assert not off.telemetry_enabled


def test_disabled_session_matches_never_instrumented_runner():
    """A sweep point without the telemetry flag must be bit-identical to
    one that never knew telemetry existed (cache-identity contract)."""
    from repro.bench.sweep import _run_sort_des

    params = {"e_init": 1 << 12, "p": 2, "card": "aceii-prototype", "seed": 2}
    plain = _run_sort_des(dict(params))
    assert "metrics" not in plain
    flagged = _run_sort_des({**params, "telemetry": True})
    assert plain["makespan"] == flagged["makespan"]
    assert plain["events"] == flagged["events"]
    assert len(flagged["metrics"]) > 0


def test_sweep_telemetry_identical_serial_vs_parallel(tmp_path):
    """Instrumented points are deterministic across --jobs fan-out."""
    from repro.bench.sweep import PointSpec, SweepEngine

    specs = [
        PointSpec(
            "sort-des",
            f"tel-p{p}",
            {"e_init": 1 << 12, "p": p, "card": "aceii-prototype",
             "seed": 2, "telemetry": True},
        )
        for p in (2, 4)
    ]
    serial = SweepEngine(jobs=1, cache_dir=None).run(specs)
    parallel = SweepEngine(jobs=2, cache_dir=None).run(specs)
    for name in ("tel-p2", "tel-p4"):
        assert serial[name].value == parallel[name].value
        assert serial[name].value["metrics"] == parallel[name].value["metrics"]


# -- rendering ---------------------------------------------------------------------
def test_report_renders_tables():
    session, _ = _fft_session(nodes=2)
    text = session.report()
    assert "timeline over" in text
    assert "node0.pci.busy_time" in text
    assert "instrument" in text


def test_render_helpers_handle_empty_inputs():
    assert render_metrics(MetricsRegistry()) == "(no instruments registered)"
    assert render_snapshot({}) == "(no instruments recorded)"
    assert "empty timeline" in render_utilization(Timeline([], 0.0))


def test_render_snapshot_formats_units_from_names():
    text = render_snapshot(
        {"n.busy_time": 0.0015, "n.bytes": 2048, "n.count": 7}
    )
    assert "1.500 ms" in text
    assert "2.00 KiB" in text
    assert "7" in text
