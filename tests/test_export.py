"""Tests for the CSV exporter."""

import csv
import os

import pytest

from repro.bench import Experiment
from repro.bench.export import export_all_csv, export_csv
from repro.errors import ApplicationError
from repro.models.speedup import Series


def make_exp():
    e = Experiment("figT", "test figure", "P", "speedup")
    e.add(Series("alpha", [1, 2], [1.0, 1.5]))
    e.add(Series("beta", [1, 2], [1.0, 0.9]))
    return e


def test_export_csv_round_trip(tmp_path):
    path = export_csv(make_exp(), str(tmp_path))
    assert os.path.basename(path) == "figT.csv"
    with open(path) as fh:
        rows = list(csv.reader(fh))
    assert rows[0] == ["experiment", "title", "series", "P", "speedup"]
    assert len(rows) == 1 + 4  # header + 2 series x 2 points
    assert rows[1][2] == "alpha"
    assert float(rows[2][4]) == 1.5


def test_export_all(tmp_path):
    e1, e2 = make_exp(), make_exp()
    e2.exp_id = "figU"
    paths = export_all_csv([e1, e2], str(tmp_path))
    assert len(paths) == 2
    assert all(os.path.exists(p) for p in paths)


def test_export_empty_rejected(tmp_path):
    empty = Experiment("figE", "empty", "x", "y")
    with pytest.raises(ApplicationError):
        export_csv(empty, str(tmp_path))
