"""Integration tests: cluster builder, SimMPI, collectives, app harness."""

import numpy as np
import pytest

from repro.cluster import (
    Cluster,
    ClusterSpec,
    ParallelApp,
    allgather,
    allreduce,
    alltoall,
    barrier,
    bcast,
)
from repro.inic import ACEII_PROTOTYPE, IDEAL_INIC
from repro.net import FAST_ETHERNET


def tcp_cluster(n, **kw):
    return Cluster.build(ClusterSpec(n_nodes=n, **kw))


def test_build_standard_cluster():
    c = tcp_cluster(4)
    assert c.size == 4
    for node in c.nodes:
        assert node.nic is not None and node.tcp is not None and node.inic is None


def test_build_inic_cluster():
    c = Cluster.build(ClusterSpec(n_nodes=4).with_inic(IDEAL_INIC))
    for node in c.nodes:
        assert node.inic is not None and node.nic is None
    c2 = Cluster.build(ClusterSpec(n_nodes=2).with_inic(ACEII_PROTOTYPE))
    assert c2.nodes[0].inic.spec.name == "aceii-prototype"


def test_point_to_point_over_app_harness():
    c = tcp_cluster(2)
    app = ParallelApp(c)

    def program(ctx):
        if ctx.rank == 0:
            yield ctx.send(1, 10_000, payload="hi", tag=1)
            return "sent"
        msg = yield ctx.recv(src=0, tag=1)
        return msg.payload

    result = app.run(program)
    assert result.rank_results == ["sent", "hi"]
    assert result.makespan > 0


def test_self_send_costs_memcpy_not_network():
    c = tcp_cluster(2)
    app = ParallelApp(c)

    def program(ctx):
        if ctx.rank == 0:
            yield ctx.send(0, 1_000_000, payload="self", tag=9)
            msg = yield ctx.recv(src=0, tag=9)
            return msg.payload
        return None
        yield

    result = app.run(program)
    assert result.rank_results[0] == "self"
    assert c.nodes[0].nic.stats.tx_frames == 0


def test_barrier_synchronizes():
    c = tcp_cluster(4)
    app = ParallelApp(c)
    after = {}

    def program(ctx):
        # Stagger arrival; everyone must leave after the last arriver.
        yield ctx.sim.timeout(0.01 * ctx.rank)
        yield from barrier(ctx)
        after[ctx.rank] = ctx.sim.now
        return None

    app.run(program)
    assert min(after.values()) >= 0.03


def test_bcast_reaches_all():
    c = tcp_cluster(5)
    app = ParallelApp(c)
    data = np.arange(100, dtype=np.int64)

    def program(ctx):
        got = yield from bcast(
            ctx, data if ctx.rank == 2 else None, data.nbytes, root=2
        )
        return got.sum()

    result = app.run(program)
    assert result.rank_results == [data.sum()] * 5


def test_allgather_collects_everything():
    c = tcp_cluster(4)
    app = ParallelApp(c)

    def program(ctx):
        mine = np.full(10, ctx.rank)
        gathered = yield from allgather(ctx, mine, mine.nbytes)
        return [int(g[0]) for g in gathered]

    result = app.run(program)
    for r in range(4):
        assert result.rank_results[r] == [0, 1, 2, 3]


def test_alltoall_personalized_exchange():
    p = 4
    c = tcp_cluster(p)
    app = ParallelApp(c)

    def program(ctx):
        blocks = [
            (800, np.full(100, 10 * ctx.rank + dst)) for dst in range(p)
        ]
        got = yield from alltoall(ctx, blocks)
        return [int(g[0]) for g in got]

    result = app.run(program)
    for r in range(p):
        assert result.rank_results[r] == [10 * src + r for src in range(p)]


def test_allreduce_sums():
    c = tcp_cluster(4)
    app = ParallelApp(c)

    def program(ctx):
        contrib = np.full(50, float(ctx.rank + 1))
        total = yield from allreduce(ctx, contrib)
        return float(total[0])

    result = app.run(program)
    assert result.rank_results == [10.0] * 4


def test_no_switch_drops_in_balanced_alltoall():
    """A paper-scale alltoall must not overrun GigE switch buffers."""
    p = 8
    c = tcp_cluster(p)
    app = ParallelApp(c)
    block_bytes = 64 * 1024  # 512 KiB partition / 8

    def program(ctx):
        blocks = [(block_bytes, None) for _ in range(p)]
        yield from alltoall(ctx, blocks)
        return None

    app.run(program)
    assert c.switch.total_dropped() == 0
    assert c.nodes[0].tcp.stats.timeouts == 0


def test_fast_ethernet_cluster_slower_than_gige():
    times = {}
    for name, tech in (("fe", FAST_ETHERNET), ("ge", None)):
        c = (
            tcp_cluster(4, network=tech)
            if tech is not None
            else tcp_cluster(4)
        )
        app = ParallelApp(c)

        def program(ctx):
            blocks = [(100_000, None) for _ in range(4)]
            yield from alltoall(ctx, blocks)
            return None

        times[name] = app.run(program).makespan
    assert times["fe"] > 3 * times["ge"]


def test_app_result_contains_rank_times():
    c = tcp_cluster(3)
    app = ParallelApp(c)

    def program(ctx):
        yield ctx.sim.timeout(0.001 * (ctx.rank + 1))
        return ctx.rank

    result = app.run(program)
    assert result.rank_results == [0, 1, 2]
    assert result.makespan == pytest.approx(0.003)
    assert result.rank_times[0] == pytest.approx(0.001)


def test_invalid_cluster_spec():
    with pytest.raises(ValueError):
        ClusterSpec(n_nodes=0)
