"""Tests for the ``repro.api`` experiment facade and config conventions.

Covers the builder's order-independence (and the matching
``ClusterSpec.with_*`` chaining regression), the process registration
surface (``Experiment().process`` / ``Session.spawn`` / ``Session.env``),
the removal of the deprecated ``build_acc``/``build_beowulf`` wrappers,
the repo-wide config naming normalization (``max_retries`` / ``timeout``
/ ``seed``; old kwargs accepted with ``DeprecationWarning``), and the
shared ``to_json``/``from_json`` round-trip convention.
"""

import numpy as np
import pytest

from repro.api import (
    ACEII_PROTOTYPE,
    ClusterSpec,
    Experiment,
    FAST_ETHERNET,
    FaultSpec,
    IDEAL_INIC,
    Session,
)
from repro.config import ConfigError
from repro.core.manager import INICManager
from repro.errors import FaultConfigError
from repro.net.batching import BatchPolicy
from repro.protocols import INICProtoConfig, RawConfig


FAULTS = FaultSpec(seed=5, loss_rate=0.01)


# -- builder chaining --------------------------------------------------------------
def test_experiment_chaining_is_order_independent():
    a = Experiment().nodes(4).card(ACEII_PROTOTYPE).faults(FAULTS).seed(7)
    b = Experiment().seed(7).faults(FAULTS).card(ACEII_PROTOTYPE).nodes(4)
    assert a.spec == b.spec
    assert a.telemetry_enabled == b.telemetry_enabled


def test_experiment_is_immutable():
    base = Experiment().nodes(8)
    derived = base.card(IDEAL_INIC).telemetry(True)
    assert base.spec.inic is None
    assert not base.telemetry_enabled
    assert derived.spec.inic is IDEAL_INIC
    assert derived.telemetry_enabled
    assert derived.spec.n_nodes == 8


def test_experiment_steps_can_revert():
    exp = Experiment().nodes(2).card(ACEII_PROTOTYPE).faults(FAULTS)
    reverted = exp.card(None).faults(None)
    assert reverted.spec == Experiment().nodes(2).spec


def test_cluster_spec_with_chaining_is_order_independent():
    spec = ClusterSpec(n_nodes=4)
    assert (
        spec.with_inic(ACEII_PROTOTYPE).with_faults(FAULTS)
        == spec.with_faults(FAULTS).with_inic(ACEII_PROTOTYPE)
    )
    assert (
        spec.with_network(FAST_ETHERNET).with_seed(3).with_inic(IDEAL_INIC)
        == spec.with_inic(IDEAL_INIC).with_network(FAST_ETHERNET).with_seed(3)
    )


def test_build_wires_manager_only_for_inic_clusters():
    beowulf = Experiment().nodes(2).build()
    assert isinstance(beowulf, Session)
    assert beowulf.manager is None
    assert len(beowulf.nodes) == 2
    assert beowulf.metrics() == {}

    acc = Experiment().nodes(2).card().build()
    assert isinstance(acc.manager, INICManager)
    assert acc.nodes[0].inic is not None


# -- deprecated wrappers are gone --------------------------------------------------
def test_legacy_wrappers_removed():
    # PR-4 deprecated build_acc/build_beowulf; this PR completes the cycle.
    import repro.api
    import repro.core
    import repro.core.api

    for mod in (repro.api, repro.core, repro.core.api):
        assert not hasattr(mod, "build_acc")
        assert not hasattr(mod, "build_beowulf")
        assert "build_acc" not in mod.__all__
        assert "build_beowulf" not in mod.__all__


def test_facade_is_deterministic_across_builds():
    from repro.apps.fft import baseline_fft2d

    g = np.random.default_rng(2)
    m = g.standard_normal((16, 16)) + 1j * g.standard_normal((16, 16))
    _, res_a = baseline_fft2d(Experiment().nodes(2).build().cluster, m)
    _, res_b = baseline_fft2d(Experiment().nodes(2).build().cluster, m)
    assert res_a.makespan == res_b.makespan


# -- process registration ----------------------------------------------------------
def test_experiment_process_spawns_at_build():
    log = []

    async def ticker(session):
        for _ in range(3):
            await session.env.sleep(1e-3)
            log.append(session.env.now)

    session = Experiment().nodes(2).process("ticker", ticker).build()
    assert "ticker" in session.processes
    assert not log  # nothing runs until session.run()
    session.run(until=1.0)
    assert log == [1e-3, 2e-3, 3e-3]


def test_experiment_process_is_immutable_and_replaces_by_name():
    async def a(session):
        return "a"

    async def b(session):
        return "b"

    base = Experiment().nodes(1)
    with_a = base.process("job", a)
    with_b = with_a.process("job", b)
    assert base._processes == ()
    assert with_a._processes == (("job", a),)
    assert with_b._processes == (("job", b),)
    session = with_b.build()
    session.run()
    assert session.processes["job"].value == "b"


def test_session_spawn_generator_and_coroutine():
    session = Experiment().nodes(1).build()

    def gen_job(env, n):
        yield env.timeout(n * 1e-6)
        return n

    async def coro_job(env, n):
        await env.timeout(n * 1e-6)
        return n * 10

    p1 = session.spawn(gen_job, session.env, 3, name="gen")
    p2 = session.spawn(coro_job, session.env, 3, name="coro")
    session.run()
    assert p1.value == 3
    assert p2.value == 30
    assert session.processes == {"gen": p1, "coro": p2}
    assert session.env.sim is session.sim


# -- renamed config kwargs ---------------------------------------------------------
def test_inicproto_nack_timeout_kwarg_deprecated():
    with pytest.warns(DeprecationWarning, match="nack_timeout"):
        cfg = INICProtoConfig(nack_timeout=0.01)
    assert cfg.timeout == 0.01
    with pytest.warns(DeprecationWarning, match="nack_timeout"):
        assert cfg.nack_timeout == 0.01  # read alias warns too
    with pytest.raises(TypeError):
        INICProtoConfig(nack_timeout=0.01, timeout=0.02)


def test_rawconfig_retransmit_timeout_kwarg_deprecated():
    with pytest.warns(DeprecationWarning, match="retransmit_timeout"):
        cfg = RawConfig(retransmit_timeout=0.25)
    assert cfg.timeout == 0.25
    with pytest.warns(DeprecationWarning, match="retransmit_timeout"):
        assert cfg.retransmit_timeout == 0.25
    with pytest.raises(TypeError):
        RawConfig(retransmit_timeout=0.25, timeout=0.5)


# -- shared to_json/from_json convention -------------------------------------------
@pytest.mark.parametrize(
    "cfg",
    [
        INICProtoConfig(packet_size=2048, max_retries=3, timeout=0.01),
        RawConfig(max_retries=2, timeout=0.125),
        BatchPolicy(timing_tolerance=50e-6, max_quantum=32),
        FaultSpec(seed=9, loss_rate=0.02, outages=((0.1, 0.05),)),
    ],
)
def test_config_round_trips_through_json(cfg):
    doc = cfg.to_json()
    import json

    json.dumps(doc)  # must be JSON-safe as-is
    assert type(cfg).from_json(doc) == cfg


def test_config_from_json_rejects_unknown_keys():
    with pytest.raises(ConfigError):
        BatchPolicy.from_json({"enabled": True, "warp_factor": 9})
    with pytest.raises(FaultConfigError):
        FaultSpec.from_json({"seed": 1, "warp_factor": 9})


def test_config_error_roots_the_family():
    # FaultConfigError (and therefore every campaign/fault rejection)
    # is catchable as the shared ConfigError.
    assert issubclass(FaultConfigError, ConfigError)
    from repro.errors import ConfigError as RootConfigError

    assert ConfigError is RootConfigError
    from repro.faults.campaign import CampaignSpec

    spec = CampaignSpec(seed=3, horizon=0.02)
    assert CampaignSpec.from_json(spec.to_json()) == spec
    with pytest.raises(ConfigError):
        CampaignSpec.from_json({"seed": 1, "warp_factor": 9})


def test_fault_spec_to_json_is_total_unlike_to_params():
    # to_params keeps sweep-cache identity (None when inactive); to_json
    # always emits the full document
    assert FaultSpec().to_params() is None
    doc = FaultSpec().to_json()
    assert doc["loss_rate"] == 0.0
    assert FaultSpec.from_json(doc) == FaultSpec()
