"""Scheduler-layer tests: exact-order equivalence and edge cases.

Every scheduler honours the unique ``(time, priority, seq)`` total
order; the randomized stress here drives each one through the same
engine-shaped op script and demands the pop sequence match the
reference heap exactly — that equivalence is what keeps the figure
CSVs byte-identical under ``REPRO_SIM_SCHEDULER``.
"""

from random import Random

import pytest

from repro.sim.engine import Simulator
from repro.sim.sched import (
    CalendarQueue,
    CalendarScheduler,
    HeapScheduler,
    PurePythonNativeScheduler,
    SCHEDULER_KINDS,
    TimerWheel,
    make_scheduler,
    native_available,
)

ALT_KINDS = [k for k in SCHEDULER_KINDS if k != "heap"]


# -- randomized equivalence -------------------------------------------------


def _script(rng: Random, n: int) -> list[tuple]:
    """An engine-shaped op mix: timed pushes across magnitudes, timer
    churn, now-bursts, cancels, interleaved pops."""
    ops = []
    for _ in range(n):
        r = rng.random()
        if r < 0.30:
            ops.append(("push", rng.choice((1e-6, 1e-4, 1e-2)) * rng.random(), rng.randint(0, 1)))
        elif r < 0.60:
            ops.append(("timer", rng.choice((1e-6, 1e-3, 1.0, 300.0)) * rng.random()))
        elif r < 0.72:
            ops.append(("now", rng.randint(0, 1)))
        elif r < 0.84:
            ops.append(("cancel", rng.randrange(1 << 30)))
        else:
            ops.append(("pop",))
    return ops


def _drive(sched, script) -> list[tuple]:
    """Run the script; returns the (when, prio, seq) pop sequence.

    Cancel targets are resolved modulo the push count and skipped when
    already popped/cancelled — deterministic across schedulers because
    (by induction) the pop sequences agree up to any divergence.
    """
    popped = []
    handles = {}
    gone = set()
    now = 0.0
    seq = 0

    def pop_one():
        nonlocal now
        entry = sched.pop()
        if entry is not None:
            now = entry[0]
            popped.append((entry[0], entry[1], entry[2]))
            gone.add(entry[2])
        return entry

    for op in script:
        if op[0] == "push":
            handles[seq] = sched.push(now + op[1], op[2], seq, seq)
            seq += 1
        elif op[0] == "timer":
            handles[seq] = sched.push_timer(now + op[1], 1, seq, seq)
            seq += 1
        elif op[0] == "now":
            handles[seq] = sched.push_now(now, op[1], seq, seq)
            seq += 1
        elif op[0] == "cancel":
            if seq:
                target = op[1] % seq
                if target not in gone:
                    sched.cancel(handles[target])
                    gone.add(target)
        else:
            pop_one()
    while pop_one() is not None:
        pass
    assert len(sched) == 0
    return popped


@pytest.mark.parametrize("kind", ALT_KINDS)
@pytest.mark.parametrize("seed", [1, 7, 42])
def test_randomized_stress_matches_heap(kind, seed):
    script = _script(Random(seed), 3000)
    reference = _drive(HeapScheduler(), script)
    assert _drive(make_scheduler(kind), script) == reference
    # Pop times never go backwards (the run-loop invariant).
    assert all(a[0] <= b[0] for a, b in zip(reference, reference[1:]))


# -- targeted edge cases ----------------------------------------------------


def test_simultaneous_events_across_bucket_boundaries():
    """Equal times sitting exactly on bucket boundaries break ties by
    (prio, seq), never by bucket index."""
    ring = CalendarQueue()
    seq = 0
    entries = []
    ring.push(8.0, 1, seq, seq)  # seeds width = 1.0
    entries.append((8.0, 1, 0))
    seq = 1
    for day in range(0, 40, 4):  # spans several ring wraps (16 buckets)
        t = float(day)  # exactly on a boundary: int(t/width) == day
        for prio in (1, 0):
            ring.push(t, prio, seq, seq)
            entries.append((t, prio, seq))
            seq += 1
    got = []
    while True:
        e = ring.pop()
        if e is None:
            break
        got.append((e[0], e[1], e[2]))
    assert got == sorted(entries)


@pytest.mark.parametrize("kind", list(SCHEDULER_KINDS))
def test_timeout_cancelled_at_its_own_fire_time(kind):
    """A cancel that runs at the timeout's exact fire time (earlier seq,
    same time) must win: the victim never fires."""
    sim = Simulator(scheduler=kind)
    fired = []
    outcome = []
    canceller = sim.timeout(1.0)  # created first => earlier seq
    victim = sim.timeout(1.0, "victim")
    victim.add_callback(lambda e: fired.append(e.value))
    canceller.add_callback(lambda e: outcome.append(victim.cancel()))
    sim.run()
    assert outcome == [True]
    assert fired == []
    assert sim.now == 1.0


def test_calendar_resize_mid_run_preserves_order():
    ring = CalendarQueue()
    rng = Random(3)
    entries = []
    for seq in range(200):  # > 2 * MIN_BUCKETS forces doubling
        t = rng.random()
        ring.push(t, 1, seq, seq)
        entries.append((t, 1, seq))
    assert ring.resizes > 0
    got = []
    for _ in range(190):  # drain below a quarter: forces halving
        e = ring.pop()
        got.append((e[0], e[1], e[2]))
    assert ring.resizes >= 2
    while True:
        e = ring.pop()
        if e is None:
            break
        got.append((e[0], e[1], e[2]))
    assert got == sorted(entries)


@pytest.mark.parametrize("kind", list(SCHEDULER_KINDS))
def test_seq_shields_payloads_from_comparison(kind):
    """Entries never compare beyond seq: same (time, prio) with
    non-orderable payloads must pop cleanly in seq order."""
    sched = make_scheduler(kind)
    for seq in range(32):
        sched.push(0.5, 1, seq, object())  # object() is not orderable
    got = [sched.pop()[2] for _ in range(32)]
    assert got == list(range(32))


@pytest.mark.parametrize("kind", list(SCHEDULER_KINDS))
def test_seq_counter_never_wraps_discipline(kind):
    """The engine's seq source is an unbounded monotone count — huge
    values keep ordering exact (no 32/64-bit wrap discipline needed;
    the compiled backend covers the full unsigned 64-bit range)."""
    sched = make_scheduler(kind)
    lo, hi = (1 << 63) - 1, 1 << 63
    sched.push(0.25, 1, hi, "second")
    sched.push(0.25, 1, lo, "first")
    assert [sched.pop()[3] for _ in range(2)] == ["first", "second"]
    sim = Simulator()
    assert next(sim._seq) == 0  # fresh count per simulator, never reset


def test_wheel_cascade_and_far_rebuild():
    wheel = TimerWheel()
    rng = Random(9)
    entries = []
    seq = 0
    wheel.push(1.0, 1, seq, seq)  # seeds w0 = 1/64
    entries.append((1.0, 1, 0))
    seq = 1
    # Level-1/2 population (beyond the 256-tick level-0 horizon) plus a
    # couple beyond level 3 entirely (the far list).
    for t in [rng.random() * 1e4 for _ in range(300)] + [1e9, 2e9]:
        wheel.push(t, 1, seq, seq)
        entries.append((t, 1, seq))
        seq += 1
    got = []
    while True:
        e = wheel.pop()
        if e is None:
            break
        got.append((e[0], e[1], e[2]))
    assert got == sorted(entries)
    assert wheel.cascades > 0
    assert wheel.far_rebuilds >= 1


def test_wheel_reseeds_when_width_degenerates():
    """A width seeded by one long sleep must not leave every later
    microsecond timer in a single heapified slot forever."""
    wheel = TimerWheel()
    wheel.push(64.0, 1, 0, 0)  # seeds w0 = 1.0 — far too coarse
    assert wheel.pop()[2] == 0  # cursor now parked on slot 64, heapified
    entries = []
    for seq in range(1, 200):  # all clamp into the current slot
        t = 64.0 + seq * 1e-4
        wheel.push(t, 1, seq, seq)
        entries.append((t, 1, seq))
    assert wheel.reseeds >= 1  # degenerate width detected and rebuilt
    got = []
    while True:
        e = wheel.pop()
        if e is None:
            break
        got.append((e[0], e[1], e[2]))
    assert got == sorted(entries)


def test_cancel_callback_is_exact_and_stale_safe():
    sim = Simulator()
    calls = []
    handle = sim.call_after(1.0, calls.append, "cancelled")
    keep = sim.call_after(2.0, calls.append, "kept")
    assert sim.cancel_callback(handle) is True
    assert sim.cancel_callback(handle) is False  # double-cancel: no-op
    sim.run()
    assert calls == ["kept"]
    assert sim.cancel_callback(keep) is False  # already fired: no-op


def test_env_override_selects_scheduler(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_SCHEDULER", "heap")
    assert Simulator().scheduler_kind == "heap"
    monkeypatch.delenv("REPRO_SIM_SCHEDULER")
    assert Simulator().scheduler_kind == "native"  # the built-in default
    assert Simulator(scheduler="heap").scheduler_kind == "heap"
    with pytest.raises(ValueError):
        make_scheduler("fibonacci")


def test_scheduler_argument_beats_env_var(monkeypatch):
    """Explicit ``Simulator(scheduler=...)`` wins over the environment."""
    monkeypatch.setenv("REPRO_SIM_SCHEDULER", "wheel")
    assert Simulator(scheduler="heap").scheduler_kind == "heap"
    # ...and the env var still governs unconfigured simulators.
    assert Simulator().scheduler_kind == "wheel"


def test_unknown_scheduler_errors_name_source_and_kinds(monkeypatch):
    """A typo'd kind fails fast, names where the kind came from, and
    lists every valid kind (including native)."""
    monkeypatch.delenv("REPRO_SIM_SCHEDULER", raising=False)
    with pytest.raises(ValueError) as exc_arg:
        Simulator(scheduler="splay")
    msg = str(exc_arg.value)
    assert "splay" in msg and "Simulator(scheduler=...)" in msg
    for kind in SCHEDULER_KINDS:
        assert kind in msg

    monkeypatch.setenv("REPRO_SIM_SCHEDULER", "splay")
    with pytest.raises(ValueError) as exc_env:
        Simulator()
    assert "REPRO_SIM_SCHEDULER" in str(exc_env.value)
    # The argument is checked before the env var is even consulted.
    assert Simulator(scheduler="heap").scheduler_kind == "heap"


def test_native_kind_always_constructible(monkeypatch):
    """``native`` is a valid kind with or without the compiled extension;
    stats() says which implementation is live."""
    sched = make_scheduler("native")
    stats = sched.stats()
    assert stats["kind"] == "native"
    assert stats["compiled"] is native_available()

    monkeypatch.setenv("REPRO_SIM_DISABLE_NATIVE", "1")
    forced = make_scheduler("native")
    assert isinstance(forced, PurePythonNativeScheduler)
    assert forced.stats()["compiled"] is False
    assert forced.stats()["fallback"] == "calendar"


def test_native_fallback_pop_parity():
    """The pure-python fallback is pop-for-pop identical to the compiled
    backend (and to the reference heap) over the randomized stress mix —
    so losing the compiler changes speed, never results."""
    script = _script(Random(99), 3000)
    reference = _drive(HeapScheduler(), script)
    assert _drive(PurePythonNativeScheduler(), script) == reference
    if native_available():
        from repro.sim._csched import NativeScheduler

        assert _drive(NativeScheduler(), script) == reference


def test_small_cluster_identical_under_all_schedulers(monkeypatch):
    """End-to-end A/B: a tiny sort run (timers, stores, bus transfers,
    the switch) produces the identical schedule under every backend."""
    from repro.bench.sweep import _RUNNERS

    results = {}
    for kind in SCHEDULER_KINDS:
        monkeypatch.setenv("REPRO_SIM_SCHEDULER", kind)
        r = _RUNNERS["sort-des"]({"e_init": 1 << 10, "p": 2, "seed": 2})
        results[kind] = (r["events"], r["makespan"])
    assert len(set(results.values())) == 1, results
