"""Error-path and edge-case tests for the driver/manager/card surface."""

import numpy as np
import pytest

from repro.core import Experiment, fft_transpose_design, protocol_processor_design
from repro.errors import OffloadError
from repro.inic import SendBlock
from repro.net import MacAddress
from repro.protocols import TransferPlan


def _acc(n):
    session = Experiment().nodes(n).card().build()
    return session.cluster, session.manager


def test_duplicate_gather_tag_rejected():
    cluster, manager = _acc(2)
    manager.configure_all(protocol_processor_design)
    card = manager.driver(0).card
    sim = cluster.sim
    card.post_gather(5, TransferPlan(sim, {1: 100}))
    with pytest.raises(OffloadError):
        card.post_gather(5, TransferPlan(sim, {1: 100}))


def test_gather_tag_reusable_after_completion():
    cluster, manager = _acc(2)
    manager.configure_all(protocol_processor_design)
    sim = cluster.sim
    data = np.arange(100, dtype=np.uint8)
    out = []

    def sender():
        for i in range(2):
            yield from manager.driver(0).send_message(
                MacAddress(1), 100, payload=data, tag=7
            )

    def receiver():
        for _ in range(2):
            got = yield from manager.driver(1).recv_message(
                MacAddress(0), 100, tag=7
            )
            out.append(got)

    sim.process(sender())
    sim.process(receiver())
    sim.run()
    assert len(out) == 2 and all(np.array_equal(o, data) for o in out)


def test_require_core_without_design():
    cluster, manager = _acc(1)
    card = manager.driver(0).card
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        card.require_core("local-transpose")


def test_descriptor_posts_counted():
    cluster, manager = _acc(2)
    manager.configure_all(fft_transpose_design)
    sim = cluster.sim
    drv = manager.driver(0)

    def proc():
        plan = TransferPlan(sim, {1: 64})
        gop = yield from drv.gather(3, plan)
        yield from drv.scatter(3, [SendBlock(MacAddress(1), 64)])

    def peer():
        plan = TransferPlan(sim, {0: 64})
        g = yield from manager.driver(1).gather(3, plan)
        yield from manager.driver(1).scatter(3, [SendBlock(MacAddress(0), 64)])
        yield g.done

    p1 = sim.process(proc())
    p2 = sim.process(peer())
    sim.run(until=sim.all_of([p1, p2]))
    assert drv.descriptors_posted == 2  # one gather + one scatter block


def test_send_message_validates():
    cluster, manager = _acc(2)
    manager.configure_all(protocol_processor_design)
    with pytest.raises(OffloadError):
        list(manager.driver(0).send_message(MacAddress(1), 0))


def test_gather_result_without_assemble_is_payload_map():
    cluster, manager = _acc(2)
    manager.configure_all(protocol_processor_design)
    sim = cluster.sim
    arr = np.arange(32, dtype=np.int16)
    results = {}

    def a():
        op = manager.driver(0).card.post_scatter(
            9, [SendBlock(MacAddress(1), arr.nbytes, arr)]
        )
        yield op.sent

    def b():
        op = manager.driver(1).card.post_gather(
            9, TransferPlan(sim, {0: arr.nbytes})
        )
        results["out"] = yield op.done

    sim.process(a())
    sim.process(b())
    sim.run()
    assert set(results["out"].keys()) == {0}
    assert np.array_equal(results["out"][0][0], arr)


def test_card_memory_peak_tracked():
    cluster, manager = _acc(2)
    manager.configure_all(protocol_processor_design)
    sim = cluster.sim

    def sender():
        yield from manager.driver(0).send_message(MacAddress(1), 256 * 1024)

    def receiver():
        yield from manager.driver(1).recv_message(MacAddress(0), 256 * 1024)

    sim.process(sender())
    sim.process(receiver())
    sim.run()
    assert manager.driver(0).card.stats.peak_memory_bytes > 0
    assert manager.driver(1).card.stats.peak_memory_bytes > 0
