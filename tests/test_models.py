"""Tests for the Section-4 analytical models and speedup helpers."""

import pytest

from repro.cluster import athlon_node
from repro.errors import ApplicationError
from repro.models import (
    DEFAULT_PARAMS,
    Series,
    crossover_point,
    fe_fft_time,
    fft_compute_total,
    gige_fft_time,
    gige_sort_time,
    inic_fft_time,
    inic_sort_time,
    inic_transpose_time,
    partition_bytes,
    prototype_fft_time,
    prototype_sort_time,
    receive_buckets,
    serial_fft_time,
    serial_sort_time,
    sort_partition_bytes,
    speedup_series,
    t_inic,
    tcp_alltoall_time,
)
from repro.models.fft_model import t_dfg, t_dtc, t_dtg, t_dth
from repro.models.sort_model import (
    sort_t_dfg,
    sort_t_dtc,
    sort_t_dtg,
    sort_t_dth,
)
from repro.units import MiB

H = athlon_node().hierarchy()
P = DEFAULT_PARAMS


# --- Eq. (5)-(10): FFT model -------------------------------------------------------
def test_eq5_partition_bytes():
    # S = rows^2 * 16 / P
    assert partition_bytes(512, 4) == 512 * 512 * 16 / 4


def test_eq6_to_eq9_term_values():
    s = 4 * MiB
    p = 8
    assert t_dtc(s, p) == pytest.approx((s / p) / (80 * MiB))
    assert t_dtg(s, p) == pytest.approx((s / p) / (90 * MiB))
    assert t_dfg(s, p) == pytest.approx((7 * s / 8) / (90 * MiB))
    assert t_dth(s) == pytest.approx(s / (80 * MiB))


def test_eq10_transpose_is_twice_the_sum():
    s = partition_bytes(512, 8)
    expected = 2 * (t_dtc(s, 8) + t_dtg(s, 8) + t_dfg(s, 8) + t_dth(s))
    assert inic_transpose_time(512, 8) == pytest.approx(expected)


def test_inic_fft_time_decomposes():
    total = inic_fft_time(512, 8, H)
    assert total == pytest.approx(
        fft_compute_total(512, 8, H) + inic_transpose_time(512, 8)
    )


def test_fft_compute_has_cache_kinks():
    """Fig. 4(b): per-element compute rate improves when the partition
    drops into a faster level."""
    per_row = [
        fft_compute_total(512, p, H) * p for p in (1, 2, 4, 8, 16)
    ]  # normalized: P * T = 2 * rows * T1D if rate were flat
    assert min(per_row) < max(per_row)  # rate is NOT flat across P
    # Normalized work is non-increasing as partitions shrink into cache.
    assert all(a >= b - 1e-12 for a, b in zip(per_row, per_row[1:]))


def test_serial_fft_time_positive_and_larger_than_compute():
    assert serial_fft_time(256, H) > fft_compute_total(256, 1, H)


# --- Eq. (11)-(17): sort model --------------------------------------------------------
def test_eq12_partition():
    assert sort_partition_bytes(2**20, 4) == 4 * 2**20 / 4


def test_eq13_to_16_term_values():
    assert sort_t_dtc(16) == pytest.approx(16 * 1024 / (80 * MiB))
    assert sort_t_dtg(16) == pytest.approx(16 * 1024 / (90 * MiB))
    assert sort_t_dfg(128) == pytest.approx(128 * 65536 / (90 * MiB))
    assert sort_t_dth(4 * MiB) == pytest.approx(4 * MiB / (80 * MiB))


def test_eq17_t_inic_is_sum_of_terms():
    e, p = 2**24, 8
    n = receive_buckets(e, p)
    s = sort_partition_bytes(e, p)
    expected = sort_t_dtc(p) + sort_t_dtg(p) + sort_t_dfg(n) + sort_t_dth(s)
    assert t_inic(e, p) == pytest.approx(expected)


def test_receive_buckets_minimum_128():
    assert receive_buckets(2**26, 16) >= 128


def test_inic_sort_superlinear_at_paper_scale():
    e = P.sort_total_keys
    t1 = serial_sort_time(e, H)
    for p in (2, 4, 8, 16):
        assert t1 / inic_sort_time(e, p, H) > p


def test_gige_sort_sublinear():
    e = P.sort_total_keys
    t1 = serial_sort_time(e, H)
    for p in (4, 8, 16):
        assert t1 / gige_sort_time(e, p, H) < p


def test_serial_sort_bucket_dominated():
    """Section 4.2: the serial bucket sort exceeds 5 seconds."""
    e = P.sort_total_keys
    from repro.models import bucket_sort_time

    assert bucket_sort_time(P, H, e, receive_buckets(e, 1)) > 5.0


# --- baseline closed form ----------------------------------------------------------------
def test_tcp_alltoall_time_structure():
    assert tcp_alltoall_time(1000, 1, 1e6, 1e-3) == 0.0
    t2 = tcp_alltoall_time(1_000_000, 2, 1e6, 0.0)
    assert t2 == pytest.approx(0.5)  # half the partition crosses
    # Overhead term scales with P-1.
    base = tcp_alltoall_time(8, 16, 1e9, 1e-3)
    assert base == pytest.approx(15e-3, rel=0.01)


def test_fe_slower_than_gige():
    for p in (2, 4, 8):
        assert fe_fft_time(256, p, H) > gige_fft_time(256, p, H)


def test_prototype_between_gige_and_ideal_at_scale():
    """Fig. 8 ordering at P=16: ideal INIC < prototype < GigE."""
    p = 16
    assert inic_fft_time(512, p, H) < prototype_fft_time(512, p, H)
    assert prototype_fft_time(512, p, H) < gige_fft_time(512, p, H)
    assert inic_sort_time(P.sort_total_keys, p, H) < prototype_sort_time(
        P.sort_total_keys, p, H
    )


# --- speedup helpers ------------------------------------------------------------------------
def test_speedup_series():
    s = speedup_series("x", [1, 2, 4], [10.0, 5.0, 2.5], 10.0)
    assert s.y == [1.0, 2.0, 4.0]
    assert s.at(4) == 4.0


def test_speedup_series_validation():
    with pytest.raises(ApplicationError):
        speedup_series("x", [1], [1.0], 0.0)
    with pytest.raises(ApplicationError):
        speedup_series("x", [1], [0.0], 1.0)
    with pytest.raises(ApplicationError):
        Series("bad", [1, 2], [1.0])


def test_crossover_point():
    a = Series("a", [1, 2, 4, 8], [0.5, 0.8, 1.2, 2.0])
    b = Series("b", [1, 2, 4, 8], [1.0, 1.0, 1.0, 1.0])
    assert crossover_point(a, b) == 4
    c = Series("c", [1, 2], [0.1, 0.2])
    assert crossover_point(c, b) is None


def test_series_at_missing_x():
    s = Series("s", [1.0], [2.0])
    with pytest.raises(ApplicationError):
        s.at(3.0)
