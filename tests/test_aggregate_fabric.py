"""Unit tests for the aggregated scale-out fabric.

The aggregate fabric is the O(ports) busy-until model behind
``ClusterSpec.fabric == "aggregate"``; these tests pin its timing
against the full wire star, its tail-drop accounting, and its
per-uplink fault injection.
"""

import pytest

from repro.errors import NetworkError
from repro.faults import FaultSpec, FaultPlan, WireFault
from repro.net import (
    BROADCAST,
    Frame,
    GIGABIT_ETHERNET,
    MacAddress,
    build_star,
)
from repro.net.fabric import AggregateFabric, build_aggregate_star
from repro.sim import Simulator


class Station:
    """Minimal FrameDevice for fabric tests."""

    def __init__(self, sim):
        self.sim = sim
        self.wire = None
        self.got = []

    def attach_wire(self, wire):
        self.wire = wire

    def receive_frame(self, frame):
        self.got.append((frame, self.sim.now))

    def send(self, frame):
        self.wire.send(frame)


def make_fabric(n=3, tech=GIGABIT_ETHERNET, builder=build_aggregate_star):
    sim = Simulator()
    stations = [Station(sim) for _ in range(n)]
    addrs = [MacAddress(i) for i in range(n)]
    fabric = builder(sim, list(zip(addrs, stations)), tech=tech)
    return sim, stations, addrs, fabric


def test_unicast_timing_matches_wire_star():
    """An uncontended frame arrives at the identical simulated time on
    both fidelity levels."""
    arrivals = {}
    for builder in (build_star, build_aggregate_star):
        sim, stations, addrs, _ = make_fabric(builder=builder)
        stations[0].send(Frame(addrs[0], addrs[2], payload_bytes=1500, headers=40))
        sim.run()
        assert len(stations[2].got) == 1
        assert stations[1].got == []
        arrivals[builder.__name__] = stations[2].got[0][1]
    assert arrivals["build_star"] == arrivals["build_aggregate_star"]


def test_output_port_serializes_two_senders():
    sim, stations, addrs, fabric = make_fabric()
    f = lambda src: Frame(addrs[src], addrs[2], payload_bytes=1460, headers=40)
    stations[0].send(f(0))
    stations[1].send(f(1))
    sim.run()
    (first, t1), (second, t2) = stations[2].got
    tx = first.wire_size / GIGABIT_ETHERNET.bandwidth
    # Second frame queues behind the first on port 2: exactly one more
    # serialization time, no more and no less.
    assert t2 == pytest.approx(t1 + tx, rel=1e-9)
    assert fabric.port_stats(2).frames_forwarded == 2
    assert fabric.port_stats(2).max_queue_bytes > first.wire_size


def test_uplink_serializes_back_to_back_sends():
    sim, stations, addrs, _ = make_fabric()
    for _ in range(2):
        stations[0].send(Frame(addrs[0], addrs[1], payload_bytes=1000))
    sim.run()
    (_, t1), (_, t2) = stations[1].got
    tx = stations[1].got[0][0].wire_size / GIGABIT_ETHERNET.bandwidth
    assert t2 == pytest.approx(t1 + tx, rel=1e-9)
    assert stations[0].wire.frames_sent == 2
    assert stations[0].wire.utilization(sim.now) > 0.0


def test_broadcast_fans_out_to_all_but_sender():
    sim, stations, addrs, fabric = make_fabric(n=4)
    stations[1].send(Frame(addrs[1], BROADCAST, payload_bytes=100))
    sim.run()
    assert [len(s.got) for s in stations] == [1, 0, 1, 1]
    assert fabric.total_forwarded() == 3


def test_backlog_past_port_buffer_tail_drops():
    sim, stations, addrs, fabric = make_fabric()
    n = 200  # 200 * ~1538B wire >> the 128 KiB per-port buffer
    for _ in range(n):
        stations[0].send(Frame(addrs[0], addrs[2], payload_bytes=1460, headers=40))
        stations[1].send(Frame(addrs[1], addrs[2], payload_bytes=1460, headers=40))
    sim.run()
    stats = fabric.port_stats(2)
    assert stats.frames_dropped > 0
    assert stats.frames_forwarded + stats.frames_dropped == 2 * n
    assert len(stations[2].got) == stats.frames_forwarded
    assert fabric.total_dropped() == stats.frames_dropped
    assert fabric.total_dropped_bytes() == stats.bytes_dropped
    # Forwarded backlog never exceeded the buffer.
    assert stats.max_queue_bytes <= fabric.buffer_bytes_per_port


def make_fault_fabric(spec, n=3):
    sim = Simulator()
    stations = [Station(sim) for _ in range(n)]
    addrs = [MacAddress(i) for i in range(n)]
    plan = FaultPlan(spec)
    fabric = build_aggregate_star(sim, list(zip(addrs, stations)), faults=plan)
    return sim, stations, addrs, fabric, plan


def test_fault_plan_installs_per_uplink_injectors():
    """A fault plan composes with the aggregate fabric: losses are drawn
    from the same named per-uplink streams the full wire star uses."""
    spec = FaultSpec(loss_rate=0.5, seed=11)
    sim, stations, addrs, fabric, plan = make_fault_fabric(spec)
    n = 100
    for _ in range(n):
        stations[0].send(Frame(addrs[0], addrs[1], payload_bytes=1000))
    sim.run()
    counters = plan.link_counters()
    assert counters["frames_dropped"] > 0
    assert len(stations[1].got) == n - counters["frames_dropped"]
    # The stream is per-uplink and named like the wire star's uplinks:
    # same seed, same name => identical decision sequence.
    ref = WireFault(spec, "fabric.up0")
    got = [d for _, d, _ in plan.schedule()["fabric.up0"]]
    want = []
    f = Frame(addrs[0], addrs[1], payload_bytes=1000)
    for _ in range(len(got)):
        while ref.disposition(f, 0.0) == "deliver":
            pass
        want.append(ref.log[-1][1])
    assert got == want


def test_fault_outage_window_drops_everything():
    spec = FaultSpec(outages=((0.0, 1.0),), seed=3)
    sim, stations, addrs, fabric, plan = make_fault_fabric(spec)
    stations[0].send(Frame(addrs[0], addrs[1], payload_bytes=500))
    sim.run()
    assert stations[1].got == []
    assert plan.link_counters()["frames_dropped"] == 1


def test_fault_corrupt_burns_uplink_time():
    """A corrupted transfer occupies the uplink (delaying the next send)
    but is never delivered — mirroring Wire.send's CRC semantics."""
    spec = FaultSpec(corrupt_rate=1.0, seed=5)
    sim, stations, addrs, fabric, plan = make_fault_fabric(spec)
    stations[0].send(Frame(addrs[0], addrs[1], payload_bytes=1000))
    sim.run()
    assert stations[1].got == []
    uplink = stations[0].wire
    assert uplink.busy_time > 0.0
    assert uplink.frames_sent == 0  # never made it past the CRC
    assert plan.link_counters()["frames_corrupted"] == 1


def test_fault_buffer_pressure_scales_port_budget():
    spec = FaultSpec(switch_buffer_scale=0.5, seed=1, loss_rate=1e-9)
    sim, stations, addrs, fabric, plan = make_fault_fabric(spec)
    assert fabric.buffer_bytes_per_port == pytest.approx(
        GIGABIT_ETHERNET.switch_buffer_per_port * 0.5
    )


def test_zero_fault_plan_is_byte_identical():
    """Building with faults=None and with no plan at all produce the
    same arrival times (no injector hooks, no perturbation)."""
    times = []
    for faults in (None, None):
        sim, stations, addrs, fabric = make_fabric()
        stations[0].send(Frame(addrs[0], addrs[2], payload_bytes=1500))
        sim.run()
        times.append(stations[2].got[0][1])
    assert times[0] == times[1]


def test_builder_validates_stations():
    sim = Simulator()
    with pytest.raises(NetworkError):
        build_aggregate_star(sim, [])
    s = [Station(sim), Station(sim)]
    dup = [(MacAddress(1), s[0]), (MacAddress(1), s[1])]
    with pytest.raises(NetworkError, match="duplicate"):
        build_aggregate_star(sim, dup)
    with pytest.raises(NetworkError):
        AggregateFabric(sim, n_ports=0, bandwidth=1e9)
    with pytest.raises(NetworkError):
        AggregateFabric(sim, n_ports=2, bandwidth=-1.0)


def test_unknown_destination_raises():
    sim, stations, addrs, _ = make_fabric(n=2)
    with pytest.raises(NetworkError, match="no forwarding entry"):
        stations[0].send(Frame(addrs[0], MacAddress(99), payload_bytes=64))


def test_telemetry_surface_matches_switch_naming():
    from repro.telemetry import MetricsRegistry

    sim, stations, addrs, fabric = make_fabric(n=2)
    registry = MetricsRegistry()
    fabric.register_telemetry(registry, "switch")
    stations[0].send(Frame(addrs[0], addrs[1], payload_bytes=500))
    sim.run()
    snap = registry.snapshot()
    assert snap["switch.forwarded"] == 1
    assert snap["switch.drops"] == 0
    assert snap["switch.port1.frames"] == 1
    assert snap["switch.port1.bytes"] > 500


# -- bulk flow-clock admission (repro.net.flowclock) ------------------------
def test_bulk_train_admission_matches_frame_level():
    """The exchange pattern replayed bulk vs frame-level: every arrival
    float and the conservation ledger must be identical."""
    from repro.net.flowclock import _replay

    ref, ref_ledger, _ = _replay(build_aggregate_star, {}, 16, bulk=False)
    got, ledger, fabric = _replay(build_aggregate_star, {}, 16, bulk=True)
    assert got == ref
    assert ledger == ref_ledger
    assert fabric.trains_fast > 0


def test_bulk_train_tail_drop_boundary_matches():
    """The harness's incast burst overflows one egress buffer inside a
    train; which frames survive (and the drop ledger) must not depend
    on the admission path."""
    from repro.net.flowclock import _replay

    ref, ref_ledger, _ = _replay(build_aggregate_star, {}, 16, bulk=False)
    got, ledger, _ = _replay(build_aggregate_star, {}, 16, bulk=True)
    assert ref_ledger["frames_dropped"] > 0
    assert ledger == ref_ledger
    assert got == ref


def test_bulk_train_faulted_uplink_falls_back_bit_identically():
    """A per-uplink injector forces that uplink's trains frame-level;
    its seeded decision log — and everyone's arrivals — stay
    bit-identical, while other senders still bulk-admit."""
    from repro.net.flowclock import _exchange_trains, _replay

    spec = FaultSpec(seed=7, loss_rate=0.25, corrupt_rate=0.1)
    ref, ref_ledger, ref_fab = _replay(
        build_aggregate_star, {}, 16, bulk=False, fault_spec=spec
    )
    got, ledger, fab = _replay(
        build_aggregate_star, {}, 16, bulk=True, fault_spec=spec
    )
    assert got == ref
    assert ledger == ref_ledger
    assert fab.uplink(0).fault.log == ref_fab.uplink(0).fault.log
    assert 0 < fab.trains_fast < len(_exchange_trains(16))


def test_component_arming_mid_train_degrades_remainder_exactly():
    """A component-fault window arming between admission slices sends
    the train's remainder frame-level; arrivals still match an
    all-frame-level replay exactly and nothing is lost."""
    from repro.net.flowclock import ADMIT_SLICE

    spans = []
    for bulk in (False, True):
        sim, stations, addrs, fabric = make_fabric(n=4)
        frames = [
            Frame(addrs[0], addrs[1], payload_bytes=1000, headers=8)
            for _ in range(8)
        ]
        times = [i * ADMIT_SLICE / 2 for i in range(8)]
        if bulk:
            fabric.uplink(0).send_train(frames, times)
        else:
            for frame, t in zip(frames, times):
                sim.call_after(t, fabric._send, fabric.uplink(0), frame)
        sim.call_after(
            1.25 * ADMIT_SLICE, setattr, fabric, "_faults_armed", True
        )
        sim.run()
        counters = fabric.conservation_counters()
        assert counters["frames_in"] == 8
        assert counters["frames_delivered"] == 8
        spans.append([t for _, t in stations[1].got])
    assert spans[0] == spans[1]


def test_zero_length_train_is_a_no_op():
    sim, stations, addrs, fabric = make_fabric()
    assert fabric.uplink(0).send_train([], []) == sim.now
    sim.run()
    assert fabric.trains_fast == 0
    assert all(st.got == [] for st in stations)


def test_train_length_mismatch_rejected():
    sim, stations, addrs, fabric = make_fabric()
    frame = Frame(addrs[0], addrs[1], payload_bytes=64)
    with pytest.raises(ValueError, match="train mismatch"):
        fabric.uplink(0).send_train([frame], [0.0, 1.0])
