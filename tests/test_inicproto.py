"""Tests for the INIC protocol policy layer (inicproto) and card memory."""

import pytest

from repro.errors import INICError, ProtocolError
from repro.inic import INICMemory
from repro.net import MacAddress
from repro.protocols import CreditGate, INICProtoConfig, TransferPlan
from repro.sim import Simulator


# --- INICProtoConfig ------------------------------------------------------------
def test_default_packet_size_is_papers_1024():
    cfg = INICProtoConfig()
    assert cfg.packet_size == 1024
    assert cfg.headers < 40  # minimal vs TCP/IP's 40


def test_invalid_proto_config():
    with pytest.raises(ProtocolError):
        INICProtoConfig(packet_size=0)
    with pytest.raises(ProtocolError):
        INICProtoConfig(headers=-1)


# --- TransferPlan ------------------------------------------------------------------
def test_plan_completes_when_all_received():
    sim = Simulator()
    plan = TransferPlan(sim, {0: 100, 1: 50})
    assert not plan.complete.triggered
    plan.account(MacAddress(0), 100)
    assert not plan.complete.triggered
    plan.account(MacAddress(1), 30)
    plan.account(MacAddress(1), 20)
    assert plan.complete.triggered
    assert plan.total_received() == 150


def test_plan_partial_accounting():
    sim = Simulator()
    plan = TransferPlan(sim, {3: 1000})
    plan.account(MacAddress(3), 400)
    assert plan.received[3] == 400
    assert plan.total_expected() == 1000


def test_plan_rejects_unknown_sender():
    sim = Simulator()
    plan = TransferPlan(sim, {0: 10})
    with pytest.raises(ProtocolError):
        plan.account(MacAddress(5), 10)


def test_plan_rejects_overflow():
    sim = Simulator()
    plan = TransferPlan(sim, {0: 10})
    with pytest.raises(ProtocolError):
        plan.account(MacAddress(0), 11)


def test_empty_plan_completes_immediately():
    sim = Simulator()
    plan = TransferPlan(sim, {})
    assert plan.complete.triggered


def test_plan_rejects_negative_expectation():
    sim = Simulator()
    with pytest.raises(ProtocolError):
        TransferPlan(sim, {0: -5})


# --- CreditGate ------------------------------------------------------------------------
def test_credit_gate_blocks_then_returns():
    sim = Simulator()
    gate = CreditGate(sim, budget_bytes=100.0, drain_rate=100.0)
    times = []

    def proc():
        yield from gate.acquire(80.0)
        times.append(sim.now)
        yield from gate.acquire(80.0)  # must wait for first to drain
        times.append(sim.now)

    sim.process(proc())
    sim.run()
    assert times[0] == pytest.approx(0.0)
    # 80 bytes drain at 100 B/s -> credits back at t=0.8.
    assert times[1] == pytest.approx(0.8)


def test_credit_gate_validation():
    sim = Simulator()
    with pytest.raises(ProtocolError):
        CreditGate(sim, budget_bytes=0, drain_rate=1)
    gate = CreditGate(sim, budget_bytes=10, drain_rate=1)
    with pytest.raises(ProtocolError):
        list(gate.acquire(0))


# --- INICMemory ----------------------------------------------------------------------------
def test_memory_allocate_release():
    sim = Simulator()
    mem = INICMemory(sim, capacity=1000, bandwidth=1e6)

    def proc():
        yield from mem.allocate(600)
        assert mem.free_bytes == pytest.approx(400)
        mem.release(600)

    sim.process(proc())
    sim.run()
    assert mem.free_bytes == pytest.approx(1000)


def test_memory_allocate_blocks_until_release():
    sim = Simulator()
    mem = INICMemory(sim, capacity=100, bandwidth=1e6)
    order = []

    def hog():
        yield from mem.allocate(80)
        order.append(("hog", sim.now))
        yield sim.timeout(5.0)
        mem.release(80)

    def waiter():
        yield from mem.allocate(50)
        order.append(("waiter", sim.now))

    sim.process(hog())
    sim.process(waiter())
    sim.run()
    assert order == [("hog", 0.0), ("waiter", 5.0)]


def test_memory_oversized_allocation_rejected():
    sim = Simulator()
    mem = INICMemory(sim, capacity=100, bandwidth=1e6)
    with pytest.raises(INICError):
        list(mem.allocate(101))


def test_memory_touch_time():
    sim = Simulator()
    mem = INICMemory(sim, capacity=100, bandwidth=200.0)
    assert mem.touch_time(100) == pytest.approx(0.5)
    with pytest.raises(INICError):
        mem.touch_time(-1)
