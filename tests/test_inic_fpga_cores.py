"""Unit tests for FPGA fabric, designs, and stream cores."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, FPGAResourceError, OffloadError
from repro.inic import (
    Design,
    FPGAFabric,
    INFRASTRUCTURE_CLBS,
    VIRTEX_1000,
    XILINX_4085XLA,
)
from repro.inic.cores import (
    BucketSortCore,
    DatatypeEngineCore,
    FinalPermutationCore,
    IndexedLayout,
    LocalTransposeCore,
    PacketizerCore,
    ReduceCore,
    VectorLayout,
    bucket_sort_core_clbs,
    local_transpose_blocks,
    max_buckets_for_clbs,
)
from repro.sim import Simulator


# --- FPGA fabric -----------------------------------------------------------------
def test_fabric_totals_and_clock():
    sim = Simulator()
    fab = FPGAFabric(sim, [XILINX_4085XLA, XILINX_4085XLA])
    assert fab.total_clbs == 2 * 3136
    assert fab.clock_hz == XILINX_4085XLA.clock_hz


def test_configure_charges_time_and_checks_fit():
    sim = Simulator()
    fab = FPGAFabric(sim, [XILINX_4085XLA])
    design = Design("d", [LocalTransposeCore()])

    def proc():
        yield from fab.configure(design, design.clbs, design.ram_kbits)
        return sim.now

    p = sim.process(proc())
    assert sim.run(until=p) == pytest.approx(XILINX_4085XLA.config_time)
    assert fab.current_design is design


def test_configure_rejects_oversized_design():
    sim = Simulator()
    fab = FPGAFabric(sim, [XILINX_4085XLA])
    with pytest.raises(FPGAResourceError):
        fab.check_fit(10**6, 0)


# --- Design composition --------------------------------------------------------------
def test_design_resource_sum_includes_infrastructure():
    t = LocalTransposeCore()
    d = Design("fft-send", [t])
    assert d.clbs == INFRASTRUCTURE_CLBS + t.spec.clbs


def test_design_duplicate_cores_rejected():
    with pytest.raises(ConfigurationError):
        Design("bad", [LocalTransposeCore(), LocalTransposeCore()])


def test_design_core_lookup():
    d = Design("d", [LocalTransposeCore(), PacketizerCore()])
    assert d.core("packetize").spec.name == "packetize"
    assert d.has_core("local-transpose")
    with pytest.raises(ConfigurationError):
        d.core("missing")


# --- bucket-count arithmetic (the Section-6 two-phase constraint) -----------------------
def test_prototype_fpga_caps_buckets_at_16():
    budget = XILINX_4085XLA.clbs - INFRASTRUCTURE_CLBS - 500  # leave room for fifo etc.
    assert max_buckets_for_clbs(budget) == 16


def test_ideal_fpga_fits_128_buckets():
    budget = VIRTEX_1000.clbs - INFRASTRUCTURE_CLBS - 500
    assert max_buckets_for_clbs(budget) >= 128


def test_bucket_clbs_monotone():
    assert bucket_sort_core_clbs(16) < bucket_sort_core_clbs(32)


# --- LocalTransposeCore ------------------------------------------------------------------
def test_transpose_core_transposes():
    core = LocalTransposeCore()
    block = np.arange(16, dtype=np.complex128).reshape(4, 4)
    out = core.apply(block)
    assert np.array_equal(out, block.T)
    assert out.flags["C_CONTIGUOUS"]


def test_transpose_core_rejects_non_square():
    core = LocalTransposeCore()
    with pytest.raises(OffloadError):
        core.apply(np.zeros((2, 3)))


def test_local_transpose_blocks_round_trip():
    panel = np.arange(2 * 8, dtype=float).reshape(2, 8)
    blocks = local_transpose_blocks(panel, 4)
    assert len(blocks) == 4
    for p, blk in enumerate(blocks):
        assert np.array_equal(blk, panel[:, 2 * p : 2 * p + 2].T)


# --- FinalPermutationCore ------------------------------------------------------------------
def test_permutation_assemble_reconstructs_transpose():
    rng = np.random.default_rng(0)
    n, p = 8, 4
    m = n // p
    full = rng.standard_normal((n, n))
    # Node 0's panel of X^T assembled from blocks sent by all nodes.
    core = FinalPermutationCore()
    blocks = {
        src: np.ascontiguousarray(full[src * m : (src + 1) * m, 0:m].T)
        for src in range(p)
    }
    panel = core.assemble(blocks)
    assert np.array_equal(panel, full.T[0:m, :])


def test_permutation_assemble_validates():
    core = FinalPermutationCore()
    with pytest.raises(OffloadError):
        core.assemble({})
    with pytest.raises(OffloadError):
        core.assemble({0: np.zeros((2, 2)), 2: np.zeros((2, 2))})
    with pytest.raises(OffloadError):
        core.assemble({0: np.zeros((2, 2)), 1: np.zeros((3, 3))})


# --- BucketSortCore ----------------------------------------------------------------------
def test_bucket_sort_is_partition_and_permutation():
    rng = np.random.default_rng(1)
    keys = rng.integers(0, 2**32, size=10_000, dtype=np.uint32)
    core = BucketSortCore(16)
    buckets = core.apply(keys)
    assert len(buckets) == 16
    cat = np.concatenate(buckets)
    assert np.array_equal(np.sort(cat), np.sort(keys))
    # Top-bit ordering across buckets.
    for b in range(15):
        if buckets[b].size and buckets[b + 1].size:
            assert buckets[b].max() >> 28 <= buckets[b + 1].min() >> 28


def test_bucket_sort_stable_within_bucket():
    keys = np.array([5, 3, 5, 1], dtype=np.uint32)  # all in bucket 0
    core = BucketSortCore(2)
    buckets = core.apply(keys)
    assert np.array_equal(buckets[0], keys)  # order preserved


def test_bucket_sort_validates():
    with pytest.raises(OffloadError):
        BucketSortCore(3)
    with pytest.raises(OffloadError):
        BucketSortCore(1)
    core = BucketSortCore(4)
    with pytest.raises(OffloadError):
        core.apply(np.zeros(4, dtype=np.float64))


# --- ReduceCore --------------------------------------------------------------------------
def test_reduce_core_accumulates():
    core = ReduceCore("sum")
    a = np.arange(4, dtype=np.float64)
    acc = core.apply(a)
    acc = core.apply(a, accumulator=acc)
    assert np.array_equal(acc, 2 * a)


def test_reduce_core_ops():
    hi = np.array([5.0, 1.0])
    lo = np.array([2.0, 3.0])
    assert np.array_equal(ReduceCore("max").apply(hi, accumulator=lo), [5.0, 3.0])
    assert np.array_equal(ReduceCore("min").apply(hi, accumulator=lo), [2.0, 1.0])
    with pytest.raises(OffloadError):
        ReduceCore("xor")


# --- DatatypeEngineCore ---------------------------------------------------------------------
def test_datatype_vector_gather_scatter_round_trip():
    core = DatatypeEngineCore()
    src = np.arange(20, dtype=np.float64)
    layout = VectorLayout(count=4, blocklen=2, stride=5)
    packed = core.gather(src, layout)
    assert np.array_equal(packed, [0, 1, 5, 6, 10, 11, 15, 16])
    dst = np.zeros(20)
    core.scatter(packed, layout, dst)
    assert np.array_equal(dst[layout.indices()], packed)


def test_datatype_indexed_layout():
    core = DatatypeEngineCore()
    src = np.arange(10, dtype=np.int64)
    layout = IndexedLayout(offsets=(7, 0, 4), blocklens=(2, 1, 2))
    packed = core.gather(src, layout)
    assert np.array_equal(packed, [7, 8, 0, 4, 5])


def test_datatype_bounds_checked():
    core = DatatypeEngineCore()
    with pytest.raises(OffloadError):
        core.gather(np.arange(5), VectorLayout(count=2, blocklen=2, stride=4))


def test_core_rates_exceed_paths():
    """Cores must never be the datapath bottleneck at card clocks
    ('more than enough computing power for full rate transfers')."""
    from repro.units import mib_per_s

    for core in (LocalTransposeCore(), BucketSortCore(16), PacketizerCore()):
        assert core.rate(XILINX_4085XLA.clock_hz) > mib_per_s(112)
