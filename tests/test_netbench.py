"""Tests for the network microbenchmarks (repro.apps.netbench)."""

import pytest

from repro.apps.netbench import (
    NetBenchResult,
    inic_pingpong,
    inic_stream,
    tcp_pingpong,
    tcp_stream,
)
from repro.errors import ApplicationError
from repro.net import FAST_ETHERNET, GIGABIT_ETHERNET
from repro.units import MiB


def test_result_derived_metrics():
    r = NetBenchResult("x", nbytes=1000, repetitions=10, total_time=2.0)
    assert r.latency == pytest.approx(0.1)
    assert r.bandwidth == pytest.approx(5000.0)


def test_inic_latency_beats_tcp():
    """Section 2: a protocol-processor INIC offers 'lower latency than
    current commodity network subsystems'."""
    tcp = tcp_pingpong(nbytes=64, repetitions=10)
    inic = inic_pingpong(nbytes=64, repetitions=10)
    assert inic.latency < 0.5 * tcp.latency


def test_inic_bandwidth_at_least_tcp():
    tcp = tcp_stream(nbytes=1 << 20, repetitions=3)
    inic = inic_stream(nbytes=1 << 20, repetitions=3)
    assert inic.bandwidth > tcp.bandwidth


def test_stream_bandwidths_in_sane_ranges():
    tcp = tcp_stream(nbytes=2 << 20, repetitions=2)
    # Below line rate, above a quarter of it (PCI + stack overheads).
    assert 0.25 * 125e6 < tcp.bandwidth < 125e6
    inic = inic_stream(nbytes=2 << 20, repetitions=2)
    # Host path 80 MiB/s is the INIC's bottleneck stage.
    assert inic.bandwidth == pytest.approx(80 * MiB, rel=0.2)


def test_fast_ethernet_pingpong_slower_stream_much_slower():
    fe_stream = tcp_stream(nbytes=1 << 20, repetitions=2, network=FAST_ETHERNET)
    ge_stream = tcp_stream(nbytes=1 << 20, repetitions=2, network=GIGABIT_ETHERNET)
    assert fe_stream.bandwidth < 0.2 * ge_stream.bandwidth
    assert fe_stream.bandwidth < 12.5e6  # under FE line rate


def test_latency_grows_with_message_size():
    small = tcp_pingpong(nbytes=64, repetitions=5)
    big = tcp_pingpong(nbytes=32 * 1024, repetitions=5)
    assert big.latency > small.latency


def test_validation():
    with pytest.raises(ApplicationError):
        tcp_pingpong(nbytes=0)
    with pytest.raises(ApplicationError):
        inic_stream(repetitions=0)
