"""Unit tests for the memory-hierarchy model (repro.hw.memory)."""

import pytest

from repro.errors import MemoryModelError
from repro.hw import AccessPattern, CacheLevel, MemoryHierarchy


def athlon_like():
    return MemoryHierarchy(
        [
            CacheLevel("L1", 64 * 1024, 8e9, 4e9, 1e-9),
            CacheLevel("L2", 256 * 1024, 3e9, 1.5e9, 10e-9),
            CacheLevel("DRAM", float("inf"), 0.6e9, 0.12e9, 120e-9),
        ]
    )


def test_level_for_picks_smallest_containing_level():
    mh = athlon_like()
    assert mh.level_for(10_000).name == "L1"
    assert mh.level_for(100_000).name == "L2"
    assert mh.level_for(10_000_000).name == "DRAM"


def test_bandwidth_within_level_is_flat():
    mh = athlon_like()
    assert mh.effective_bandwidth(1_000) == mh.effective_bandwidth(60_000)


def test_bandwidth_monotone_nonincreasing_in_working_set():
    mh = athlon_like()
    sizes = [2**k for k in range(8, 26)]
    bws = [mh.effective_bandwidth(s) for s in sizes]
    assert all(a >= b for a, b in zip(bws, bws[1:]))


def test_transition_band_interpolates_continuously():
    mh = athlon_like()
    l1 = 64 * 1024
    just_inside = mh.effective_bandwidth(l1)
    just_outside = mh.effective_bandwidth(l1 + 1)
    far_outside = mh.effective_bandwidth(int(l1 * 1.5))
    assert just_inside >= just_outside > far_outside
    # Continuity at the boundary: no big jump for +1 byte.
    assert just_outside == pytest.approx(just_inside, rel=1e-3)
    # At the end of the band we are at (or near) the next level's bandwidth.
    assert far_outside == pytest.approx(3e9, rel=0.05)


def test_random_pattern_slower_than_stream():
    mh = athlon_like()
    for ws in (1_000, 100_000, 10_000_000):
        assert mh.effective_bandwidth(ws, AccessPattern.RANDOM) < mh.effective_bandwidth(
            ws, AccessPattern.STREAM
        )


def test_touch_time_scales_with_bytes():
    mh = athlon_like()
    t1 = mh.touch_time(1_000_000, working_set=10_000_000)
    t2 = mh.touch_time(2_000_000, working_set=10_000_000)
    assert t2 == pytest.approx(2 * t1)


def test_touch_time_defaults_working_set_to_nbytes():
    mh = athlon_like()
    assert mh.touch_time(1_000) == pytest.approx(1_000 / 8e9)


def test_increasing_capacity_enforced():
    with pytest.raises(MemoryModelError):
        MemoryHierarchy(
            [
                CacheLevel("L1", 64 * 1024, 8e9, 4e9),
                CacheLevel("L2", 32 * 1024, 3e9, 1.5e9),
                CacheLevel("DRAM", float("inf"), 0.6e9, 0.12e9),
            ]
        )


def test_last_level_must_be_infinite():
    with pytest.raises(MemoryModelError):
        MemoryHierarchy([CacheLevel("L1", 64 * 1024, 8e9, 4e9)])


def test_invalid_level_parameters():
    with pytest.raises(MemoryModelError):
        CacheLevel("L1", 0, 8e9, 4e9)
    with pytest.raises(MemoryModelError):
        CacheLevel("L1", 1024, 0, 4e9)
    with pytest.raises(MemoryModelError):
        CacheLevel("L1", 1024, 8e9, 4e9, latency=-1)


def test_negative_working_set_rejected():
    mh = athlon_like()
    with pytest.raises(MemoryModelError):
        mh.effective_bandwidth(-1)


def test_unknown_pattern_rejected():
    mh = athlon_like()
    with pytest.raises(MemoryModelError):
        mh.effective_bandwidth(100, "backwards")
