"""Edge-case tests for the DES kernel: priorities, failures, interrupts
interacting with resources and stores."""

import pytest

from repro.errors import Interrupt, ProcessError
from repro.sim import (
    AllOf,
    NORMAL,
    Resource,
    Simulator,
    Store,
    URGENT,
)


def test_urgent_events_fire_before_normal_at_same_time():
    sim = Simulator()
    order = []

    normal = sim.event("n")
    urgent = sim.event("u")
    normal.add_callback(lambda e: order.append("normal"))
    urgent.add_callback(lambda e: order.append("urgent"))
    normal.succeed(priority=NORMAL)
    urgent.succeed(priority=URGENT)
    sim.run()
    assert order == ["urgent", "normal"]


def test_all_of_fails_fast_on_component_failure():
    sim = Simulator()
    caught = []

    def failer(ev):
        yield sim.timeout(1.0)
        ev.fail(RuntimeError("part failed"))

    def waiter(events):
        try:
            yield sim.all_of(events)
        except RuntimeError as e:
            caught.append((str(e), sim.now))

    bad = sim.event()
    slow = sim.timeout(100.0)
    sim.process(failer(bad))
    sim.process(waiter([bad, slow]))
    sim.run(until=50.0)
    assert caught == [("part failed", 1.0)]


def test_interrupt_while_waiting_on_store():
    sim = Simulator()
    store = Store(sim)
    log = []

    def consumer():
        try:
            yield store.get()
        except Interrupt:
            log.append(("interrupted", sim.now))

    def interrupter(p):
        yield sim.timeout(2.0)
        p.interrupt()

    p = sim.process(consumer())
    sim.process(interrupter(p))
    sim.run()
    assert log == [("interrupted", 2.0)]


def test_interrupt_while_waiting_on_resource_leaves_queue_intact():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    got = []

    def holder():
        req = yield from res.acquire()
        yield sim.timeout(10.0)
        res.release(req)

    def impatient():
        req = res.request()
        try:
            yield req
        except Interrupt:
            res.release(req)  # cancel the queued claim
            got.append("gave-up")

    def patient():
        yield sim.timeout(2.0)
        req = yield from res.acquire()
        got.append(("patient-in", sim.now))
        res.release(req)

    sim.process(holder())
    p = sim.process(impatient())
    sim.process(patient())

    def interrupter():
        yield sim.timeout(1.0)
        p.interrupt()

    sim.process(interrupter())
    sim.run()
    assert "gave-up" in got
    assert ("patient-in", 10.0) in got  # queue survived the cancellation


def test_process_yielding_foreign_simulator_event_fails():
    sim1, sim2 = Simulator(), Simulator()

    def proc():
        yield sim2.timeout(1.0)

    p = sim1.process(proc())
    with pytest.raises(ProcessError):
        sim1.run(until=p)


def test_nested_process_exception_propagates_to_parent():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        raise ValueError("from child")

    def parent():
        try:
            yield sim.process(child())
        except ValueError as e:
            return f"caught {e}"

    p = sim.process(parent())
    assert sim.run(until=p) == "caught from child"


def test_condition_value_contains_fired_events():
    sim = Simulator()

    def proc():
        a = sim.timeout(1.0, value="a")
        b = sim.timeout(1.0, value="b")
        result = yield sim.all_of([a, b])
        return sorted(result.values())

    p = sim.process(proc())
    assert sim.run(until=p) == ["a", "b"]


def test_event_value_unavailable_until_triggered():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(AttributeError):
        _ = ev.value


def test_zero_delay_timeout_runs_this_instant_after_queue():
    sim = Simulator()
    order = []

    def proc():
        sim.schedule_callback(0.0, lambda: order.append("cb"))
        yield sim.timeout(0.0)
        order.append("proc")

    sim.process(proc())
    sim.run()
    assert order == ["cb", "proc"]
