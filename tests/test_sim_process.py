"""Tests for the coroutine process layer (:mod:`repro.sim.process`).

Pins the tentpole guarantees: ``await`` and ``yield`` bodies drive the
same engine machinery and produce **identical event traces** under every
scheduler kind; interrupts land at the current time and leave the
awaited event pending; ``Store.cancel``/``Container.cancel`` withdraw
orphaned waiters; cancelling an event at its own fire time tombstones it
before dispatch; and :func:`~repro.sim.process.drive` inlines generator
helpers without adding events.
"""

import pytest

from repro.errors import Interrupt, ProcessError
from repro.sim import Environment, drive
from repro.sim import engine
from repro.sim.engine import Simulator
from repro.sim.sched import SCHEDULER_KINDS


# -- interrupts --------------------------------------------------------------------
def test_interrupt_during_timeout():
    env = Environment()
    caught = []

    async def sleeper():
        try:
            await env.timeout(1.0, value="late")
        except Interrupt as exc:
            caught.append(exc.cause)
            await env.sleep(0.5)
            return "recovered"
        return "slept through"

    proc = env.process(sleeper)

    def interrupter():
        yield env.timeout(0.25)
        proc.interrupt(cause="wake")

    env.process(interrupter)
    env.run()
    assert caught == ["wake"]
    assert proc.value == "recovered"
    # the interrupt landed at its own time, not the timeout's ...
    assert proc.processed
    # ... and the orphaned 1.0s timeout still fired harmlessly at 1.0
    assert env.now == pytest.approx(1.0)


def test_interrupt_during_store_get_with_cancel():
    env = Environment()
    store = env.store()
    got = []

    async def getter(tag):
        op = store.get()
        try:
            item = await op
        except Interrupt:
            # withdraw the orphaned claim so the item goes to a live getter
            assert store.cancel(op)
            return None
        got.append((tag, item))
        return item

    first = env.process(getter, "first", name="first")
    second = env.process(getter, "second", name="second")

    def master():
        yield env.timeout(0.1)
        first.interrupt()
        yield env.timeout(0.1)
        yield store.put("item")

    env.process(master)
    env.run()
    # without the cancel the item would be handed to the detached
    # first-in-line getter and lost; with it, the second getter eats
    assert got == [("second", "item")]
    assert first.value is None
    assert second.value == "item"


def test_store_cancel_is_idempotent_and_rejects_fired_ops():
    env = Environment()
    store = env.store()
    op = store.get()
    assert store.cancel(op) is True
    assert store.cancel(op) is False  # already withdrawn

    done = store.put("x")  # resolves inline (a getter-free put)
    assert store.cancel(done) is False  # triggered ops cannot be withdrawn


def test_container_cancel_redispatches_waiters():
    env = Environment()
    tank = env.container(capacity=10.0, init=0.0)
    taken = []

    async def taker(tag, amount):
        op = tank.get(amount)
        try:
            await op
        except Interrupt:
            assert tank.cancel(op)
            return None
        taken.append((tag, amount))
        return amount

    big = env.process(taker, "big", 8.0, name="big")
    small = env.process(taker, "small", 2.0, name="small")

    def master():
        yield env.timeout(0.1)
        yield tank.put(4.0)  # not enough for the 8.0 head-of-line claim
        yield env.timeout(0.1)
        big.interrupt()  # cancel unblocks the smaller claim behind it

    env.process(master)
    env.run()
    assert taken == [("small", 2.0)]
    assert big.value is None


def test_interrupt_before_start_and_self_interrupt_are_errors():
    env = Environment()

    async def idle():
        await env.timeout(1.0)

    proc = env.process(idle)
    with pytest.raises(ProcessError, match="before its first suspension"):
        proc.interrupt()

    env.process(narcissist_body(env))
    # the failed process completion has no waiters, so run() surfaces it
    with pytest.raises(ProcessError, match="cannot interrupt itself"):
        env.run()


async def narcissist_body(env):
    env.active_process.interrupt()


# -- cancel at fire time -----------------------------------------------------------
def test_cancel_at_fire_time_tombstones_before_dispatch():
    env = Environment()
    fired = []
    wake = env.timeout(1.0)  # created first: smaller seq, dispatches first
    victim = env.timeout(1.0, value="x")
    victim.add_callback(lambda e: fired.append(e.value))

    def canceller():
        yield wake
        # same timestamp as the victim's own firing; the earlier seq
        # wins the dispatch race, so the tombstone must suppress it
        assert victim.cancel()
        assert not victim.cancel()  # second withdrawal is a no-op

    env.process(canceller)
    env.run()
    assert fired == []
    assert not victim.processed
    assert env.now == pytest.approx(1.0)


# -- drive -------------------------------------------------------------------------
def test_drive_returns_the_generator_value():
    env = Environment()

    def helper(n):
        yield env.sleep(1e-6)
        return n * 2

    async def body():
        return await drive(helper(21))

    proc = env.process(body)
    env.run()
    assert proc.value == 42


def test_drive_adds_zero_events_vs_yield_from():
    def run(style):
        sink = []
        engine.set_trace_sink(sink)
        try:
            env = Environment()

            def helper():
                yield env.sleep(1e-6)
                yield env.sleep(2e-6)
                return "done"

            if style == "await":

                async def body():
                    return await drive(helper())

            else:

                def body():
                    return (yield from helper())

            proc = env.process(body)
            env.run()
            return sink, proc.value
        finally:
            engine.set_trace_sink(None)

    trace_yield, value_yield = run("yield")
    trace_await, value_await = run("await")
    assert value_yield == value_await == "done"
    assert trace_await == trace_yield  # drive() == yield from, exactly


def test_drive_rejects_non_generators():
    with pytest.raises(ProcessError, match="drive"):
        drive(42)


# -- environment facade ------------------------------------------------------------
def test_environment_rejects_sim_and_scheduler_together():
    sim = Simulator()
    with pytest.raises(ProcessError):
        Environment(sim, scheduler="heap")


def test_environment_process_argument_contract():
    env = Environment()

    def gen(n):
        yield env.sleep(1e-6)
        return n

    body = gen(1)
    with pytest.raises(ProcessError, match="arguments given"):
        env.process(body, 2)
    with pytest.raises(ProcessError, match="process body"):
        env.process(object())
    proc = env.process(body)  # pre-created bodies are fine bare
    env.run()
    assert proc.value == 1


def test_await_composition_and_process_awaitable():
    env = Environment()

    async def child(n):
        await env.sleep(n * 1e-6)
        return n

    async def parent():
        first = env.process(child, 1, name="child1")
        second = env.process(child, 5, name="child2")
        winner = await env.any_of([first, second])
        assert first in winner and second not in winner
        both = await env.all_of([first, second])
        return sorted(both.values())

    proc = env.process(parent)
    env.run()
    assert proc.value == [1, 5]


# -- process-vs-callback trace identity (the tentpole guarantee) -------------------
def _scenario(env, style):
    """A producer/consumer mix exercising sleep, Store, and all_of."""
    store = env.store(name="queue")

    if style == "yield":

        def producer():
            for i in range(5):
                yield env.sleep((i + 1) * 1e-6)
                yield store.put(i)

        def consumer():
            total = 0
            for _ in range(5):
                item = yield store.get()
                total += item
            return total

    else:

        async def producer():
            for i in range(5):
                await env.sleep((i + 1) * 1e-6)
                await store.put(i)

        async def consumer():
            total = 0
            for _ in range(5):
                item = await store.get()
                total += item
            return total

    prod = env.process(producer, name="producer")
    cons = env.process(consumer, name="consumer")
    env.run(until=env.all_of([prod, cons]))
    return cons.value


@pytest.mark.parametrize("kind", SCHEDULER_KINDS)
def test_await_vs_yield_trace_identity(kind):
    def run(style):
        sink = []
        engine.set_trace_sink(sink)
        try:
            env = Environment(scheduler=kind)
            value = _scenario(env, style)
            return sink, value, env.now
        finally:
            engine.set_trace_sink(None)

    trace_yield, value_yield, now_yield = run("yield")
    trace_await, value_await, now_await = run("await")
    assert value_yield == value_await == 10
    assert now_yield == now_await
    assert len(trace_yield) == len(trace_await)
    assert trace_yield == trace_await  # event-for-event identical


def test_trace_identity_holds_across_scheduler_kinds():
    traces = {}
    for kind in SCHEDULER_KINDS:
        sink = []
        engine.set_trace_sink(sink)
        try:
            env = Environment(scheduler=kind)
            assert _scenario(env, "await") == 10
        finally:
            engine.set_trace_sink(None)
        traces[kind] = sink
    anchor = traces[SCHEDULER_KINDS[0]]
    for kind, trace in traces.items():
        assert trace == anchor, f"{kind} diverged from {SCHEDULER_KINDS[0]}"
