"""Unit/integration tests for the TCP model (repro.protocols.tcp)."""

import numpy as np
import pytest

from repro.hw import CPU, CacheLevel, CoalescePolicy, MemoryHierarchy
from repro.net import GIGABIT_ETHERNET, MacAddress, StandardNIC, build_star
from repro.protocols import TCPConfig, TCPStack
from repro.sim import FairShareBus, Simulator


def make_cluster(n=2, coalesce=CoalescePolicy(), tcp_config=TCPConfig()):
    sim = Simulator()
    nics, stacks = [], []
    for i in range(n):
        mh = MemoryHierarchy(
            [
                CacheLevel("L2", 256 * 1024, 3e9, 1.5e9),
                CacheLevel("DRAM", float("inf"), 0.6e9, 0.12e9),
            ]
        )
        cpu = CPU(sim, mh, interrupt_cost=8e-6)
        bus = FairShareBus(sim, bandwidth=112e6, name=f"pci{i}")
        nic = StandardNIC(
            sim, MacAddress(i), host_bus=bus, cpu=cpu, coalesce=coalesce,
            name=f"nic{i}",
        )
        stacks.append(TCPStack(sim, nic, cpu, config=tcp_config, name=f"tcp{i}"))
        nics.append(nic)
    switch = build_star(sim, [(MacAddress(i), nics[i]) for i in range(n)])
    return sim, stacks, nics, switch


def test_message_delivered_intact():
    sim, stacks, _, _ = make_cluster()
    payload = np.arange(100)
    result = {}

    def sender():
        yield stacks[0].send(MacAddress(1), 100_000, payload=payload, tag=3)

    def receiver():
        m = yield stacks[1].recv()
        result["msg"] = m

    sim.process(sender())
    sim.process(receiver())
    sim.run()
    m = result["msg"]
    assert m.nbytes == 100_000
    assert m.tag == 3
    assert m.src == MacAddress(0)
    assert np.array_equal(m.payload, payload)


def test_send_completes_only_after_ack():
    sim, stacks, _, _ = make_cluster()
    times = {}

    def sender():
        yield stacks[0].send(MacAddress(1), 50_000)
        times["acked"] = sim.now

    def receiver():
        yield stacks[1].recv()
        times["delivered"] = sim.now

    sim.process(sender())
    sim.process(receiver())
    sim.run()
    # ACK of the last segment arrives after delivery.
    assert times["acked"] >= times["delivered"]


def test_multiple_messages_same_connection_ordered():
    sim, stacks, _, _ = make_cluster()
    got = []

    def sender():
        for i in range(5):
            yield stacks[0].send(MacAddress(1), 10_000, tag=i)

    def receiver():
        for _ in range(5):
            m = yield stacks[1].recv()
            got.append(m.tag)

    sim.process(sender())
    sim.process(receiver())
    sim.run()
    assert got == [0, 1, 2, 3, 4]


def test_bidirectional_transfer():
    sim, stacks, _, _ = make_cluster()
    done = {}

    def node(i):
        peer = MacAddress(1 - i)
        send_ev = stacks[i].send(peer, 200_000, tag=i)
        m = yield stacks[i].recv(tag=1 - i)
        yield send_ev
        done[i] = (sim.now, m.nbytes)

    sim.process(node(0))
    sim.process(node(1))
    sim.run()
    assert done[0][1] == 200_000 and done[1][1] == 200_000


def test_slow_start_makes_short_messages_inefficient():
    """Effective throughput for a short message is far below line rate."""
    sim, stacks, _, _ = make_cluster()
    t = {}

    def sender():
        t0 = sim.now
        yield stacks[0].send(MacAddress(1), 16 * 1024)
        t["short"] = sim.now - t0

    def receiver():
        yield stacks[1].recv()

    sim.process(sender())
    sim.process(receiver())
    sim.run()
    short_rate = 16 * 1024 / t["short"]
    assert short_rate < 0.4 * GIGABIT_ETHERNET.bandwidth


def test_long_message_approaches_wire_rate():
    sim, stacks, _, _ = make_cluster()
    t = {}
    nbytes = 4_000_000

    def sender():
        t0 = sim.now
        yield stacks[0].send(MacAddress(1), nbytes)
        t["long"] = sim.now - t0

    def receiver():
        yield stacks[1].recv()

    sim.process(sender())
    sim.process(receiver())
    sim.run()
    rate = nbytes / t["long"]
    # Well above half of one-gig line rate once the window is open
    # (payload/wire overhead + PCI DMA keep it below 100%).
    assert rate > 0.5 * GIGABIT_ETHERNET.bandwidth
    assert rate < GIGABIT_ETHERNET.bandwidth


def test_interrupt_coalescing_slows_short_transfers():
    """The paper's slow-start/mitigation interaction, measured."""
    def run(policy):
        sim, stacks, _, _ = make_cluster(coalesce=policy)
        t = {}

        def sender():
            t0 = sim.now
            yield stacks[0].send(MacAddress(1), 32 * 1024)
            t["dt"] = sim.now - t0

        def receiver():
            yield stacks[1].recv()

        sim.process(sender())
        sim.process(receiver())
        sim.run()
        return t["dt"]

    fast = run(CoalescePolicy())  # immediate interrupts
    slow = run(CoalescePolicy(delay=150e-6, max_frames=32))
    assert slow > fast * 1.5


def test_no_timeouts_or_drops_in_clean_two_node_transfer():
    sim, stacks, _, switch = make_cluster()

    def sender():
        yield stacks[0].send(MacAddress(1), 1_000_000)

    def receiver():
        yield stacks[1].recv()

    sim.process(sender())
    sim.process(receiver())
    sim.run()
    assert stacks[0].stats.timeouts == 0
    assert switch.total_dropped() == 0


def test_loss_triggers_timeout_and_recovery():
    """Force drops with a tiny switch buffer; TCP must still deliver."""
    sim = Simulator()
    nics, stacks = [], []
    for i in range(2):
        mh = MemoryHierarchy(
            [CacheLevel("DRAM", float("inf"), 0.6e9, 0.12e9)]
        )
        cpu = CPU(sim, mh)
        bus = FairShareBus(sim, bandwidth=112e6)
        nic = StandardNIC(sim, MacAddress(i), host_bus=bus, cpu=cpu, name=f"nic{i}")
        stacks.append(TCPStack(sim, nic, cpu, name=f"tcp{i}"))
        nics.append(nic)
    from repro.net import NetworkTechnology
    from repro.units import gbps

    tiny_buf = NetworkTechnology(
        name="lossy-gige",
        bandwidth=gbps(1),
        propagation_delay=1e-6,
        switch_latency=4e-6,
        switch_buffer_per_port=8 * 1024,  # absurdly small: forces drops
    )
    switch = build_star(sim, [(MacAddress(i), nics[i]) for i in range(2)], tech=tiny_buf)
    result = {}

    def sender():
        yield stacks[0].send(MacAddress(1), 500_000)
        result["sent"] = sim.now

    def receiver():
        m = yield stacks[1].recv()
        result["got"] = m.nbytes

    sim.process(sender())
    sim.process(receiver())
    sim.run(max_events=5_000_000)
    assert result["got"] == 500_000  # delivered despite drops
    assert switch.total_dropped() > 0
    assert stacks[0].stats.timeouts > 0


def test_per_segment_cpu_cost_charged():
    sim, stacks, nics, _ = make_cluster()

    def sender():
        yield stacks[0].send(MacAddress(1), 1_000_000)

    def receiver():
        yield stacks[1].recv()

    sim.process(sender())
    sim.process(receiver())
    sim.run()
    # Sender burned CPU in the TX path; receiver via interrupt theft.
    send_cpu = stacks[0].cpu
    recv_cpu = stacks[1].cpu
    assert send_cpu.busy_time > 0
    assert recv_cpu.interrupt_time > 0


def test_idle_restart_resets_window():
    cfg = TCPConfig(idle_restart=True, rto=0.05)
    sim, stacks, _, _ = make_cluster(tcp_config=cfg)
    conn_box = {}

    def sender():
        yield stacks[0].send(MacAddress(1), 500_000)
        conn = stacks[0]._send_conns[1]
        conn_box["cwnd_after_bulk"] = conn.cwnd
        yield sim.timeout(1.0)  # long idle
        yield stacks[0].send(MacAddress(1), 1460)
        conn_box["cwnd_after_idle_send"] = conn.cwnd

    def receiver():
        yield stacks[1].recv()
        yield stacks[1].recv()

    sim.process(sender())
    sim.process(receiver())
    sim.run()
    assert conn_box["cwnd_after_bulk"] > 8
    assert conn_box["cwnd_after_idle_send"] < conn_box["cwnd_after_bulk"]


def test_invalid_sends_rejected():
    sim, stacks, _, _ = make_cluster()
    from repro.errors import ProtocolError

    with pytest.raises(ProtocolError):
        stacks[0].send(MacAddress(1), 0)
    with pytest.raises(ProtocolError):
        stacks[0].send(MacAddress(0), 100)  # loopback
