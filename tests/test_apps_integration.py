"""End-to-end application tests: both FFT and sort, both architectures.

These are the functional-correctness contracts of DESIGN.md §5: the
simulated cluster must produce bit-correct results, and the INIC runs
must exhibit the paper's qualitative properties (fewer interrupts,
less host time, no switch loss).
"""

import numpy as np
import pytest

from repro.apps.fft import baseline_fft2d, fft2d, inic_fft2d
from repro.apps.sort import baseline_sort, inic_sort, is_sorted
from repro.cluster import Cluster, ClusterSpec
from repro.core import Experiment
from repro.errors import ApplicationError
from repro.inic import ACEII_PROTOTYPE, IDEAL_INIC


def _acc(n, card=IDEAL_INIC):
    session = Experiment().nodes(n).card(card).build()
    return session.cluster, session.manager


def random_matrix(n, seed=0):
    g = np.random.default_rng(seed)
    return g.standard_normal((n, n)) + 1j * g.standard_normal((n, n))


def random_keys(n, seed=0):
    return np.random.default_rng(seed).integers(0, 2**32, size=n, dtype=np.uint32)


# --- FFT -----------------------------------------------------------------------------
@pytest.mark.parametrize("p", [1, 2, 4])
def test_baseline_fft_correct(p):
    m = random_matrix(32)
    cluster = Cluster.build(ClusterSpec(n_nodes=p))
    out, _ = baseline_fft2d(cluster, m)
    assert np.allclose(out, fft2d(m), atol=1e-8)


@pytest.mark.parametrize("p", [1, 2, 4])
def test_inic_fft_correct(p):
    m = random_matrix(32, seed=p)
    cluster, manager = _acc(p)
    out, _ = inic_fft2d(cluster, manager, m)
    assert np.allclose(out, fft2d(m), atol=1e-8)


def test_inic_fft_correct_on_prototype():
    m = random_matrix(64, seed=9)
    cluster, manager = _acc(4, card=ACEII_PROTOTYPE)
    out, _ = inic_fft2d(cluster, manager, m)
    assert np.allclose(out, fft2d(m), atol=1e-8)


def test_inic_fft_transposes_without_host_interrupt_storm():
    m = random_matrix(64)
    p = 4
    base = Cluster.build(ClusterSpec(n_nodes=p))
    _, base_res = baseline_fft2d(base, m)
    acc, manager = _acc(p)
    _, acc_res = inic_fft2d(acc, manager, m)
    # One completion interrupt per transpose per node (2 transposes +
    # nothing else), vs per-packet interrupt causes on the baseline.
    assert manager.total_completion_interrupts() == 2 * p
    baseline_causes = sum(n.nic.irq.causes_raised for n in base.nodes)
    assert baseline_causes > 10 * manager.total_completion_interrupts()


def test_inic_fft_faster_than_baseline_at_paper_size():
    m = random_matrix(256, seed=3)
    p = 8
    base = Cluster.build(ClusterSpec(n_nodes=p))
    _, base_res = baseline_fft2d(base, m)
    acc, manager = _acc(p)
    _, acc_res = inic_fft2d(acc, manager, m)
    assert acc_res.makespan < base_res.makespan


def test_no_switch_loss_under_inic_protocol():
    """Section 4.1's no-loss claim for the custom protocol."""
    m = random_matrix(128)
    cluster, manager = _acc(8)
    inic_fft2d(cluster, manager, m)
    assert cluster.switch.total_dropped() == 0


def test_fft_rejects_bad_shapes():
    cluster = Cluster.build(ClusterSpec(n_nodes=2))
    with pytest.raises(ApplicationError):
        baseline_fft2d(cluster, np.zeros((4, 8)))


# --- Sort -----------------------------------------------------------------------------
@pytest.mark.parametrize("p", [1, 2, 4])
def test_baseline_sort_correct(p):
    keys = random_keys(2**14, seed=p)
    cluster = Cluster.build(ClusterSpec(n_nodes=p))
    parts, _ = baseline_sort(cluster, keys)
    out = np.concatenate(parts)
    assert is_sorted(out)
    assert np.array_equal(np.sort(keys), out)


@pytest.mark.parametrize("p", [2, 4])
def test_inic_sort_correct_ideal(p):
    keys = random_keys(2**14, seed=10 + p)
    cluster, manager = _acc(p)
    parts, _ = inic_sort(cluster, manager, keys)
    out = np.concatenate(parts)
    assert is_sorted(out)
    assert np.array_equal(np.sort(keys), out)


def test_inic_sort_correct_prototype_two_phase():
    keys = random_keys(2**15, seed=77)
    cluster, manager = _acc(4, card=ACEII_PROTOTYPE)
    parts, res = inic_sort(cluster, manager, keys)
    out = np.concatenate(parts)
    assert is_sorted(out)
    assert np.array_equal(np.sort(keys), out)
    # The prototype card really was configured with the 16-bucket core.
    assert cluster.nodes[0].require_inic().design.has_core("bucket-sort-16")


def test_sort_rejects_non_power_of_two_ranks():
    keys = random_keys(3 * 2**10)
    cluster = Cluster.build(ClusterSpec(n_nodes=3))
    with pytest.raises(ApplicationError):
        baseline_sort(cluster, keys)


def test_inic_sort_offloads_bucket_time():
    """INIC eliminates host bucket-sort phases (Fig. 5(b)'s source of
    superlinearity): its trace has no sort-phase1 span."""
    keys = random_keys(2**15)
    p = 4
    base = Cluster.build(ClusterSpec(n_nodes=p))
    _, base_res = baseline_sort(base, keys)
    acc, manager = _acc(p)
    _, acc_res = inic_sort(acc, manager, keys)
    assert "sort-phase1" in base_res.breakdown
    assert "sort-phase1" not in acc_res.breakdown
    assert acc_res.makespan < base_res.makespan


def test_deterministic_repeatability():
    keys = random_keys(2**13)
    results = []
    for _ in range(2):
        cluster = Cluster.build(ClusterSpec(n_nodes=4))
        _, res = baseline_sort(cluster, keys)
        results.append(res.makespan)
    assert results[0] == results[1]
