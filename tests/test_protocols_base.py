"""Unit tests for Mailbox / quantum selection (repro.protocols.base)."""

import pytest

from repro.errors import ProtocolError
from repro.net import MacAddress
from repro.protocols import Mailbox, MessageView, choose_quantum
from repro.sim import Simulator

A, B = MacAddress(0), MacAddress(1)


def test_mailbox_delivers_to_waiting_receiver():
    sim = Simulator()
    box = Mailbox(sim)
    got = []

    def receiver():
        m = yield box.recv()
        got.append(m)

    sim.process(receiver())

    def sender():
        yield sim.timeout(1.0)
        box.deliver(MessageView(src=A, tag=7, nbytes=100))

    sim.process(sender())
    sim.run()
    assert got[0].tag == 7 and got[0].src == A


def test_mailbox_queues_until_recv():
    sim = Simulator()
    box = Mailbox(sim)
    box.deliver(MessageView(src=A, tag=1, nbytes=10))
    assert box.pending() == 1
    got = []

    def receiver():
        m = yield box.recv()
        got.append(m)

    sim.process(receiver())
    sim.run()
    assert got[0].nbytes == 10
    assert box.pending() == 0


def test_mailbox_matches_source_and_tag():
    sim = Simulator()
    box = Mailbox(sim)
    box.deliver(MessageView(src=A, tag=1, nbytes=1))
    box.deliver(MessageView(src=B, tag=2, nbytes=2))
    box.deliver(MessageView(src=A, tag=2, nbytes=3))
    got = []

    def receiver():
        m = yield box.recv(src=A, tag=2)
        got.append(m.nbytes)
        m = yield box.recv(src=B)
        got.append(m.nbytes)
        m = yield box.recv()
        got.append(m.nbytes)

    sim.process(receiver())
    sim.run()
    assert got == [3, 2, 1]


def test_mailbox_wildcard_receives_fifo():
    sim = Simulator()
    box = Mailbox(sim)
    for i in range(3):
        box.deliver(MessageView(src=A, tag=i, nbytes=i))
    got = []

    def receiver():
        for _ in range(3):
            m = yield box.recv()
            got.append(m.tag)

    sim.process(receiver())
    sim.run()
    assert got == [0, 1, 2]


def test_mailbox_multiple_waiters_matched_in_order():
    sim = Simulator()
    box = Mailbox(sim)
    got = []

    def receiver(tag):
        m = yield box.recv(tag=tag)
        got.append((tag, m.nbytes))

    sim.process(receiver(5))
    sim.process(receiver(6))

    def sender():
        yield sim.timeout(1.0)
        box.deliver(MessageView(src=A, tag=6, nbytes=60))
        box.deliver(MessageView(src=A, tag=5, nbytes=50))

    sim.process(sender())
    sim.run()
    assert sorted(got) == [(5, 50), (6, 60)]


def test_choose_quantum_small_transfers_are_per_frame():
    assert choose_quantum(10, target_events=64) == 1
    assert choose_quantum(64, target_events=64) == 1


def test_choose_quantum_scales_and_caps():
    assert choose_quantum(640, target_events=64) == 10
    assert choose_quantum(10**6, target_events=64, max_quantum=32) == 32


def test_choose_quantum_validation():
    with pytest.raises(ProtocolError):
        choose_quantum(-1)
    with pytest.raises(ProtocolError):
        choose_quantum(10, target_events=0)
