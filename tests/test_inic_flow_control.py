"""Tests for the INIC protocol's flow control (credits/windows).

Section 4.1's no-loss invariant: "the total amount of data put into the
network never exceeds the total size of the network buffers", enforced
with "minimal acknowledgement information" (tiny credit frames).
"""

import numpy as np
import pytest

from repro.apps.collective import inic_allreduce
from repro.core import Experiment
from repro.errors import ApplicationError, OffloadError
from repro.inic import SendBlock
from repro.net import MacAddress
from repro.protocols import TransferPlan


def _acc(n):
    session = Experiment().nodes(n).card().build()
    return session.cluster, session.manager


def test_incast_does_not_drop_with_windows():
    """P-1 cards all sending to rank 0 simultaneously must not overrun
    the root's 128 KiB switch port buffer."""
    p = 8
    cluster, manager = _acc(p)
    contribs = [np.full(32768, float(r)) for r in range(p)]
    out, _ = inic_allreduce(cluster, manager, contribs)
    assert cluster.switch.total_dropped() == 0
    assert np.allclose(out, sum(range(p)))


def test_allreduce_matches_numpy_all_ops():
    p = 4
    rng = np.random.default_rng(0)
    contribs = [rng.standard_normal(256) for _ in range(p)]
    for op, fn in (("sum", np.sum), ("max", np.max), ("min", np.min)):
        cluster, manager = _acc(p)
        out, _ = inic_allreduce(cluster, manager, contribs, op=op)
        if op == "sum":
            expected = np.sum(contribs, axis=0)
        elif op == "max":
            expected = np.maximum.reduce(contribs)
        else:
            expected = np.minimum.reduce(contribs)
        assert np.allclose(out, expected), op


def test_allreduce_single_node():
    cluster, manager = _acc(1)
    data = np.arange(64, dtype=np.float64)
    out, _ = inic_allreduce(cluster, manager, [data])
    assert np.array_equal(out, data)


def test_allreduce_validates_contributions():
    cluster, manager = _acc(2)
    with pytest.raises(ApplicationError):
        inic_allreduce(cluster, manager, [np.zeros(4)])
    with pytest.raises(ApplicationError):
        inic_allreduce(cluster, manager, [np.zeros(4), np.zeros(8)])


def test_credits_bound_outstanding_bytes():
    """The sender's per-destination outstanding bytes never exceed the
    window."""
    cluster, manager = _acc(2)
    from repro.core import protocol_processor_design

    manager.configure_all(protocol_processor_design)
    sim = cluster.sim
    card0 = manager.driver(0).card
    window = 16 * 1024
    peak = []

    def sender():
        op = card0.post_scatter(
            1, [SendBlock(MacAddress(1), 512 * 1024)], window_bytes=window
        )
        while not op.sent.processed:
            peak.append(max(card0._outstanding.values() or [0.0]))
            yield sim.timeout(1e-4)

    def receiver():
        plan = TransferPlan(sim, {0: 512 * 1024})
        op = manager.driver(1).card.post_gather(1, plan)
        yield op.done

    sim.process(sender())
    sim.process(receiver())
    sim.run()
    assert max(peak) <= window


def test_stall_guard_fails_loudly_on_lost_data():
    """A gather whose data never arrives fails with OffloadError rather
    than hanging the simulation."""
    cluster, manager = _acc(2)
    from repro.core import protocol_processor_design

    manager.configure_all(protocol_processor_design)
    sim = cluster.sim
    plan = TransferPlan(sim, {0: 10_000})  # nobody will send this
    op = manager.driver(1).card.post_gather(9, plan)

    def waiter():
        yield op.done

    p = sim.process(waiter())
    with pytest.raises(OffloadError, match="stalled"):
        sim.run(until=p, max_events=10_000_000)


def test_point_to_point_rate_not_throttled_by_window():
    """The default window must not cost ideal-INIC streaming rate."""
    from repro.core import protocol_processor_design
    from repro.units import MiB

    cluster, manager = _acc(2)
    manager.configure_all(protocol_processor_design)
    sim = cluster.sim
    nbytes = 8 * MiB
    t = {}

    def sender():
        yield from manager.driver(0).send_message(MacAddress(1), nbytes)

    def receiver():
        t0 = sim.now
        yield from manager.driver(1).recv_message(MacAddress(0), nbytes)
        t["dt"] = sim.now - t0

    sim.process(sender())
    sim.process(receiver())
    sim.run()
    rate = nbytes / t["dt"]
    assert rate > 70 * MiB  # close to the 80 MiB/s host-path bound
