"""Tests for the compute-accelerator application (Section 2, mode 1)."""

import numpy as np
import pytest

from repro.apps.compute import host_map, inic_map
from repro.cluster import Cluster, ClusterSpec
from repro.core import Experiment
from repro.errors import ApplicationError


def _acc(n):
    session = Experiment().nodes(n).card().build()
    return session.cluster, session.manager


def make_items(n_items=8, n=4096, seed=0):
    g = np.random.default_rng(seed)
    return [g.standard_normal(n) for _ in range(n_items)]


KERNEL = lambda d: np.cumsum(d)  # noqa: E731 - a streaming-friendly kernel


def test_host_and_inic_maps_agree():
    items = make_items()
    cluster = Cluster.build(ClusterSpec(n_nodes=4))
    host_out, _ = host_map(cluster, KERNEL, items)
    acc, manager = _acc(4)
    inic_out, _ = inic_map(acc, manager, KERNEL, items)
    for a, b in zip(host_out, inic_out):
        assert np.array_equal(a, b)
        assert np.array_equal(a, None) is False


def test_inic_map_frees_host_cpu():
    items = make_items(n_items=16, n=1 << 15)
    cluster = Cluster.build(ClusterSpec(n_nodes=2))
    _, host_res = host_map(cluster, KERNEL, items, flops_per_byte=16.0)
    host_busy = sum(n.cpu.busy_time for n in cluster.nodes)

    acc, manager = _acc(2)
    _, inic_res = inic_map(acc, manager, KERNEL, items)
    inic_busy = sum(n.cpu.busy_time for n in acc.nodes)
    # The offloaded run leaves the host nearly idle.
    assert inic_busy < 0.1 * host_busy
    # And each item cost one completion interrupt.
    assert manager.total_completion_interrupts() == len(items)


def test_round_robin_covers_all_items():
    items = make_items(n_items=7)
    cluster = Cluster.build(ClusterSpec(n_nodes=3))
    out, _ = host_map(cluster, KERNEL, items)
    assert all(o is not None for o in out)


def test_empty_items_rejected():
    cluster = Cluster.build(ClusterSpec(n_nodes=2))
    with pytest.raises(ApplicationError):
        host_map(cluster, KERNEL, [])
    acc, manager = _acc(2)
    with pytest.raises(ApplicationError):
        inic_map(acc, manager, KERNEL, [])


def test_compute_mode_network_unaffected():
    """Section 2: compute mode keeps 'a separate path to host memory
    ... to allow normal network operations' — card compute runs while
    the fabric is idle and no frames are generated."""
    items = make_items(n_items=4)
    acc, manager = _acc(2)
    inic_map(acc, manager, KERNEL, items)
    assert all(n.require_inic().stats.frames_sent == 0 for n in acc.nodes)
