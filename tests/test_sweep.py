"""Tests for the parallel sweep engine and its content-addressed cache."""

import json
import os

import pytest

from repro.bench.export import export_csv
from repro.bench.figures import fig8b
from repro.bench.harness import Scale
from repro.bench.perf import SCENARIOS, compare, run_suite
from repro.bench.sweep import (
    PointSpec,
    SweepEngine,
    SweepError,
    build_report,
    canonical_json,
    kind_salt,
    perf_points,
    scale_points,
    scheduler_kind,
)

#: a DES scale small enough that a whole fig8b sweep runs in well under
#: a second per point
TINY = Scale(
    name="tiny",
    fft_sizes=(16,),
    fft_procs=(1, 2),
    sort_keys=1 << 10,
    sort_procs=(1, 2, 4),
)


def tiny_spec(seed: int = 2, p: int = 2, name: str = "pt") -> PointSpec:
    return PointSpec(
        "sort-des", name, {"e_init": 1 << 10, "p": p, "card": None, "seed": seed}
    )


# --- spec identity -------------------------------------------------------------------
def test_spec_identity_ignores_name_and_param_order():
    a = PointSpec("sort-des", "a", {"e_init": 64, "p": 2, "card": None, "seed": 1})
    b = PointSpec("sort-des", "b", {"seed": 1, "card": None, "p": 2, "e_init": 64})
    assert a == b
    assert a.spec_hash == b.spec_hash
    assert a.cache_key("s") == b.cache_key("s")


def test_spec_identity_changes_with_any_field():
    base = tiny_spec()
    assert tiny_spec(seed=3).spec_hash != base.spec_hash
    assert tiny_spec(p=4).spec_hash != base.spec_hash


def test_spec_rejects_unknown_kind_and_bad_params():
    with pytest.raises(SweepError):
        PointSpec("no-such-kind", "x", {})
    with pytest.raises(SweepError):
        PointSpec("sort-des", "x", {"fn": object()})


def test_canonical_json_is_sorted_and_compact():
    assert canonical_json({"b": 1, "a": [2, 3]}) == '{"a":[2,3],"b":1}'


def test_kind_salt_differs_between_families():
    assert kind_salt("sort-des") != kind_salt("sort-analytic")
    with pytest.raises(SweepError):
        kind_salt("no-such-kind")


# --- cache hit/miss/invalidation ------------------------------------------------------
def test_cache_hit_on_identical_spec(tmp_path):
    engine = SweepEngine(jobs=1, cache_dir=str(tmp_path))
    r1 = engine.run([tiny_spec()])["pt"]
    assert not r1.cached
    assert engine.last_run.executed == 1 and engine.last_run.hits == 0

    r2 = engine.run([tiny_spec()])["pt"]
    assert r2.cached
    assert engine.last_run.executed == 0 and engine.last_run.hits == 1
    assert engine.last_run.hit_rate == 1.0
    assert r2.value == r1.value

    # the cache file is content-addressed by spec + salt
    key = tiny_spec().cache_key(kind_salt("sort-des"))
    assert (tmp_path / f"{key}.json").exists()


def test_cache_miss_when_spec_field_changes(tmp_path):
    engine = SweepEngine(jobs=1, cache_dir=str(tmp_path))
    engine.run([tiny_spec(seed=2)])
    engine.run([tiny_spec(seed=3)])
    assert engine.last_run.executed == 1  # different seed: recomputed


def test_cache_miss_when_salt_changes(tmp_path):
    v1 = SweepEngine(jobs=1, cache_dir=str(tmp_path), salt_override="model-v1")
    v1.run([tiny_spec()])
    # same spec, same cache dir, same salt: hit
    SweepEngine(jobs=1, cache_dir=str(tmp_path), salt_override="model-v1").run(
        [tiny_spec()]
    )
    v2 = SweepEngine(jobs=1, cache_dir=str(tmp_path), salt_override="model-v2")
    v2.run([tiny_spec()])
    assert v2.last_run.executed == 1  # new model version: recomputed


def test_force_recomputes_and_rewrites(tmp_path):
    engine = SweepEngine(jobs=1, cache_dir=str(tmp_path))
    engine.run([tiny_spec()])
    forced = SweepEngine(jobs=1, cache_dir=str(tmp_path), force=True)
    r = forced.run([tiny_spec()])["pt"]
    assert not r.cached
    assert forced.last_run.executed == 1


def test_corrupt_cache_file_is_a_miss(tmp_path):
    engine = SweepEngine(jobs=1, cache_dir=str(tmp_path))
    engine.run([tiny_spec()])
    key = tiny_spec().cache_key(kind_salt("sort-des"))
    (tmp_path / f"{key}.json").write_text("{not json")
    r = engine.run([tiny_spec()])["pt"]
    assert not r.cached  # recomputed, not crashed


# --- dedup and naming ----------------------------------------------------------------
def test_shared_identity_computed_once_under_both_names(tmp_path):
    engine = SweepEngine(jobs=1, cache_dir=str(tmp_path))
    out = engine.run([tiny_spec(name="first"), tiny_spec(name="alias")])
    assert engine.last_run.executed == 1
    assert out["first"].value == out["alias"].value


def test_duplicate_name_for_distinct_identity_rejected():
    engine = SweepEngine(jobs=1, cache_dir=None)
    with pytest.raises(SweepError):
        engine.run([tiny_spec(seed=2, name="pt"), tiny_spec(seed=3, name="pt")])


# --- repeats -------------------------------------------------------------------------
def test_repeats_record_median_and_keep_output_exact(tmp_path):
    once = SweepEngine(jobs=1, cache_dir=None).run([tiny_spec()])["pt"]
    thrice = SweepEngine(jobs=1, cache_dir=None, repeats=3).run([tiny_spec()])["pt"]
    assert thrice.repeats == 3
    assert thrice.value == once.value  # events and makespan are exact


# --- parallel vs serial determinism ---------------------------------------------------
def test_parallel_sweep_bit_identical_to_serial(tmp_path):
    serial = SweepEngine(jobs=1, cache_dir=str(tmp_path / "serial"))
    parallel = SweepEngine(jobs=2, cache_dir=str(tmp_path / "parallel"))

    exp_serial = fig8b(TINY, engine=serial)
    exp_parallel = fig8b(TINY, engine=parallel)
    assert parallel.last_run.executed == parallel.last_run.unique > 1

    p_ser = export_csv(exp_serial, str(tmp_path / "out_serial"))
    p_par = export_csv(exp_parallel, str(tmp_path / "out_parallel"))
    with open(p_ser, "rb") as a, open(p_par, "rb") as b:
        assert a.read() == b.read()  # byte-identical CSV


def test_parallel_warm_rerun_is_all_hits(tmp_path):
    engine = SweepEngine(jobs=2, cache_dir=str(tmp_path))
    specs = perf_points(TINY)
    first = engine.run(specs)
    second = engine.run(specs)
    assert engine.last_run.executed == 0
    assert engine.last_run.hit_rate == 1.0
    assert {n: r.value for n, r in second.items()} == {
        n: r.value for n, r in first.items()
    }


# --- perf suite through the engine ----------------------------------------------------
def test_perf_report_shape_and_reference_compat():
    doc = run_suite("ci", repeats=1)
    assert doc["scale"] == "ci"
    assert sorted(doc["scenarios"]) == sorted(SCENARIOS)
    for entry in doc["scenarios"].values():
        assert entry["events"] > 0
        assert "makespan" in entry and "wall_seconds" in entry
    assert doc["total_events"] == sum(
        e["events"] for e in doc["scenarios"].values()
    )
    # a run compares clean against itself, and detects regressions
    assert compare(doc, doc, tolerance=0.10) == []
    worse = json.loads(json.dumps(doc))
    worse["scenarios"]["sort-gige-p2"]["events"] *= 2
    assert compare(worse, doc, tolerance=0.10) != []  # grown events: regression
    assert compare(doc, worse, tolerance=0.10) == []  # shrunk events: improvement
    # scenario disappearance is a failure
    del worse["scenarios"]["sort-gige-p4"]
    assert any("missing" in f for f in compare(worse, doc, tolerance=0.10))


def test_perf_report_against_committed_reference():
    """The engine reproduces the committed reference's exact event
    counts and makespans (the fidelity canary)."""
    with open(os.path.join("benchmarks", "perf_reference.json")) as fh:
        reference = json.load(fh)
    doc = run_suite("ci", repeats=1)
    for name, ref in reference["scenarios"].items():
        cur = doc["scenarios"][name]
        assert cur["events"] == ref["events"], name
        assert cur["makespan"] == pytest.approx(ref["makespan"], rel=0, abs=0), name


def test_build_report_counts_cache(tmp_path):
    engine = SweepEngine(jobs=1, cache_dir=str(tmp_path))
    engine.run(perf_points(TINY))
    results = engine.run(perf_points(TINY))
    doc = build_report(results, TINY.name, engine)
    assert doc["cache"]["hits"] == len(results)
    assert doc["cache"]["executed"] == 0
    assert doc["cache"]["hit_rate"] == 1.0
    assert all(e["cached"] for e in doc["scenarios"].values())


# --- scale-out suite -----------------------------------------------------------------
def test_report_records_scheduler_and_throughput(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_SCHEDULER", "heap")
    assert scheduler_kind() == "heap"
    monkeypatch.delenv("REPRO_SIM_SCHEDULER")
    doc = run_suite("ci", repeats=1)
    assert doc["scheduler"] == scheduler_kind()
    for entry in doc["scenarios"].values():
        if entry["wall_seconds"] > 0:
            assert entry["events_per_sec"] > 0


def test_scale_points_enumerate_large_suite():
    points = scale_points(Scale.large())
    names = [p.name for p in points]
    assert len(names) == len(set(names)) == 26
    # The original single-star axis is unchanged: {sort,fft} x {gige,inic}
    # x {32,64,128} on the aggregate fabric, same identities as before.
    aggregate = [p for p in points if p.params["fabric"] == "aggregate"]
    assert len(aggregate) == 12
    for p in aggregate:
        assert p.params["p"] in (32, 64, 128)
    assert "scale-sort-inic-p128" in names
    assert "scale-fft-gige-p32" in names
    # Hierarchical topology points extend the suite to 1024 nodes on the
    # fat-tree; the torus (most event-expensive per frame) stops at 256.
    for p in points:
        if p.params["fabric"] == "torus":
            assert p.params["p"] <= 256
    assert "scale-sort-inic-fattree-p1024" in names
    assert "scale-fft-inic-fattree-p1024" in names
    assert "scale-sort-gige-fattree-p64" in names
    assert "scale-sort-inic-torus-p256" in names
    assert "scale-sort-inic-torus-p1024" not in names


def test_scale_points_max_p_trims_without_changing_identity():
    full = {p.name: p for p in scale_points(Scale.large())}
    trimmed = scale_points(Scale.large(), max_p=32)
    assert [p.name for p in trimmed] == [n for n in full if n.endswith("p32")]
    for p in trimmed:
        # Same identity => the smoke job shares cache entries with the
        # full suite and the reference stays comparable after pruning.
        assert p.identity == full[p.name].identity


def test_scale_points_skip_indivisible_partitions():
    odd = Scale(
        name="odd",
        fft_sizes=(96,),  # divisible by 32, not by 64
        fft_procs=(32, 64),
        sort_keys=(1 << 10) + 1,  # indivisible by every p
        sort_procs=(32, 64),
    )
    points = scale_points(odd)
    assert [p.name for p in points] == [
        "scale-fft-gige-p32", "scale-fft-inic-p32"
    ]


def test_fabric_param_threads_to_cluster_spec():
    from repro.core.api import Experiment

    exp = Experiment().nodes(4).fabric("aggregate")
    assert exp.spec.fabric == "aggregate"
    session = exp.build()
    assert type(session.cluster.switch).__name__ == "AggregateFabric"
    with pytest.raises(ValueError, match="unknown fabric"):
        Experiment().fabric("quantum").spec
