"""Tests for the extended collectives (gather/scatter/reduce) and the
inverse distributed FFTs."""

import numpy as np
import pytest

from repro.apps.fft import baseline_ifft2d, inic_ifft2d
from repro.cluster import (
    Cluster,
    ClusterSpec,
    ParallelApp,
    gather,
    reduce,
    scatter,
)
from repro.core import Experiment
from repro.errors import ApplicationError


def make_app(p):
    cluster = Cluster.build(ClusterSpec(n_nodes=p))
    return cluster, ParallelApp(cluster)


# --- gather -----------------------------------------------------------------------
def test_gather_collects_at_root():
    _, app = make_app(4)

    def program(ctx):
        items = yield from gather(ctx, f"item-{ctx.rank}", 100, root=2)
        return items

    result = app.run(program)
    assert result.rank_results[2] == [f"item-{r}" for r in range(4)]
    for r in (0, 1, 3):
        assert result.rank_results[r] is None


# --- scatter -----------------------------------------------------------------------
def test_scatter_distributes_from_root():
    _, app = make_app(4)
    items = [np.full(8, r) for r in range(4)]

    def program(ctx):
        mine = yield from scatter(
            ctx, items if ctx.rank == 0 else None, items[0].nbytes, root=0
        )
        return int(mine[0])

    result = app.run(program)
    assert result.rank_results == [0, 1, 2, 3]


def test_scatter_validates_item_count():
    _, app = make_app(2)

    def program(ctx):
        yield from scatter(ctx, [1] if ctx.rank == 0 else None, 8, root=0)

    with pytest.raises(ApplicationError):
        app.run(program)


# --- reduce -------------------------------------------------------------------------
def test_reduce_sums_at_root():
    _, app = make_app(4)

    def program(ctx):
        out = yield from reduce(ctx, np.full(16, float(ctx.rank + 1)), root=1)
        return None if out is None else float(out[0])

    result = app.run(program)
    assert result.rank_results[1] == 10.0
    assert result.rank_results[0] is None


def test_reduce_single_rank():
    _, app = make_app(1)

    def program(ctx):
        out = yield from reduce(ctx, np.arange(4.0))
        return out

    result = app.run(program)
    assert np.array_equal(result.rank_results[0], np.arange(4.0))


def test_reduce_custom_op():
    _, app = make_app(3)

    def program(ctx):
        out = yield from reduce(
            ctx, np.full(4, float(ctx.rank)), op=np.maximum, root=0
        )
        return None if out is None else float(out[0])

    result = app.run(program)
    assert result.rank_results[0] == 2.0


# --- inverse FFTs ----------------------------------------------------------------------
def test_baseline_ifft_round_trip():
    g = np.random.default_rng(5)
    m = g.standard_normal((32, 32)) + 1j * g.standard_normal((32, 32))
    cluster = Cluster.build(ClusterSpec(n_nodes=4))
    out, _ = baseline_ifft2d(cluster, m)
    assert np.allclose(out, np.fft.ifft2(m), atol=1e-9)


def test_inic_ifft_round_trip():
    g = np.random.default_rng(6)
    m = g.standard_normal((32, 32)) + 1j * g.standard_normal((32, 32))
    session = Experiment().nodes(2).card().build()
    cluster, manager = session.cluster, session.manager
    out, _ = inic_ifft2d(cluster, manager, m)
    assert np.allclose(out, np.fft.ifft2(m), atol=1e-9)


def test_forward_inverse_identity_through_cluster():
    """fft then ifft through two separate simulated runs == identity."""
    from repro.apps.fft import baseline_fft2d

    g = np.random.default_rng(7)
    m = g.standard_normal((16, 16)) + 1j * g.standard_normal((16, 16))
    c1 = Cluster.build(ClusterSpec(n_nodes=2))
    fwd, _ = baseline_fft2d(c1, m)
    c2 = Cluster.build(ClusterSpec(n_nodes=2))
    back, _ = baseline_ifft2d(c2, fwd)
    assert np.allclose(back, m, atol=1e-8)
