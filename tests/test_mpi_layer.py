"""Tests for the SimMPI layer: library costs, eager/rendezvous split."""

import pytest

from repro.cluster import Cluster, ClusterSpec, Communicator, MPIConfig, ParallelApp
from repro.errors import ApplicationError


def run_pingpong(nbytes, mpi_config=None):
    cluster = Cluster.build(ClusterSpec(n_nodes=2))
    app = ParallelApp(cluster)
    if mpi_config is not None:
        app.comm = Communicator(cluster, mpi_config)

    def program(ctx):
        if ctx.rank == 0:
            yield ctx.send(1, nbytes, tag=1)
            yield ctx.recv(src=1, tag=2)
        else:
            yield ctx.recv(src=0, tag=1)
            yield ctx.send(0, nbytes, tag=2)
        return None

    return app.run(program).makespan


def test_rendezvous_adds_round_trip_above_eager_limit():
    """Crossing the 64 KiB eager limit pays an RTS/CTS handshake: the
    per-byte cost jumps discontinuously at the threshold."""
    below = run_pingpong(63 * 1024)
    above = run_pingpong(66 * 1024)
    # 3 KiB more payload but a whole extra round trip.
    wire_time_delta = 2 * (3 * 1024) / 125e6
    assert above - below > 3 * wire_time_delta


def test_eager_limit_configurable():
    small_eager = MPIConfig(eager_limit=1024)
    t_rdv = run_pingpong(32 * 1024, small_eager)
    t_eager = run_pingpong(32 * 1024)  # default 64 KiB limit: eager
    assert t_rdv > t_eager


def test_send_recv_costs_charged_to_cpu():
    cluster = Cluster.build(ClusterSpec(n_nodes=2))
    app = ParallelApp(cluster)

    def program(ctx):
        if ctx.rank == 0:
            for i in range(10):
                yield ctx.send(1, 1000, tag=i)
        else:
            for i in range(10):
                yield ctx.recv(src=0, tag=i)
        return None

    app.run(program)
    sender_cpu = cluster.nodes[0].cpu
    # 10 sends x 80us MPI send cost, at minimum.
    assert sender_cpu.busy_time >= 10 * 80e-6


def test_mpi_config_validation():
    with pytest.raises(ApplicationError):
        MPIConfig(send_cost=-1)
    with pytest.raises(ApplicationError):
        MPIConfig(eager_limit=0)


def test_bad_destination_rank():
    cluster = Cluster.build(ClusterSpec(n_nodes=2))
    app = ParallelApp(cluster)

    def program(ctx):
        if ctx.rank == 0:
            ctx.send(5, 100)
        return None
        yield

    with pytest.raises(ApplicationError):
        app.run(program)


def test_concurrent_rendezvous_sends_do_not_cross_match():
    """Two large messages in flight between the same pair: tokens keep
    the CTS replies straight."""
    cluster = Cluster.build(ClusterSpec(n_nodes=2))
    app = ParallelApp(cluster)
    nbytes = 128 * 1024

    def program(ctx):
        if ctx.rank == 0:
            e1 = ctx.send(1, nbytes, payload="first", tag=1)
            e2 = ctx.send(1, nbytes, payload="second", tag=2)
            yield e1
            yield e2
            return None
        m1 = yield ctx.recv(src=0, tag=1)
        m2 = yield ctx.recv(src=0, tag=2)
        return (m1.payload, m2.payload)

    result = app.run(program)
    assert result.rank_results[1] == ("first", "second")
