"""Regression tests for the DES kernel's event free-lists.

``Simulator.sleep`` recycles :class:`Timeout` objects and
``Simulator.call_after`` recycles its heap entries.  Recycling must be
invisible: a reused object may not leak the previous occupant's value,
callbacks, or schedule — including when an ``interrupt()`` detaches a
process from a pooled timeout that later fires with no waiters.
"""

from repro.errors import Interrupt
from repro.sim import Simulator


def test_pooled_sleep_values_do_not_leak():
    sim = Simulator()
    log = []

    def sleeper(tag, dt):
        v = yield sim.sleep(dt)
        log.append((sim.now, tag, v))
        v = yield sim.sleep(dt)
        log.append((sim.now, tag, v))

    for i in range(50):
        sim.process(sleeper(i, 1e-3 * (i + 1)))
    sim.run()
    assert len(log) == 100
    # A pooled timeout always yields None — never a stale value.
    assert all(v is None for _, _, v in log)
    # And the wait durations were honoured per reuse.
    for now, tag, _ in log:
        assert now % (1e-3 * (tag + 1)) < 1e-12 or now > 0


def test_timeout_pool_actually_recycles_objects():
    sim = Simulator()
    seen_ids = []

    def proc():
        for _ in range(6):
            t = sim.sleep(0.1)
            seen_ids.append(id(t))
            yield t

    sim.process(proc())
    sim.run()
    # Sequential sleeps reuse pooled objects rather than allocating.
    assert len(set(seen_ids)) < len(seen_ids)
    assert len(sim._timeout_pool) >= 1


def test_interrupted_sleep_does_not_corrupt_pool():
    """The killer case: interrupt() detaches a process from a pooled
    timeout that is still on the heap.  When it later fires (with no
    waiters) it is recycled; the recycled object must not retain the
    old process as a callback or its schedule."""
    sim = Simulator()
    outcome = {}

    def sleeper(name):
        try:
            yield sim.sleep(5.0)
            outcome[name] = ("slept", sim.now)
        except Interrupt:
            # Sleep again after the interrupt: exercises reuse of pool
            # entries while the detached 5.0 timeouts are still pending.
            yield sim.sleep(1.0)
            outcome[name] = ("recovered", sim.now)

    procs = [sim.process(sleeper(i), name=f"s{i}") for i in range(10)]

    def interrupter():
        yield sim.sleep(1.0)
        for p in procs[::2]:
            p.interrupt("stop")

    sim.process(interrupter())
    sim.run()

    for i in range(10):
        if i % 2 == 0:
            assert outcome[i] == ("recovered", 2.0)
        else:
            assert outcome[i] == ("slept", 5.0)
    # The orphaned timeouts fired and were recycled; nothing double-fired
    # (each process reported exactly one outcome) and the clock advanced
    # to the last real event only.
    assert sim.now == 5.0


def test_interleaved_sleep_and_valued_timeouts_stay_isolated():
    sim = Simulator()
    got = []

    def proc():
        v = yield sim.timeout(1.0, value="payload")
        got.append(v)
        v = yield sim.sleep(1.0)
        got.append(v)
        v = yield sim.timeout(1.0, value={"k": 2})
        got.append(v)
        v = yield sim.sleep(1.0)
        got.append(v)

    sim.process(proc())
    sim.run()
    assert got == ["payload", None, {"k": 2}, None]


def test_call_after_fifo_order_and_argument_isolation():
    sim = Simulator()
    order = []
    # Same firing time: insertion order must be preserved.
    sim.call_after(1.0, order.append, "a")
    sim.call_after(1.0, order.append, "b")
    # Recycled callback entries must carry fresh fn/args.
    sim.call_after(2.0, lambda x, y: order.append((x, y)), 1, 2)
    sim.run()
    order2 = []
    sim.call_after(1.0, order2.append, "c")
    sim.run()
    assert order == ["a", "b", (1, 2)]
    assert order2 == ["c"]


def test_pool_is_bounded():
    sim = Simulator()

    def burst():
        yield sim.all_of([sim.timeout(1.0) for _ in range(5)])

    def many_sleeps():
        for _ in range(30):
            yield sim.sleep(0.01)

    sim.process(burst())
    sim.process(many_sleeps())
    sim.run()
    from repro.sim.engine import _POOL_MAX

    assert len(sim._timeout_pool) <= _POOL_MAX
    assert len(sim._callback_pool) <= _POOL_MAX
