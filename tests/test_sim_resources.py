"""Unit tests for Resource/Store/Container (repro.sim.resources)."""

import pytest

from repro.errors import SimulationError
from repro.sim import Container, Resource, Simulator, Store


# --- Resource -----------------------------------------------------------------
def test_resource_mutex_serializes():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    log = []

    def user(tag, hold):
        req = yield from res.acquire()
        log.append((tag, "in", sim.now))
        yield sim.timeout(hold)
        res.release(req)
        log.append((tag, "out", sim.now))

    sim.process(user("a", 2.0))
    sim.process(user("b", 1.0))
    sim.run()
    assert log == [
        ("a", "in", 0.0),
        ("a", "out", 2.0),
        ("b", "in", 2.0),
        ("b", "out", 3.0),
    ]


def test_resource_capacity_two_runs_pair_concurrently():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    finish = []

    def user(tag):
        req = yield from res.acquire()
        yield sim.timeout(1.0)
        res.release(req)
        finish.append((tag, sim.now))

    for tag in "abc":
        sim.process(user(tag))
    sim.run()
    assert finish == [("a", 1.0), ("b", 1.0), ("c", 2.0)]


def test_resource_fifo_ordering():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def user(tag, arrive):
        yield sim.timeout(arrive)
        req = yield from res.acquire()
        order.append(tag)
        yield sim.timeout(10.0)
        res.release(req)

    sim.process(user("first", 0.1))
    sim.process(user("second", 0.2))
    sim.process(user("third", 0.3))
    sim.run()
    assert order == ["first", "second", "third"]


def test_resource_release_unknown_request_rejected():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    other = Resource(sim, capacity=1)
    req = res.request()
    with pytest.raises(SimulationError):
        other.release(req)


def test_resource_cancel_queued_request():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    r1 = res.request()
    r2 = res.request()
    assert r1.triggered and not r2.triggered
    res.release(r2)  # cancel while queued
    assert res.queue_length == 0


def test_resource_invalid_capacity():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_resource_wait_time_stats():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def holder():
        req = yield from res.acquire()
        yield sim.timeout(5.0)
        res.release(req)

    def waiter():
        yield sim.timeout(1.0)
        req = yield from res.acquire()
        res.release(req)

    sim.process(holder())
    sim.process(waiter())
    sim.run()
    assert res.total_requests == 2
    assert res.total_wait_time == pytest.approx(4.0)


# --- Store ---------------------------------------------------------------------
def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer():
        for i in range(3):
            yield store.put(i)
            yield sim.timeout(1.0)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == [0, 1, 2]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((item, sim.now))

    def producer():
        yield sim.timeout(3.0)
        yield store.put("x")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [("x", 3.0)]


def test_bounded_store_put_blocks_when_full():
    sim = Simulator()
    store = Store(sim, capacity=1)
    log = []

    def producer():
        yield store.put("a")
        log.append(("put-a", sim.now))
        yield store.put("b")
        log.append(("put-b", sim.now))

    def consumer():
        yield sim.timeout(2.0)
        item = yield store.get()
        log.append(("got", item, sim.now))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert ("put-a", 0.0) in log
    assert ("got", "a", 2.0) in log
    assert ("put-b", 2.0) in log


def test_store_try_get():
    sim = Simulator()
    store = Store(sim)
    ok, item = store.try_get()
    assert not ok and item is None
    store.put("x")
    sim.run()
    ok, item = store.try_get()
    assert ok and item == "x"


def test_store_stats():
    sim = Simulator()
    store = Store(sim)
    for i in range(5):
        store.put(i)
    sim.run()
    assert store.total_puts == 5
    assert store.max_occupancy == 5


def test_store_invalid_capacity():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Store(sim, capacity=0)


# --- Container --------------------------------------------------------------------
def test_container_get_blocks_until_level():
    sim = Simulator()
    tank = Container(sim, capacity=100.0, init=0.0)
    log = []

    def filler():
        yield sim.timeout(1.0)
        yield tank.put(30.0)
        yield sim.timeout(1.0)
        yield tank.put(30.0)

    def drinker():
        yield tank.get(50.0)
        log.append(sim.now)

    sim.process(filler())
    sim.process(drinker())
    sim.run()
    assert log == [2.0]
    assert tank.level == pytest.approx(10.0)


def test_container_put_blocks_at_capacity():
    sim = Simulator()
    tank = Container(sim, capacity=10.0, init=10.0)
    log = []

    def putter():
        yield tank.put(5.0)
        log.append(("put", sim.now))

    def getter():
        yield sim.timeout(2.0)
        yield tank.get(7.0)
        log.append(("got", sim.now))

    sim.process(putter())
    sim.process(getter())
    sim.run()
    assert log == [("got", 2.0), ("put", 2.0)]


def test_container_no_overtaking():
    sim = Simulator()
    tank = Container(sim, capacity=100.0, init=5.0)
    order = []

    def big():
        yield tank.get(50.0)
        order.append("big")

    def small():
        yield sim.timeout(0.1)
        yield tank.get(1.0)
        order.append("small")

    def filler():
        yield sim.timeout(1.0)
        yield tank.put(60.0)

    sim.process(big())
    sim.process(small())
    sim.process(filler())
    sim.run()
    assert order == ["big", "small"]


def test_container_try_get():
    sim = Simulator()
    tank = Container(sim, capacity=10.0, init=5.0)
    assert tank.try_get(3.0)
    assert not tank.try_get(3.0)
    assert tank.level == pytest.approx(2.0)


def test_container_get_over_capacity_rejected():
    sim = Simulator()
    tank = Container(sim, capacity=10.0)
    with pytest.raises(SimulationError):
        tank.get(11.0)


def test_container_level_extremes_tracked():
    sim = Simulator()
    tank = Container(sim, capacity=10.0, init=5.0)
    tank.put(5.0)
    sim.run()
    tank.get(8.0)
    sim.run()
    assert tank.max_level == pytest.approx(10.0)
    assert tank.min_level == pytest.approx(2.0)
