"""Tests for the sampling/splitter extension (skewed-key balance)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.sort import (
    baseline_sort,
    choose_splitters,
    gaussian_keys,
    imbalance,
    is_sorted,
    sample_local,
    split_by_splitters,
    uniform_keys,
)
from repro.cluster import Cluster, ClusterSpec
from repro.errors import ApplicationError

rng = np.random.default_rng(21)


def test_sample_local_size_and_membership():
    keys = uniform_keys(10_000, rng)
    s = sample_local(keys, oversample=8, p=4, rng=rng)
    assert s.shape[0] == 32
    assert np.isin(s, keys).all()


def test_sample_local_small_partition():
    keys = uniform_keys(5, rng)
    s = sample_local(keys, oversample=8, p=4, rng=rng)
    assert s.shape[0] == 5  # capped at partition size


def test_choose_splitters_count_and_order():
    samples = uniform_keys(1000, rng)
    sp = choose_splitters(samples, 8)
    assert sp.shape[0] == 7
    assert is_sorted(sp)


def test_choose_splitters_p1_empty():
    assert choose_splitters(uniform_keys(100, rng), 1).size == 0


def test_choose_splitters_needs_enough_samples():
    with pytest.raises(ApplicationError):
        choose_splitters(np.array([1, 2], dtype=np.uint32), 8)


def test_split_by_splitters_partition_properties():
    keys = uniform_keys(10_000, rng)
    sp = choose_splitters(keys, 8)
    buckets = split_by_splitters(keys, sp)
    assert len(buckets) == 8
    cat = np.concatenate(buckets)
    assert np.array_equal(np.sort(cat), np.sort(keys))
    # Range ordering: every key in bucket b <= every key in bucket b+1.
    for b in range(7):
        if buckets[b].size and buckets[b + 1].size:
            assert buckets[b].max() <= buckets[b + 1].min()


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=16).filter(lambda p: p & (p - 1) == 0))
def test_sampling_balances_gaussian_keys(p):
    g = np.random.default_rng(p)
    keys = gaussian_keys(20_000, g)
    sp = choose_splitters(keys, p)  # oracle: sample = everything
    buckets = split_by_splitters(keys, sp)
    assert imbalance([b.shape[0] for b in buckets]) < 1.2


def test_top_bits_badly_imbalanced_on_gaussian():
    from repro.apps.sort import phase1_destination_buckets

    keys = gaussian_keys(50_000, rng)
    buckets = phase1_destination_buckets(keys, 8)
    assert imbalance([b.shape[0] for b in buckets]) > 1.5


def test_full_sampled_sort_correct_and_balanced():
    keys = gaussian_keys(2**14, rng)
    p = 4
    cluster = Cluster.build(ClusterSpec(n_nodes=p))
    parts, res = baseline_sort(cluster, keys, balance_sampling=True)
    out = np.concatenate(parts)
    assert is_sorted(out)
    assert np.array_equal(np.sort(keys), out)
    assert imbalance([x.shape[0] for x in parts]) < 1.3
    assert "sort-sampling" in res.breakdown  # the pre-sort phase ran


def test_sampled_sort_on_uniform_keys_still_correct():
    keys = uniform_keys(2**13, rng)
    cluster = Cluster.build(ClusterSpec(n_nodes=4))
    parts, _ = baseline_sort(cluster, keys, balance_sampling=True)
    out = np.concatenate(parts)
    assert np.array_equal(np.sort(keys), out)


def test_imbalance_metric():
    assert imbalance([10, 10, 10]) == pytest.approx(1.0)
    assert imbalance([30, 0, 0]) == pytest.approx(3.0)
    with pytest.raises(ApplicationError):
        imbalance([])
