"""Integration tests for the INIC card datapath."""

import numpy as np
import pytest

from repro.errors import FPGAResourceError, OffloadError
from repro.hw import CPU, CacheLevel, MemoryHierarchy
from repro.inic import (
    ACEII_PROTOTYPE,
    Design,
    IDEAL_INIC,
    INICCard,
    SendBlock,
)
from repro.inic.cores import (
    BucketSortCore,
    DepacketizerCore,
    FIFOCore,
    LocalTransposeCore,
    PacketizerCore,
    ReduceCore,
)
from repro.net import GIGABIT_ETHERNET, MacAddress, build_star
from repro.protocols import TransferPlan
from repro.sim import Simulator
from repro.units import MiB


def make_cpu(sim):
    mh = MemoryHierarchy([CacheLevel("DRAM", float("inf"), 0.6e9, 0.12e9)])
    return CPU(sim, mh)


def make_cards(n=2, spec=IDEAL_INIC):
    sim = Simulator()
    cards, cpus = [], []
    for i in range(n):
        cpu = make_cpu(sim)
        card = INICCard(sim, MacAddress(i), spec=spec, cpu=cpu, name=f"inic{i}")
        cards.append(card)
        cpus.append(cpu)
    build_star(
        sim, [(MacAddress(i), cards[i]) for i in range(n)], tech=GIGABIT_ETHERNET
    )
    return sim, cards, cpus


def basic_design():
    return Design(
        "basic",
        [PacketizerCore(), DepacketizerCore(), FIFOCore()],
        mode="combined",
    )


def test_scatter_gather_round_trip_with_payload():
    sim, cards, _ = make_cards()
    payload = np.arange(1000, dtype=np.float64)
    results = {}

    def node0():
        yield from cards[0].configure(basic_design())
        op = cards[0].post_scatter(
            7, [SendBlock(dst=MacAddress(1), nbytes=payload.nbytes, data=payload)]
        )
        yield op.sent

    def node1():
        yield from cards[1].configure(basic_design())
        plan = TransferPlan(sim, {0: payload.nbytes})
        op = cards[1].post_gather(7, plan)
        results["out"] = yield op.done

    sim.process(node0())
    sim.process(node1())
    sim.run()
    got = results["out"][0][0]
    assert np.array_equal(got, payload)


def test_single_completion_interrupt_per_gather():
    """Section 4.1: 'a single interrupt per transpose'."""
    sim, cards, cpus = make_cards()
    payload = np.zeros(512 * 1024, dtype=np.uint8)  # 512 KiB, many packets

    def node0():
        yield from cards[0].configure(basic_design())
        cards[0].post_scatter(
            1, [SendBlock(MacAddress(1), payload.nbytes, payload)]
        )
        return None
        yield

    def node1():
        yield from cards[1].configure(basic_design())
        plan = TransferPlan(sim, {0: payload.nbytes})
        op = cards[1].post_gather(1, plan)
        yield op.done

    sim.process(node0())
    sim.process(node1())
    sim.run()
    assert cards[1].stats.completion_interrupts == 1
    assert cards[1].stats.frames_received == -(-payload.nbytes // 1024)
    # Host CPU paid only the one completion cost, not per-packet costs.
    assert cpus[1].interrupt_time == pytest.approx(
        cards[1].spec.completion_irq_cost
    )


def test_transfer_rate_matches_eq_rates_ideal():
    """A large one-way transfer should stream at ~min(80,90) MiB/s + fill."""
    sim, cards, _ = make_cards(spec=IDEAL_INIC)
    nbytes = 8 * MiB
    t = {}

    def node0():
        yield from cards[0].configure(basic_design())
        t0 = sim.now
        cards[0].post_scatter(1, [SendBlock(MacAddress(1), nbytes)])
        plan_done = cards[1].post_gather(1, TransferPlan(sim, {0: nbytes}))
        yield plan_done.done
        t["dt"] = sim.now - t0

    def node1():
        yield from cards[1].configure(basic_design())
        return None
        yield

    sim.process(node1())
    sim.process(node0())
    sim.run()
    rate = nbytes / t["dt"]
    # Host path (80 MiB/s) is the slowest pipeline stage.
    assert rate == pytest.approx(80 * MiB, rel=0.15)


def test_prototype_shared_bus_halves_throughput():
    t = {}
    for label, spec in (("ideal", IDEAL_INIC), ("proto", ACEII_PROTOTYPE)):
        sim, cards, _ = make_cards(spec=spec)
        nbytes = 4 * MiB

        def node0():
            yield from cards[0].configure(basic_design())
            t0 = sim.now
            cards[0].post_scatter(1, [SendBlock(MacAddress(1), nbytes)])
            op = cards[1].post_gather(1, TransferPlan(sim, {0: nbytes}))
            yield op.done
            t[label] = sim.now - t0

        def node1():
            yield from cards[1].configure(basic_design())
            return None
            yield

        sim.process(node1())
        sim.process(node0())
        sim.run()
    # Prototype pays two bus crossings per byte per card:
    # ~112/2 = 56 MB/s vs the ideal's 80 MiB/s bottleneck stage.
    assert t["proto"] > 1.4 * t["ideal"]


def test_self_addressed_block_bypasses_network():
    sim, cards, _ = make_cards()
    payload = np.arange(100, dtype=np.int32)
    results = {}

    def node0():
        yield from cards[0].configure(basic_design())
        plan = TransferPlan(sim, {0: payload.nbytes})
        gop = cards[0].post_gather(3, plan)
        cards[0].post_scatter(
            3, [SendBlock(MacAddress(0), payload.nbytes, payload)]
        )
        results["out"] = yield gop.done

    sim.process(node0())
    sim.run()
    assert np.array_equal(results["out"][0][0], payload)
    assert cards[0].stats.frames_sent == 0  # never touched the wire


def test_gather_posted_after_frames_arrive():
    """Early frames are buffered until the gather descriptor lands."""
    sim, cards, _ = make_cards()
    payload = np.ones(2048, dtype=np.uint8)
    results = {}

    def node0():
        yield from cards[0].configure(basic_design())
        cards[0].post_scatter(9, [SendBlock(MacAddress(1), 2048, payload)])
        return None
        yield

    def node1():
        yield from cards[1].configure(basic_design())
        yield sim.timeout(0.1)  # frames arrive long before this
        op = cards[1].post_gather(9, TransferPlan(sim, {0: 2048}))
        results["out"] = yield op.done

    sim.process(node0())
    sim.process(node1())
    sim.run()
    assert np.array_equal(results["out"][0][0], payload)


def test_reduce_gather_accumulates_in_datapath():
    sim, cards, _ = make_cards(n=3)
    contrib = np.arange(64, dtype=np.float64)
    results = {}

    def root():
        yield from cards[0].configure(
            Design("reduce", [PacketizerCore(), DepacketizerCore(), ReduceCore("sum")])
        )
        plan = TransferPlan(sim, {1: contrib.nbytes, 2: contrib.nbytes})
        op = cards[0].post_gather(5, plan, reduce_core=cards[0].require_core("reduce-sum"))
        results["sum"] = yield op.done

    def leaf(i):
        yield from cards[i].configure(basic_design())
        cards[i].post_scatter(
            5, [SendBlock(MacAddress(0), contrib.nbytes, contrib * i)]
        )
        return None
        yield

    sim.process(root())
    sim.process(leaf(1))
    sim.process(leaf(2))
    sim.run()
    assert np.array_equal(results["sum"], contrib * 3)


def test_design_too_big_for_prototype_rejected():
    sim, cards, _ = make_cards(spec=ACEII_PROTOTYPE)
    big = Design("too-big", [BucketSortCore(64)])

    def proc():
        yield from cards[0].configure(big)

    p = sim.process(proc())
    with pytest.raises(FPGAResourceError):
        sim.run(until=p)


def test_scatter_validation():
    sim, cards, _ = make_cards()
    with pytest.raises(OffloadError):
        cards[0].post_scatter(1, [])
    with pytest.raises(OffloadError):
        SendBlock(MacAddress(1), 0)


def test_compute_mode_runs_kernel():
    sim, cards, cpus = make_cards(n=1)
    data = np.arange(1024, dtype=np.float64)
    results = {}

    def proc():
        yield from cards[0].configure(Design("calc", [FIFOCore()], mode="compute"))
        ev = cards[0].compute(
            data, lambda d: d * 2, in_bytes=data.nbytes, out_bytes=data.nbytes
        )
        results["out"] = yield ev

    sim.process(proc())
    sim.run()
    assert np.array_equal(results["out"], data * 2)
    assert cards[0].stats.completion_interrupts == 1
