"""Unit tests for the switch and the star-fabric builder."""

import pytest

from repro.errors import NetworkError, SwitchError
from repro.net import (
    BROADCAST,
    FAST_ETHERNET,
    Frame,
    GIGABIT_ETHERNET,
    MacAddress,
    Switch,
    Wire,
    build_star,
)
from repro.sim import Simulator


class Station:
    """Minimal FrameDevice for fabric tests."""

    def __init__(self, sim):
        self.sim = sim
        self.wire = None
        self.got = []

    def attach_wire(self, wire):
        self.wire = wire

    def receive_frame(self, frame):
        self.got.append((frame, self.sim.now))

    def send(self, frame):
        self.wire.send(frame)


def make_fabric(sim, n=3, tech=GIGABIT_ETHERNET):
    stations = [Station(sim) for _ in range(n)]
    addrs = [MacAddress(i) for i in range(n)]
    switch = build_star(sim, list(zip(addrs, stations)), tech=tech)
    return stations, addrs, switch


def test_unicast_reaches_only_destination():
    sim = Simulator()
    stations, addrs, _ = make_fabric(sim)
    stations[0].send(Frame(addrs[0], addrs[2], payload_bytes=1000))
    sim.run()
    assert len(stations[2].got) == 1
    assert stations[1].got == []
    assert stations[0].got == []


def test_store_and_forward_latency():
    sim = Simulator()
    stations, addrs, _ = make_fabric(sim)
    f = Frame(addrs[0], addrs[1], payload_bytes=1500, headers=40)
    stations[0].send(f)
    sim.run()
    t = stations[1].got[0][1]
    bw = GIGABIT_ETHERNET.bandwidth
    expected = (
        f.wire_size / bw  # uplink serialization
        + GIGABIT_ETHERNET.propagation_delay
        + GIGABIT_ETHERNET.switch_latency
        + f.wire_size / bw  # downlink serialization
        + GIGABIT_ETHERNET.propagation_delay
    )
    assert t == pytest.approx(expected, rel=1e-9)


def test_broadcast_fans_out_to_all_but_sender():
    sim = Simulator()
    stations, addrs, _ = make_fabric(sim, n=4)
    stations[1].send(Frame(addrs[1], BROADCAST, payload_bytes=100))
    sim.run()
    assert len(stations[0].got) == 1
    assert len(stations[2].got) == 1
    assert len(stations[3].got) == 1
    assert stations[1].got == []


def test_two_senders_one_destination_serialize_on_output_port():
    sim = Simulator()
    stations, addrs, _ = make_fabric(sim)
    f1 = Frame(addrs[0], addrs[2], payload_bytes=1462, headers=0)  # 1500 wire
    f2 = Frame(addrs[1], addrs[2], payload_bytes=1462, headers=0)
    stations[0].send(f1)
    stations[1].send(f2)
    sim.run()
    t1, t2 = (t for _, t in stations[2].got)
    # Second frame waits for the first to finish the shared downlink.
    assert t2 - t1 == pytest.approx(1500 / GIGABIT_ETHERNET.bandwidth, rel=1e-6)


def test_switch_drops_when_output_buffer_full():
    sim = Simulator()
    switch = Switch(sim, n_ports=2, buffer_bytes_per_port=3000, forwarding_latency=0.0)
    a, b = MacAddress(0), MacAddress(1)
    dst = Station(sim)
    down = Wire(sim, bandwidth=1000.0)  # slow drain: 1.5s/frame
    down.attach(dst)
    switch.attach_output(1, down)
    switch.learn(b, 1)
    for _ in range(5):
        switch._ingress(Frame(a, b, payload_bytes=1462, headers=0), in_port=0)
    sim.run()
    stats = switch.port_stats(1)
    assert stats.frames_dropped == 3
    assert stats.frames_forwarded == 2
    assert len(dst.got) == 2


def test_switch_drop_accounting_with_frame_trains():
    """A dropped train counts every physical frame and its wire bytes in
    ``total_dropped`` / ``total_dropped_bytes``."""
    sim = Simulator()
    switch = Switch(sim, n_ports=2, buffer_bytes_per_port=5000, forwarding_latency=0.0)
    a, b = MacAddress(0), MacAddress(1)
    dst = Station(sim)
    down = Wire(sim, bandwidth=1000.0)  # slow drain
    down.attach(dst)
    switch.attach_output(1, down)
    switch.learn(b, 1)
    trains = [
        Frame(a, b, payload_bytes=4386, headers=0, frame_count=3)  # 4500 wire
        for _ in range(4)
    ]
    for f in trains:
        switch._ingress(f, in_port=0)
    sim.run(until=1.0)
    # The 5000-byte budget holds one 4500-byte train; three drop whole.
    assert switch.total_dropped() == 3 * 3
    assert switch.total_dropped_bytes() == pytest.approx(3 * trains[0].wire_size)
    stats = switch.port_stats(1)
    assert stats.frames_dropped == 9
    assert stats.bytes_dropped == pytest.approx(3 * trains[0].wire_size)


def test_no_drops_within_buffer_budget():
    """Section 4.1: no loss while in-flight data fits the buffers."""
    sim = Simulator()
    stations, addrs, switch = make_fabric(sim, n=4)
    # 3 senders put ~114 KiB total at station 3; the GigE per-port buffer
    # is 128 KiB, so nothing may drop.
    for s in range(3):
        for k in range(25):
            stations[s].send(Frame(addrs[s], addrs[3], payload_bytes=1500))
    sim.run()
    assert switch.total_dropped() == 0
    assert len(stations[3].got) == 3 * 25


def test_fast_ethernet_is_ten_times_slower():
    sim = Simulator()
    stations, addrs, _ = make_fabric(sim, tech=FAST_ETHERNET)
    f = Frame(addrs[0], addrs[1], payload_bytes=1500)
    stations[0].send(f)
    sim.run()
    t_fe = stations[1].got[0][1]

    sim2 = Simulator()
    stations2, addrs2, _ = make_fabric(sim2, tech=GIGABIT_ETHERNET)
    stations2[0].send(Frame(addrs2[0], addrs2[1], payload_bytes=1500))
    sim2.run()
    t_ge = stations2[1].got[0][1]
    assert t_fe > 5 * t_ge


def test_unknown_destination_raises():
    sim = Simulator()
    switch = Switch(sim, n_ports=1, forwarding_latency=0.0)
    with pytest.raises(SwitchError):
        switch._ingress(Frame(MacAddress(0), MacAddress(9), payload_bytes=10), 0)


def test_duplicate_addresses_rejected():
    sim = Simulator()
    s1, s2 = Station(sim), Station(sim)
    with pytest.raises(NetworkError):
        build_star(sim, [(MacAddress(0), s1), (MacAddress(0), s2)])


def test_empty_fabric_rejected():
    sim = Simulator()
    with pytest.raises(NetworkError):
        build_star(sim, [])


def test_switch_invalid_config():
    sim = Simulator()
    with pytest.raises(SwitchError):
        Switch(sim, n_ports=0)
    with pytest.raises(SwitchError):
        Switch(sim, n_ports=2, buffer_bytes_per_port=0)
    sw = Switch(sim, n_ports=2)
    with pytest.raises(SwitchError):
        sw.learn(MacAddress(0), 5)
