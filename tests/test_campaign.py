"""Chaos-campaign harness tests (:mod:`repro.faults.campaign`).

The campaign's whole value is that a randomized failure schedule is
*pure data*: realized once from a named seed stream, validated like any
hand-written :class:`ComponentFaultSpec`, and bit-identical however the
sweep that runs it is parallelized.  These tests pin that, plus the
invariant checker the ``--suite chaos`` gate is built on.
"""

import math

import pytest

from repro.errors import FaultConfigError
from repro.faults import ComponentFaultSpec, FaultSpec
from repro.faults.campaign import (
    CampaignSpec,
    campaign_fault_spec,
    check_invariants,
    fabric_components,
    realize,
)


def _components(n=8):
    return [(f"spine{s}", "switch") for s in range(n)]


# -- CampaignSpec validation -------------------------------------------------


def test_campaign_spec_validates_fields_loudly():
    with pytest.raises(FaultConfigError, match="horizon must be > 0"):
        CampaignSpec(horizon=0.0)
    with pytest.raises(FaultConfigError, match="failure_rate must be > 0"):
        CampaignSpec(failure_rate=-1.0)
    with pytest.raises(FaultConfigError, match="positive integer"):
        CampaignSpec(max_failures=0)
    with pytest.raises(FaultConfigError, match="positive integer"):
        CampaignSpec(max_concurrent=1.5)
    with pytest.raises(FaultConfigError, match="detection_delay"):
        CampaignSpec(detection_delay=-1e-6)


def test_campaign_spec_json_roundtrip_rejects_unknown_fields():
    spec = CampaignSpec(seed=7, horizon=5e-3, max_failures=2)
    assert CampaignSpec.from_json(spec.to_json()) == spec
    with pytest.raises(FaultConfigError, match="unknown config fields"):
        CampaignSpec.from_json({"seed": 1, "blast_radius": 3})


# -- realize: determinism and budgets ----------------------------------------


def test_realized_schedule_is_deterministic():
    spec = CampaignSpec(seed=11, horizon=8e-3, failure_rate=600.0)
    assert realize(spec, _components()) == realize(spec, _components())
    other = CampaignSpec(seed=12, horizon=8e-3, failure_rate=600.0)
    assert realize(spec, _components()) != realize(other, _components())


def test_realized_schedule_validates_as_component_specs():
    spec = CampaignSpec(seed=3, horizon=0.02, failure_rate=900.0, max_failures=8)
    for comp in realize(spec, _components()):
        assert isinstance(comp, ComponentFaultSpec)
        # Re-validating from JSON must succeed: sorted, non-overlapping.
        assert ComponentFaultSpec.from_params(comp.to_json()) == comp


def test_realize_respects_failure_and_concurrency_budgets():
    spec = CampaignSpec(
        seed=5, horizon=1.0, failure_rate=500.0, mttr=0.5,
        max_failures=6, max_concurrent=1,
    )
    realized = realize(spec, _components())
    windows = sorted(
        (start, start + dur) for c in realized for start, dur in c.windows
    )
    assert 1 <= len(windows) <= 6
    for (_, end), (start, _) in zip(windows, windows[1:]):
        assert start >= end, "max_concurrent=1 must serialize outages"


def test_loosening_budget_shares_the_arrival_process():
    """Skipped arrivals consume their draws, so both budgets realize
    from the *same* candidate-failure sequence: every window the tight
    run admitted either survives verbatim in the loose run, or collided
    with an extra window the loose budget admitted on that component —
    admission changes, the underlying arrivals never do."""
    base = CampaignSpec(
        seed=5, horizon=1.0, failure_rate=60.0, mttr=0.1,
        max_failures=200, max_concurrent=1,
    )
    loose = CampaignSpec(**{**base.to_json(), "max_concurrent": 4})
    tight_windows = {
        (c.component, w) for c in realize(base, _components()) for w in c.windows
    }
    loose_by_comp: dict[str, list[tuple[float, float]]] = {}
    for c in realize(loose, _components()):
        loose_by_comp.setdefault(c.component, []).extend(c.windows)
    assert len(tight_windows) >= 1
    for comp, (start, dur) in tight_windows:
        mine = loose_by_comp.get(comp, [])
        assert (start, dur) in mine or any(
            start < s + d and s < start + dur for s, d in mine
        ), f"{comp} window {(start, dur)} vanished without a collision"


def test_realize_rejects_empty_component_list():
    with pytest.raises(FaultConfigError, match="zero failable components"):
        realize(CampaignSpec(), [])


def test_campaign_fault_spec_carries_schedule_and_extras():
    spec = campaign_fault_spec(
        CampaignSpec(seed=11, detection_delay=1e-4),
        _components(),
        loss_rate=0.01,
    )
    assert isinstance(spec, FaultSpec)
    assert spec.components
    assert spec.detection_delay == 1e-4
    assert spec.loss_rate == 0.01
    # The whole thing still round-trips as sweep params.
    assert FaultSpec.from_params(spec.to_params()) == spec


# -- fabric_components -------------------------------------------------------


def test_fabric_components_match_topology_names():
    assert ("spine0", "switch") in fabric_components("fattree", 64)
    assert ("router0", "switch") in fabric_components("torus", 8)
    assert fabric_components("aggregate", 4) == [
        (f"up{p}", "uplink") for p in range(4)
    ]
    torus = fabric_components("torus", 64, {"dims": [4, 4, 5]})
    assert ("router79", "switch") in torus  # spare-plane routers failable
    with pytest.raises(FaultConfigError, match="no failable components"):
        fabric_components("wire", 4)


# -- check_invariants --------------------------------------------------------


def _entry(**over):
    entry = {
        "makespan": 1e-3,
        "aborted": False,
        "fallbacks": 0,
        "faults": {
            "transfer_aborts": 0,
            "components": {"reroutes": 4, "failover_drops": 1},
            "conservation": {
                "frames_in": 10,
                "frames_delivered": 9,
                "frames_dropped": 1,
                "partition_drops": 0,
            },
        },
    }
    entry.update(over)
    return entry


def test_check_invariants_passes_a_sound_entry():
    assert check_invariants("ok", _entry()) == []


def test_check_invariants_flags_nonfinite_makespan():
    assert any(
        "not finite" in v
        for v in check_invariants("bad", _entry(makespan=math.inf))
    )
    assert any(
        "not finite" in v for v in check_invariants("bad", _entry(makespan=None))
    )


def test_check_invariants_flags_unbalanced_ledger():
    entry = _entry()
    entry["faults"]["conservation"]["frames_delivered"] = 7
    violations = check_invariants("bad", entry)
    assert any("conservation ledger off by 2" in v for v in violations)


def test_check_invariants_flags_negative_and_hidden_counters():
    entry = _entry()
    entry["faults"]["components"]["reroutes"] = -1
    assert any(
        "components.reroutes is negative" in v
        for v in check_invariants("bad", entry)
    )
    entry = _entry()
    entry["faults"]["transfer_aborts"] = 2
    assert any(
        "not surfaced" in v for v in check_invariants("bad", entry)
    )
    # ... but an abort surfaced as an aborted outcome is fine.
    entry["aborted"] = True
    assert check_invariants("ok", entry) == []
