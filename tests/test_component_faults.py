"""Component-failure and adaptive-reroute tests.

Pins the tentpole contracts of the switch/uplink failure model:

* **Fat-tree failover** — flows hashed to a dead spine are blackholed
  during the detection window (charged, counted), then rehash
  deterministically over the surviving spines; repair restores the
  exact zero-failure routes.
* **Torus detour** — routes crossing a failed router walk the
  fault-tolerant next-hop table; destinations on a dead router are
  partition-dropped at routing time, never silently lost.
* **Uplink windows** — a dead uplink drops everything its station
  offers, on both the aggregate star and the hierarchical fabrics.
* **Workload-relative schedules** — component windows arm at the
  fabric's first frame, so setup phases (INIC configuration) never
  consume the outage schedule.
* **Conservation** — every fabric's frame ledger balances through
  failures: in == delivered + dropped + partition-dropped.
"""

import pytest

from repro.cluster.builder import Cluster, ClusterSpec
from repro.errors import NetworkError
from repro.faults import ComponentFaultSpec, FaultPlan, FaultSpec
from repro.net import Frame, MacAddress
from repro.net.fabric import build_aggregate_star
from repro.net.topology import build_fattree, build_torus
from repro.sim import Simulator


class Station:
    """Minimal FrameDevice for fabric tests."""

    def __init__(self, sim):
        self.sim = sim
        self.wire = None
        self.got = []

    def attach_wire(self, wire):
        self.wire = wire

    def receive_frame(self, frame):
        self.got.append((frame, self.sim.now))

    def send(self, frame):
        self.wire.send(frame)


def make_fabric(builder, n=16, components=(), detection_delay=0.0, **opts):
    sim = Simulator()
    stations = [Station(sim) for _ in range(n)]
    addrs = [MacAddress(i) for i in range(n)]
    fabric = builder(sim, list(zip(addrs, stations)), **opts)
    if components:
        plan = FaultPlan(
            FaultSpec(
                components=components, detection_delay=detection_delay
            )
        )
        fabric.install_component_faults(plan)
    return sim, stations, addrs, fabric


def frame(addrs, src, dst, payload=1500, count=1):
    return Frame(
        addrs[src], addrs[dst], payload_bytes=payload, frame_count=count
    )


def ledger_balances(fabric) -> bool:
    c = fabric.conservation_counters()
    queued = c.get("frames_queued", 0)
    return c["frames_in"] == (
        c["frames_delivered"]
        + c["frames_dropped"]
        + c["partition_drops"]
        + queued
    )


# -- fat-tree failover -------------------------------------------------------


def test_fattree_failover_rehashes_dead_spine_flows():
    # n=16: 4 leaves x 4 ports, 4 spines; dst=5 hashes to spine 1.
    sim, stations, addrs, fabric = make_fabric(
        build_fattree,
        components=(ComponentFaultSpec("spine1", windows=((0.0, 1.0),)),),
    )
    stations[0].send(frame(addrs, 0, 5))
    sim.run(until=0.5)
    assert len(stations[5].got) == 1  # rehashed, not dropped
    counters = fabric.component_counters()
    assert counters["reroutes"] == 1
    assert counters["failover_drops"] == 0
    assert ledger_balances(fabric)


def test_fattree_detection_window_drops_then_fails_over():
    sim, stations, addrs, fabric = make_fabric(
        build_fattree,
        components=(ComponentFaultSpec("spine1", windows=((0.0, 4e-3),)),),
        detection_delay=1e-3,
    )
    # Inside the detection window: routing still points at spine1, the
    # frame is blackholed at the dead clock and charged there.
    stations[0].send(frame(addrs, 0, 5))
    sim.run(until=2e-3)
    assert stations[5].got == []
    counters = fabric.component_counters()
    assert counters["failover_drops"] == 1
    assert fabric.total_dropped() == 1  # lands in a clock's PortStats
    # After detection: the same flow rehashes to a surviving spine.
    stations[0].send(frame(addrs, 0, 5))
    sim.run(until=3e-3)
    assert len(stations[5].got) == 1
    assert fabric.component_counters()["reroutes"] == 1
    assert ledger_balances(fabric)


def test_fattree_repair_restores_default_routes():
    sim, stations, addrs, fabric = make_fabric(
        build_fattree,
        components=(ComponentFaultSpec("spine1", windows=((0.0, 1e-3),)),),
    )
    stations[0].send(frame(addrs, 0, 5))  # during outage: rerouted
    sim.run(until=5e-3)  # past repair
    stations[0].send(frame(addrs, 0, 5))  # after repair: default path
    sim.run()
    assert len(stations[5].got) == 2
    assert fabric.component_counters()["reroutes"] == 1  # second frame not
    assert fabric.component_counters()["transitions"] == 2
    key = fabric._key_base[0] + 5
    assert fabric._routes[key] == fabric.topology.route(0, 5)
    assert ledger_balances(fabric)


def test_fattree_all_spines_dead_partitions_interleaf_traffic():
    comps = tuple(
        ComponentFaultSpec(f"spine{s}", windows=((0.0, 1.0),))
        for s in range(4)
    )
    sim, stations, addrs, fabric = make_fabric(
        build_fattree, components=comps
    )
    stations[0].send(frame(addrs, 0, 5))   # cross-leaf: unreachable
    stations[0].send(frame(addrs, 0, 1))   # same leaf: unaffected
    sim.run(until=0.5)
    assert stations[5].got == []
    assert len(stations[1].got) == 1
    counters = fabric.component_counters()
    assert counters["partition_drops"] == 1
    assert ledger_balances(fabric)


def test_failover_drop_accounting_weights_frame_trains():
    """A coalesced train dropped at a dead clock counts every frame it
    carries — batched and un-batched runs agree on drop totals."""
    sim, stations, addrs, fabric = make_fabric(
        build_fattree,
        components=(ComponentFaultSpec("spine1", windows=((0.0, 4e-3),)),),
        detection_delay=2e-3,
    )
    stations[0].send(frame(addrs, 0, 5, count=3))
    sim.run(until=1e-3)
    assert fabric.component_counters()["failover_drops"] == 3
    assert fabric.total_dropped() == 3
    assert ledger_balances(fabric)


# -- torus detour / partition ------------------------------------------------


def test_torus_detours_around_failed_router():
    # n=8 -> 2x2x2; station0 -> station3 routes x-then-y through router1.
    sim, stations, addrs, fabric = make_fabric(
        build_torus,
        n=8,
        components=(ComponentFaultSpec("router1", windows=((0.0, 1.0),)),),
    )
    assert any(
        h // 7 == 1 for h in fabric.topology.route(0, 3)
    ), "precondition: default route crosses router1"
    stations[0].send(frame(addrs, 0, 3))
    sim.run(until=0.5)
    assert len(stations[3].got) == 1
    counters = fabric.component_counters()
    assert counters["reroutes"] == 1
    assert counters["partition_drops"] == 0
    assert ledger_balances(fabric)


def test_torus_partition_drops_traffic_to_dead_router():
    sim, stations, addrs, fabric = make_fabric(
        build_torus,
        n=8,
        components=(ComponentFaultSpec("router1", windows=((0.0, 1.0),)),),
    )
    stations[0].send(frame(addrs, 0, 1))  # station1 sits on router1
    sim.run(until=0.5)
    assert stations[1].got == []
    assert fabric.component_counters()["partition_drops"] == 1
    assert ledger_balances(fabric)


def test_torus_repair_reconverges_to_dimension_order():
    sim, stations, addrs, fabric = make_fabric(
        build_torus,
        n=8,
        components=(ComponentFaultSpec("router1", windows=((0.0, 1e-3),)),),
    )
    stations[0].send(frame(addrs, 0, 3))
    sim.run(until=5e-3)
    stations[0].send(frame(addrs, 0, 3))
    sim.run()
    assert len(stations[3].got) == 2
    key = fabric._key_base[0] + 3
    assert fabric._routes[key] == fabric.topology.route(0, 3)
    assert ledger_balances(fabric)


# -- uplink windows ----------------------------------------------------------


def test_aggregate_uplink_window_drops_then_recovers():
    sim, stations, addrs, fabric = make_fabric(
        build_aggregate_star,
        n=4,
        components=(
            ComponentFaultSpec("up1", windows=((0.0, 1e-3),), kind="uplink"),
        ),
    )
    stations[1].send(frame(addrs, 1, 0))  # inside the window: vanishes
    sim.run(until=2e-3)
    assert stations[0].got == []
    stations[1].send(frame(addrs, 1, 0))  # after repair: delivered
    sim.run()
    assert len(stations[0].got) == 1
    counters = fabric.component_counters()
    assert counters["uplink_drops"] == 1
    assert counters["transitions"] == 2
    assert ledger_balances(fabric)


def test_hierarchical_uplink_window_drops_at_the_nic():
    sim, stations, addrs, fabric = make_fabric(
        build_fattree,
        components=(
            ComponentFaultSpec("up0", windows=((0.0, 1e-3),), kind="uplink"),
        ),
    )
    stations[0].send(frame(addrs, 0, 5))
    sim.run(until=2e-3)
    assert stations[5].got == []
    assert fabric.component_counters()["uplink_drops"] == 1
    # The frame never reached routing, so the ledger holds trivially.
    assert ledger_balances(fabric)


# -- workload-relative schedules ---------------------------------------------


def test_component_windows_arm_at_first_fabric_frame():
    """Window starts count from the first frame the fabric carries, not
    from simulation time zero — a long idle setup phase (INIC bitstream
    configuration in the real runner) must not consume the schedule."""
    sim, stations, addrs, fabric = make_fabric(
        build_fattree,
        components=(ComponentFaultSpec("spine1", windows=((1e-3, 1e-3),)),),
    )
    # First traffic only at t=5ms; absolute-time semantics would have
    # expired the window at 2ms and the flow would keep its default path.
    sim.call_after(5e-3, stations[0].send, frame(addrs, 0, 5))
    sim.call_after(6.5e-3, stations[0].send, frame(addrs, 0, 5))
    sim.run()
    assert len(stations[5].got) == 2
    assert fabric.component_counters()["reroutes"] == 1  # second frame
    assert ledger_balances(fabric)


def test_faulted_runs_are_deterministic():
    def run_once():
        sim, stations, addrs, fabric = make_fabric(
            build_fattree,
            components=(
                ComponentFaultSpec("spine1", windows=((0.0, 4e-3),)),
            ),
            detection_delay=1e-3,
        )
        for t in (0.0, 2e-3, 6e-3):
            sim.call_after(t, stations[0].send, frame(addrs, 0, 5))
        sim.run()
        arrivals = [t for _, t in stations[5].got]
        return arrivals, fabric.component_counters()

    assert run_once() == run_once()


# -- loud rejection ----------------------------------------------------------


def test_wire_star_rejects_component_faults():
    spec = ClusterSpec(
        n_nodes=4,
        faults=FaultSpec(
            components=(
                ComponentFaultSpec("up0", windows=((0.0, 1e-3),), kind="uplink"),
            )
        ),
    )
    with pytest.raises(ValueError, match="choose from"):
        Cluster.build(spec)


def test_aggregate_rejects_switch_components():
    sim, stations, addrs, fabric = make_fabric(build_aggregate_star, n=4)
    plan = FaultPlan(
        FaultSpec(
            components=(ComponentFaultSpec("spine0", windows=((0.0, 1.0),)),)
        )
    )
    with pytest.raises(NetworkError, match="cannot fail switch component"):
        fabric.install_component_faults(plan)


@pytest.mark.parametrize(
    "builder, bad, expected",
    [
        (build_fattree, "spine99", "choose from"),
        (build_fattree, "leaf0", "choose from"),
        (build_torus, "router99", "choose from"),
        (build_fattree, "up99", "choose from up0"),
    ],
)
def test_unknown_component_names_are_rejected_loudly(builder, bad, expected):
    kind = "uplink" if bad.startswith("up") else "switch"
    sim, stations, addrs, fabric = make_fabric(builder, n=8)
    plan = FaultPlan(
        FaultSpec(
            components=(
                ComponentFaultSpec(bad, windows=((0.0, 1.0),), kind=kind),
            )
        )
    )
    with pytest.raises(NetworkError, match=expected):
        fabric.install_component_faults(plan)
