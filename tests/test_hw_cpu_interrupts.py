"""Unit tests for the CPU and interrupt-controller models."""

import pytest

from repro.errors import HardwareError
from repro.hw import (
    CPU,
    CacheLevel,
    CoalescePolicy,
    InterruptController,
    MemoryHierarchy,
)
from repro.sim import Simulator


def make_cpu(sim, **kw):
    mh = MemoryHierarchy(
        [
            CacheLevel("L1", 64 * 1024, 8e9, 4e9),
            CacheLevel("DRAM", float("inf"), 0.6e9, 0.12e9),
        ]
    )
    return CPU(sim, mh, **kw)


# --- CPU ------------------------------------------------------------------------
def test_busy_takes_requested_time():
    sim = Simulator()
    cpu = make_cpu(sim)

    def proc():
        yield from cpu.busy(0.25)
        return sim.now

    p = sim.process(proc())
    assert sim.run(until=p) == pytest.approx(0.25)


def test_busy_serializes_on_single_core():
    sim = Simulator()
    cpu = make_cpu(sim)
    ends = []

    def proc(tag):
        yield from cpu.busy(1.0)
        ends.append((tag, sim.now))

    sim.process(proc("a"))
    sim.process(proc("b"))
    sim.run()
    assert ends == [("a", 1.0), ("b", 2.0)]


def test_interrupt_theft_extends_running_task():
    sim = Simulator()
    cpu = make_cpu(sim, interrupt_cost=0.01)

    def thief():
        yield sim.timeout(0.5)
        cpu.charge_interrupt(10)  # 0.1s stolen mid-task

    def worker():
        yield from cpu.busy(1.0)
        return sim.now

    sim.process(thief())
    p = sim.process(worker())
    assert sim.run(until=p) == pytest.approx(1.1)
    assert cpu.interrupt_time == pytest.approx(0.1)


def test_steal_before_task_charged_to_next_task():
    sim = Simulator()
    cpu = make_cpu(sim)
    cpu.steal(0.5)

    def worker():
        yield from cpu.busy(1.0)
        return sim.now

    p = sim.process(worker())
    assert sim.run(until=p) == pytest.approx(1.5)


def test_flops_time():
    sim = Simulator()
    cpu = make_cpu(sim, clock_hz=1e9, flops_per_cycle=2.0)
    assert cpu.flops_time(2e9) == pytest.approx(1.0)


def test_task_time_roofline():
    sim = Simulator()
    cpu = make_cpu(sim, clock_hz=1e9, flops_per_cycle=1.0)
    # Compute-bound: many flops, few bytes.
    assert cpu.task_time(flops=1e9, nbytes=8) == pytest.approx(1.0)
    # Memory-bound: DRAM stream at 0.6e9 B/s.
    t = cpu.task_time(flops=1, nbytes=6e8, working_set=6e8)
    assert t == pytest.approx(1.0)


def test_negative_busy_rejected():
    sim = Simulator()
    cpu = make_cpu(sim)
    with pytest.raises(HardwareError):
        list(cpu.busy(-1.0))


def test_busy_time_statistics():
    sim = Simulator()
    cpu = make_cpu(sim)

    def worker():
        yield from cpu.busy(0.5)
        yield from cpu.busy(0.25)

    sim.process(worker())
    sim.run()
    assert cpu.busy_time == pytest.approx(0.75)
    assert cpu.tasks_run == 2


# --- InterruptController ----------------------------------------------------------
def test_immediate_policy_delivers_per_cause():
    sim = Simulator()
    delivered = []
    ic = InterruptController(sim, handler=lambda n: delivered.append(n))
    for _ in range(5):
        ic.raise_irq()
    sim.run()
    assert delivered == [1, 1, 1, 1, 1]
    assert ic.coalescing_ratio() == pytest.approx(1.0)


def test_frame_threshold_coalesces():
    sim = Simulator()
    delivered = []
    ic = InterruptController(
        sim,
        policy=CoalescePolicy(delay=1.0, max_frames=4),
        handler=lambda n: delivered.append((n, sim.now)),
    )
    for _ in range(4):
        ic.raise_irq()
    sim.run()
    assert delivered == [(4, 0.0)]


def test_timer_fires_for_partial_batch():
    sim = Simulator()
    delivered = []
    ic = InterruptController(
        sim,
        policy=CoalescePolicy(delay=0.5, max_frames=100),
        handler=lambda n: delivered.append((n, sim.now)),
    )

    def dev():
        ic.raise_irq()
        yield sim.timeout(0.1)
        ic.raise_irq()

    sim.process(dev())
    sim.run()
    # Timer armed at first cause (t=0), fires at 0.5 with both causes.
    assert delivered == [(2, 0.5)]


def test_threshold_delivery_cancels_timer():
    sim = Simulator()
    delivered = []
    ic = InterruptController(
        sim,
        policy=CoalescePolicy(delay=10.0, max_frames=2),
        handler=lambda n: delivered.append((n, sim.now)),
    )
    ic.raise_irq()
    ic.raise_irq()  # hits threshold immediately
    sim.run()
    assert delivered == [(2, 0.0)]
    assert ic.pending == 0


def test_coalescing_adds_latency_for_single_packet():
    """The paper's point: mitigation delays short-message delivery."""
    sim = Simulator()
    delivered = []
    ic = InterruptController(
        sim,
        policy=CoalescePolicy(delay=70e-6, max_frames=8),
        handler=lambda n: delivered.append(sim.now),
    )
    ic.raise_irq()
    sim.run()
    assert delivered == [pytest.approx(70e-6)]


def test_invalid_policy():
    with pytest.raises(ValueError):
        CoalescePolicy(delay=-1.0)
    with pytest.raises(ValueError):
        CoalescePolicy(max_frames=0)


def test_raise_zero_causes_rejected():
    sim = Simulator()
    ic = InterruptController(sim)
    with pytest.raises(ValueError):
        ic.raise_irq(0)
