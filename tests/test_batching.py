"""Determinism under frame-train batching (DESIGN.md §7, docs/performance.md).

Batching changes event *granularity*, not what the simulation computes:

* a switch output port merging a backlog of back-to-back MTU frames
  into ``frame_count``-weighted trains must deliver the train's tail at
  exactly the per-frame schedule's time, with identical wire byte/frame
  counters;
* batched runs are deterministic: two identical runs produce identical
  delivery schedules and event counts;
* end-to-end (NIC TX-ring merging included), message delivery may shift
  by at most the policy's timing tolerance per store-and-forward hop.
"""

import pytest

from repro.errors import PacketError
from repro.net import (
    BatchPolicy,
    Frame,
    MacAddress,
    PER_FRAME,
    StandardNIC,
    Switch,
    Wire,
    adaptive_quantum,
    build_star,
)
from repro.net.packet import ETHERNET_MTU
from repro.protocols import RawConfig, RawEthernetStack
from repro.sim import FairShareBus, Simulator

MTU = ETHERNET_MTU


# -- adaptive_quantum arithmetic ----------------------------------------------------


def test_adaptive_quantum_tolerance_bound():
    policy = BatchPolicy(timing_tolerance=100e-6, max_quantum=512)
    # (q - 1) * unit_time <= tolerance  ->  q = 1 + 10 at 10 us/frame
    assert adaptive_quantum(1000, 10e-6, policy) == 11
    # the bound adapts to the wire: slower frames, smaller quantum
    assert adaptive_quantum(1000, 50e-6, policy) == 3


def test_adaptive_quantum_caps():
    policy = BatchPolicy(timing_tolerance=1.0, max_quantum=32)
    assert adaptive_quantum(1000, 10e-6, policy) == 32  # max_quantum cap
    assert adaptive_quantum(7, 10e-6, policy) == 7  # never exceeds total
    assert adaptive_quantum(1, 10e-6, policy) == 1
    assert adaptive_quantum(0, 10e-6, policy) == 1


def test_adaptive_quantum_disabled_and_errors():
    assert adaptive_quantum(1000, 10e-6, PER_FRAME) == 1
    with pytest.raises(PacketError):
        adaptive_quantum(-1, 10e-6)
    with pytest.raises(PacketError):
        BatchPolicy(timing_tolerance=-1.0)
    with pytest.raises(PacketError):
        BatchPolicy(max_quantum=0)


# -- switch-level train merging is timing-exact at the tail --------------------------


class _Collector:
    """Terminal frame sink recording (time, seq, frame_count, bytes)."""

    def __init__(self, sim):
        self.sim = sim
        self.deliveries = []

    def receive_frame(self, frame):
        self.deliveries.append(
            (self.sim.now, frame.seq, frame.frame_count, frame.payload_bytes)
        )


def _run_switch_burst(batch, n_frames=24):
    """Burst of contiguous MTU frames through a fast-in/slow-out switch
    port (the backlog is what gives the port trains to merge)."""
    sim = Simulator()
    switch = Switch(sim, 2, forwarding_latency=4e-6, batch=batch)
    up = Wire(sim, 125e6, 1e-6, name="up")
    up.attach(switch.ingress_sink(0))
    down = Wire(sim, 12.5e6, 1e-6, name="down")
    collector = _Collector(sim)
    down.attach(collector)
    switch.attach_output(1, down)
    switch.learn(MacAddress(1), 1)
    total = n_frames * MTU
    for i in range(n_frames):
        up.send(
            Frame(
                src=MacAddress(0),
                dst=MacAddress(1),
                payload_bytes=MTU,
                headers=8,
                kind="raw",
                seq=i * MTU,
                meta={"msg": 7, "total": total, "last": i == n_frames - 1},
            )
        )
    sim.run()
    return sim, collector, down, switch


def test_switch_merge_preserves_tail_time_and_wire_counters():
    sim_pf, col_pf, down_pf, _ = _run_switch_burst(PER_FRAME)
    batched = BatchPolicy(timing_tolerance=5e-3, max_quantum=64)
    sim_b, col_b, down_b, _ = _run_switch_burst(batched)

    # Trains actually formed: fewer deliveries, fewer events.
    assert len(col_b.deliveries) < len(col_pf.deliveries)
    assert sim_b.event_count < sim_pf.event_count
    assert any(count > 1 for _, _, count, _ in col_b.deliveries)

    # The tail of the burst arrives at the per-frame schedule's time
    # (wire FIFO + store-and-forward: merging reorders nothing and the
    # train's last byte hits the sink when the last frame's would have).
    assert col_b.deliveries[-1][0] == pytest.approx(
        col_pf.deliveries[-1][0], rel=1e-12
    )

    # Conservation: identical physical frame and on-wire byte counts.
    assert down_b.frames_sent == down_pf.frames_sent
    assert down_b.bytes_sent == down_pf.bytes_sent
    assert sum(c for _, _, c, _ in col_b.deliveries) == sum(
        c for _, _, c, _ in col_pf.deliveries
    )
    assert sum(b for _, _, _, b in col_b.deliveries) == sum(
        b for _, _, _, b in col_pf.deliveries
    )

    # Byte-contiguity of merged trains: seq + payload chain covers the
    # stream exactly once.
    expect = 0
    for _, seq, _, nbytes in sorted(col_b.deliveries, key=lambda d: d[1]):
        assert seq == expect
        expect += nbytes


def test_batched_runs_are_deterministic():
    batched = BatchPolicy(timing_tolerance=5e-3, max_quantum=64)
    sim_a, col_a, _, _ = _run_switch_burst(batched)
    sim_b, col_b, _, _ = _run_switch_burst(batched)
    assert col_a.deliveries == col_b.deliveries
    assert sim_a.event_count == sim_b.event_count


def test_switch_merge_respects_max_quantum_and_buffer_accounting():
    batched = BatchPolicy(timing_tolerance=1.0, max_quantum=4)
    _, col, _, switch = _run_switch_burst(batched)
    assert all(count <= 4 for _, _, count, _ in col.deliveries)
    # All buffer bytes were freed (enqueue charge == tx_done release).
    assert switch._outputs[1].queued_bytes == 0
    assert switch.total_dropped() == 0


# -- end-to-end: NIC ring merging stays within the policy tolerance ------------------


def _run_raw_transfer(wire_batch, nbytes=120 * MTU):
    """One raw-datagram message across a 2-node star; sender emits
    per-frame (so all batching happens in the fabric)."""
    sim = Simulator()
    cfg = RawConfig(quantum_target_events=10**9, max_quantum=1, batch=PER_FRAME)
    nics, stacks = [], []
    for i in range(2):
        bus = FairShareBus(sim, bandwidth=112e6)
        nic = StandardNIC(
            sim, MacAddress(i), host_bus=bus, batch=wire_batch, name=f"nic{i}"
        )
        stacks.append(RawEthernetStack(sim, nic, config=cfg, name=f"raw{i}"))
        nics.append(nic)
    build_star(sim, [(MacAddress(i), nics[i]) for i in range(2)], batch=wire_batch)
    t = {}

    def sender():
        yield stacks[0].send(MacAddress(1), nbytes)

    def receiver():
        yield stacks[1].recv()
        t["done"] = sim.now

    sim.process(sender())
    sim.process(receiver())
    sim.run()
    assert stacks[1].messages_delivered == 1
    return sim, t["done"], nics


def test_nic_ring_merge_bounded_by_tolerance():
    tol = 200e-6
    sim_pf, t_pf, _ = _run_raw_transfer(PER_FRAME)
    sim_b, t_b, nics = _run_raw_transfer(
        BatchPolicy(timing_tolerance=tol, max_quantum=64)
    )
    assert sim_b.event_count < sim_pf.event_count
    # Same physical frames on the wire either way.
    assert nics[0].stats.tx_frames == 120
    assert nics[1].stats.rx_frames == 120
    # Three store-and-forward stages may each add up to the tolerance
    # (NIC TX ring, switch port, and the receive-side DMA of a train).
    assert abs(t_b - t_pf) <= 3 * tol
