"""Focused tests of TCP congestion-control mechanics."""

import pytest

from repro.hw import CPU, CacheLevel, MemoryHierarchy
from repro.net import MacAddress, NetworkTechnology, StandardNIC, build_star
from repro.protocols import TCPConfig, TCPStack
from repro.sim import FairShareBus, Simulator
from repro.units import gbps


def build_pair(tcp_config=TCPConfig(), buffer_bytes=128 * 1024):
    sim = Simulator()
    nics, stacks = [], []
    for i in range(2):
        mh = MemoryHierarchy([CacheLevel("DRAM", float("inf"), 0.6e9, 0.12e9)])
        cpu = CPU(sim, mh)
        bus = FairShareBus(sim, bandwidth=112e6)
        nic = StandardNIC(sim, MacAddress(i), host_bus=bus, cpu=cpu, name=f"nic{i}")
        stacks.append(TCPStack(sim, nic, cpu, config=tcp_config, name=f"tcp{i}"))
        nics.append(nic)
    tech = NetworkTechnology(
        name="t", bandwidth=gbps(1), propagation_delay=1e-6,
        switch_latency=4e-6, switch_buffer_per_port=buffer_bytes,
    )
    switch = build_star(sim, [(MacAddress(i), nics[i]) for i in range(2)], tech=tech)
    return sim, stacks, nics, switch


def transfer(sim, stacks, nbytes, max_events=5_000_000):
    done = {}

    def sender():
        yield stacks[0].send(MacAddress(1), nbytes)
        done["t"] = sim.now

    def receiver():
        m = yield stacks[1].recv()
        done["n"] = m.nbytes

    sim.process(sender())
    sim.process(receiver())
    sim.run(max_events=max_events)
    return done


def test_slow_start_doubles_window_each_rtt():
    """cwnd growth: after the transfer the window reflects slow start
    having ramped geometrically (well past init_cwnd)."""
    cfg = TCPConfig(init_cwnd=2, init_ssthresh=64)
    sim, stacks, _, _ = build_pair(cfg)
    transfer(sim, stacks, 500_000)
    conn = stacks[0]._send_conns[1]
    assert conn.cwnd >= 64  # reached/passed ssthresh
    assert stacks[0].stats.timeouts == 0


def test_rwnd_caps_flight():
    """The receiver window bounds in-flight bytes regardless of cwnd."""
    cfg = TCPConfig(rwnd=16 * 1024)
    sim, stacks, _, _ = build_pair(cfg)
    peak = []

    def watcher():
        while True:
            conn = stacks[0]._send_conns.get(1)
            if conn is not None:
                peak.append(conn.flight)
            yield sim.timeout(1e-4)

    sim.process(watcher())
    done = {}

    def sender():
        yield stacks[0].send(MacAddress(1), 300_000)
        done["ok"] = True

    def receiver():
        yield stacks[1].recv()

    sim.process(sender())
    sim.process(receiver())
    sim.run(until=5.0)
    assert done.get("ok")
    assert max(peak) <= 16 * 1024


def _build_incast(n, cfg, buffer_bytes):
    sim = Simulator()
    nics, stacks = [], []
    for i in range(n):
        mh = MemoryHierarchy([CacheLevel("DRAM", float("inf"), 0.6e9, 0.12e9)])
        cpu = CPU(sim, mh)
        bus = FairShareBus(sim, bandwidth=112e6)
        nic = StandardNIC(sim, MacAddress(i), host_bus=bus, cpu=cpu, name=f"nic{i}")
        stacks.append(TCPStack(sim, nic, cpu, config=cfg, name=f"tcp{i}"))
        nics.append(nic)
    tech = NetworkTechnology(
        name="t", bandwidth=gbps(1), propagation_delay=1e-6,
        switch_latency=4e-6, switch_buffer_per_port=buffer_bytes,
    )
    switch = build_star(sim, [(MacAddress(i), nics[i]) for i in range(n)], tech=tech)
    return sim, stacks, switch


def test_fast_retransmit_triggers_under_incast():
    """Several flows converging on one port lose frames while later
    frames keep arriving — the duplicate-ACK stream triggers fast
    retransmit, and everything still delivers."""
    cfg = TCPConfig(max_quantum=4)
    sim, stacks, switch = _build_incast(4, cfg, buffer_bytes=48 * 1024)
    got = []

    def sender(i):
        yield stacks[i].send(MacAddress(0), 500_000, tag=i)

    def receiver():
        for _ in range(3):
            m = yield stacks[0].recv()
            got.append(m.nbytes)

    for i in (1, 2, 3):
        sim.process(sender(i))
    sim.process(receiver())
    sim.run(max_events=5_000_000)
    assert got == [500_000] * 3
    assert switch.total_dropped() > 0
    assert sum(s.stats.fast_retransmits for s in stacks) >= 1


def test_loss_collapses_and_regrows_window():
    cfg = TCPConfig()
    sim, stacks, _, switch = build_pair(cfg, buffer_bytes=24 * 1024)
    transfer(sim, stacks, 2_000_000)
    conn = stacks[0]._send_conns[1]
    # ssthresh moved below the initial 64 segments after losses.
    assert conn.ssthresh < 64
    assert switch.total_dropped() > 0


def test_small_buffer_throughput_degrades_gracefully():
    """Loss-sawtooth throughput sits below clean-path throughput but
    nowhere near collapse (the AIMD equilibrium)."""
    times = {}
    for label, buf in (("clean", 512 * 1024), ("lossy", 24 * 1024)):
        sim, stacks, _, _ = build_pair(TCPConfig(), buffer_bytes=buf)
        t0 = sim.now
        transfer(sim, stacks, 2_000_000)
        times[label] = sim.now - t0
    assert times["lossy"] > times["clean"]
    assert times["lossy"] < 20 * times["clean"]


def test_stats_track_retransmissions():
    sim, stacks, _, _ = build_pair(TCPConfig(), buffer_bytes=24 * 1024)
    transfer(sim, stacks, 1_000_000)
    stats = stacks[0].stats
    assert stats.retransmitted_frames > 0
    assert stacks[1].stats.bytes_delivered == 1_000_000
    # More frames were sent than the minimum needed (retransmissions).
    assert stats.data_frames_sent > 1_000_000 / 1460
