"""Unit tests for the bus models (repro.sim.bus)."""

import pytest

from repro.errors import BusError
from repro.sim import FCFSBus, FairShareBus, Simulator


# --- FCFSBus -----------------------------------------------------------------
def test_fcfs_single_transfer_time():
    sim = Simulator()
    bus = FCFSBus(sim, bandwidth=100.0)  # 100 B/s
    done = bus.transfer(250.0)
    sim.run(until=done)
    assert sim.now == pytest.approx(2.5)


def test_fcfs_serializes_transfers():
    sim = Simulator()
    bus = FCFSBus(sim, bandwidth=100.0)
    t1 = bus.transfer(100.0)  # 0..1
    t2 = bus.transfer(100.0)  # 1..2
    finish = []

    def watch(ev, tag):
        yield ev
        finish.append((tag, sim.now))

    sim.process(watch(t1, "t1"))
    sim.process(watch(t2, "t2"))
    sim.run()
    assert finish == [("t1", 1.0), ("t2", 2.0)]


def test_fcfs_arbitration_latency():
    sim = Simulator()
    bus = FCFSBus(sim, bandwidth=100.0, arbitration_latency=0.5)
    done = bus.transfer(100.0)
    sim.run(until=done)
    assert sim.now == pytest.approx(1.5)


def test_fcfs_rejects_zero_bytes():
    sim = Simulator()
    bus = FCFSBus(sim, bandwidth=100.0)
    with pytest.raises(BusError):
        bus.transfer(0)


def test_fcfs_stats():
    sim = Simulator()
    bus = FCFSBus(sim, bandwidth=100.0)
    bus.transfer(100.0)
    bus.transfer(300.0)
    sim.run()
    assert bus.stats.transfer_count == 2
    assert bus.stats.bytes_transferred == pytest.approx(400.0)
    assert bus.stats.busy_time == pytest.approx(4.0)
    assert bus.stats.utilization(4.0) == pytest.approx(1.0)


def test_fcfs_invalid_bandwidth():
    sim = Simulator()
    with pytest.raises(BusError):
        FCFSBus(sim, bandwidth=0.0)


# --- FairShareBus --------------------------------------------------------------
def test_fairshare_single_flow_full_rate():
    sim = Simulator()
    bus = FairShareBus(sim, bandwidth=100.0)
    done = bus.transfer(200.0)
    sim.run(until=done)
    assert sim.now == pytest.approx(2.0)


def test_fairshare_two_equal_flows_half_rate():
    sim = Simulator()
    bus = FairShareBus(sim, bandwidth=100.0)
    t1 = bus.transfer(100.0)
    t2 = bus.transfer(100.0)
    finish = []

    def watch(ev, tag):
        yield ev
        finish.append((tag, sim.now))

    sim.process(watch(t1, "t1"))
    sim.process(watch(t2, "t2"))
    sim.run()
    # Both progress at 50 B/s -> both finish at t=2.
    assert finish[0][1] == pytest.approx(2.0)
    assert finish[1][1] == pytest.approx(2.0)


def test_fairshare_late_joiner_slows_first_flow():
    sim = Simulator()
    bus = FairShareBus(sim, bandwidth=100.0)
    times = {}

    def flow(tag, start, nbytes):
        yield sim.timeout(start)
        yield bus.transfer(nbytes)
        times[tag] = sim.now

    # Flow A: 150 B starting at t=0. Flow B: 50 B starting at t=1.
    # t=0..1   : A alone at 100 B/s -> A has 50 left.
    # t=1..2   : A and B at 50 B/s -> B done at t=2, A has 0 left -> also t=2.
    sim.process(flow("a", 0.0, 150.0))
    sim.process(flow("b", 1.0, 50.0))
    sim.run()
    assert times["a"] == pytest.approx(2.0)
    assert times["b"] == pytest.approx(2.0)


def test_fairshare_rate_cap_respected():
    sim = Simulator()
    bus = FairShareBus(sim, bandwidth=100.0)
    done = bus.transfer(100.0, rate_cap=25.0)
    sim.run(until=done)
    assert sim.now == pytest.approx(4.0)


def test_fairshare_cap_surplus_goes_to_uncapped_flow():
    sim = Simulator()
    bus = FairShareBus(sim, bandwidth=100.0)
    times = {}

    def flow(tag, nbytes, cap):
        yield bus.transfer(nbytes, rate_cap=cap)
        times[tag] = sim.now

    # Capped flow takes 20 B/s; other flow gets the remaining 80 B/s.
    sim.process(flow("capped", 20.0, 20.0))
    sim.process(flow("free", 80.0, float("inf")))
    sim.run()
    assert times["capped"] == pytest.approx(1.0)
    assert times["free"] == pytest.approx(1.0)


def test_fairshare_conservation_of_bytes():
    sim = Simulator()
    bus = FairShareBus(sim, bandwidth=123.0)
    total = 0.0
    for nbytes in (10.0, 200.0, 33.0, 77.0):
        bus.transfer(nbytes)
        total += nbytes
    sim.run()
    assert bus.stats.bytes_transferred == pytest.approx(total)


def test_fairshare_sequential_transfers_full_rate_each():
    sim = Simulator()
    bus = FairShareBus(sim, bandwidth=100.0)

    def proc():
        yield bus.transfer(100.0)
        t1 = sim.now
        yield bus.transfer(100.0)
        return (t1, sim.now)

    p = sim.process(proc())
    t1, t2 = sim.run(until=p)
    assert t1 == pytest.approx(1.0)
    assert t2 == pytest.approx(2.0)


def test_fairshare_arbitration_latency_delays_start():
    sim = Simulator()
    bus = FairShareBus(sim, bandwidth=100.0, arbitration_latency=0.25)
    done = bus.transfer(100.0)
    sim.run(until=done)
    assert sim.now == pytest.approx(1.25)


def test_fairshare_busy_time_accounting():
    sim = Simulator()
    bus = FairShareBus(sim, bandwidth=100.0)

    def proc():
        yield bus.transfer(100.0)
        yield sim.timeout(5.0)  # idle gap
        yield bus.transfer(100.0)

    sim.process(proc())
    sim.run()
    assert bus.stats.busy_time == pytest.approx(2.0)


def test_fairshare_many_flows_determinism():
    def run_once():
        sim = Simulator()
        bus = FairShareBus(sim, bandwidth=1000.0)
        times = []

        def flow(start, nbytes):
            yield sim.timeout(start)
            yield bus.transfer(nbytes)
            times.append(round(sim.now, 9))

        for i in range(20):
            sim.process(flow(i * 0.01, 100.0 + i))
        sim.run()
        return times

    assert run_once() == run_once()
