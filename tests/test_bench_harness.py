"""Tests for the benchmark harness, report, and calibration modules."""

import pytest

from repro.bench import (
    Experiment,
    Scale,
    ascii_plot,
    compare_des_vs_model,
    measure_kernel_rates,
    render_table,
    shape_summary,
    to_markdown,
)
from repro.bench.figures import fig4a, fig4b, fig5a, fig5b
from repro.errors import ApplicationError, CalibrationError
from repro.models.speedup import Series


def small_exp():
    e = Experiment("figX", "demo", "P", "speedup")
    e.add(Series("a", [1, 2, 4], [1.0, 1.9, 3.5]))
    e.add(Series("b", [1, 2, 4], [1.0, 1.2, 1.5]))
    e.notes.append("a note")
    return e


# --- harness ------------------------------------------------------------------------
def test_scales_have_distinct_sizes():
    paper, bench, ci = Scale.paper(), Scale.bench(), Scale.ci()
    assert paper.sort_keys > bench.sort_keys > ci.sort_keys
    assert max(paper.fft_sizes) > max(ci.fft_sizes)


def test_render_table_contains_all_points():
    out = render_table(small_exp())
    assert "figX" in out
    assert "3.50" in out and "1.20" in out
    assert "a note" in out


def test_series_named_lookup():
    e = small_exp()
    assert e.series_named("a").at(4) == 3.5
    with pytest.raises(ApplicationError):
        e.series_named("zzz")


def test_render_table_handles_missing_points():
    e = small_exp()
    e.add(Series("partial", [2], [9.0]))
    out = render_table(e)
    assert "9.00" in out
    assert "-" in out  # missing cells rendered as dashes


# --- report ---------------------------------------------------------------------------
def test_ascii_plot_renders():
    out = ascii_plot(small_exp())
    assert "figX" in out
    assert "o = a" in out
    assert "x = b" in out


def test_to_markdown_table():
    md = to_markdown(small_exp())
    assert md.count("|") > 10
    assert "**figX" in md
    assert "*a note*" in md


def test_shape_summary():
    s = shape_summary(Series("s", [1, 2, 3], [1.0, 3.0, 2.0]))
    assert s["peak"] == 3.0
    assert s["first"] == 1.0 and s["last"] == 2.0
    assert s["rising_fraction"] == pytest.approx(0.5)


# --- figure functions at CI scale (cheap smoke coverage) -----------------------------------
@pytest.mark.parametrize("fig", [fig4a, fig4b, fig5a, fig5b])
def test_analytic_figures_produce_series(fig):
    exp = fig(Scale.ci())
    assert exp.series
    for s in exp.series:
        assert len(s.x) == len(s.y) > 0
        assert all(v >= 0 for v in s.y)


# --- calibration -----------------------------------------------------------------------------
def test_measure_kernel_rates_sane():
    rates = measure_kernel_rates(n_keys=1 << 14, fft_n=1 << 10, fft_rows=8)
    assert rates.count_sort_keys_per_s > 1e4
    assert rates.bucket_split_keys_per_s > 1e4
    assert rates.fft_flops_per_s > 1e6
    assert rates.count_vs_quick > 1.0  # count sort wins


def test_measure_kernel_rates_validates():
    with pytest.raises(CalibrationError):
        measure_kernel_rates(n_keys=10)


def test_compare_des_vs_model():
    # A DES time equal to the model gives 0 deviation.
    from repro.cluster import athlon_node
    from repro.models import gige_fft_time

    h = athlon_node().hierarchy()
    model = gige_fft_time(256, 4, h)
    assert compare_des_vs_model(model, 256, 4, "gige") == pytest.approx(0.0)
    assert compare_des_vs_model(2 * model, 256, 4, "gige") == pytest.approx(1.0)
    with pytest.raises(CalibrationError):
        compare_des_vs_model(1.0, 256, 4, "quantum")


def test_des_and_model_agree_for_gige_fft():
    """The packet-level DES and the calibrated closed form describe the
    same machine: within a factor-of-2 band across configurations."""
    import numpy as np

    from repro.apps.fft import baseline_fft2d
    from repro.cluster import Cluster, ClusterSpec

    g = np.random.default_rng(1)
    m = g.standard_normal((256, 256)) + 1j * g.standard_normal((256, 256))
    for p in (2, 8):
        cluster = Cluster.build(ClusterSpec(n_nodes=p))
        _, res = baseline_fft2d(cluster, m)
        dev = compare_des_vs_model(res.makespan, 256, p, "gige")
        assert abs(dev) < 1.0, f"DES vs model deviation {dev:.2f} at P={p}"
