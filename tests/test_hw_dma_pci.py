"""Unit tests for the DMA engine and PCI bus factories."""

import pytest

from repro.errors import DMAError
from repro.hw import DMAEngine, card_local_bus, pci_32_33, pci_64_66, pcix_133
from repro.sim import FCFSBus, FairShareBus, Simulator


def test_dma_transfer_time_includes_setup():
    sim = Simulator()
    bus = FCFSBus(sim, bandwidth=1e6, name="b")
    dma = DMAEngine(sim, bus, setup_cost=0.5, burst_size=10**9)

    def proc():
        yield from dma.transfer(1e6)
        return sim.now

    p = sim.process(proc())
    assert sim.run(until=p) == pytest.approx(1.5)


def test_dma_chunks_into_bursts():
    sim = Simulator()
    bus = FCFSBus(sim, bandwidth=1e6)
    dma = DMAEngine(sim, bus, setup_cost=0.0, burst_size=1000)

    def proc():
        yield from dma.transfer(10_000)

    sim.process(proc())
    sim.run()
    assert bus.stats.transfer_count == 10
    assert bus.stats.bytes_transferred == pytest.approx(10_000)


def test_dma_efficiency_improves_with_size():
    """The 64 KiB receive threshold of Eq. (15) exists because DMA
    efficiency is poor for small transfers."""
    sim = Simulator()
    bus = FCFSBus(sim, bandwidth=112e6)  # ~85% of PCI 132 MB/s
    dma = DMAEngine(sim, bus, setup_cost=20e-6)
    small = dma.efficiency(1024)
    big = dma.efficiency(64 * 1024)
    assert small < 0.35
    assert big > 0.95
    assert dma.efficiency(1024) < dma.efficiency(4096) < dma.efficiency(65536)


def test_dma_statistics():
    sim = Simulator()
    bus = FCFSBus(sim, bandwidth=1e6)
    dma = DMAEngine(sim, bus, setup_cost=0.0)

    def proc():
        yield from dma.transfer(5000)
        yield from dma.transfer(3000)

    sim.process(proc())
    sim.run()
    assert dma.transfers == 2
    assert dma.bytes_moved == pytest.approx(8000)


def test_dma_rejects_bad_args():
    sim = Simulator()
    bus = FCFSBus(sim, bandwidth=1e6)
    with pytest.raises(DMAError):
        DMAEngine(sim, bus, setup_cost=-1)
    with pytest.raises(DMAError):
        DMAEngine(sim, bus, burst_size=0)
    dma = DMAEngine(sim, bus)
    with pytest.raises(DMAError):
        list(dma.transfer(0))


def test_pci_rates_ordering():
    sim = Simulator()
    b32 = pci_32_33(sim)
    b64 = pci_64_66(sim)
    bx = pcix_133(sim)
    assert b32.bandwidth < b64.bandwidth < bx.bandwidth
    # 85% derating of the 132 MB/s raw rate.
    assert b32.bandwidth == pytest.approx(132e6 * 0.85)


def test_card_local_bus_is_serialized():
    """Section 5: all ACEII traffic shares one FCFS bus."""
    sim = Simulator()
    bus = card_local_bus(sim)
    assert isinstance(bus, FCFSBus)
    assert bus.bandwidth == pytest.approx(132e6)


def test_system_pci_default_is_fair_share():
    sim = Simulator()
    assert isinstance(pci_32_33(sim), FairShareBus)
    assert isinstance(pci_32_33(sim, shared=True), FCFSBus)


def test_pci_invalid_efficiency():
    sim = Simulator()
    with pytest.raises(ValueError):
        pci_32_33(sim, efficiency=0.0)
    with pytest.raises(ValueError):
        pci_32_33(sim, efficiency=1.5)
