"""Tests for units helpers and the trace recorder."""

import pytest

from repro.sim import Simulator, TraceRecorder, merge_intervals
from repro.units import (
    KiB,
    MiB,
    bytes_to_kib,
    fmt_bytes,
    fmt_time,
    gbps,
    mb_per_s,
    mbps,
    mib_per_s,
    seconds_to_ms,
    transfer_time,
)


# --- units ---------------------------------------------------------------------
def test_network_rate_conversions():
    assert mbps(100) == 12.5e6
    assert gbps(1) == 125e6


def test_memory_rate_conversions():
    assert mib_per_s(80) == 80 * 1024 * 1024
    assert mb_per_s(132) == 132e6


def test_size_constants():
    assert MiB == 1024 * KiB == 1024 * 1024
    assert bytes_to_kib(2048) == 2.0


def test_transfer_time():
    assert transfer_time(1000, 100) == 10.0
    with pytest.raises(ValueError):
        transfer_time(1000, 0)
    with pytest.raises(ValueError):
        transfer_time(-1, 100)


def test_seconds_to_ms():
    assert seconds_to_ms(0.25) == 250.0


def test_fmt_bytes():
    assert fmt_bytes(512) == "512 B"
    assert fmt_bytes(2048) == "2 KiB"
    assert "MiB" in fmt_bytes(5 * MiB)


def test_fmt_time():
    assert fmt_time(0) == "0 s"
    assert "ms" in fmt_time(0.005)
    assert "us" in fmt_time(5e-6)
    assert "ns" in fmt_time(5e-9)
    assert fmt_time(2.5) == "2.5 s"


# --- merge_intervals --------------------------------------------------------------
def test_merge_intervals_disjoint():
    assert merge_intervals([(0, 1), (2, 3)]) == [(0, 1), (2, 3)]


def test_merge_intervals_overlapping():
    assert merge_intervals([(0, 2), (1, 3), (5, 6)]) == [(0, 3), (5, 6)]


def test_merge_intervals_touching():
    assert merge_intervals([(0, 1), (1, 2)]) == [(0, 2)]


def test_merge_intervals_unsorted_input():
    assert merge_intervals([(4, 5), (0, 3), (2, 4)]) == [(0, 5)]


# --- TraceRecorder -------------------------------------------------------------------
def test_span_open_close():
    sim = Simulator()
    tr = TraceRecorder(sim)

    def proc():
        h = tr.open("work", rank=1)
        yield sim.timeout(2.0)
        h.close()

    sim.process(proc())
    sim.run()
    spans = tr.spans_named("work")
    assert len(spans) == 1
    assert spans[0].duration == pytest.approx(2.0)
    assert spans[0].meta == {"rank": 1}


def test_total_vs_wall_for_overlapping_spans():
    sim = Simulator()
    tr = TraceRecorder(sim)
    tr.record("comm", 0.0, 2.0)
    tr.record("comm", 1.0, 3.0)
    assert tr.total("comm") == pytest.approx(4.0)  # CPU-time view
    assert tr.wall("comm") == pytest.approx(3.0)  # union view


def test_breakdown_and_names():
    sim = Simulator()
    tr = TraceRecorder(sim)
    tr.record("a", 0, 1)
    tr.record("b", 0, 5)
    tr.record("a", 2, 3)
    assert tr.names() == ["a", "b"]
    bd = tr.breakdown()
    assert bd["a"] == pytest.approx(2.0)
    assert bd["b"] == pytest.approx(5.0)


def test_counters():
    sim = Simulator()
    tr = TraceRecorder(sim)
    tr.add("packets", 5)
    tr.add("packets")
    assert tr.get("packets") == 6.0
    assert tr.get("missing") == 0.0


def test_invalid_span_rejected():
    sim = Simulator()
    tr = TraceRecorder(sim)
    with pytest.raises(ValueError):
        tr.record("bad", 2.0, 1.0)


def test_clear():
    sim = Simulator()
    tr = TraceRecorder(sim)
    tr.record("x", 0, 1)
    tr.add("c")
    tr.clear()
    assert tr.spans == [] and tr.counters == {}
