"""Tests for the offload framework (modes, designs, manager, driver)."""

import numpy as np
import pytest

from repro.core import (
    Experiment,
    INICManager,
    Mode,
    collective_design,
    datatype_design,
    fft_transpose_design,
    integer_sort_design,
    protocol_processor_design,
    supported_bucket_count,
    validate_mode_cores,
)
from repro.errors import ConfigurationError
from repro.inic import ACEII_PROTOTYPE, IDEAL_INIC, SendBlock
from repro.net import MacAddress
from repro.protocols import TransferPlan


def _acc(n):
    session = Experiment().nodes(n).card(IDEAL_INIC).build()
    return session.cluster, session.manager


# --- modes ------------------------------------------------------------------------
def test_mode_parse():
    assert Mode.parse("compute") is Mode.COMPUTE
    assert Mode.parse(Mode.PROTOCOL) is Mode.PROTOCOL
    with pytest.raises(ConfigurationError):
        Mode.parse("turbo")


def test_protocol_mode_rejects_compute_cores():
    with pytest.raises(ConfigurationError):
        validate_mode_cores("protocol", ["packetize", "bucket-sort-16"])


def test_compute_mode_rejects_protocol_cores():
    with pytest.raises(ConfigurationError):
        validate_mode_cores("compute", ["packetize", "reduce-sum"])


def test_combined_mode_needs_protocol_path():
    with pytest.raises(ConfigurationError):
        validate_mode_cores("combined", ["bucket-sort-16"])
    validate_mode_cores("combined", ["packetize", "depacketize", "bucket-sort-16"])


# --- designs -----------------------------------------------------------------------
def test_fft_design_has_both_transform_cores():
    d = fft_transpose_design()
    assert d.has_core("local-transpose")
    assert d.has_core("final-permutation")
    assert d.mode == "combined"


def test_sort_design_autosizes_to_card():
    proto = integer_sort_design(ACEII_PROTOTYPE)
    ideal = integer_sort_design(IDEAL_INIC)
    assert proto.has_core("bucket-sort-16")
    assert any(
        c.spec.name == f"bucket-sort-{n}"
        for n in (128, 256)
        for c in ideal.cores
    )


def test_supported_bucket_count_matches_section6():
    assert supported_bucket_count(ACEII_PROTOTYPE) == 16
    assert supported_bucket_count(IDEAL_INIC) >= 128


def test_all_factories_validate():
    protocol_processor_design()
    collective_design("max")
    datatype_design()


# --- builders / manager ----------------------------------------------------------------
def test_build_inic_cluster_and_configure_all():
    cluster, manager = _acc(4)
    dt = manager.configure_all(fft_transpose_design)
    assert dt == pytest.approx(cluster.nodes[0].require_inic().fabric.config_time)
    assert manager.reconfigurations() == 4
    for node in cluster.nodes:
        assert node.require_inic().design.name == "fft-transpose"


def test_manager_requires_inic_cluster():
    cluster = Experiment().nodes(2).build().cluster
    with pytest.raises(ConfigurationError):
        INICManager(cluster)


def test_reconfiguration_counted():
    cluster, manager = _acc(2)
    manager.configure_all(fft_transpose_design)
    manager.configure_all(lambda: integer_sort_design(IDEAL_INIC))
    assert manager.reconfigurations() == 4


# --- driver --------------------------------------------------------------------------
def test_driver_exchange_round_trip():
    cluster, manager = _acc(2)
    manager.configure_all(fft_transpose_design)
    sim = cluster.sim
    payload = np.arange(256, dtype=np.float64)
    out = {}

    def rank0():
        drv = manager.driver(0)
        plan = TransferPlan(sim, {1: payload.nbytes})
        result = yield from drv.exchange(
            11,
            [SendBlock(MacAddress(1), payload.nbytes, payload)],
            plan,
        )
        out[0] = result

    def rank1():
        drv = manager.driver(1)
        plan = TransferPlan(sim, {0: payload.nbytes})
        result = yield from drv.exchange(
            11,
            [SendBlock(MacAddress(0), payload.nbytes, payload * 2)],
            plan,
        )
        out[1] = result

    sim.process(rank0())
    sim.process(rank1())
    sim.run()
    assert np.array_equal(out[0][1][0], payload * 2)
    assert np.array_equal(out[1][0][0], payload)
    # One completion interrupt per gather, cluster-wide.
    assert manager.total_completion_interrupts() == 2


def test_driver_protocol_mode_messaging():
    cluster, manager = _acc(2)
    manager.configure_all(protocol_processor_design)
    sim = cluster.sim
    data = np.arange(5000, dtype=np.uint8)
    out = {}

    def sender():
        yield from manager.driver(0).send_message(
            MacAddress(1), data.nbytes, payload=data, tag=3
        )

    def receiver():
        got = yield from manager.driver(1).recv_message(
            MacAddress(0), data.nbytes, tag=3
        )
        out["msg"] = got

    sim.process(sender())
    sim.process(receiver())
    sim.run()
    assert np.array_equal(out["msg"], data)


def test_exchange_records_trace_span():
    cluster, manager = _acc(2)
    manager.configure_all(fft_transpose_design)
    sim = cluster.sim
    payload = np.zeros(1024, dtype=np.uint8)

    def rank(r):
        drv = manager.driver(r)
        plan = TransferPlan(sim, {1 - r: payload.nbytes})
        yield from drv.exchange(
            21, [SendBlock(MacAddress(1 - r), payload.nbytes, payload)], plan
        )

    sim.process(rank(0))
    sim.process(rank(1))
    sim.run()
    spans = cluster.trace.spans_named("inic-exchange")
    assert len(spans) == 2
    assert all(s.duration > 0 for s in spans)
