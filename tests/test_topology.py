"""Unit tests for the hierarchical fabrics (fat-tree, torus).

Pins the three contracts ``repro.net.topology`` makes:

* **Low-load star equivalence** — with ``hop_latency=0`` an uncontended
  frame arrives at the identical simulated time on the single aggregate
  star, the fat-tree, and the torus (the A/B anchor the CI runs via
  ``python -m repro.net.topology --ab``).
* **Routing geometry** — deterministic spine selection, dimension-
  ordered torus routing with shortest-wrap at the boundaries.
* **Edge cases across fabric kinds** — duplicate addresses, port
  exhaustion, zero-byte frames, fault composition, telemetry naming.
"""

import pytest

from repro.errors import NetworkError
from repro.faults import FaultSpec, FaultPlan
from repro.net import (
    BROADCAST,
    Frame,
    GIGABIT_ETHERNET,
    MacAddress,
    build_star,
)
from repro.net.fabric import build_aggregate_star
from repro.net.topology import (
    FatTreeTopology,
    TorusTopology,
    _ab_arrivals,
    build_fattree,
    build_torus,
    torus_dims,
)
from repro.sim import Simulator

ALL_BUILDERS = [build_star, build_aggregate_star, build_fattree, build_torus]
HIER_BUILDERS = [build_fattree, build_torus]


class Station:
    """Minimal FrameDevice for fabric tests."""

    def __init__(self, sim):
        self.sim = sim
        self.wire = None
        self.got = []

    def attach_wire(self, wire):
        self.wire = wire

    def receive_frame(self, frame):
        self.got.append((frame, self.sim.now))

    def send(self, frame):
        self.wire.send(frame)


def make_fabric(builder, n=8, **opts):
    sim = Simulator()
    stations = [Station(sim) for _ in range(n)]
    addrs = [MacAddress(i) for i in range(n)]
    fabric = builder(sim, list(zip(addrs, stations)), **opts)
    return sim, stations, addrs, fabric


# -- low-load star equivalence (the A/B anchor) -----------------------------


def test_low_load_arrivals_match_single_star():
    """The harness the CI runs: scattered low-load traffic arrives at
    byte-identical times on every fabric."""
    ref, _ = _ab_arrivals(build_aggregate_star, n=24, frames=120, gap=1e-3)
    for builder, opts in (
        (build_fattree, {}),
        (build_fattree, {"oversub": 2}),
        (build_torus, {}),
    ):
        got, fabric = _ab_arrivals(builder, n=24, frames=120, gap=1e-3, **opts)
        assert got == ref, f"{builder.__name__} {opts} diverged from star"
        assert fabric.hop_stats()["max_hops"] > 1  # actually multi-hop


@pytest.mark.parametrize("builder", HIER_BUILDERS)
def test_uncontended_unicast_matches_wire_star(builder):
    arrivals = {}
    for b in (build_star, builder):
        sim, stations, addrs, _ = make_fabric(b, n=8)
        stations[0].send(Frame(addrs[0], addrs[7], payload_bytes=1500, headers=40))
        sim.run()
        assert len(stations[7].got) == 1
        arrivals[b.__name__] = stations[7].got[0][1]
    assert arrivals[builder.__name__] == arrivals["build_star"]


def test_hop_latency_breaks_equivalence_on_purpose():
    sim, stations, addrs, fabric = make_fabric(
        build_fattree, n=8, hop_latency=5e-6
    )
    sim2, stations2, addrs2, _ = make_fabric(build_aggregate_star, n=8)
    for st, ad in ((stations, addrs), (stations2, addrs2)):
        st[0].send(Frame(ad[0], ad[7], payload_bytes=1000))
    sim.run()
    sim2.run()
    # Cross-leaf route has 2 intermediate hops charged 5us each.
    assert stations[7].got[0][1] == pytest.approx(
        stations2[7].got[0][1] + 2 * 5e-6, rel=1e-12
    )


# -- routing geometry --------------------------------------------------------


def test_fattree_routes_are_deterministic_and_well_formed():
    topo = FatTreeTopology(64, oversub=2)
    assert topo.n_leaves * topo.leaf_ports >= 64
    for src in range(64):
        for dst in range(64):
            if src == dst:
                continue
            hops = topo.route(src, dst)
            assert hops == topo.route(src, dst)  # no ECMP jitter
            assert hops[-1] == dst  # egress clock is the station port
            same_leaf = src // topo.leaf_ports == dst // topo.leaf_ports
            assert len(hops) == (1 if same_leaf else 3)


def test_fattree_same_spine_for_same_destination():
    """Traffic to one destination always crosses one spine — the
    deterministic ECMP-free choice the docstring promises."""
    topo = FatTreeTopology(64, leaf_ports=8)
    dst = 42
    spines = set()
    for src in range(64):
        if src // 8 == dst // 8:
            continue
        hops = topo.route(src, dst)
        spines.add((hops[1] - topo._spine_base) // topo.n_leaves)
    assert len(spines) == 1


def test_torus_dims_factorizations():
    assert torus_dims(1024) == (8, 8, 16)
    assert torus_dims(64) == (4, 4, 4)
    assert torus_dims(8) == (2, 2, 2)
    assert torus_dims(1) == (1, 1, 1)
    x, y, z = torus_dims(96)
    assert x * y * z == 96


def test_torus_wraparound_takes_shorter_direction():
    """At a dimension boundary the route wraps instead of walking the
    long way: 0 -> 7 on an 8-wide ring is one negative-x hop."""
    topo = TorusTopology(512, dims=(8, 8, 8))
    hops = topo.route(0, 7)  # coords (0,0,0) -> (7,0,0)
    # one x- hop from router 0, then eject at router 7
    assert hops == (0 * 7 + 1, 7 * 7 + 6)
    # 0 -> 4 is distance 4 both ways; ties break positive: 4 x+ hops.
    hops = topo.route(0, 4)
    assert len(hops) == 5
    assert all(h % 7 == 0 for h in hops[:-1])  # all x+ direction clocks


def test_torus_dimension_ordered_xyz():
    topo = TorusTopology(64, dims=(4, 4, 4))
    # (0,0,0) -> (1,1,1): one hop per axis, in X, Y, Z order.
    dst = 1 + 4 * (1 + 4 * 1)
    hops = topo.route(0, dst)
    dirs = [h % 7 for h in hops[:-1]]
    assert dirs == [0, 2, 4]  # x+, y+, z+
    assert hops[-1] == dst * 7 + 6


def test_torus_wrap_contention_is_modelled():
    """Two flows that share the wrap link contend there: the second
    frame arrives one serialization time after the first."""
    sim, stations, addrs, fabric = make_fabric(build_torus, n=8, dims=(8, 1, 1))
    # 0->7 and 1->7: 0 wraps x- (link router0.x-), 1 routes 1->0->7 so
    # its second hop crosses router0.x- too.
    f = lambda src: Frame(addrs[src], addrs[7], payload_bytes=1460, headers=40)
    stations[0].send(f(0))
    stations[1].send(f(1))
    sim.run()
    (first, t1), (second, t2) = stations[7].got
    tx = first.wire_size / GIGABIT_ETHERNET.bandwidth
    assert t2 == pytest.approx(t1 + tx, rel=1e-9)


def test_fattree_shared_spine_link_serializes():
    """Two cross-leaf flows to the same destination share the spine
    downlink and the egress port; arrivals space by one tx time."""
    sim, stations, addrs, fabric = make_fabric(
        build_fattree, n=9, leaf_ports=3
    )
    f = lambda src: Frame(addrs[src], addrs[8], payload_bytes=1460, headers=40)
    stations[0].send(f(0))  # leaf 0
    stations[3].send(f(3))  # leaf 1
    sim.run()
    (first, t1), (_, t2) = stations[8].got
    tx = first.wire_size / GIGABIT_ETHERNET.bandwidth
    assert t2 == pytest.approx(t1 + tx, rel=1e-9)


# -- edge cases across all fabric kinds --------------------------------------


@pytest.mark.parametrize("builder", ALL_BUILDERS)
def test_duplicate_station_addresses_rejected(builder):
    sim = Simulator()
    s = [Station(sim), Station(sim)]
    dup = [(MacAddress(1), s[0]), (MacAddress(1), s[1])]
    with pytest.raises(NetworkError, match="duplicate"):
        builder(sim, dup)


@pytest.mark.parametrize("builder", ALL_BUILDERS)
def test_empty_station_list_rejected(builder):
    with pytest.raises(NetworkError):
        builder(Simulator(), [])


def test_fattree_port_exhaustion():
    with pytest.raises(NetworkError, match="out of ports"):
        FatTreeTopology(10, leaf_ports=3, leaves=3)
    sim = Simulator()
    stations = [(MacAddress(i), Station(sim)) for i in range(10)]
    with pytest.raises(NetworkError, match="out of ports"):
        build_fattree(sim, stations, leaf_ports=3, leaves=3)


def test_torus_port_exhaustion():
    with pytest.raises(NetworkError, match="out of ports"):
        TorusTopology(9, dims=(2, 2, 2))
    sim = Simulator()
    stations = [(MacAddress(i), Station(sim)) for i in range(9)]
    with pytest.raises(NetworkError, match="out of ports"):
        build_torus(sim, stations, dims=(2, 2, 2))


def test_bad_topology_parameters():
    with pytest.raises(NetworkError, match="oversub"):
        FatTreeTopology(8, oversub=0)
    with pytest.raises(NetworkError, match="leaf_ports"):
        FatTreeTopology(8, leaf_ports=0)
    with pytest.raises(NetworkError, match="three positive"):
        TorusTopology(8, dims=(2, 4))
    with pytest.raises(NetworkError, match="three positive"):
        TorusTopology(8, dims=(2, -2, 2))


@pytest.mark.parametrize("builder", ALL_BUILDERS)
def test_zero_byte_frames_deliver_everywhere(builder):
    """A zero-payload frame still pads to the Ethernet minimum and
    arrives at the same time on every fidelity level."""
    sim, stations, addrs, _ = make_fabric(builder, n=4)
    stations[0].send(Frame(addrs[0], addrs[3], payload_bytes=0, headers=8))
    sim.run()
    assert len(stations[3].got) == 1
    frame, t = stations[3].got[0]
    assert frame.payload_bytes == 0
    assert frame.wire_size > 0  # padded to MIN_FRAME_PAYLOAD + overhead
    assert t > 0.0


def test_zero_byte_frame_times_agree_across_kinds():
    times = set()
    for builder in ALL_BUILDERS:
        sim, stations, addrs, _ = make_fabric(builder, n=4)
        stations[0].send(Frame(addrs[0], addrs[3], payload_bytes=0, headers=8))
        sim.run()
        times.add(stations[3].got[0][1])
    assert len(times) == 1


@pytest.mark.parametrize("builder", HIER_BUILDERS)
def test_broadcast_fans_out(builder):
    sim, stations, addrs, fabric = make_fabric(builder, n=6)
    stations[2].send(Frame(addrs[2], BROADCAST, payload_bytes=100))
    sim.run()
    assert [len(s.got) for s in stations] == [1, 1, 0, 1, 1, 1]
    assert fabric.total_forwarded() == 5


@pytest.mark.parametrize("builder", HIER_BUILDERS)
def test_unknown_destination_raises(builder):
    sim, stations, addrs, _ = make_fabric(builder, n=2)
    with pytest.raises(NetworkError, match="no forwarding entry"):
        stations[0].send(Frame(addrs[0], MacAddress(99), payload_bytes=64))


# -- fault composition -------------------------------------------------------


@pytest.mark.parametrize("builder", HIER_BUILDERS)
def test_fault_plan_composes_with_hierarchical_fabrics(builder):
    sim = Simulator()
    n = 4
    stations = [Station(sim) for _ in range(n)]
    addrs = [MacAddress(i) for i in range(n)]
    plan = FaultPlan(FaultSpec(loss_rate=0.5, seed=9))
    fabric = builder(sim, list(zip(addrs, stations)), faults=plan)
    sent = 200
    for _ in range(sent):
        stations[0].send(Frame(addrs[0], addrs[3], payload_bytes=500))
    sim.run()
    dropped = plan.link_counters()["frames_dropped"]
    assert dropped > 0
    assert len(stations[3].got) == sent - dropped


def test_fault_streams_identical_across_fabric_kinds():
    """Same seed, same uplink names => the drop pattern is the same
    frame indices on the aggregate star and on both hierarchies."""
    patterns = []
    for builder in (build_aggregate_star, build_fattree, build_torus):
        sim = Simulator()
        stations = [Station(sim) for _ in range(4)]
        addrs = [MacAddress(i) for i in range(4)]
        plan = FaultPlan(FaultSpec(loss_rate=0.3, seed=21))
        builder(sim, list(zip(addrs, stations)), faults=plan)
        got = []
        for i in range(100):
            stations[0].send(
                Frame(addrs[0], addrs[2], payload_bytes=500, meta={"i": i})
            )
        sim.run()
        got = sorted(f.meta["i"] for f, _ in stations[2].got)
        patterns.append(tuple(got))
    assert patterns[0] == patterns[1] == patterns[2]


@pytest.mark.parametrize("builder", HIER_BUILDERS)
def test_fault_buffer_pressure_applies(builder):
    sim = Simulator()
    stations = [(MacAddress(i), Station(sim)) for i in range(4)]
    plan = FaultPlan(FaultSpec(switch_buffer_scale=0.25, seed=1, loss_rate=1e-9))
    fabric = builder(sim, stations, faults=plan)
    assert fabric.buffer_bytes_per_port == pytest.approx(
        GIGABIT_ETHERNET.switch_buffer_per_port * 0.25
    )


# -- statistics & telemetry --------------------------------------------------


def test_hop_stats_accounting():
    sim, stations, addrs, fabric = make_fabric(build_fattree, n=9, leaf_ports=3)
    stations[0].send(Frame(addrs[0], addrs[1], payload_bytes=100))  # same leaf: 1
    stations[0].send(Frame(addrs[0], addrs[8], payload_bytes=100))  # cross: 3
    sim.run()
    hs = fabric.hop_stats()
    assert hs["frames"] == 2
    assert hs["total_hops"] == 4
    assert hs["max_hops"] == 3
    assert hs["avg_hops"] == pytest.approx(2.0)


@pytest.mark.parametrize("builder", HIER_BUILDERS)
def test_telemetry_surface_is_star_compatible_plus_switches(builder):
    from repro.telemetry import MetricsRegistry

    sim, stations, addrs, fabric = make_fabric(builder, n=4)
    registry = MetricsRegistry()
    fabric.register_telemetry(registry, "switch")
    stations[0].send(Frame(addrs[0], addrs[3], payload_bytes=500))
    sim.run()
    snap = registry.snapshot()
    assert snap["switch.forwarded"] == 1
    assert snap["switch.drops"] == 0
    assert snap["switch.port3.frames"] == 1
    assert snap["switch.port3.bytes"] > 500
    assert snap["switch.hops"] >= 1
    assert snap["switch.avg_hops"] >= 1.0
    sw_frames = [v for k, v in snap.items() if k.endswith(".frames") and ".sw." in k]
    assert sum(sw_frames) >= 1  # per-switch aggregates present and live


def test_port_stats_resolve_to_egress_clock():
    sim, stations, addrs, fabric = make_fabric(build_torus, n=8)
    stations[0].send(Frame(addrs[0], addrs[5], payload_bytes=700))
    sim.run()
    assert fabric.port_stats(5).frames_forwarded == 1
    assert fabric.port_stats(0).frames_forwarded == 0
    name = fabric.topology.clock_name(fabric._egress_clock[5])
    assert name.endswith("eject")


def test_fattree_clock_names():
    topo = FatTreeTopology(9, leaf_ports=3)
    assert topo.clock_name(0) == "leaf0.down0"
    assert topo.clock_name(4) == "leaf1.down1"
    up0 = topo._up_base
    assert topo.clock_name(up0).startswith("leaf0.up")
    assert topo.clock_name(topo._spine_base).startswith("spine0.down")
    names = {topo.clock_name(c) for c in range(topo.n_clocks)}
    assert len(names) == topo.n_clocks  # all distinct


# -- builder/spec integration ------------------------------------------------


def test_cluster_spec_fabric_options_roundtrip():
    from repro.cluster.builder import ClusterSpec, FABRIC_KINDS

    spec = ClusterSpec(n_nodes=16).with_fabric("fattree", oversub=2)
    assert spec.fabric == "fattree"
    assert spec.fabric_options == (("oversub", 2),)
    with pytest.raises(ValueError, match="unknown fabric 'mesh'"):
        ClusterSpec(n_nodes=2, fabric="mesh")
    with pytest.raises(ValueError, match="choose from"):
        ClusterSpec(n_nodes=2, fabric="mesh")
    with pytest.raises(ValueError, match="only valid for hierarchical"):
        ClusterSpec(n_nodes=2, fabric="wire", fabric_options=(("oversub", 2),))
    # list-valued options become tuples so the frozen spec stays hashable
    spec = ClusterSpec(n_nodes=8).with_fabric("torus", dims=[2, 2, 2])
    assert spec.fabric_options == (("dims", (2, 2, 2)),)
    hash(spec.fabric_options)


def test_experiment_facade_builds_hierarchical_cluster():
    from repro.core.api import Experiment
    from repro.net.topology import HierarchicalFabric

    session = Experiment().nodes(16).fabric("fattree", oversub=2).build()
    assert isinstance(session.cluster.switch, HierarchicalFabric)
    assert session.cluster.switch.topology.oversub == 2
    session = Experiment().nodes(8).fabric("torus", dims=(2, 2, 2)).build()
    assert session.cluster.switch.topology.dims == (2, 2, 2)


def test_scale_by_name_error_names_choices():
    from repro.bench.harness import Scale
    from repro.errors import ApplicationError

    with pytest.raises(ApplicationError, match="unknown scale 'huge'"):
        Scale.by_name("huge")
    with pytest.raises(ApplicationError, match="bench, ci, large, paper"):
        Scale.by_name("huge")
    assert Scale.by_name("large").topologies == ("fattree", "torus")


# -- bulk flow-clock admission (repro.net.flowclock) ------------------------
@pytest.mark.parametrize(
    "builder,opts",
    [(build_fattree, {}), (build_fattree, {"oversub": 2}), (build_torus, {})],
)
def test_bulk_exchange_matches_frame_level(builder, opts):
    """Bulk train admission through the hierarchical fabrics: arrival
    floats, per-hop ledger, and drop accounting identical to the
    frame-level path (the tail-drop boundary rides inside the
    harness's incast burst on the fat-tree)."""
    from repro.net.flowclock import _replay

    ref, ref_ledger, _ = _replay(builder, opts, 16, bulk=False)
    got, ledger, fabric = _replay(builder, opts, 16, bulk=True)
    assert got == ref
    assert ledger == ref_ledger
    assert fabric.trains_fast > 0
