"""Unit tests for the standard NIC model."""

import pytest

from repro.hw import CPU, CacheLevel, CoalescePolicy, MemoryHierarchy
from repro.net import Frame, GIGABIT_ETHERNET, MacAddress, StandardNIC, build_star
from repro.sim import FairShareBus, Simulator


def make_cpu(sim):
    mh = MemoryHierarchy(
        [
            CacheLevel("L1", 64 * 1024, 8e9, 4e9),
            CacheLevel("DRAM", float("inf"), 0.6e9, 0.12e9),
        ]
    )
    return CPU(sim, mh, interrupt_cost=10e-6)


def make_pair(sim, coalesce=CoalescePolicy()):
    """Two NICs behind a gigabit switch; returns (nics, cpus, addrs)."""
    nics, cpus, addrs = [], [], []
    for i in range(2):
        cpu = make_cpu(sim)
        bus = FairShareBus(sim, bandwidth=112e6, name=f"pci{i}")
        nic = StandardNIC(
            sim,
            MacAddress(i),
            host_bus=bus,
            cpu=cpu,
            coalesce=coalesce,
            name=f"nic{i}",
        )
        nics.append(nic)
        cpus.append(cpu)
        addrs.append(MacAddress(i))
    build_star(sim, list(zip(addrs, nics)))
    return nics, cpus, addrs


def test_frame_travels_nic_to_nic():
    sim = Simulator()
    nics, _, addrs = make_pair(sim)
    got = []
    nics[1].bind_receiver(lambda f: got.append((f, sim.now)))
    nics[0].transmit_nowait(Frame(addrs[0], addrs[1], payload_bytes=1000))
    sim.run()
    assert len(got) == 1
    assert got[0][0].payload_bytes == 1000
    assert got[0][1] > 0


def test_payload_crosses_host_pci_both_sides():
    sim = Simulator()
    nics, _, addrs = make_pair(sim)
    nics[1].bind_receiver(lambda f: None)
    nics[0].transmit_nowait(Frame(addrs[0], addrs[1], payload_bytes=4000))
    sim.run()
    assert nics[0]._tx_dma.bytes_moved == pytest.approx(4000)
    assert nics[1]._rx_dma.bytes_moved == pytest.approx(4000)


def test_interrupt_per_frame_without_coalescing():
    sim = Simulator()
    nics, cpus, addrs = make_pair(sim)
    nics[1].bind_receiver(lambda f: None)
    for _ in range(10):
        nics[0].transmit_nowait(Frame(addrs[0], addrs[1], payload_bytes=1500))
    sim.run()
    assert nics[1].irq.interrupts_delivered == 10
    assert cpus[1].interrupt_time > 0


def test_coalescing_reduces_interrupts_for_bursts():
    sim = Simulator()
    nics, _, addrs = make_pair(
        sim, coalesce=CoalescePolicy(delay=100e-6, max_frames=8)
    )
    nics[1].bind_receiver(lambda f: None)
    for _ in range(32):
        nics[0].transmit_nowait(Frame(addrs[0], addrs[1], payload_bytes=1500))
    sim.run()
    assert nics[1].irq.interrupts_delivered < 32
    assert nics[1].irq.coalescing_ratio() > 2.0
    assert nics[1].stats.rx_frames == 32


def test_coalescing_delays_single_frame_delivery():
    """The slow-start poison: a lone frame waits out the coalescing timer."""
    delay = 200e-6
    times = {}
    for policy in ("imm", "coal"):
        sim = Simulator()
        coalesce = (
            CoalescePolicy()
            if policy == "imm"
            else CoalescePolicy(delay=delay, max_frames=64)
        )
        nics, _, addrs = make_pair(sim, coalesce=coalesce)
        got = []
        nics[1].bind_receiver(lambda f: got.append(sim.now))
        nics[0].transmit_nowait(Frame(addrs[0], addrs[1], payload_bytes=500))
        sim.run()
        times[policy] = got[0]
    assert times["coal"] - times["imm"] == pytest.approx(delay, rel=0.05)


def test_rx_ring_overflow_drops():
    sim = Simulator()
    cpu = make_cpu(sim)
    bus = FairShareBus(sim, bandwidth=1e3, name="slowpci")  # pathological PCI
    nic = StandardNIC(
        sim, MacAddress(0), host_bus=bus, cpu=cpu, rx_ring=4, name="tiny"
    )
    nic.bind_receiver(lambda f: None)
    for _ in range(10):
        nic.receive_frame(Frame(MacAddress(1), MacAddress(0), payload_bytes=1500))
    sim.run(until=0.1)
    assert nic.stats.rx_ring_drops > 0


def test_rx_ring_overflow_accounts_frame_trains():
    """Tail drops under CHUNK fidelity: a dropped train counts all of
    its physical frames and its full wire bytes."""
    sim = Simulator()
    cpu = make_cpu(sim)
    bus = FairShareBus(sim, bandwidth=1e3, name="slowpci")  # pathological PCI
    nic = StandardNIC(
        sim, MacAddress(0), host_bus=bus, cpu=cpu, rx_ring=2, name="tiny"
    )
    nic.bind_receiver(lambda f: None)
    frames = [
        Frame(MacAddress(1), MacAddress(0), payload_bytes=6000, frame_count=4)
        for _ in range(5)
    ]
    for f in frames:
        nic.receive_frame(f)
    sim.run(until=0.1)
    # Ring holds 2 trains; the other 3 tail-drop whole.
    assert nic.stats.rx_ring_drops == 3 * 4
    assert nic.stats.rx_ring_drop_bytes == pytest.approx(3 * frames[0].wire_size)


def test_quantum_frames_count_as_many():
    sim = Simulator()
    nics, _, addrs = make_pair(sim)
    nics[1].bind_receiver(lambda f: None)
    nics[0].transmit_nowait(
        Frame(addrs[0], addrs[1], payload_bytes=15000, frame_count=10)
    )
    sim.run()
    assert nics[1].stats.rx_frames == 10
    assert nics[1].irq.causes_raised == 10


def test_nic_stats_byte_accounting():
    sim = Simulator()
    nics, _, addrs = make_pair(sim)
    nics[1].bind_receiver(lambda f: None)
    f = Frame(addrs[0], addrs[1], payload_bytes=1000)
    nics[0].transmit_nowait(f)
    sim.run()
    assert nics[0].stats.tx_bytes == pytest.approx(f.wire_size)
    assert nics[1].stats.rx_bytes == pytest.approx(f.wire_size)
