"""Tests for deterministic fault injection and loss recovery.

Covers the fault subsystem end to end: spec validation and sweep-param
embedding, per-wire injector determinism, the link/switch/ring/FPGA
hooks, NACK-driven retransmission in both the raw stack and the INIC
protocol, ``TransferAborted`` on budget exhaustion, graceful degradation
to the host-TCP path, and the serial-vs-parallel determinism of lossy
sweep points.
"""

import dataclasses

import pytest

from repro.core import Experiment, protocol_processor_design
from repro.errors import (
    ConfigurationError,
    FaultConfigError,
    TransferAborted,
)
from repro.faults import (
    ComponentFaultSpec,
    CORRUPT,
    DELIVER,
    DROP,
    FaultPlan,
    FaultSpec,
    NO_FAULTS,
    WireFault,
)
from repro.inic import SendBlock
from repro.inic.card import IDEAL_INIC
from repro.net import Frame, MacAddress, StandardNIC, Wire, build_star
from repro.protocols import RawConfig, RawEthernetStack, TransferPlan
from repro.protocols.base import Mailbox
from repro.sim import FairShareBus, Simulator


def _recovery(card, retries=8):
    """Card spec with NACK/retransmit recovery enabled."""
    return dataclasses.replace(
        card, proto=dataclasses.replace(card.proto, max_retries=retries)
    )


def _acc(n, card=IDEAL_INIC, faults=None):
    session = Experiment().nodes(n).card(card).faults(faults).build()
    return session.cluster, session.manager


# -- FaultSpec: validation + sweep embedding ---------------------------------------


def test_fault_spec_validates_rates_and_scales():
    with pytest.raises(FaultConfigError):
        FaultSpec(loss_rate=1.5)
    with pytest.raises(FaultConfigError):
        FaultSpec(corrupt_rate=-0.1)
    with pytest.raises(FaultConfigError):
        FaultSpec(config_failure_rate=2.0)
    with pytest.raises(FaultConfigError):
        FaultSpec(switch_buffer_scale=0.0)
    with pytest.raises(FaultConfigError):
        FaultSpec(rx_ring_scale=-1.0)
    with pytest.raises(FaultConfigError):
        FaultSpec(outages=((-1.0, 2.0),))
    with pytest.raises(FaultConfigError):
        FaultSpec(outages=((0.0, 0.0),))


def test_fault_spec_params_roundtrip():
    spec = FaultSpec(
        seed=9, loss_rate=0.01, outages=((0.1, 0.2),), wires="fabric.up*"
    )
    assert FaultSpec.from_params(spec.to_params()) == spec
    assert NO_FAULTS.to_params() is None
    assert FaultSpec.from_params(None) == NO_FAULTS
    with pytest.raises(FaultConfigError):
        FaultSpec.from_params({"loss_rate": 0.1, "bogus": 1})


def test_fault_spec_enabled_flags():
    assert not NO_FAULTS.enabled
    assert FaultSpec(loss_rate=0.1).enabled
    assert FaultSpec(loss_rate=0.1).link_faults
    assert FaultSpec(config_failure_rate=0.5).enabled
    assert not FaultSpec(config_failure_rate=0.5).link_faults
    # A disabled spec never produces a runtime plan.
    assert FaultPlan.from_params(None) is None
    assert FaultPlan.from_params(FaultSpec(loss_rate=0.2).to_params()) is not None


# -- WireFault / FaultPlan: determinism and hooks ----------------------------------


def _feed(fault, n=200):
    f = Frame(MacAddress(0), MacAddress(1), payload_bytes=1500, frame_count=3)
    return [fault.disposition(f, t * 1e-4) for t in range(n)]


def test_wire_fault_decisions_are_seed_deterministic():
    spec = FaultSpec(seed=5, loss_rate=0.1, corrupt_rate=0.05)
    a, b = WireFault(spec, "fabric.up0"), WireFault(spec, "fabric.up0")
    assert _feed(a) == _feed(b)
    assert a.log == b.log
    assert a.frames_dropped == b.frames_dropped > 0
    # A different wire name is a different stream.
    c = WireFault(spec, "fabric.up1")
    assert _feed(c) != _feed(a)


def test_wire_fault_outage_drops_everything_inside_window():
    fault = WireFault(FaultSpec(outages=((0.01, 0.02),)), "w")
    f = Frame(MacAddress(0), MacAddress(1), payload_bytes=100)
    assert fault.disposition(f, 0.005) == DELIVER
    assert fault.disposition(f, 0.015) == DROP
    assert fault.disposition(f, 0.031) == DELIVER


def test_outage_window_validation_follows_convention():
    """Bad windows carry value, position, and the rule broken."""
    with pytest.raises(FaultConfigError, match=r"outages\[0\] is "):
        FaultSpec(outages=((0.1, -0.1),))
    with pytest.raises(FaultConfigError, match="must be sorted by start"):
        FaultSpec(outages=((0.2, 0.1), (0.1, 0.05)))
    with pytest.raises(FaultConfigError, match="must not overlap"):
        FaultSpec(outages=((0.1, 0.2), (0.2, 0.1)))
    # A zero-length gap is explicitly legal: back-to-back windows.
    spec = FaultSpec(outages=((0.1, 0.1), (0.2, 0.1)))
    assert spec.outages == ((0.1, 0.1), (0.2, 0.1))


def test_component_fault_spec_validation_and_roundtrip():
    with pytest.raises(FaultConfigError, match="non-empty name"):
        ComponentFaultSpec("")
    with pytest.raises(FaultConfigError, match="choose from switch, uplink"):
        ComponentFaultSpec("spine0", windows=((0.0, 1.0),), kind="router")
    with pytest.raises(FaultConfigError, match="at least one"):
        ComponentFaultSpec("spine0", windows=())
    with pytest.raises(FaultConfigError, match="must not overlap"):
        ComponentFaultSpec("spine0", windows=((0.0, 2.0), (1.0, 1.0)))
    spec = ComponentFaultSpec("up3", windows=((1e-3, 2e-3),), kind="uplink")
    assert ComponentFaultSpec.from_params(spec.to_json()) == spec
    with pytest.raises(FaultConfigError, match="unknown component fault field"):
        ComponentFaultSpec.from_params({"component": "up3", "mttr": 1.0})


def test_fault_spec_rejects_duplicate_components():
    with pytest.raises(FaultConfigError, match="duplicate component fault"):
        FaultSpec(
            components=(
                ComponentFaultSpec("spine0", windows=((0.0, 1.0),)),
                ComponentFaultSpec("spine0", windows=((2.0, 1.0),)),
            )
        )
    # Same name under a different kind is a different component.
    FaultSpec(
        components=(
            ComponentFaultSpec("x", windows=((0.0, 1.0),)),
            ComponentFaultSpec("x", windows=((0.0, 1.0),), kind="uplink"),
        )
    )


def test_fault_spec_component_params_roundtrip():
    spec = FaultSpec(
        seed=4,
        detection_delay=1e-4,
        components=(
            ComponentFaultSpec("spine1", windows=((1e-3, 2e-3),)),
            ComponentFaultSpec("up0", windows=((0.0, 1e-3),), kind="uplink"),
        ),
    )
    assert spec.enabled
    assert not spec.link_faults  # components are not link faults
    assert FaultSpec.from_params(spec.to_params()) == spec
    with pytest.raises(FaultConfigError, match="detection_delay"):
        FaultSpec(detection_delay=-1.0)


def test_outage_boundary_at_exact_serialization_instant():
    """A window is half-open [start, start+dur): a frame handed to the
    wire at exactly the outage start is dropped; one at exactly the
    repair instant is delivered."""
    fault = WireFault(FaultSpec(outages=((0.01, 0.02),)), "w")
    f = Frame(MacAddress(0), MacAddress(1), payload_bytes=100)
    assert fault.disposition(f, 0.01) == DROP
    assert fault.disposition(f, 0.03) == DELIVER


def test_back_to_back_outage_windows_leave_no_gap():
    fault = WireFault(
        FaultSpec(outages=((0.01, 0.01), (0.02, 0.01))), "w"
    )
    f = Frame(MacAddress(0), MacAddress(1), payload_bytes=100)
    assert fault.disposition(f, 0.0199999) == DROP
    assert fault.disposition(f, 0.02) == DROP  # the seam instant
    assert fault.disposition(f, 0.0200001) == DROP
    assert fault.disposition(f, 0.03) == DELIVER


def test_outage_drop_accounting_matches_unbatched_runs():
    """A coalesced train dropped in an outage counts frame_count frames
    — identical totals to feeding the frames unbatched."""
    spec = FaultSpec(outages=((0.0, 1.0),))
    batched = WireFault(spec, "w")
    train = Frame(
        MacAddress(0), MacAddress(1), payload_bytes=1500, frame_count=3
    )
    assert batched.disposition(train, 0.5) == DROP
    single = WireFault(spec, "w")
    one = Frame(MacAddress(0), MacAddress(1), payload_bytes=1500)
    for _ in range(3):
        assert single.disposition(one, 0.5) == DROP
    assert batched.frames_dropped == single.frames_dropped == 3


def test_fault_plan_wire_pattern_and_resource_hooks():
    plan = FaultPlan(
        FaultSpec(
            loss_rate=0.1,
            wires="fabric.up*",
            switch_buffer_scale=0.5,
            rx_ring_scale=0.001,
        )
    )
    assert plan.wire_fault("fabric.up0") is not None
    assert plan.wire_fault("fabric.down0") is None
    # Hooks are cached per wire (one stream per component).
    assert plan.wire_fault("fabric.up0") is plan.wire_fault("fabric.up0")
    assert plan.switch_buffer(128 * 1024) == 64 * 1024
    assert plan.rx_ring_depth(256) == 1  # floor of 1 descriptor


def test_config_attempt_draws_are_fresh_and_deterministic():
    spec = FaultSpec(seed=3, config_failure_rate=0.5)
    a, b = FaultPlan(spec), FaultPlan(spec)
    draws = [a.config_attempt_fails("inic0", k) for k in range(20)]
    assert draws == [b.config_attempt_fails("inic0", k) for k in range(20)]
    # Retrying is a fresh draw, not a replay: both outcomes appear.
    assert True in draws and False in draws
    always = FaultPlan(FaultSpec(config_failure_rate=1.0))
    never = FaultPlan(FaultSpec(config_failure_rate=0.0))
    assert all(always.config_attempt_fails("inic0", k) for k in range(4))
    assert not any(never.config_attempt_fails("inic0", k) for k in range(4))


# -- Wire-level injection ----------------------------------------------------------


class ScriptedFault:
    """Test injector with a fixed disposition script (then DELIVER)."""

    def __init__(self, verdicts):
        self.verdicts = list(verdicts)

    def disposition(self, frame, now):
        return self.verdicts.pop(0) if self.verdicts else DELIVER


class _Sink:
    def __init__(self):
        self.got = []

    def receive_frame(self, frame):
        self.got.append(frame)


def test_wire_drop_delivers_nothing_and_burns_no_time():
    sim = Simulator()
    wire = Wire(sim, bandwidth=1e9)
    sink = _Sink()
    wire.attach(sink)
    wire.install_fault(ScriptedFault([DROP]))
    wire.send(Frame(MacAddress(0), MacAddress(1), payload_bytes=1000))
    wire.send(Frame(MacAddress(0), MacAddress(1), payload_bytes=1000))
    sim.run()
    assert len(sink.got) == 1  # second frame survives
    assert wire.frames_sent == 1


def test_wire_corrupt_burns_serialization_time_without_delivery():
    sim = Simulator()
    wire = Wire(sim, bandwidth=1e6)
    sink = _Sink()
    wire.attach(sink)
    wire.install_fault(ScriptedFault([CORRUPT]))
    f = Frame(MacAddress(0), MacAddress(1), payload_bytes=1000)
    wire.send(f)
    sim.run()
    assert sink.got == []
    assert wire.busy_time == pytest.approx(f.wire_size / 1e6)


def test_wire_rejects_second_injector():
    sim = Simulator()
    wire = Wire(sim, bandwidth=1e9)
    wire.install_fault(ScriptedFault([]))
    from repro.errors import LinkError

    with pytest.raises(LinkError):
        wire.install_fault(ScriptedFault([]))


# -- Raw stack reliable mode -------------------------------------------------------


def _raw_pair(sim, cfg, faults=None, batch=None):
    from repro.net.batching import DEFAULT_BATCH

    batch = batch or DEFAULT_BATCH
    nics, stacks = [], []
    for i in range(2):
        bus = FairShareBus(sim, bandwidth=112e6)
        nic = StandardNIC(
            sim, MacAddress(i), host_bus=bus, batch=batch, name=f"nic{i}"
        )
        stacks.append(RawEthernetStack(sim, nic, config=cfg, name=f"raw{i}"))
        nics.append(nic)
    build_star(
        sim,
        [(MacAddress(i), nics[i]) for i in range(2)],
        batch=batch,
        faults=faults,
    )
    return nics, stacks


def test_raw_config_validates_recovery_timing():
    from repro.errors import ProtocolError

    with pytest.raises(ProtocolError):
        RawConfig(timeout=0.0)
    with pytest.raises(ProtocolError):
        RawConfig(retry_backoff=0.5)
    with pytest.raises(ProtocolError):
        RawConfig(max_retries=-1)


def test_raw_reliable_completes_on_ack_without_faults():
    sim = Simulator()
    _, stacks = _raw_pair(sim, RawConfig(reliable=True))
    t = {}

    def sender():
        yield stacks[0].send(MacAddress(1), 40_000)
        t["acked"] = sim.now

    def receiver():
        yield stacks[1].recv()

    sim.process(sender())
    sim.process(receiver())
    sim.run()
    assert stacks[1].messages_delivered == 1
    assert stacks[0].acks_received == 1
    assert stacks[0].retransmits == 0
    assert t["acked"] > 0


def test_raw_reliable_recovers_from_outage_by_timeout_resend():
    sim = Simulator()
    cfg = RawConfig(reliable=True, timeout=0.005, max_retries=4)
    plan = FaultPlan(FaultSpec(outages=((0.0, 0.002),)))
    _, stacks = _raw_pair(sim, cfg, faults=plan)
    t = {}

    def sender():
        yield stacks[0].send(MacAddress(1), 20_000)
        t["acked"] = sim.now

    def receiver():
        yield stacks[1].recv()

    sim.process(sender())
    sim.process(receiver())
    sim.run()
    assert stacks[1].messages_delivered == 1
    assert stacks[0].retransmits >= 1
    assert stacks[0].transfer_aborts == 0
    assert t["acked"] > cfg.timeout  # paid at least one timeout
    counters = plan.link_counters()
    assert counters["frames_dropped"] > 0


def test_raw_reliable_aborts_after_retry_budget():
    sim = Simulator()
    cfg = RawConfig(reliable=True, timeout=0.001, max_retries=1)
    plan = FaultPlan(FaultSpec(outages=((0.0, 60.0),)))  # dead fabric
    _, stacks = _raw_pair(sim, cfg, faults=plan)

    def sender():
        yield stacks[0].send(MacAddress(1), 5_000)

    p = sim.process(sender())
    with pytest.raises(TransferAborted):
        sim.run(until=p)
    assert stacks[0].transfer_aborts == 1
    assert stacks[0].retransmits == 1


def test_raw_reliable_nack_fast_path_beats_timeout():
    """A hole behind the final frame triggers an immediate NACK and a
    partial retransmit, well before the sender's retransmit timeout."""
    from repro.net.batching import PER_FRAME

    sim = Simulator()
    mtu = 1500
    cfg = RawConfig(
        reliable=True,
        timeout=0.5,  # deliberately huge: fast path must win
        quantum_target_events=10**9,
        max_quantum=1,
        batch=PER_FRAME,
    )
    nics, stacks = _raw_pair(sim, cfg, batch=PER_FRAME)
    # Drop only the first data train on the sender's uplink.
    nics[0]._wire_out.install_fault(ScriptedFault([DROP]))
    t = {}

    def sender():
        yield stacks[0].send(MacAddress(1), 3 * mtu)
        t["acked"] = sim.now

    def receiver():
        yield stacks[1].recv()
        t["got"] = sim.now

    sim.process(sender())
    sim.process(receiver())
    sim.run()
    assert stacks[1].nacks_sent == 1
    assert stacks[0].nacks_received == 1
    assert stacks[0].retransmits == 1
    assert stacks[0].retransmitted_bytes == mtu
    assert t["got"] < cfg.timeout
    assert t["acked"] < cfg.timeout


# -- Mailbox failure propagation ---------------------------------------------------


def test_mailbox_fail_wakes_matching_waiter():
    sim = Simulator()
    box = Mailbox(sim)
    seen = []

    def waiter():
        try:
            yield box.recv(src=MacAddress(3))
        except TransferAborted as e:
            seen.append(str(e))

    sim.process(waiter())
    sim.run()
    box.fail(MacAddress(3), None, TransferAborted("gone"))
    sim.run()
    assert seen == ["gone"]


def test_mailbox_fail_poisons_future_matching_recv():
    sim = Simulator()
    box = Mailbox(sim)
    box.fail(MacAddress(1), 7, TransferAborted("dead peer"))
    ev = box.recv(src=MacAddress(1), tag=7)

    def waiter():
        yield ev

    p = sim.process(waiter())
    with pytest.raises(TransferAborted, match="dead peer"):
        sim.run(until=p)
    # Non-matching receives are untouched.
    assert not box.recv(src=MacAddress(2), tag=7).triggered


# -- INIC protocol recovery --------------------------------------------------------


def _scatter_gather(cluster, manager, nbytes):
    """One rank0 -> rank1 transfer; returns the receiver process."""
    sim = cluster.sim
    card0 = manager.driver(0).card

    def sender():
        op = card0.post_scatter(1, [SendBlock(MacAddress(1), nbytes)])
        yield op.sent

    def receiver():
        plan = TransferPlan(sim, {0: nbytes})
        op = manager.driver(1).card.post_gather(1, plan)
        yield op.done

    sim.process(sender())
    return sim.process(receiver())


def test_inic_transfer_recovers_from_loss_via_nacks():
    # 5% per-train loss: drops are certain over ~queue-depth trains but
    # each NACK round (bounded by the 64 KiB flow window) heals faster
    # than new losses accumulate, so recovery converges well inside the
    # retry budget.
    faults = FaultSpec(seed=11, loss_rate=0.05)
    cluster, manager = _acc(2, card=_recovery(IDEAL_INIC), faults=faults)
    manager.configure_all(protocol_processor_design)
    p = _scatter_gather(cluster, manager, 256 * 1024)
    cluster.sim.run(until=p, max_events=10_000_000)
    counters = cluster.fault_plan.link_counters()
    assert counters["frames_dropped"] > 0
    cards = [n.require_inic() for n in cluster.nodes]
    assert sum(c.stats.nacks_sent for c in cards) >= 1
    assert sum(c.stats.retransmits for c in cards) >= 1
    assert sum(c.stats.transfer_aborts for c in cards) == 0


def test_inic_gather_aborts_when_retry_budget_exhausted():
    cluster, manager = _acc(2, card=_recovery(IDEAL_INIC, retries=2))
    manager.configure_all(protocol_processor_design)
    sim = cluster.sim
    plan = TransferPlan(sim, {0: 10_000})  # nobody will send this
    op = manager.driver(1).card.post_gather(9, plan)

    def waiter():
        yield op.done

    p = sim.process(waiter())
    with pytest.raises(TransferAborted):
        sim.run(until=p, max_events=10_000_000)
    assert manager.driver(1).card.stats.transfer_aborts == 1
    assert manager.driver(1).card.stats.nacks_sent >= 2


def test_inic_recovery_run_is_deterministic():
    def run():
        faults = FaultSpec(seed=4, loss_rate=0.1)
        cluster, manager = _acc(
            2, card=_recovery(IDEAL_INIC), faults=faults
        )
        manager.configure_all(protocol_processor_design)
        p = _scatter_gather(cluster, manager, 128 * 1024)
        cluster.sim.run(until=p, max_events=10_000_000)
        return cluster.sim.now, cluster.sim.event_count, (
            cluster.fault_plan.schedule()
        )

    assert run() == run()


# -- FPGA configuration failure and graceful degradation ---------------------------


def test_manager_raises_after_bounded_config_retries():
    faults = FaultSpec(seed=1, config_failure_rate=1.0)
    cluster, manager = _acc(2, faults=faults)
    with pytest.raises(ConfigurationError):
        manager.configure_all(protocol_processor_design)
    # Every card burned its full retry budget (2 attempts each).
    assert manager.config_failures() == 4


def test_config_failures_pay_reconfiguration_time():
    faults = FaultSpec(seed=1, config_failure_rate=1.0)
    cluster, manager = _acc(2, faults=faults)
    with pytest.raises(ConfigurationError):
        manager.configure_all(protocol_processor_design)
    assert cluster.sim.now > 0  # failed loads are not free


def test_sort_runner_degrades_to_host_tcp_on_config_failure():
    from repro.bench.sweep import _run_sort_des

    res = _run_sort_des(
        {
            "e_init": 1 << 14,
            "p": 2,
            "card": "aceii-prototype",
            "seed": 2,
            "faults": FaultSpec(seed=7, config_failure_rate=1.0).to_params(),
            "retries": 2,
        }
    )
    assert res["fallbacks"] == 1
    assert res["aborted"] is False
    assert res["faults"]["config_failures"] == 4  # 2 nodes x 2 attempts
    assert res["makespan"] > 0
    # The degraded run must still cost more than a clean baseline: the
    # wasted bitstream-load attempts are charged on top.
    clean = _run_sort_des({"e_init": 1 << 14, "p": 2, "card": None, "seed": 2})
    assert res["makespan"] > clean["makespan"]


# -- Sweep integration: zero-fault identity and parallel determinism ---------------


def test_zero_fault_runner_results_keep_legacy_shape():
    from repro.bench.sweep import _run_sort_des

    res = _run_sort_des(
        {"e_init": 1 << 14, "p": 2, "card": "aceii-prototype", "seed": 2}
    )
    assert set(res) == {"makespan", "events"}  # bit-identical legacy path


def test_fault_suite_zero_loss_point_shares_perf_identity():
    from repro.bench.harness import Scale
    from repro.bench.sweep import fault_points, perf_points

    scale = Scale.ci()
    loss0 = next(
        s for s in fault_points(scale) if s.name == "sort-faults-loss0"
    )
    assert "faults" not in loss0.params
    p = loss0.params["p"]
    twin = next(
        s for s in perf_points(scale) if s.name == f"sort-inic-p{p}"
    )
    assert loss0.spec_hash == twin.spec_hash  # same cache entry


def test_lossy_point_identical_serial_and_parallel():
    from repro.bench.sweep import PointSpec, SweepEngine

    faults = FaultSpec(seed=7, loss_rate=0.01).to_params()
    specs = [
        PointSpec(
            "sort-des",
            f"det-loss-p{p}",
            {
                "e_init": 1 << 14,
                "p": p,
                "card": "aceii-prototype",
                "seed": 2,
                "faults": faults,
                "retries": 8,
            },
        )
        for p in (2, 4)
    ]
    serial = SweepEngine(jobs=1, cache_dir=None).run(specs)
    parallel = SweepEngine(jobs=2, cache_dir=None).run(specs)
    for name in ("det-loss-p2", "det-loss-p4"):
        assert serial[name].value == parallel[name].value
