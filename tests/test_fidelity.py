"""Fidelity validation: the CHUNK quantum approximation and DES
conservation invariants (DESIGN.md §5/§7).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import CPU, CacheLevel, MemoryHierarchy
from repro.net import (
    DEFAULT_BATCH,
    Frame,
    GIGABIT_ETHERNET,
    MacAddress,
    PER_FRAME,
    StandardNIC,
    build_star,
)
from repro.protocols import TCPConfig, TCPStack
from repro.sim import FairShareBus, Simulator


def build_pair(tcp_config, batch=DEFAULT_BATCH):
    sim = Simulator()
    nics, stacks = [], []
    for i in range(2):
        mh = MemoryHierarchy([CacheLevel("DRAM", float("inf"), 0.6e9, 0.12e9)])
        cpu = CPU(sim, mh)
        bus = FairShareBus(sim, bandwidth=112e6)
        nic = StandardNIC(
            sim, MacAddress(i), host_bus=bus, cpu=cpu, batch=batch, name=f"nic{i}"
        )
        stacks.append(TCPStack(sim, nic, cpu, config=tcp_config, name=f"tcp{i}"))
        nics.append(nic)
    switch = build_star(
        sim, [(MacAddress(i), nics[i]) for i in range(2)], batch=batch
    )
    return sim, stacks, nics, switch


def per_frame_config():
    """PACKET fidelity: quantum 1 everywhere, no train coalescing."""
    return TCPConfig(max_quantum=1, quantum_target_events=10**9, batch=PER_FRAME)


def transfer_time(tcp_config, nbytes, batch=DEFAULT_BATCH):
    sim, stacks, _, _ = build_pair(tcp_config, batch)
    t = {}

    def sender():
        t0 = sim.now
        yield stacks[0].send(MacAddress(1), nbytes)
        t["dt"] = sim.now - t0

    def receiver():
        yield stacks[1].recv()

    sim.process(sender())
    sim.process(receiver())
    sim.run()
    return t["dt"]


def test_quantum_batching_preserves_transfer_time():
    """PACKET fidelity (quantum=1) and CHUNK fidelity (quantum=16) must
    agree on bulk-transfer time within a tolerance — the justification
    for running paper-scale sweeps at CHUNK fidelity."""
    nbytes = 2_000_000
    t_packet = transfer_time(per_frame_config(), nbytes, batch=PER_FRAME)
    t_chunk = transfer_time(TCPConfig(max_quantum=16), nbytes)
    assert t_chunk == pytest.approx(t_packet, rel=0.25)


def test_quantum_batching_reduces_event_count():
    sim1, stacks1, _, _ = build_pair(per_frame_config(), batch=PER_FRAME)
    sim16, stacks16, _, _ = build_pair(TCPConfig(max_quantum=16))
    for sim, stacks in ((sim1, stacks1), (sim16, stacks16)):
        def sender(s=stacks):
            yield s[0].send(MacAddress(1), 1_000_000)

        def receiver(s=stacks):
            yield s[1].recv()

        sim.process(sender())
        sim.process(receiver())
        sim.run()
    assert sim16.event_count < sim1.event_count / 3


@settings(max_examples=15, deadline=None)
@given(
    st.lists(st.integers(min_value=1, max_value=100_000), min_size=1, max_size=8)
)
def test_tcp_delivers_arbitrary_message_sequences(sizes):
    """Property: any sequence of message sizes arrives complete, in
    order, with matching tags (byte conservation end to end)."""
    cfg = TCPConfig()
    sim, stacks, nics, switch = build_pair(cfg)
    got = []

    def sender():
        for i, n in enumerate(sizes):
            yield stacks[0].send(MacAddress(1), n, tag=i, payload=n)

    def receiver():
        for i in range(len(sizes)):
            msg = yield stacks[1].recv()
            got.append((msg.tag, msg.nbytes, msg.payload))

    sim.process(sender())
    sim.process(receiver())
    sim.run(max_events=3_000_000)
    assert got == [(i, n, n) for i, n in enumerate(sizes)]
    # Conservation: every payload byte sent was delivered exactly once.
    assert stacks[0].stats.bytes_sent >= sum(sizes)
    assert stacks[1].stats.bytes_delivered == sum(sizes)


def test_switch_conserves_frames_without_drops():
    """Frames in == frames out + drops, for random traffic."""
    sim = Simulator()

    class Sink:
        def __init__(self):
            self.got = 0
            self.wire = None

        def attach_wire(self, wire):
            self.wire = wire

        def receive_frame(self, frame):
            self.got += frame.frame_count

    rng = np.random.default_rng(4)
    stations = [Sink() for _ in range(4)]
    addrs = [MacAddress(i) for i in range(4)]
    switch = build_star(
        sim, list(zip(addrs, stations)), tech=GIGABIT_ETHERNET
    )
    sent = 0
    for _ in range(200):
        src, dst = rng.integers(0, 4, size=2)
        if src == dst:
            continue
        stations[src].wire.send(
            Frame(addrs[src], addrs[dst], payload_bytes=int(rng.integers(1, 1500)))
        )
        sent += 1
    sim.run()
    delivered = sum(s.got for s in stations)
    assert delivered + switch.total_dropped() == sent


def test_interrupt_time_scales_with_frames():
    """Per-frame CPU theft is linear in delivered frames."""
    totals = {}
    for n_msgs in (5, 20):
        sim, stacks, nics, _ = build_pair(TCPConfig())
        def sender(s=stacks, k=n_msgs):
            for i in range(k):
                yield s[0].send(MacAddress(1), 64_000, tag=i)

        def receiver(s=stacks, k=n_msgs):
            for _ in range(k):
                yield s[1].recv()

        sim.process(sender())
        sim.process(receiver())
        sim.run()
        totals[n_msgs] = stacks[1].cpu.interrupt_time
    assert totals[20] > 3 * totals[5]
