"""Unit tests for the DES kernel (repro.sim.engine)."""

import pytest

from repro.errors import Interrupt, ProcessError, SimTimeError
from repro.sim import Simulator, SimulationRunaway


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    done = []

    def proc():
        yield sim.timeout(1.5)
        done.append(sim.now)

    sim.process(proc())
    sim.run()
    assert done == [1.5]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimTimeError):
        sim.timeout(-1.0)


def test_timeout_value_passthrough():
    sim = Simulator()
    seen = []

    def proc():
        v = yield sim.timeout(1.0, value="hello")
        seen.append(v)

    sim.process(proc())
    sim.run()
    assert seen == ["hello"]


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []

    for delay in (3.0, 1.0, 2.0):
        def make(d):
            def proc():
                yield sim.timeout(d)
                order.append(d)
            return proc
        sim.process(make(delay)())

    sim.run()
    assert order == [1.0, 2.0, 3.0]


def test_same_time_events_fire_in_creation_order():
    sim = Simulator()
    order = []

    def proc(tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in "abc":
        sim.process(proc(tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_process_return_value():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        return 42

    def parent(results):
        value = yield sim.process(child())
        results.append(value)

    results = []
    sim.process(parent(results))
    sim.run()
    assert results == [42]


def test_run_until_event_returns_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(2.0)
        return "done"

    p = sim.process(proc())
    assert sim.run(until=p) == "done"
    assert sim.now == 2.0


def test_run_until_time_stops_clock_exactly():
    sim = Simulator()

    def proc():
        while True:
            yield sim.timeout(1.0)

    sim.process(proc())
    sim.run(until=5.5)
    assert sim.now == 5.5


def test_run_until_past_time_rejected():
    sim = Simulator()
    sim.run(until=3.0)
    with pytest.raises(SimTimeError):
        sim.run(until=1.0)


def test_uncaught_process_exception_propagates():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        raise ValueError("boom")

    sim.process(proc())
    with pytest.raises(ValueError, match="boom"):
        sim.run()


def test_failed_event_throws_into_waiter():
    sim = Simulator()
    caught = []

    def failer(ev):
        yield sim.timeout(1.0)
        ev.fail(RuntimeError("nope"))

    def waiter(ev):
        try:
            yield ev
        except RuntimeError as e:
            caught.append(str(e))

    ev = sim.event()
    sim.process(failer(ev))
    sim.process(waiter(ev))
    sim.run()
    assert caught == ["nope"]


def test_yield_non_event_fails_process():
    sim = Simulator()

    def proc():
        yield 42

    p = sim.process(proc())
    with pytest.raises(ProcessError):
        sim.run(until=p)


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)


def test_interrupt_is_catchable_and_process_continues():
    sim = Simulator()
    log = []

    def victim():
        try:
            yield sim.timeout(10.0)
            log.append("slept")
        except Interrupt as i:
            log.append(("interrupted", i.cause, sim.now))
        yield sim.timeout(1.0)
        log.append(("resumed", sim.now))

    def attacker(p):
        yield sim.timeout(2.0)
        p.interrupt(cause="wakeup")

    p = sim.process(victim())
    sim.process(attacker(p))
    sim.run()
    assert log == [("interrupted", "wakeup", 2.0), ("resumed", 3.0)]


def test_interrupt_finished_process_rejected():
    sim = Simulator()

    def quick():
        yield sim.timeout(0.5)

    p = sim.process(quick())
    sim.run()
    with pytest.raises(ProcessError):
        p.interrupt()


def test_any_of_fires_on_first():
    sim = Simulator()
    seen = []

    def proc():
        t1 = sim.timeout(1.0, value="fast")
        t2 = sim.timeout(5.0, value="slow")
        result = yield sim.any_of([t1, t2])
        seen.append((sim.now, set(result.values())))

    sim.process(proc())
    sim.run()
    assert seen == [(1.0, {"fast"})]


def test_all_of_waits_for_all():
    sim = Simulator()
    seen = []

    def proc():
        events = [sim.timeout(d) for d in (1.0, 3.0, 2.0)]
        yield sim.all_of(events)
        seen.append(sim.now)

    sim.process(proc())
    sim.run()
    assert seen == [3.0]


def test_all_of_empty_resolves_immediately():
    sim = Simulator()
    seen = []

    def proc():
        yield sim.all_of([])
        seen.append(sim.now)

    sim.process(proc())
    sim.run()
    assert seen == [0.0]


def test_already_processed_event_does_not_block():
    sim = Simulator()
    seen = []

    def proc():
        t = sim.timeout(1.0)
        yield sim.timeout(5.0)
        # t fired long ago; yielding it must continue immediately.
        yield t
        seen.append(sim.now)

    sim.process(proc())
    sim.run()
    assert seen == [5.0]


def test_max_events_guard():
    sim = Simulator()

    def spinner():
        while True:
            yield sim.timeout(1.0)

    sim.process(spinner())
    with pytest.raises(SimulationRunaway):
        sim.run(max_events=100)


def test_schedule_callback():
    sim = Simulator()
    hits = []
    sim.schedule_callback(2.5, lambda: hits.append(sim.now))
    sim.run()
    assert hits == [2.5]


def test_determinism_two_identical_runs():
    def build():
        sim = Simulator()
        log = []

        def worker(i):
            for k in range(5):
                yield sim.timeout(0.1 * ((i + k) % 3 + 1))
                log.append((round(sim.now, 6), i, k))

        for i in range(4):
            sim.process(worker(i))
        sim.run()
        return log

    assert build() == build()


def test_event_count_increments():
    sim = Simulator()

    def proc():
        for _ in range(10):
            yield sim.timeout(1.0)

    sim.process(proc())
    sim.run()
    assert sim.event_count >= 10
