"""Unit + property tests for the from-scratch FFT kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.fft import (
    FFTPlan,
    clear_plan_cache,
    fft1d,
    fft2d,
    ifft1d,
    ifft2d,
    is_power_of_two,
    plan_dft,
)
from repro.errors import ApplicationError

rng = np.random.default_rng(42)


def random_complex(*shape):
    return rng.standard_normal(shape) + 1j * rng.standard_normal(shape)


# --- correctness vs the numpy oracle ------------------------------------------------
@pytest.mark.parametrize("n", [1, 2, 4, 8, 32, 256, 1024])
def test_fft1d_matches_oracle_pow2(n):
    x = random_complex(n)
    assert np.allclose(fft1d(x), np.fft.fft(x), atol=1e-8)


@pytest.mark.parametrize("n", [3, 5, 12, 100, 37, 129])
def test_fft1d_matches_oracle_bluestein(n):
    x = random_complex(n)
    assert np.allclose(fft1d(x), np.fft.fft(x), atol=1e-8)


def test_fft1d_vectorized_over_rows():
    x = random_complex(7, 64)
    assert np.allclose(fft1d(x), np.fft.fft(x, axis=-1), atol=1e-8)


def test_fft1d_along_other_axis():
    x = random_complex(16, 5)
    assert np.allclose(fft1d(x, axis=0), np.fft.fft(x, axis=0), atol=1e-8)


@pytest.mark.parametrize("n", [2, 8, 15, 64])
def test_ifft_inverts_fft(n):
    x = random_complex(n)
    assert np.allclose(ifft1d(fft1d(x)), x, atol=1e-8)


@pytest.mark.parametrize("n", [4, 8, 32, 64])
def test_fft2d_matches_oracle(n):
    x = random_complex(n, n)
    assert np.allclose(fft2d(x), np.fft.fft2(x), atol=1e-8)


def test_ifft2d_round_trip():
    x = random_complex(16, 16)
    assert np.allclose(ifft2d(fft2d(x)), x, atol=1e-8)


def test_fft2d_real_input():
    x = rng.standard_normal((32, 32))
    assert np.allclose(fft2d(x), np.fft.fft2(x), atol=1e-8)


def test_fft2d_requires_matrix():
    with pytest.raises(ApplicationError):
        fft2d(np.zeros(8))


def test_fft1d_rejects_empty():
    with pytest.raises(ApplicationError):
        fft1d(np.zeros(0))


# --- property tests --------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=200))
def test_parseval_energy_conservation(n):
    """Parseval: sum |x|^2 == sum |X|^2 / n for any length."""
    local = np.random.default_rng(n).standard_normal(n)
    X = fft1d(local)
    assert np.isclose(
        np.sum(np.abs(local) ** 2), np.sum(np.abs(X) ** 2) / n, rtol=1e-6
    )


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=128))
def test_linearity(n):
    g = np.random.default_rng(n)
    x, y = g.standard_normal(n), g.standard_normal(n)
    assert np.allclose(fft1d(x + 2 * y), fft1d(x) + 2 * fft1d(y), atol=1e-7)


def test_impulse_transforms_to_ones():
    x = np.zeros(64)
    x[0] = 1.0
    assert np.allclose(fft1d(x), np.ones(64), atol=1e-10)


def test_shift_theorem():
    n = 128
    x = rng.standard_normal(n)
    shifted = np.roll(x, 1)
    k = np.arange(n)
    phase = np.exp(-2j * np.pi * k / n)
    assert np.allclose(fft1d(shifted), fft1d(x) * phase, atol=1e-8)


# --- plans --------------------------------------------------------------------------
def test_plan_cache_reuses():
    clear_plan_cache()
    p1 = plan_dft(256)
    p2 = plan_dft(256)
    assert p1 is p2


def test_plan_flop_counts():
    clear_plan_cache()
    assert plan_dft(1024).flops == pytest.approx(5 * 1024 * 10)
    assert plan_dft(100).flops > plan_dft(64).flops  # Bluestein overhead


def test_plan_execute_checks_size():
    plan = plan_dft(32)
    with pytest.raises(ApplicationError):
        plan.execute(np.zeros(16))


def test_plan_execute_works():
    plan = plan_dft(64)
    x = random_complex(64)
    assert np.allclose(plan.execute(x), np.fft.fft(x), atol=1e-8)


def test_is_power_of_two():
    assert is_power_of_two(1) and is_power_of_two(1024)
    assert not is_power_of_two(0) and not is_power_of_two(12)
