"""Unit tests for frames and wires (repro.net.packet / link)."""

import pytest

from repro.errors import LinkError, PacketError
from repro.net import (
    ETHERNET_OVERHEAD,
    Frame,
    IP_TCP_HEADERS,
    Link,
    MIN_FRAME_PAYLOAD,
    MacAddress,
    Wire,
    wire_bytes,
)
from repro.sim import Simulator

A = MacAddress(0)
B = MacAddress(1)


class Collector:
    def __init__(self, sim):
        self.sim = sim
        self.got = []

    def receive_frame(self, frame):
        self.got.append((frame, self.sim.now))


# --- wire_bytes / Frame -----------------------------------------------------------
def test_wire_bytes_adds_overheads():
    assert wire_bytes(1500, IP_TCP_HEADERS) == 1500 + ETHERNET_OVERHEAD + 40


def test_wire_bytes_pads_tiny_payloads():
    assert wire_bytes(1, 0) == MIN_FRAME_PAYLOAD + ETHERNET_OVERHEAD


def test_wire_bytes_multi_frame_quantum():
    one = wire_bytes(1500, 40, frame_count=1)
    ten = wire_bytes(15000, 40, frame_count=10)
    assert ten == 10 * one


def test_frame_wire_size():
    f = Frame(A, B, payload_bytes=1000, headers=40)
    assert f.wire_size == 1000 + ETHERNET_OVERHEAD + 40


def test_frame_validation():
    with pytest.raises(PacketError):
        Frame(A, B, payload_bytes=-1)
    with pytest.raises(PacketError):
        Frame(A, B, payload_bytes=10, frame_count=0)
    with pytest.raises(PacketError):
        Frame(A, B, payload_bytes=10, headers=-1)


def test_frame_clone_for():
    f = Frame(A, B, payload_bytes=100, kind="tcp", seq=7, meta={"x": 1})
    g = f.clone_for(MacAddress(5))
    assert g.dst == MacAddress(5)
    assert g.seq == 7 and g.kind == "tcp" and g.meta == {"x": 1}
    assert g.uid != f.uid


def test_frame_uids_unique():
    frames = [Frame(A, B, payload_bytes=1) for _ in range(10)]
    assert len({f.uid for f in frames}) == 10


# --- Wire ----------------------------------------------------------------------
def test_wire_delivery_time_serialization_plus_propagation():
    sim = Simulator()
    wire = Wire(sim, bandwidth=1000.0, propagation_delay=0.5)
    sink = Collector(sim)
    wire.attach(sink)
    f = Frame(A, B, payload_bytes=962, headers=0)  # wire_size = 1000
    deliver_at = wire.send(f)
    sim.run()
    assert deliver_at == pytest.approx(1.5)
    assert sink.got[0][1] == pytest.approx(1.5)


def test_wire_serializes_back_to_back_frames():
    sim = Simulator()
    wire = Wire(sim, bandwidth=1000.0, propagation_delay=0.0)
    sink = Collector(sim)
    wire.attach(sink)
    f1 = Frame(A, B, payload_bytes=962, headers=0)
    f2 = Frame(A, B, payload_bytes=962, headers=0)
    wire.send(f1)
    wire.send(f2)
    sim.run()
    times = [t for _, t in sink.got]
    assert times == [pytest.approx(1.0), pytest.approx(2.0)]


def test_wire_requires_sink():
    sim = Simulator()
    wire = Wire(sim, bandwidth=1000.0)
    with pytest.raises(LinkError):
        wire.send(Frame(A, B, payload_bytes=10))


def test_wire_double_attach_rejected():
    sim = Simulator()
    wire = Wire(sim, bandwidth=1000.0)
    sink = Collector(sim)
    wire.attach(sink)
    with pytest.raises(LinkError):
        wire.attach(sink)


def test_wire_stats_and_utilization():
    sim = Simulator()
    wire = Wire(sim, bandwidth=1000.0)
    sink = Collector(sim)
    wire.attach(sink)
    wire.send(Frame(A, B, payload_bytes=962, headers=0))
    sim.run()
    assert wire.frames_sent == 1
    assert wire.bytes_sent == pytest.approx(1000)
    assert wire.utilization(2.0) == pytest.approx(0.5)


def test_link_is_full_duplex():
    sim = Simulator()
    link = Link(sim, bandwidth=1000.0)
    ca, cb = Collector(sim), Collector(sim)
    link.attach_a(ca)
    link.attach_b(cb)
    # Simultaneous opposite-direction traffic does not serialize.
    link.a_to_b.send(Frame(A, B, payload_bytes=962, headers=0))
    link.b_to_a.send(Frame(B, A, payload_bytes=962, headers=0))
    sim.run()
    assert cb.got[0][1] == pytest.approx(1.0)
    assert ca.got[0][1] == pytest.approx(1.0)


def test_wire_invalid_parameters():
    sim = Simulator()
    with pytest.raises(LinkError):
        Wire(sim, bandwidth=0)
    with pytest.raises(LinkError):
        Wire(sim, bandwidth=100, propagation_delay=-1)
