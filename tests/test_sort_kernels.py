"""Unit + property tests for the sort kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.apps.sort import (
    cache_bucket_count,
    count_sort,
    counting_pass,
    digit_histogram,
    gaussian_keys,
    is_sorted,
    phase1_destination_buckets,
    phase2_cache_buckets,
    quicksort,
    split_by_bits,
    split_keys,
    uniform_keys,
)
from repro.errors import ApplicationError

rng = np.random.default_rng(7)

uint32_arrays = arrays(
    dtype=np.uint32,
    shape=st.integers(min_value=0, max_value=2000),
    elements=st.integers(min_value=0, max_value=2**32 - 1),
)


# --- count sort ------------------------------------------------------------------------
def test_count_sort_sorts():
    keys = uniform_keys(50_000, rng)
    out = count_sort(keys)
    assert is_sorted(out)
    assert np.array_equal(np.sort(keys), out)


@settings(max_examples=50, deadline=None)
@given(uint32_arrays)
def test_count_sort_property(keys):
    out = count_sort(keys)
    assert is_sorted(out)
    assert np.array_equal(np.sort(keys), out)


def test_count_sort_duplicates_and_extremes():
    keys = np.array([0, 2**32 - 1, 0, 2**32 - 1, 5, 5], dtype=np.uint32)
    assert np.array_equal(count_sort(keys), np.sort(keys))


def test_count_sort_rejects_wrong_dtype():
    with pytest.raises(ApplicationError):
        count_sort(np.zeros(4, dtype=np.int64))


def test_counting_pass_is_stable_on_digit():
    keys = np.array([0x0102, 0x0201, 0x0101, 0x0202], dtype=np.uint32)
    out = counting_pass(keys, 0)  # sort by low byte only
    assert list(out) == [0x0201, 0x0101, 0x0102, 0x0202]


def test_digit_histogram_sums_to_n():
    keys = uniform_keys(10_000, rng)
    for shift in (0, 8, 16, 24):
        h = digit_histogram(keys, shift)
        assert h.sum() == 10_000
        assert h.shape == (256,)


# --- quicksort --------------------------------------------------------------------------
def test_quicksort_sorts():
    keys = uniform_keys(20_000, rng)
    assert np.array_equal(quicksort(keys), np.sort(keys))


@settings(max_examples=30, deadline=None)
@given(uint32_arrays)
def test_quicksort_property(keys):
    assert np.array_equal(quicksort(keys), np.sort(keys))


def test_quicksort_adversarial_inputs():
    assert np.array_equal(quicksort(np.arange(1000, dtype=np.uint32)),
                          np.arange(1000, dtype=np.uint32))
    rev = np.arange(1000, dtype=np.uint32)[::-1]
    assert is_sorted(quicksort(rev))
    same = np.full(1000, 7, dtype=np.uint32)
    assert np.array_equal(quicksort(same), same)


def test_quicksort_requires_1d():
    with pytest.raises(ApplicationError):
        quicksort(np.zeros((2, 2)))


# --- bucket kernels ------------------------------------------------------------------------
def test_split_by_bits_partitions():
    keys = uniform_keys(10_000, rng)
    buckets = split_by_bits(keys, 0, 8)
    assert sum(b.shape[0] for b in buckets) == 10_000
    # Range ordering by top 3 bits.
    for i, b in enumerate(buckets):
        if b.size:
            assert np.all((b >> 29) == i)


def test_split_by_bits_uniformity():
    keys = uniform_keys(100_000, rng)
    buckets = split_by_bits(keys, 0, 16)
    sizes = np.array([b.shape[0] for b in buckets])
    assert sizes.std() < 0.1 * sizes.mean()  # uniform keys balance buckets


@settings(max_examples=30, deadline=None)
@given(uint32_arrays, st.sampled_from([2, 4, 8, 16]))
def test_split_concat_is_stable_partition(keys, nb):
    buckets = split_by_bits(keys, 0, nb)
    cat = np.concatenate(buckets) if buckets else keys
    assert np.array_equal(np.sort(cat), np.sort(keys))
    # Stability within a bucket: relative order preserved.
    for i, b in enumerate(buckets):
        mask = (keys >> np.uint32(32 - (nb.bit_length() - 1))) == i if nb > 1 else None
        if mask is not None:
            assert np.array_equal(b, keys[mask])


def test_phase1_then_phase2_nesting():
    keys = uniform_keys(50_000, rng)
    p = 4
    dests = phase1_destination_buckets(keys, p)
    for rank, bucket in enumerate(dests):
        refined = phase2_cache_buckets(bucket, p, 8)
        cat = np.concatenate(refined)
        assert np.array_equal(np.sort(cat), np.sort(bucket))
        # Concatenating sorted refined buckets must be globally ordered
        # within the rank's key range.
        pieces = [count_sort(r) for r in refined]
        assert is_sorted(np.concatenate(pieces))


def test_split_by_bits_validates():
    keys = uniform_keys(16, rng)
    with pytest.raises(ApplicationError):
        split_by_bits(keys, 0, 3)
    with pytest.raises(ApplicationError):
        split_by_bits(keys, 30, 8)
    with pytest.raises(ApplicationError):
        split_by_bits(keys.astype(np.int32), 0, 4)


def test_cache_bucket_count_rules():
    # >= 2^21 keys: minimum 128 buckets (Section 3.2.1).
    assert cache_bucket_count(2**21, 24 * 1024) >= 128
    # Small inputs need few buckets.
    assert cache_bucket_count(1000, 24 * 1024) == 1
    # Power of two always.
    n = cache_bucket_count(10**6, 24 * 1024)
    assert n & (n - 1) == 0


# --- key generation -----------------------------------------------------------------------
def test_uniform_keys_range_and_dtype():
    k = uniform_keys(10_000, rng)
    assert k.dtype == np.uint32
    # Rough uniformity: mean near 2^31.
    assert abs(float(k.mean()) - 2**31) < 0.05 * 2**32


def test_gaussian_keys_are_concentrated():
    u = uniform_keys(50_000, rng)
    g = gaussian_keys(50_000, rng)
    assert g.std() < 0.7 * u.std()


def test_split_keys_even():
    k = uniform_keys(1000, rng)
    shards = split_keys(k, 4)
    assert [s.shape[0] for s in shards] == [250] * 4
    assert np.array_equal(np.concatenate(shards), k)
    with pytest.raises(ApplicationError):
        split_keys(k, 3)
