#!/usr/bin/env python
"""Quickstart: a Beowulf cluster vs the same cluster with INICs.

Builds an 8-node Gigabit Ethernet cluster through the ``Experiment``
facade, runs the distributed 2-D FFT on plain TCP, then swaps every NIC
for an Intelligent NIC and runs the same computation with the transpose
offloaded into the cards — with telemetry on, so the INIC run can show
its hardware utilization.  Results are verified bit-for-bit against the
local 2-D FFT.

The applications driven here are written in the original
generator/callback style (``yield ctx.send(...)`` state machines in
``repro.apps``); ``examples/compute_farm.py`` shows the same facade
driving coroutine processes (``async def`` + ``await``) — the two
styles are event-for-event identical and freely mixable, see
``docs/processes.md``.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.api import Experiment
from repro.apps.fft import baseline_fft2d, fft2d, inic_fft2d
from repro.units import fmt_time

N = 256  # matrix size (complex double)
P = 8  # cluster nodes


def main() -> None:
    rng = np.random.default_rng(42)
    matrix = rng.standard_normal((N, N)) + 1j * rng.standard_normal((N, N))
    oracle = fft2d(matrix)

    # --- the commodity baseline: standard NICs, TCP, MPI-style alltoall ---
    base = Experiment().nodes(P).build()
    base_out, base_res = baseline_fft2d(base.cluster, matrix)
    assert np.allclose(base_out, oracle, atol=1e-8)

    # --- the Adaptable Computing Cluster: an INIC in every node ---
    acc = Experiment().nodes(P).card().telemetry(True).build()
    inic_out, inic_res = inic_fft2d(acc.cluster, acc.manager, matrix)
    assert np.allclose(inic_out, oracle, atol=1e-8)

    print(f"{N}x{N} complex 2-D FFT on {P} simulated nodes")
    print(f"  standard GigE + TCP : {fmt_time(base_res.makespan)}")
    print(f"  INIC (ideal card)   : {fmt_time(inic_res.makespan)}")
    print(f"  INIC speedup        : {base_res.makespan / inic_res.makespan:.2f}x")
    print()
    print("phase breakdown (wall-clock union across ranks):")
    for label, res in (("GigE", base_res), ("INIC", inic_res)):
        parts = ", ".join(
            f"{k}={fmt_time(v)}" for k, v in sorted(res.breakdown.items())
        )
        print(f"  {label:>5}: {parts}")
    print()
    causes = sum(n.nic.irq.causes_raised for n in base.nodes)
    completions = acc.manager.total_completion_interrupts()
    print(f"host interrupt causes: {causes} (GigE) vs {completions} (INIC)")
    print("results verified against the serial FFT: OK")
    print()
    metrics = acc.metrics()
    print(
        f"telemetry: {len(acc.registry)} instruments on the INIC run, e.g. "
        f"node0 card bus busy {fmt_time(metrics['node0.pci.busy_time'])}, "
        f"uplink {metrics['node0.inic.uplink.bytes'] / 1024:.0f} KiB"
    )
    print("(session.report() prints the full table; session.export_trace()")
    print(" writes a Chrome/Perfetto trace — see docs/observability.md)")


if __name__ == "__main__":
    main()
