#!/usr/bin/env python
"""The paper's integer-sort experiment (Figures 5/8(b)).

Sorts uniform 32-bit keys distributed over P nodes three ways:

* the host baseline (bucket sort + TCP all-to-all + bucket sort +
  count sort),
* the ACEII prototype INIC (16-bucket card pre-split, two-phase host
  refine — Section 6),
* the ideal INIC (full cache-bucket sort in the card — Figure 3(b)),

verifying each result is the globally sorted permutation and printing
the Figure-8(b)-shaped speedup comparison.

Run:  python examples/integer_sort_offload.py [--keys 20] [--procs 1 2 4 8]
      (--keys is log2 of the total key count)
"""

import argparse

import numpy as np

from repro.api import ACEII_PROTOTYPE, Experiment, IDEAL_INIC
from repro.apps.sort import baseline_sort, inic_sort, is_sorted


def check(parts: list[np.ndarray], keys: np.ndarray) -> None:
    out = np.concatenate(parts)
    assert is_sorted(out), "result not sorted!"
    assert np.array_equal(np.sort(keys), out), "result not a permutation!"


def run(log2_keys: int, procs: list[int]) -> None:
    rng = np.random.default_rng(9)
    keys = rng.integers(0, 2**32, size=1 << log2_keys, dtype=np.uint32)
    print(f"sorting 2^{log2_keys} = {keys.size} uniform uint32 keys")

    serial_session = Experiment().nodes(1).build()
    parts, serial = baseline_sort(serial_session.cluster, keys)
    check(parts, keys)
    t1 = serial.makespan
    print(f"serial reference: {t1 * 1000:.1f} ms "
          f"(breakdown {serial.breakdown})")
    header = f"{'P':>4} | {'GigE':>8} | {'protoINIC':>9} | {'idealINIC':>9}"
    print(header)
    print("-" * len(header))

    for p in procs:
        if p == 1 or keys.size % p:
            continue
        ge_sess = Experiment().nodes(p).build()
        parts, ge = baseline_sort(ge_sess.cluster, keys)
        check(parts, keys)

        proto = Experiment().nodes(p).card(ACEII_PROTOTYPE).build()
        parts, pr = inic_sort(proto.cluster, proto.manager, keys)
        check(parts, keys)

        ideal = Experiment().nodes(p).card(IDEAL_INIC).build()
        parts, id_ = inic_sort(ideal.cluster, ideal.manager, keys)
        check(parts, keys)

        print(
            f"{p:>4} | {t1 / ge.makespan:>8.2f} | {t1 / pr.makespan:>9.2f} "
            f"| {t1 / id_.makespan:>9.2f}"
        )
    print("\nprototype card bins 16 ways (host refines); ideal card bins "
          "the full cache-bucket count. All results verified sorted.")


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--keys", type=int, default=20, help="log2(total keys)")
    ap.add_argument("--procs", type=int, nargs="*", default=[1, 2, 4, 8])
    args = ap.parse_args()
    run(args.keys, args.procs)


if __name__ == "__main__":
    main()
