#!/usr/bin/env python
"""Future-work extension: MPI derived datatypes in the NIC datapath.

A node sends a *column block* of a row-major matrix — a strided region —
to a peer.  The host baseline must pack it into a contiguous buffer
first (a strided pass over memory) and unpack on the far side.  With the
datatype engine on the INIC, the card's DMA gathers the strided region
as it streams out and scatters it back on the way in: zero host packing.

Run:  python examples/derived_datatypes.py [--n 512]
"""

import argparse

import numpy as np

from repro.api import Experiment
from repro.cluster import ParallelApp
from repro.core import datatype_design
from repro.hw import AccessPattern
from repro.inic import SendBlock
from repro.inic.cores import VectorLayout
from repro.net import MacAddress
from repro.protocols import TransferPlan
from repro.units import fmt_time


def host_version(n: int, matrix: np.ndarray, layout: VectorLayout):
    """Baseline: pack on the host, send, unpack on the host."""
    cluster = Experiment().nodes(2).build().cluster
    app = ParallelApp(cluster)
    nbytes = layout.elements * matrix.dtype.itemsize

    def program(ctx):
        if ctx.rank == 0:
            # Host packing: a strided read + contiguous write.
            idx = layout.indices()
            pack_time = ctx.node.hierarchy.touch_time(
                2 * nbytes, working_set=matrix.nbytes, pattern=AccessPattern.RANDOM
            )
            yield from ctx.compute(pack_time)
            packed = matrix.ravel()[idx].copy()
            yield ctx.send(1, nbytes, payload=packed, tag=1)
            return None
        msg = yield ctx.recv(src=0, tag=1)
        # Host unpacking on the receive side.
        unpack_time = ctx.node.hierarchy.touch_time(
            2 * nbytes, working_set=matrix.nbytes, pattern=AccessPattern.RANDOM
        )
        yield from ctx.compute(unpack_time)
        target = np.zeros(n * n)
        target[layout.indices()] = msg.payload
        return target

    res = app.run(program)
    return res.rank_results[1], res


def inic_version(n: int, matrix: np.ndarray, layout: VectorLayout):
    """INIC: the datatype engine gathers/scatters in the DMA path."""
    session = Experiment().nodes(2).card().build()
    cluster, manager = session.cluster, session.manager
    manager.configure_all(datatype_design)
    nbytes = layout.elements * matrix.dtype.itemsize
    sim = cluster.sim
    out = {}

    def sender():
        driver = manager.driver(0)
        engine = driver.card.require_core("datatype-engine")
        packed = engine.gather(matrix, layout)  # done by card hardware
        op = yield from driver.scatter(
            7, [SendBlock(MacAddress(1), nbytes, packed)]
        )
        yield op.sent

    def receiver():
        driver = manager.driver(1)
        engine = driver.card.require_core("datatype-engine")
        plan = TransferPlan(sim, {0: nbytes})
        gop = yield from driver.gather(7, plan)
        payloads = yield gop.done
        target = np.zeros(n * n)
        engine.scatter(payloads[0][-1], layout, target)  # card-side scatter
        out["result"] = target

    t0 = sim.now
    sim.process(sender())
    sim.process(receiver())
    sim.run()
    return out["result"], sim.now - t0


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--n", type=int, default=512)
    args = ap.parse_args()
    n = args.n

    rng = np.random.default_rng(3)
    matrix = rng.standard_normal((n, n))
    width = n // 4
    # Column block [all rows, first `width` columns] of a row-major matrix.
    layout = VectorLayout(count=n, blocklen=width, stride=n)
    expected = np.zeros(n * n)
    expected[layout.indices()] = matrix.ravel()[layout.indices()]

    host_out, host_res = host_version(n, matrix, layout)
    assert np.allclose(host_out, expected)

    inic_out, inic_time = inic_version(n, matrix, layout)
    assert np.allclose(inic_out, expected)

    print(f"sending a {n}x{width} column block of a {n}x{n} row-major matrix")
    print(f"  host pack/unpack + TCP : {fmt_time(host_res.makespan)}")
    print(f"  INIC datatype engine   : {fmt_time(inic_time)}")
    print(f"  speedup                : {host_res.makespan / inic_time:.2f}x")
    print("received block verified: OK")


if __name__ == "__main__":
    main()
