#!/usr/bin/env python
"""Compute-accelerator mode as a work farm (Section 2, mode 1 / the
Tower-of-Power configuration the paper cites).

A bag of independent streaming kernels (prefix sums over vectors) is
distributed across the cluster.  The baseline computes on host CPUs;
the ACC runs each item through its node's card — DMA in, streaming
kernel, DMA out, one completion interrupt — leaving the hosts nearly
idle for other work (the paper's point: "a separate path to host
memory is configured to allow normal network operations").

Run:  python examples/compute_farm.py [--items 32] [--size 65536] [--procs 8]
"""

import argparse

import numpy as np

from repro.api import Experiment
from repro.apps.compute import host_map, inic_map
from repro.units import fmt_time


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--items", type=int, default=32)
    ap.add_argument("--size", type=int, default=65536)
    ap.add_argument("--procs", type=int, default=8)
    args = ap.parse_args()

    rng = np.random.default_rng(17)
    items = [rng.standard_normal(args.size) for _ in range(args.items)]
    kernel = np.cumsum

    host = Experiment().nodes(args.procs).build()
    # a compute-heavy streaming kernel class (~48 flops/byte, e.g.
    # multi-tap filtering) — the regime FPGA offload targets
    host_out, host_res = host_map(host.cluster, kernel, items, flops_per_byte=48.0)
    host_busy = sum(n.cpu.busy_time for n in host.nodes)

    acc = Experiment().nodes(args.procs).card().build()
    manager = acc.manager
    inic_out, inic_res = inic_map(acc.cluster, manager, kernel, items)
    inic_busy = sum(n.cpu.busy_time for n in acc.nodes)

    for a, b in zip(host_out, inic_out):
        assert np.array_equal(a, b)

    print(f"{args.items} prefix-sum kernels over {args.size}-element vectors, "
          f"{args.procs} nodes")
    print(f"  host CPUs   : {fmt_time(host_res.makespan)} "
          f"(host busy {fmt_time(host_busy)})")
    print(f"  INIC cards  : {fmt_time(inic_res.makespan)} "
          f"(host busy {fmt_time(inic_busy)})")
    print(f"  completion interrupts: {manager.total_completion_interrupts()} "
          f"(one per item)")
    print("results identical on both paths: OK")


if __name__ == "__main__":
    main()
