#!/usr/bin/env python
"""Compute-accelerator mode as a work farm (Section 2, mode 1 / the
Tower-of-Power configuration the paper cites) — written in the
coroutine process style.

A bag of independent streaming kernels (prefix sums over vectors) is
farmed over the cluster through a shared ``Store`` work queue: a feeder
process enqueues item indices, one worker process per node pulls the
next item as soon as it finishes its last (dynamic load balancing, not
static round-robin).  The baseline computes on host CPUs; the ACC runs
each item through its node's card — DMA in, streaming kernel, DMA out,
one completion interrupt — leaving the hosts nearly idle for other work
(the paper's point: "a separate path to host memory is configured to
allow normal network operations").

This example showcases the process API (``docs/processes.md``):

* ``Experiment().process(name, fn)`` — the feeder is registered on the
  builder and spawns automatically at ``build()``;
* ``session.spawn(fn, ...)`` — the workers are spawned on the built
  session;
* ``await queue.get()`` / ``await queue.put(...)`` — awaitable Store
  operations;
* ``await card.compute(...)`` — awaiting a driver-level event;
* ``drive(...)`` — reusing a generator helper (``cpu.busy``) from a
  coroutine without spawning a child process.

``examples/quickstart.py`` shows the same facade driving the original
callback/generator style; the two styles run on the same kernel and can
be mixed freely.

Run:  python examples/compute_farm.py [--items 32] [--size 65536] [--procs 8]
"""

import argparse

import numpy as np

from repro.api import Experiment, drive
from repro.core.design import compute_design
from repro.hw.memory import AccessPattern
from repro.inic.cores import ReduceCore
from repro.units import fmt_time


def run_farm(procs, items, kernel, use_card, flops_per_byte=48.0):
    """Farm ``items`` over ``procs`` nodes; returns (results, session, makespan)."""
    state = {}  # filled in after build(); read when process bodies start

    async def feeder(session):
        # Registered via Experiment().process(...): spawned at build(),
        # body starts at session.run() — by then state["queue"] exists.
        queue = state["queue"]
        for i in range(len(items)):
            await queue.put(i)
        for _ in range(procs):
            await queue.put(None)  # one shutdown pill per worker

    exp = Experiment().nodes(procs).process("feeder", feeder)
    if use_card:
        exp = exp.card()
    session = exp.build()

    env = session.env
    queue = env.store()
    state["queue"] = queue
    if use_card:
        # advances the simulation (bitstream load time) — the feeder's
        # body starts here, which is why the queue already exists
        session.manager.configure_all(
            lambda: compute_design([ReduceCore("sum")])
        )
    results = [None] * len(items)

    async def worker(rank):
        node = session.nodes[rank]
        card = session.manager.driver(rank).card if use_card else None
        while True:
            i = await queue.get()
            if i is None:
                return
            data = items[i]
            if card is not None:
                # the card does DMA-in, kernel, DMA-out and raises one
                # completion interrupt; the event's value is the output
                results[i] = await card.compute(
                    data, kernel, in_bytes=data.nbytes, out_bytes=data.nbytes
                )
            else:
                cost = node.cpu.task_time(
                    flops=flops_per_byte * data.nbytes,
                    nbytes=2 * data.nbytes,
                    working_set=data.nbytes,
                    pattern=AccessPattern.STREAM,
                )
                await drive(node.cpu.busy(cost))  # generator helper, no child process
                results[i] = kernel(data)

    for r in range(procs):
        session.spawn(worker, r, name=f"worker{r}")

    t0 = env.now
    session.run()
    return results, session, env.now - t0


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--items", type=int, default=32)
    ap.add_argument("--size", type=int, default=65536)
    ap.add_argument("--procs", type=int, default=8)
    args = ap.parse_args()

    rng = np.random.default_rng(17)
    items = [rng.standard_normal(args.size) for _ in range(args.items)]
    kernel = np.cumsum

    # a compute-heavy streaming kernel class (~48 flops/byte, e.g.
    # multi-tap filtering) — the regime FPGA offload targets
    host_out, host, host_makespan = run_farm(
        args.procs, items, kernel, use_card=False
    )
    host_busy = sum(n.cpu.busy_time for n in host.nodes)

    inic_out, acc, inic_makespan = run_farm(
        args.procs, items, kernel, use_card=True
    )
    inic_busy = sum(n.cpu.busy_time for n in acc.nodes)

    for a, b in zip(host_out, inic_out):
        assert np.array_equal(a, b)

    print(f"{args.items} prefix-sum kernels over {args.size}-element vectors, "
          f"{args.procs} nodes")
    print(f"  host CPUs   : {fmt_time(host_makespan)} "
          f"(host busy {fmt_time(host_busy)})")
    print(f"  INIC cards  : {fmt_time(inic_makespan)} "
          f"(host busy {fmt_time(inic_busy)})")
    print(f"  completion interrupts: "
          f"{acc.manager.total_completion_interrupts()} (one per item)")
    print("results identical on both paths: OK")


if __name__ == "__main__":
    main()
