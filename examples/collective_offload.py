#!/usr/bin/env python
"""Future-work extension: collective operations in the NIC datapath.

Section 8 of the paper: "The implications of this architecture are far
reaching, with the potential to accelerate functions ranging from
collective operations to MPI derived data types..."

This example all-reduces a vector across the cluster two ways:

* the host baseline — reduce-to-root + broadcast over MPI/TCP, every
  operand crossing host memory, the TCP stack, and the interrupt path;
* the INIC — each card streams its contribution to the root's card,
  which reduces *in the datapath*; the result returns as one switch-
  replicated broadcast.  Hosts post two descriptors and take one
  completion interrupt each.

Run:  python examples/collective_offload.py [--elements 65536] [--procs 8]
"""

import argparse

import numpy as np

from repro.api import Experiment
from repro.apps.collective import inic_allreduce
from repro.cluster import ParallelApp, allreduce
from repro.units import fmt_time


def host_allreduce(p: int, contributions: list[np.ndarray]):
    cluster = Experiment().nodes(p).build().cluster
    app = ParallelApp(cluster)

    def program(ctx):
        result = yield from allreduce(ctx, contributions[ctx.rank])
        return result

    res = app.run(program)
    return cluster, res


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--elements", type=int, default=65536)
    ap.add_argument("--procs", type=int, default=8)
    args = ap.parse_args()
    p, n = args.procs, args.elements

    rng = np.random.default_rng(13)
    contributions = [rng.standard_normal(n) for _ in range(p)]
    expected = np.sum(contributions, axis=0)

    cluster, host_res = host_allreduce(p, contributions)
    host_out = host_res.rank_results[0]
    assert np.allclose(host_out, expected)

    session = Experiment().nodes(p).card().build()
    acc, manager = session.cluster, session.manager
    inic_out, inic_res = inic_allreduce(acc, manager, contributions)
    assert np.allclose(inic_out, expected)

    print(f"allreduce of {n} doubles across {p} nodes")
    print(f"  host (MPI/TCP)  : {fmt_time(host_res.makespan)}")
    print(f"  INIC datapath   : {fmt_time(inic_res.makespan)}")
    print(f"  speedup         : {host_res.makespan / inic_res.makespan:.2f}x")
    host_irqs = sum(nd.nic.irq.interrupts_delivered for nd in cluster.nodes)
    print(f"  host interrupts : {host_irqs} (TCP) vs "
          f"{manager.total_completion_interrupts()} (INIC completions)")
    print("results verified equal on every rank: OK")


if __name__ == "__main__":
    main()
