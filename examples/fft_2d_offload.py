#!/usr/bin/env python
"""The paper's 2-D FFT experiment, end to end (Figures 4(a)/8(a)).

Sweeps processor counts for one matrix size over three architectures —
Fast Ethernet, Gigabit Ethernet, and the prototype INIC — printing a
speedup table in the shape of Figure 8(a), plus the ideal-INIC analytic
prediction of Figure 4(a) alongside.

Run:  python examples/fft_2d_offload.py [--rows 256] [--procs 1 2 4 8 16]
"""

import argparse

import numpy as np

from repro.api import ACEII_PROTOTYPE, Experiment, FAST_ETHERNET
from repro.apps.fft import baseline_fft2d, fft2d, inic_fft2d
from repro.cluster import athlon_node
from repro.models import inic_fft_time, serial_fft_time


def run(rows: int, procs: list[int]) -> None:
    rng = np.random.default_rng(7)
    matrix = rng.standard_normal((rows, rows)) + 1j * rng.standard_normal((rows, rows))
    oracle = fft2d(matrix)
    hierarchy = athlon_node().hierarchy()

    # Serial reference: the P=1 baseline run.
    serial_session = Experiment().nodes(1).build()
    _, serial = baseline_fft2d(serial_session.cluster, matrix)
    t1 = serial.makespan
    t1_model = serial_fft_time(rows, hierarchy)

    print(f"{rows}x{rows} 2-D FFT; serial reference {t1 * 1000:.1f} ms "
          f"(analytic {t1_model * 1000:.1f} ms)")
    header = f"{'P':>4} | {'FastEth':>8} | {'GigE':>8} | {'protoINIC':>9} | {'idealINIC*':>10}"
    print(header)
    print("-" * len(header))

    for p in procs:
        if rows % p:
            continue
        if p == 1:
            fe = ge = proto = 1.0
        else:
            fe_sess = Experiment().nodes(p).network(FAST_ETHERNET).build()
            _, fe_res = baseline_fft2d(fe_sess.cluster, matrix)
            ge_sess = Experiment().nodes(p).build()
            _, ge_res = baseline_fft2d(ge_sess.cluster, matrix)
            acc = Experiment().nodes(p).card(ACEII_PROTOTYPE).build()
            out, proto_res = inic_fft2d(acc.cluster, acc.manager, matrix)
            assert np.allclose(out, oracle, atol=1e-8)
            fe = t1 / fe_res.makespan
            ge = t1 / ge_res.makespan
            proto = t1 / proto_res.makespan
        ideal = t1_model / inic_fft_time(rows, p, hierarchy) if p > 1 else 1.0
        print(f"{p:>4} | {fe:>8.2f} | {ge:>8.2f} | {proto:>9.2f} | {ideal:>10.2f}")

    print("\n(*) ideal INIC from the Section-4 analytical model (Eqs. 3-10);")
    print("    everything else is packet-level discrete-event simulation.")


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--rows", type=int, default=256)
    ap.add_argument("--procs", type=int, nargs="*", default=[1, 2, 4, 8, 16])
    args = ap.parse_args()
    run(args.rows, args.procs)


if __name__ == "__main__":
    main()
