#!/usr/bin/env python
"""The three INIC operating modes of Section 2, demonstrated.

* **Compute Accelerator** — the card runs an application kernel with a
  separate path to host memory; networking is untouched.
* **Protocol Processor** — the card performs all protocol processing:
  the host posts one descriptor per message and takes one completion
  interrupt, vs TCP's per-packet costs.
* **Combined** — the FFT-transpose datapath (see quickstart.py /
  fft_2d_offload.py for the full application).

Run:  python examples/protocol_modes.py
"""

import numpy as np

from repro.api import Experiment
from repro.cluster import ParallelApp
from repro.core import (
    compute_design,
    fft_transpose_design,
    protocol_processor_design,
)
from repro.inic.cores import ReduceCore
from repro.net import MacAddress
from repro.units import fmt_time


def demo_compute_accelerator() -> None:
    print("== Mode 1: Compute Accelerator ==")
    session = Experiment().nodes(1).card().build()
    cluster, manager = session.cluster, session.manager
    manager.configure_all(lambda: compute_design([ReduceCore("sum")]))
    card = manager.driver(0).card
    data = np.arange(1 << 16, dtype=np.float64)
    sim = cluster.sim
    out = {}

    def proc():
        t0 = sim.now
        result = yield card.compute(
            data, lambda d: np.cumsum(d), in_bytes=data.nbytes, out_bytes=data.nbytes
        )
        out["t"] = sim.now - t0
        out["ok"] = bool(np.array_equal(result, np.cumsum(data)))

    sim.process(proc())
    sim.run()
    print(f"  prefix-sum of {data.size} doubles on the card: "
          f"{fmt_time(out['t'])}, result ok={out['ok']}")


def demo_protocol_processor() -> None:
    print("== Mode 2: Protocol Processor ==")
    nbytes = 1 << 20
    payload = np.arange(nbytes // 8, dtype=np.float64)

    # TCP baseline.
    cluster = Experiment().nodes(2).build().cluster
    app = ParallelApp(cluster)

    def program(ctx):
        if ctx.rank == 0:
            yield ctx.send(1, nbytes, payload=payload, tag=1)
            return None
        msg = yield ctx.recv(src=0, tag=1)
        return msg.payload

    tcp_res = app.run(program)
    tcp_irqs = sum(n.nic.irq.interrupts_delivered for n in cluster.nodes)

    # INIC protocol-processor mode.
    acc = Experiment().nodes(2).card().build()
    manager = acc.manager
    manager.configure_all(protocol_processor_design)
    sim = acc.sim
    out = {}

    def sender():
        yield from manager.driver(0).send_message(
            MacAddress(1), nbytes, payload=payload, tag=1
        )

    def receiver():
        t0 = sim.now
        got = yield from manager.driver(1).recv_message(MacAddress(0), nbytes, tag=1)
        out["t"] = sim.now - t0
        out["ok"] = bool(np.array_equal(got, payload))

    t0 = sim.now
    sim.process(sender())
    sim.process(receiver())
    sim.run()
    inic_t = sim.now - t0
    inic_irqs = manager.total_completion_interrupts()
    print(f"  1 MiB message: TCP {fmt_time(tcp_res.makespan)} "
          f"({tcp_irqs} interrupts) vs INIC {fmt_time(inic_t)} "
          f"({inic_irqs} completion interrupt), payload ok={out['ok']}")


def demo_combined() -> None:
    print("== Mode 3: Combined Compute/Protocol ==")
    session = Experiment().nodes(2).card().build()
    cluster, manager = session.cluster, session.manager
    dt = manager.configure_all(fft_transpose_design)
    design = cluster.nodes[0].require_inic().design
    print(f"  loaded {design.name!r}: cores "
          f"{[c.spec.name for c in design.cores]} "
          f"({design.clbs} CLBs, configured in {fmt_time(dt)})")
    print("  see quickstart.py for the full offloaded FFT run")


def main() -> None:
    demo_compute_accelerator()
    demo_protocol_processor()
    demo_combined()


if __name__ == "__main__":
    main()
