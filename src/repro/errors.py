"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so
applications can catch library failures without catching programming
errors.  Sub-hierarchies mirror the package layout: simulation kernel,
hardware models, network substrate, protocol stacks, and the INIC offload
framework.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


# --- simulation kernel -------------------------------------------------------
class SimulationError(ReproError):
    """Base class for discrete-event simulation kernel errors."""


class SimTimeError(SimulationError):
    """An event was scheduled in the past or with a negative delay."""


class ProcessError(SimulationError):
    """A simulated process misbehaved (e.g. yielded a non-event)."""


class Interrupt(Exception):
    """Thrown *into* a simulated process when it is interrupted.

    Deliberately not a :class:`ReproError`: processes are expected to catch
    it as part of normal control flow (like ``simpy.Interrupt``).
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause


# --- hardware models ---------------------------------------------------------
class HardwareError(ReproError):
    """Base class for node-hardware model errors."""


class BusError(HardwareError):
    """Invalid bus transfer (zero bytes, detached device, ...)."""


class DMAError(HardwareError):
    """DMA descriptor or channel misuse."""


class MemoryModelError(HardwareError):
    """Invalid memory-hierarchy configuration or access description."""


# --- network substrate -------------------------------------------------------
class NetworkError(ReproError):
    """Base class for network substrate errors."""


class AddressError(NetworkError):
    """Unknown or malformed network address."""


class LinkError(NetworkError):
    """Link misconfiguration or use of a down link."""


class SwitchError(NetworkError):
    """Switch port/buffer misconfiguration."""


class PacketError(NetworkError):
    """Malformed packet or header."""


# --- protocols ---------------------------------------------------------------
class ProtocolError(ReproError):
    """Base class for protocol stack errors."""


class ConnectionError_(ProtocolError):
    """Connection setup/teardown failure (named to avoid shadowing builtin)."""


class TransferAborted(ProtocolError):
    """A reliable transfer could not complete (too many retransmissions)."""


# --- INIC / offload framework -------------------------------------------------
class INICError(ReproError):
    """Base class for INIC and offload-framework errors."""


class FPGAResourceError(INICError):
    """A design does not fit the FPGA fabric (CLB/BRAM budget exceeded)."""


class ConfigurationError(INICError):
    """Invalid offload design or card configuration."""


class OffloadError(INICError):
    """Runtime failure in an offloaded operation."""


# --- configuration documents ---------------------------------------------------
class ConfigError(ReproError):
    """A malformed config document or unknown config field.

    The root of the config-convention hierarchy: every
    ``to_json``/``from_json`` surface (protocol configs,
    ``BatchPolicy``, fault and campaign specs) rejects unknown keys
    with a :class:`ConfigError` subclass, so callers can catch the
    whole family here.
    """


# --- fault injection -----------------------------------------------------------
class FaultConfigError(ConfigError):
    """Invalid fault-injection specification (bad rate, window, scale)."""


# --- applications / harness ---------------------------------------------------
class ApplicationError(ReproError):
    """Base class for application-level errors (FFT, sort)."""


class CalibrationError(ReproError):
    """Benchmark calibration failed or produced nonsensical rates."""
