"""repro — reproduction of "A Reconfigurable Extension to the Network
Interface of Beowulf Clusters" (CLUSTER 2001).

The package simulates an Adaptable Computing Cluster: Beowulf nodes
whose network interfaces carry FPGA-based reconfigurable computing
(Intelligent NICs).  Start here::

    from repro.api import Experiment, ACEII_PROTOTYPE
    from repro.apps.fft import baseline_fft2d, inic_fft2d
    from repro.apps.sort import baseline_sort, inic_sort

    session = Experiment().nodes(8).card(ACEII_PROTOTYPE).telemetry(True).build()

Layers (see DESIGN.md for the full map):

* :mod:`repro.sim`       — discrete-event simulation kernel
* :mod:`repro.hw`        — node hardware (CPU, caches, DMA, PCI)
* :mod:`repro.net`       — Ethernet substrate (wires, switch, NICs)
* :mod:`repro.protocols` — TCP baseline + the INIC custom protocol
* :mod:`repro.inic`      — the reconfigurable card and its stream cores
* :mod:`repro.core`      — the offload framework (the paper's contribution)
* :mod:`repro.cluster`   — cluster assembly, SimMPI, collectives
* :mod:`repro.apps`      — 2-D FFT, integer sort, and extensions
* :mod:`repro.models`    — the paper's analytical models (Eqs. 3-17)
* :mod:`repro.bench`     — per-figure reproduction harnesses
* :mod:`repro.telemetry` — metrics registry, timelines, Perfetto export
* :mod:`repro.api`       — the ``Experiment``/``Session`` facade
"""

__version__ = "1.0.0"
__paper__ = (
    "A Reconfigurable Extension to the Network Interface of Beowulf "
    "Clusters, CLUSTER 2001"
)
