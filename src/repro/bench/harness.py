"""Experiment harness: figure definitions, scales, rendering.

Every figure reproduction is an :class:`Experiment`: an id (the paper's
figure panel), axis labels, and a set of :class:`~repro.models.speedup.Series`.
Two scales:

* ``paper`` — the paper's problem sizes and processor counts (used to
  produce EXPERIMENTS.md);
* ``ci`` — reduced sizes for pytest-benchmark, preserving the shape
  assertions while keeping wall-clock low.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import ApplicationError
from ..models.speedup import Series

__all__ = ["Scale", "SCALE_NAMES", "Experiment", "render_table", "render_all"]

#: named scales accepted by :meth:`Scale.by_name`, alphabetical
SCALE_NAMES = ("bench", "ci", "large", "paper")


@dataclass(frozen=True)
class Scale:
    """Problem-size bundle for one run of the figure suite."""

    name: str
    fft_sizes: tuple[int, ...]
    fft_procs: tuple[int, ...]
    sort_keys: int
    sort_procs: tuple[int, ...]
    #: link loss rates swept by the fault-injection suite (the
    #: makespan-vs-loss-rate curve); 0.0 is the ideal-fabric anchor
    loss_rates: tuple[float, ...] = (0.0, 0.001, 0.01)
    #: node counts for the hierarchical-topology scale points (empty:
    #: the scale suite stays single-star only)
    fabric_procs: tuple[int, ...] = ()
    #: hierarchical topologies swept by the scale suite
    topologies: tuple[str, ...] = ()
    #: chaos-campaign arrival window in simulated seconds — a scale
    #: property because failures must arrive while the workload is
    #: still on the wire (the window is workload-relative, armed at the
    #: fabric's first frame; see ``repro.faults.campaign``).  The
    #: default sits inside the ~12 ms exchange phase of the large
    #: scale's p=256 sort.
    chaos_horizon: float = 8e-3

    @classmethod
    def paper(cls) -> "Scale":
        return cls(
            name="paper",
            fft_sizes=(256, 512),
            fft_procs=(1, 2, 4, 8, 16),
            # Fig. 5(a)'s partition axis implies ~48 * 2^20 keys; the DES
            # figures use 2^24 (speedup shapes are size-stable, see
            # EXPERIMENTS.md), the analytic figures use the full count.
            sort_keys=1 << 24,
            sort_procs=(1, 2, 4, 8, 16),
        )

    @classmethod
    def bench(cls) -> "Scale":
        """pytest-benchmark scale: one real DES sweep per figure, sized
        to finish in seconds while keeping the paper's P range."""
        return cls(
            name="bench",
            fft_sizes=(256,),
            fft_procs=(1, 2, 4, 8, 16),
            sort_keys=1 << 20,
            sort_procs=(1, 2, 4, 8, 16),
        )

    @classmethod
    def ci(cls) -> "Scale":
        return cls(
            name="ci",
            fft_sizes=(128,),
            fft_procs=(1, 2, 4, 8),
            sort_keys=1 << 18,
            sort_procs=(1, 2, 4, 8),
        )

    @classmethod
    def large(cls) -> "Scale":
        """Scale-out suite: 32-128 nodes on the aggregated star, then
        64-1024 nodes on the hierarchical fabrics.

        Extends the paper's 16-processor envelope to ask where the
        INIC-vs-TCP gap goes as the fabric grows.  Key count is
        divisible by 1024 so the sort partitions evenly at every p.
        """
        return cls(
            name="large",
            fft_sizes=(512,),
            fft_procs=(32, 64, 128),
            sort_keys=1 << 21,
            sort_procs=(32, 64, 128),
            fabric_procs=(64, 256, 512, 1024),
            topologies=("fattree", "torus"),
        )

    @classmethod
    def by_name(cls, name: str) -> "Scale":
        """Look up a named scale (see :data:`SCALE_NAMES`)."""
        try:
            factory = {
                "paper": cls.paper,
                "bench": cls.bench,
                "ci": cls.ci,
                "large": cls.large,
            }[name]
        except KeyError:
            raise ApplicationError(
                f"unknown scale {name!r} for Scale.by_name "
                f"(choose from {', '.join(SCALE_NAMES)})"
            ) from None
        return factory()


@dataclass
class Experiment:
    """One reproduced figure panel."""

    exp_id: str  # e.g. "fig4a"
    title: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def series_named(self, name: str) -> Series:
        for s in self.series:
            if s.name == name:
                return s
        raise ApplicationError(
            f"{self.exp_id}: no series {name!r}; have {[s.name for s in self.series]}"
        )

    def add(self, s: Series) -> None:
        self.series.append(s)


def render_table(exp: Experiment, precision: int = 2) -> str:
    """Paper-style rows: one line per x value, one column per series."""
    xs = sorted({x for s in exp.series for x in s.x})
    name_w = max(12, *(len(s.name) for s in exp.series)) if exp.series else 12
    header = f"{exp.x_label:>10} | " + " | ".join(
        f"{s.name:>{name_w}}" for s in exp.series
    )
    lines = [
        f"== {exp.exp_id}: {exp.title} ==",
        f"   ({exp.y_label})",
        header,
        "-" * len(header),
    ]
    for x in xs:
        cells = []
        for s in exp.series:
            try:
                cells.append(f"{s.at(x):>{name_w}.{precision}f}")
            except ApplicationError:
                cells.append(" " * (name_w - 1) + "-")
        lines.append(f"{x:>10g} | " + " | ".join(cells))
    for note in exp.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


def render_all(experiments: list[Experiment]) -> str:
    return "\n\n".join(render_table(e) for e in experiments)
