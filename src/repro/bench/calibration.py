"""Calibration utilities.

Two jobs:

1. **Cross-check the DES against the analytic model** — the Section-4
   equations and the packet-level simulation describe the same machine;
   ``compare_des_vs_model`` quantifies their agreement so EXPERIMENTS.md
   can report it (and so parameter drift gets caught by tests).

2. **Measure this host's kernel rates** — the functional kernels (count
   sort, bucket split, FFT) have wall-clock rates on the machine running
   the simulation; ``measure_kernel_rates`` reports keys/s and flop/s so
   readers can relate simulated 2001 times to what they see locally.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..apps.fft.serial import fft1d
from ..apps.sort.bucketsort import split_by_bits
from ..apps.sort.countsort import count_sort
from ..apps.sort.quicksort import quicksort
from ..cluster.builder import athlon_node
from ..errors import CalibrationError
from ..models.fft_model import inic_fft_time
from ..models.gige_model import gige_fft_time
from ..models.params import DEFAULT_PARAMS, fft_row_flops

__all__ = ["KernelRates", "measure_kernel_rates", "compare_des_vs_model"]


@dataclass(frozen=True)
class KernelRates:
    """Wall-clock rates of the functional kernels on this host."""

    count_sort_keys_per_s: float
    quicksort_keys_per_s: float
    bucket_split_keys_per_s: float
    fft_flops_per_s: float

    @property
    def count_vs_quick(self) -> float:
        """The Section-3.2 claim: count sort vs quicksort speed ratio."""
        return self.count_sort_keys_per_s / self.quicksort_keys_per_s


def _time_call(fn, *args) -> float:
    t0 = time.perf_counter()
    fn(*args)
    return time.perf_counter() - t0


def measure_kernel_rates(
    n_keys: int = 1 << 18, fft_n: int = 1 << 12, fft_rows: int = 64, seed: int = 3
) -> KernelRates:
    """Measure the functional kernels (wall clock, this machine)."""
    if n_keys < 1024 or fft_n < 16:
        raise CalibrationError("calibration sizes too small to time")
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 2**32, size=n_keys, dtype=np.uint32)
    rows = rng.standard_normal((fft_rows, fft_n)) + 0j

    t_count = _time_call(count_sort, keys)
    t_quick = _time_call(quicksort, keys)
    t_split = _time_call(split_by_bits, keys, 0, 128)
    t_fft = _time_call(fft1d, rows)
    flops = fft_rows * fft_row_flops(fft_n)
    return KernelRates(
        count_sort_keys_per_s=n_keys / t_count,
        quicksort_keys_per_s=n_keys / t_quick,
        bucket_split_keys_per_s=n_keys / t_split,
        fft_flops_per_s=flops / t_fft,
    )


def compare_des_vs_model(
    des_time: float, rows: int, p: int, arch: str = "gige"
) -> float:
    """Relative deviation of a DES measurement from the analytic model.

    Returns ``(des - model) / model``; EXPERIMENTS.md reports these per
    configuration, and tests assert the two stay within a band.
    """
    h = athlon_node().hierarchy()
    if arch == "gige":
        model = gige_fft_time(rows, p, h, DEFAULT_PARAMS)
    elif arch == "inic":
        model = inic_fft_time(rows, p, h, DEFAULT_PARAMS)
    else:
        raise CalibrationError(f"unknown arch {arch!r}")
    if model <= 0:
        raise CalibrationError("model produced non-positive time")
    return (des_time - model) / model
