"""Parallel sweep engine with a content-addressed scenario cache.

Every figure/benchmark point in the reproduction — one DES run or one
analytic-model evaluation at a given (scenario, P, problem size) — is
independent and deterministic.  This module turns that property into
throughput:

* **PointSpec** — a self-describing, hashable description of one point:
  a runner ``kind`` plus JSON-safe ``params`` (sizes, processor count,
  card/network names, RNG seed).  Identity is the canonical JSON of
  ``(kind, params)``; the display ``name`` is not part of identity, so
  two figures that share a baseline point share one computation.
* **Parallel execution** — cache misses fan out across worker processes
  (:class:`concurrent.futures.ProcessPoolExecutor`, ``--jobs N``,
  default ``os.cpu_count()``).  Each point seeds its own RNG from its
  spec, so parallel output is bit-identical to serial.
* **Content-addressed cache** — completed points are memoized in
  ``.sweep-cache/<sha256(spec + salt)>.json``.  The salt is a
  fingerprint of the source files the runner family depends on (plus
  :data:`ENGINE_VERSION`), so touching a model recomputes exactly the
  affected points and nothing else.

The perf-regression suite (``--suite perf``) and the figure suite
(:mod:`repro.bench.figures`) both route through this engine::

    python -m repro.bench.sweep --suite perf --jobs 2 --check
    python -m repro.bench.figures --scale paper --jobs 8 --csv results
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import statistics
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable, Iterable, Optional

from ..errors import ApplicationError

__all__ = [
    "ENGINE_VERSION",
    "DEFAULT_CACHE_DIR",
    "PointSpec",
    "PointResult",
    "SweepStats",
    "SweepEngine",
    "runner",
    "kind_salt",
    "canonical_json",
    "perf_points",
    "fault_points",
    "chaos_points",
    "scale_points",
    "scheduler_kind",
    "scheduler_backend",
    "build_report",
    "write_report",
    "main",
]

#: default on-disk cache location (git-ignored)
DEFAULT_CACHE_DIR = ".sweep-cache"

#: bumped on semantic changes to the runners themselves; folded into the
#: cache salt alongside the per-family source fingerprint.
ENGINE_VERSION = "1"

#: cache file schema version
_SCHEMA = 1


class SweepError(ApplicationError):
    """A sweep-engine failure (bad spec, nondeterministic point, ...)."""


# ---------------------------------------------------------------------------
# Canonical hashing
# ---------------------------------------------------------------------------
def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace.  Raises
    :class:`SweepError` for values JSON cannot represent."""
    try:
        return json.dumps(obj, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise SweepError(f"spec is not JSON-serializable: {exc}") from exc


@dataclass(frozen=True, eq=False)
class PointSpec:
    """One sweep point: a runner ``kind`` and its JSON-safe ``params``.

    ``name`` is the human/report label; it is *excluded* from identity
    so relabeling never invalidates the cache and shared baselines
    (e.g. the P=1 serial run every speedup curve divides by) are
    computed once.
    """

    kind: str
    name: str
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _RUNNERS:
            raise SweepError(
                f"unknown point kind {self.kind!r}; have {sorted(_RUNNERS)}"
            )
        canonical_json(self.params)  # fail fast on unserializable params

    @property
    def identity(self) -> dict:
        return {"kind": self.kind, "params": self.params}

    @property
    def spec_hash(self) -> str:
        """sha256 of the canonical identity (salt-free)."""
        return hashlib.sha256(
            canonical_json(self.identity).encode("utf-8")
        ).hexdigest()

    def cache_key(self, salt: str) -> str:
        """Content address: sha256 over identity *and* the model-version
        salt, so stale results can never be served after code changes."""
        doc = {"identity": self.identity, "salt": salt}
        return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PointSpec) and self.identity == other.identity

    def __hash__(self) -> int:
        return hash((self.kind, canonical_json(self.params)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PointSpec {self.name} kind={self.kind} {self.spec_hash[:12]}>"


@dataclass
class PointResult:
    """Outcome of one point: the runner's payload plus measurement."""

    spec: PointSpec
    value: dict
    wall_seconds: float
    repeats: int
    cached: bool

    @property
    def events(self) -> int:
        return int(self.value.get("events", 0))


@dataclass
class SweepStats:
    """What one :meth:`SweepEngine.run` call did."""

    points: int = 0
    unique: int = 0
    hits: int = 0
    executed: int = 0
    wall_seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.unique if self.unique else 0.0


# ---------------------------------------------------------------------------
# Runner registry
# ---------------------------------------------------------------------------
_RUNNERS: dict[str, Callable[[dict], dict]] = {}
_KIND_FAMILY: dict[str, str] = {}

#: source layers each runner family depends on.  The sha256 of those
#: files is the model-version salt: touch the sort model and every DES
#: and analytic point recomputes; touch only this module's CLI and
#: nothing does.
_FAMILY_DEPS: dict[str, tuple[str, ...]] = {
    "des": (
        "repro.sim",
        "repro.hw",
        "repro.faults",
        "repro.net",
        "repro.protocols",
        "repro.inic",
        "repro.cluster",
        "repro.apps",
        "repro.core",
        "repro.models",
        "repro.telemetry",
        "repro.config",
        "repro.units",
        "repro.errors",
    ),
    "analytic": (
        "repro.models",
        "repro.hw",
        "repro.cluster",
        "repro.units",
        "repro.errors",
    ),
}


def runner(kind: str, family: str) -> Callable:
    """Register a point runner: ``fn(params dict) -> result dict``."""
    if family not in _FAMILY_DEPS:
        raise SweepError(f"unknown runner family {family!r}")

    def register(fn: Callable[[dict], dict]) -> Callable[[dict], dict]:
        _RUNNERS[kind] = fn
        _KIND_FAMILY[kind] = family
        return fn

    return register


@lru_cache(maxsize=None)
def _module_files(module_name: str) -> tuple[str, ...]:
    import importlib

    mod = importlib.import_module(module_name)
    paths = getattr(mod, "__path__", None)
    if paths:  # package: every .py underneath, sorted for determinism
        files: list[str] = []
        for root in paths:
            for dirpath, dirnames, filenames in os.walk(root):
                dirnames.sort()
                files.extend(
                    os.path.join(dirpath, f)
                    for f in sorted(filenames)
                    if f.endswith(".py")
                )
        return tuple(files)
    return (mod.__file__,) if getattr(mod, "__file__", None) else ()


@lru_cache(maxsize=None)
def _family_fingerprint(family: str) -> str:
    h = hashlib.sha256()
    for module_name in _FAMILY_DEPS[family]:
        for path in _module_files(module_name):
            h.update(os.path.basename(path).encode("utf-8"))
            with open(path, "rb") as fh:
                h.update(fh.read())
    return h.hexdigest()


def kind_salt(kind: str) -> str:
    """The model-version salt for a point kind."""
    family = _KIND_FAMILY.get(kind)
    if family is None:
        raise SweepError(f"unknown point kind {kind!r}")
    return f"{ENGINE_VERSION}:{family}:{_family_fingerprint(family)}"


# ---------------------------------------------------------------------------
# Point runners
# ---------------------------------------------------------------------------
def _card(name: Optional[str]):
    if name is None:
        return None
    from ..inic.card import ACEII_PROTOTYPE, IDEAL_INIC

    cards = {c.name: c for c in (ACEII_PROTOTYPE, IDEAL_INIC)}
    try:
        return cards[name]
    except KeyError:
        raise SweepError(f"unknown card {name!r}; have {sorted(cards)}") from None


def _network(name: str):
    from ..net.fabric import FAST_ETHERNET, GIGABIT_ETHERNET

    nets = {n.name: n for n in (FAST_ETHERNET, GIGABIT_ETHERNET)}
    try:
        return nets[name]
    except KeyError:
        raise SweepError(f"unknown network {name!r}; have {sorted(nets)}") from None


@lru_cache(maxsize=1)
def _hierarchy():
    from ..cluster.builder import athlon_node

    return athlon_node().hierarchy()


def _machine_params(d: Optional[dict]):
    from ..models.params import DEFAULT_PARAMS, MachineParams

    return DEFAULT_PARAMS if d is None else MachineParams(**d)


def machine_params_dict(params) -> Optional[dict]:
    """``params`` as a spec-embeddable dict (``None`` for the default
    calibration, keeping specs short and stable in the common case)."""
    from ..models.params import DEFAULT_PARAMS

    return None if params == DEFAULT_PARAMS else dataclasses.asdict(params)


def _fault_spec(p: dict):
    """The point's fault scenario (``None`` when the params carry no
    ``faults`` block — the common, bit-identical-to-history case)."""
    from ..faults import FaultSpec

    spec = FaultSpec.from_params(p.get("faults"))
    return spec if spec.enabled else None


def _recovery_card(card, retries: int):
    """Card spec with NACK/retransmit recovery enabled (``retries`` > 0)."""
    if card is None or retries <= 0:
        return card
    return dataclasses.replace(
        card, proto=dataclasses.replace(card.proto, max_retries=retries)
    )


def _robustness_counters(cluster, manager=None) -> dict:
    """Cluster-wide fault/recovery counters (the shared aggregation now
    lives in :func:`repro.faults.robustness_counters`, so the sweep,
    the chaos harness, and ``Session.report()`` all read one source)."""
    from ..faults import robustness_counters

    return robustness_counters(cluster)


def _merge_counters(a: dict, b: dict) -> dict:
    out = {}
    for k in {*a, *b}:
        va, vb = a.get(k), b.get(k)
        if isinstance(va, dict) or isinstance(vb, dict):
            out[k] = _merge_counters(va or {}, vb or {})
        else:
            out[k] = (va or 0) + (vb or 0)
    return out


def _fallback_faults(faults):
    """The fault spec a degraded host-TCP run inherits: resource-pressure
    dimensions carry over, link-fault and component-failure dimensions do
    not — the simplified TCP model stands for a transport that recovers
    losses internally, so injecting raw frame loss (or un-recovered
    component blackholes) under it would model the wrong failure."""
    import dataclasses as dc

    fb = dc.replace(
        faults, loss_rate=0.0, corrupt_rate=0.0, outages=(), components=()
    )
    return fb if fb.enabled else None


def _point_session(n: int, p: dict, card=None, network=None, faults=None):
    """Build one point's cluster through the experiment facade.

    An optional ``telemetry: true`` params flag instruments the cluster.
    Observation is pull-based, so makespans and event counts are
    unchanged; instrumented points hash differently, which is correct —
    their results carry an extra ``metrics`` payload."""
    from ..core.api import Experiment

    exp = Experiment().nodes(n).card(card).faults(faults)
    if network is not None:
        exp = exp.network(network)
    fabric = p.get("fabric")
    if fabric is not None:
        # topology options ride in the params as a JSON object, e.g.
        # {"fabric": "fattree", "fabric_options": {"oversub": 2}}
        exp = exp.fabric(fabric, **(p.get("fabric_options") or {}))
    if p.get("fastpath"):
        exp = exp.fastpath(True)
    return exp.telemetry(bool(p.get("telemetry"))).build()


def _point_value(session, res, **extra) -> dict:
    """A runner's result payload, with the telemetry snapshot merged in
    when the point asked for it."""
    out: dict[str, Any] = {
        "makespan": res.makespan,
        "events": session.sim.event_count,
    }
    # hierarchical fabrics also report their routing cost (hop counts);
    # single-star fabrics have no hop_stats, so legacy payloads (and
    # cache entries) are unchanged
    hop_stats = getattr(session.cluster.switch, "hop_stats", None)
    if hop_stats is not None:
        out["hops"] = hop_stats()
    # fast-path engagement counter: trains bulk-admitted by the fabric's
    # flow clock (absent from legacy payloads and frame-level runs)
    trains = getattr(session.cluster.switch, "trains_fast", 0)
    if trains:
        out["trains_fast"] = trains
    out.update(extra)
    if session.telemetry_enabled:
        out["metrics"] = session.metrics()
    return out


@runner("sort-des", family="des")
def _run_sort_des(p: dict) -> dict:
    """One Fig. 8(b)-style DES point: integer sort on ``p`` nodes.

    With a ``faults`` block in the params the run goes through the
    fault-injection path: link/switch/ring/config faults are installed,
    INIC recovery is enabled with ``retries`` NACK rounds, and the
    result carries robustness counters.  An FPGA configuration failure
    (after the manager's bounded retries) degrades to the host-TCP
    baseline — the wasted configuration time and the fallback are both
    visible in the result.  A transfer that exhausts its retry budget
    reports ``aborted`` with the deterministic abort-time makespan.
    """
    import numpy as np

    from ..apps.sort import baseline_sort, inic_sort
    from ..errors import ConfigurationError, TransferAborted

    g = np.random.default_rng(p["seed"])
    keys = g.integers(0, 2**32, size=p["e_init"], dtype=np.uint32)
    card = _card(p.get("card"))
    faults = _fault_spec(p)
    if faults is None:
        session = _point_session(p["p"], p, card=card)
        if card is None:
            _, res = baseline_sort(session.cluster, keys)
        else:
            _, res = inic_sort(session.cluster, session.manager, keys)
        return _point_value(session, res)

    retries = int(p.get("retries", 8))
    if card is None:
        session = _point_session(p["p"], p, faults=faults)
        _, res = baseline_sort(session.cluster, keys)
        return _point_value(
            session, res, aborted=False, fallbacks=0,
            faults=_robustness_counters(session.cluster),
        )
    session = _point_session(
        p["p"], p, card=_recovery_card(card, retries), faults=faults
    )
    cluster = session.cluster
    try:
        _, res = inic_sort(cluster, session.manager, keys)
    except ConfigurationError:
        # Graceful degradation: the INIC bitstream would not load, so the
        # job runs on the commodity host-TCP path instead.  The failed
        # cluster's elapsed time (the paid-for load attempts) and events
        # are charged on top of the baseline run.
        fb = _point_session(p["p"], p, faults=_fallback_faults(faults))
        _, res = baseline_sort(fb.cluster, keys)
        out = {
            "makespan": cluster.sim.now + res.makespan,
            "events": cluster.sim.event_count + fb.sim.event_count,
            "aborted": False,
            "fallbacks": 1,
            "faults": _merge_counters(
                _robustness_counters(cluster), _robustness_counters(fb.cluster)
            ),
        }
        if fb.telemetry_enabled:
            out["metrics"] = fb.metrics()
        return out
    except TransferAborted:
        out = {
            "makespan": cluster.sim.now,
            "events": cluster.sim.event_count,
            "aborted": True,
            "fallbacks": 0,
            "faults": _robustness_counters(cluster),
        }
        if session.telemetry_enabled:
            out["metrics"] = session.metrics()
        return out
    return _point_value(
        session, res, aborted=False, fallbacks=0,
        faults=_robustness_counters(cluster),
    )


@runner("fft-des", family="des")
def _run_fft_des(p: dict) -> dict:
    """One Fig. 8(a)-style DES point: 2D FFT on ``p`` nodes.

    Supports the same optional ``faults``/``retries`` params as the sort
    runner (see :func:`_run_sort_des`).
    """
    import numpy as np

    from ..apps.fft import baseline_fft2d, inic_fft2d
    from ..errors import ConfigurationError, TransferAborted

    rows = p["rows"]
    g = np.random.default_rng(p["seed"])
    m = g.standard_normal((rows, rows)) + 1j * g.standard_normal((rows, rows))
    network = _network(p["network"])
    card = _card(p.get("card"))
    faults = _fault_spec(p)
    if faults is None:
        session = _point_session(p["p"], p, card=card, network=network)
        if card is None:
            _, res = baseline_fft2d(session.cluster, m)
        else:
            _, res = inic_fft2d(session.cluster, session.manager, m)
        return _point_value(session, res)

    retries = int(p.get("retries", 8))
    if card is None:
        session = _point_session(p["p"], p, network=network, faults=faults)
        _, res = baseline_fft2d(session.cluster, m)
        return _point_value(
            session, res, aborted=False, fallbacks=0,
            faults=_robustness_counters(session.cluster),
        )
    session = _point_session(
        p["p"], p, card=_recovery_card(card, retries), network=network, faults=faults
    )
    cluster = session.cluster
    try:
        _, res = inic_fft2d(cluster, session.manager, m)
    except ConfigurationError:
        fb = _point_session(
            p["p"], p, network=network, faults=_fallback_faults(faults)
        )
        _, res = baseline_fft2d(fb.cluster, m)
        out = {
            "makespan": cluster.sim.now + res.makespan,
            "events": cluster.sim.event_count + fb.sim.event_count,
            "aborted": False,
            "fallbacks": 1,
            "faults": _merge_counters(
                _robustness_counters(cluster), _robustness_counters(fb.cluster)
            ),
        }
        if fb.telemetry_enabled:
            out["metrics"] = fb.metrics()
        return out
    except TransferAborted:
        out = {
            "makespan": cluster.sim.now,
            "events": cluster.sim.event_count,
            "aborted": True,
            "fallbacks": 0,
            "faults": _robustness_counters(cluster),
        }
        if session.telemetry_enabled:
            out["metrics"] = session.metrics()
        return out
    return _point_value(
        session, res, aborted=False, fallbacks=0,
        faults=_robustness_counters(cluster),
    )


@runner("fft-analytic", family="analytic")
def _run_fft_analytic(p: dict) -> dict:
    """Fig. 4(a) point: serial/INIC/GigE analytic FFT times."""
    from ..models.fft_model import inic_fft_time, serial_fft_time
    from ..models.gige_model import gige_fft_time

    mp = _machine_params(p.get("machine"))
    h = _hierarchy()
    rows, procs = p["rows"], p["p"]
    serial = serial_fft_time(rows, h, mp)
    return {
        "serial": serial,
        "inic": serial if procs == 1 else inic_fft_time(rows, procs, h, mp),
        "gige": gige_fft_time(rows, procs, h, mp),
    }


@runner("transpose-analytic", family="analytic")
def _run_transpose_analytic(p: dict) -> dict:
    """Fig. 4(b) point: transpose decomposition at one (rows, P)."""
    from ..models.fft_model import (
        fft_compute_total,
        inic_transpose_time,
        partition_bytes,
    )
    from ..models.gige_model import tcp_alltoall_time
    from ..units import seconds_to_ms

    mp = _machine_params(p.get("machine"))
    h = _hierarchy()
    rows, procs = p["rows"], p["p"]
    s = partition_bytes(rows, procs, mp)
    return {
        "comm_ms": seconds_to_ms(
            2
            * tcp_alltoall_time(
                s, procs, mp.gige_tcp_bulk_rate, mp.gige_tcp_message_overhead
            )
        ),
        "compute_ms": seconds_to_ms(fft_compute_total(rows, procs, h, mp)),
        "inic_ms": seconds_to_ms(inic_transpose_time(rows, procs, mp)),
        "partition_kib": s / 1024.0,
    }


@runner("sort-components-analytic", family="analytic")
def _run_sort_components(p: dict) -> dict:
    """Fig. 5(a) point: host-side sort phase times at one (E, P)."""
    from ..models.gige_model import tcp_alltoall_time
    from ..models.sort_model import sort_component_series

    mp = _machine_params(p.get("machine"))
    pt = sort_component_series(p["e_init"], [p["p"]], _hierarchy(), mp)[0]
    return {
        "count_sort": pt.count_sort_time,
        "phase1_bucket": pt.phase1_bucket_time,
        "phase2_bucket": pt.phase2_bucket_time,
        "communication": tcp_alltoall_time(
            pt.partition_kib * 1024.0,
            int(pt.p),
            mp.gige_tcp_bulk_rate,
            mp.gige_tcp_message_overhead,
        ),
        "partition_kib": pt.partition_kib,
    }


@runner("sort-analytic", family="analytic")
def _run_sort_analytic(p: dict) -> dict:
    """Fig. 5(b) point: serial/INIC/GigE analytic sort times."""
    from ..models.gige_model import gige_sort_time
    from ..models.sort_model import inic_sort_time, serial_sort_time

    mp = _machine_params(p.get("machine"))
    h = _hierarchy()
    e_init, procs = p["e_init"], p["p"]
    serial = serial_sort_time(e_init, h, mp)
    return {
        "serial": serial,
        "inic": serial if procs == 1 else inic_sort_time(e_init, procs, h, mp),
        "gige": gige_sort_time(e_init, procs, h, mp),
    }


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------
def _execute_point(kind: str, params: dict, repeats: int) -> dict:
    """Worker entry: run one point ``repeats`` times; median wall clock,
    exact (and verified-identical) simulation output."""
    fn = _RUNNERS[kind]
    walls: list[float] = []
    value: Optional[dict] = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        v = fn(params)
        walls.append(time.perf_counter() - t0)
        if value is None:
            value = v
        elif v != value:
            raise SweepError(
                f"nondeterministic point kind={kind} params={params}: "
                f"{value} vs {v}"
            )
    return {
        "value": value,
        "wall_seconds": statistics.median(walls),
        "repeats": max(1, repeats),
    }


class SweepEngine:
    """Executes :class:`PointSpec` batches with caching and fan-out.

    :param jobs: worker processes (``None`` → ``os.cpu_count()``;
        ``1`` runs in-process, still bit-identical).
    :param cache_dir: on-disk cache location; ``None`` disables caching.
    :param force: recompute even on cache hit (results are re-written).
    :param repeats: measurement repeats per executed point
        (``wall_seconds`` is the median; outputs must be identical).
    :param salt_override: replaces the per-kind model-version salt —
        test hook for invalidation behaviour.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache_dir: Optional[str] = DEFAULT_CACHE_DIR,
        force: bool = False,
        repeats: int = 1,
        salt_override: Optional[str] = None,
    ):
        self.jobs = os.cpu_count() or 1 if jobs is None else max(1, jobs)
        self.cache_dir = cache_dir
        self.force = force
        self.repeats = max(1, repeats)
        self.salt_override = salt_override
        self.last_run = SweepStats()

    # -- cache ------------------------------------------------------------
    def _salt(self, spec: PointSpec) -> str:
        return self.salt_override if self.salt_override is not None else kind_salt(
            spec.kind
        )

    def _cache_path(self, spec: PointSpec) -> Optional[str]:
        if self.cache_dir is None:
            return None
        return os.path.join(self.cache_dir, f"{spec.cache_key(self._salt(spec))}.json")

    def _cache_load(self, spec: PointSpec) -> Optional[PointResult]:
        path = self._cache_path(spec)
        if path is None or self.force:
            return None
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except (FileNotFoundError, json.JSONDecodeError):
            return None
        if doc.get("schema") != _SCHEMA or doc.get("identity") != spec.identity:
            return None  # collision/corruption: treat as miss
        return PointResult(
            spec=spec,
            value=doc["value"],
            wall_seconds=doc["wall_seconds"],
            repeats=doc.get("repeats", 1),
            cached=True,
        )

    def _cache_store(self, result: PointResult) -> None:
        path = self._cache_path(result.spec)
        if path is None:
            return
        os.makedirs(self.cache_dir, exist_ok=True)
        doc = {
            "schema": _SCHEMA,
            "identity": result.spec.identity,
            "name": result.spec.name,
            "salt": self._salt(result.spec),
            "value": result.value,
            "wall_seconds": result.wall_seconds,
            "repeats": result.repeats,
        }
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)  # atomic: concurrent sweeps never see partials

    # -- execution --------------------------------------------------------
    def run(self, specs: Iterable[PointSpec]) -> dict[str, PointResult]:
        """Execute (or recall) every spec; returns ``{name: result}`` in
        input order.  Specs with identical identity are computed once;
        duplicate *names* for distinct identities are an error."""
        t_start = time.perf_counter()
        ordered: list[PointSpec] = []
        by_hash: dict[str, PointSpec] = {}
        names: dict[str, str] = {}
        for spec in specs:
            h = spec.spec_hash
            prior = names.get(spec.name)
            if prior is not None and prior != h:
                raise SweepError(f"duplicate point name {spec.name!r}")
            names[spec.name] = h
            if h not in by_hash:
                by_hash[h] = spec
                ordered.append(spec)

        results: dict[str, PointResult] = {}
        misses: list[PointSpec] = []
        for spec in ordered:
            hit = self._cache_load(spec)
            if hit is not None:
                results[spec.spec_hash] = hit
            else:
                misses.append(spec)

        if misses:
            if self.jobs > 1 and len(misses) > 1:
                with ProcessPoolExecutor(
                    max_workers=min(self.jobs, len(misses))
                ) as pool:
                    futures = [
                        pool.submit(_execute_point, s.kind, s.params, self.repeats)
                        for s in misses
                    ]
                    outs = [f.result() for f in futures]
            else:
                outs = [
                    _execute_point(s.kind, s.params, self.repeats) for s in misses
                ]
            for spec, out in zip(misses, outs):
                result = PointResult(
                    spec=spec,
                    value=out["value"],
                    wall_seconds=out["wall_seconds"],
                    repeats=out["repeats"],
                    cached=False,
                )
                self._cache_store(result)
                results[spec.spec_hash] = result

        self.last_run = SweepStats(
            points=len(names),
            unique=len(ordered),
            hits=len(ordered) - len(misses),
            executed=len(misses),
            wall_seconds=time.perf_counter() - t_start,
        )
        # every input name resolves, including aliases of a shared identity
        return {name: results[h] for name, h in names.items()}


# ---------------------------------------------------------------------------
# Suites and reports
# ---------------------------------------------------------------------------
def perf_points(scale) -> list[PointSpec]:
    """The perf-regression scenario suite: the Fig. 8(b) integer-sort
    sweep over the TCP/GigE baseline and the prototype INIC."""
    procs = [p for p in scale.sort_procs if scale.sort_keys % p == 0]
    specs = [
        PointSpec(
            "sort-des",
            f"sort-gige-p{p}",
            {"e_init": scale.sort_keys, "p": p, "card": None, "seed": 2},
        )
        for p in procs
    ]
    specs += [
        PointSpec(
            "sort-des",
            f"sort-inic-p{p}",
            {"e_init": scale.sort_keys, "p": p, "card": "aceii-prototype", "seed": 2},
        )
        for p in procs
        if p > 1
    ]
    return specs


#: torus points stop here: dimension-ordered hops make the torus the
#: most event-expensive fabric per frame, and 64/256 nodes already pin
#: its contention behaviour (the fat-tree carries the 512/1024 axis)
TORUS_MAX_P = 256


def scale_points(
    scale,
    max_p: Optional[int] = None,
    fabrics: Optional[Iterable[str]] = None,
    fastpath: bool = True,
) -> list[PointSpec]:
    """The scale-out suite: FFT and integer sort at ``Scale.large``'s
    32-128 nodes, TCP/GigE baseline vs prototype INIC, both on the
    aggregated fabric (``fabric: "aggregate"`` — per-port busy-until
    contention instead of per-wire objects; see
    :class:`repro.net.fabric.AggregateFabric`) — then the hierarchical
    topology axis: the same workloads on a fat-tree up to 1024 nodes
    and on a 3D torus up to :data:`TORUS_MAX_P`
    (:mod:`repro.net.topology`).

    High node counts are INIC-centric (one GigE/fat-tree baseline pair
    at the smallest fabric size keeps the cross-check): the host-TCP
    stack generates ~3x the events per node and its 1024-node points
    would dominate the suite's wall for no extra fabric coverage.
    The FFT rows grow to ``p`` when the paper's 512-row matrix would
    leave nodes without a row partition (p=1024).

    ``max_p`` trims the processor axis (the CI smoke job runs just
    p=32) and ``fabrics`` selects fabric kinds (the CI matrix runs one
    kind per job) — neither changes any point's identity, so the full
    suite, the smoke job, and the matrix legs all share cache entries.
    ``fastpath`` (the default; ``--no-fastpath`` clears it) opts the
    INIC points into bulk flow-clock admission
    (:mod:`repro.net.flowclock`) — it rides in the params, so fast-path
    and frame-level runs occupy distinct cache entries.
    """
    fabric_set = None if fabrics is None else set(fabrics)

    def want(fabric: str) -> bool:
        return fabric_set is None or fabric in fabric_set

    inic: dict[str, Any] = {"card": "aceii-prototype"}
    if fastpath:
        inic["fastpath"] = True
    specs = []
    if not want("aggregate"):
        return _topology_points(scale, max_p, want, inic)
    for p in scale.sort_procs:
        if scale.sort_keys % p or (max_p is not None and p > max_p):
            continue
        base = {
            "e_init": scale.sort_keys,
            "p": p,
            "seed": 2,
            "fabric": "aggregate",
        }
        specs.append(
            PointSpec("sort-des", f"scale-sort-gige-p{p}", {**base, "card": None})
        )
        specs.append(
            PointSpec("sort-des", f"scale-sort-inic-p{p}", {**base, **inic})
        )
    rows = scale.fft_sizes[-1]
    for p in scale.fft_procs:
        if rows % p or (max_p is not None and p > max_p):
            continue
        base = {
            "rows": rows,
            "p": p,
            "network": "gigabit-ethernet",
            "seed": 2,
            "fabric": "aggregate",
        }
        specs.append(
            PointSpec("fft-des", f"scale-fft-gige-p{p}", {**base, "card": None})
        )
        specs.append(
            PointSpec("fft-des", f"scale-fft-inic-p{p}", {**base, **inic})
        )
    return specs + _topology_points(scale, max_p, want, inic)


def _topology_points(scale, max_p, want, inic: dict) -> list[PointSpec]:
    """The hierarchical-fabric axis of the scale suite (see
    :func:`scale_points` for the point-selection rationale)."""
    specs = []
    rows_base = scale.fft_sizes[-1]
    for topo in scale.topologies:
        if not want(topo):
            continue
        procs = [
            p
            for p in scale.fabric_procs
            if scale.sort_keys % p == 0
            and (max_p is None or p <= max_p)
            and (topo != "torus" or p <= TORUS_MAX_P)
        ]
        for p in procs:
            sort_base = {
                "e_init": scale.sort_keys,
                "p": p,
                "seed": 2,
                "fabric": topo,
            }
            specs.append(
                PointSpec(
                    "sort-des",
                    f"scale-sort-inic-{topo}-p{p}",
                    {**sort_base, **inic},
                )
            )
            rows = rows_base if rows_base % p == 0 else p
            fft_base = {
                "rows": rows,
                "p": p,
                "network": "gigabit-ethernet",
                "seed": 2,
                "fabric": topo,
            }
            specs.append(
                PointSpec(
                    "fft-des",
                    f"scale-fft-inic-{topo}-p{p}",
                    {**fft_base, **inic},
                )
            )
            if p == min(procs):  # one baseline pair per topology
                specs.append(
                    PointSpec(
                        "sort-des",
                        f"scale-sort-gige-{topo}-p{p}",
                        {**sort_base, "card": None},
                    )
                )
    return specs


#: NACK/retransmit rounds granted to every fault-suite scenario
FAULT_SUITE_RETRIES = 8
#: root seed for the fault suite's derived fault streams
FAULT_SUITE_SEED = 7


def fault_points(scale) -> list[PointSpec]:
    """The fault-injection suite: the Fig. 8(b)-style INIC sort swept
    over link loss rates (the makespan-vs-loss-rate curve), plus a
    forced FPGA-configuration-failure scenario that must degrade to the
    host-TCP path.  The loss-rate-0 point is the plain INIC point — same
    identity as the perf suite's, so it shares that cache entry and
    pins the zero-fault-equivalence property."""
    from ..faults import FaultSpec

    e_init = scale.sort_keys
    procs = [q for q in scale.sort_procs if q > 1 and e_init % q == 0]
    p = max(procs) if procs else 2
    specs = []
    for rate in scale.loss_rates:
        params = {"e_init": e_init, "p": p, "card": "aceii-prototype", "seed": 2}
        if rate > 0:
            params["faults"] = FaultSpec(
                seed=FAULT_SUITE_SEED, loss_rate=rate
            ).to_params()
            params["retries"] = FAULT_SUITE_RETRIES
        specs.append(PointSpec("sort-des", f"sort-faults-loss{rate:g}", params))
    specs.append(
        PointSpec(
            "sort-des",
            "sort-faults-fpga",
            {
                "e_init": e_init,
                "p": p,
                "card": "aceii-prototype",
                "seed": 2,
                "faults": FaultSpec(
                    seed=FAULT_SUITE_SEED, config_failure_rate=1.0
                ).to_params(),
                "retries": FAULT_SUITE_RETRIES,
            },
        )
    )
    # Fabric composition: the same lossy plan on the O(ports) aggregate
    # star, on a fat-tree, and on the torus.  All install the identical
    # named per-uplink injectors the full wire star uses (fabric.up<i>,
    # seeded via derive_seed), so recovery is exercised at every
    # fidelity level; ``build_report`` records each row's fabric.
    rate = max(r for r in scale.loss_rates if r > 0) if any(
        r > 0 for r in scale.loss_rates
    ) else 0.01
    for fabric in ("aggregate", "fattree", "torus"):
        specs.append(
            PointSpec(
                "sort-des",
                f"sort-faults-{fabric}",
                {
                    "e_init": e_init,
                    "p": p,
                    "card": "aceii-prototype",
                    "seed": 2,
                    "fabric": fabric,
                    "faults": FaultSpec(
                        seed=FAULT_SUITE_SEED, loss_rate=rate
                    ).to_params(),
                    "retries": FAULT_SUITE_RETRIES,
                },
            )
        )
    return specs


#: root seed for the chaos suite's campaign schedules
CHAOS_SUITE_SEED = 11
#: NACK/retransmit rounds granted to every chaos scenario — generous,
#: because an undetected outage can eat several rounds back to back
CHAOS_SUITE_RETRIES = 24


def chaos_points(scale) -> list[PointSpec]:
    """The chaos-campaign suite (``--suite chaos``): suite scenarios run
    under seeded component-failure schedules (:mod:`repro.faults.campaign`).

    * ``chaos-sort-fattree-p256`` — the acceptance anchor: a randomized
      spine-failure campaign (Poisson arrivals, exponential MTTR,
      blast radius 1) with a 100 us detection delay on the 256-node
      fat-tree.  Flows hashed to a dead spine are blackholed until
      detection, then rehash over the surviving spines; NACK recovery
      retransmits the holes.
    * ``chaos-sort-torus-p64`` — a deterministic single-router failure
      on a 4x4x5 torus whose fifth Z-plane is station-free: wrap routes
      cross the spare plane, so killing one spare router forces detours
      while partitioning nothing — every transfer must complete.
    * ``chaos-sort-aggregate-p64`` — a whole-uplink outage on the
      aggregate star: one station loses all TX capacity for the window
      and recovery must carry it past repair.

    Every schedule is plain data inside the point's ``FaultSpec``
    params, so the campaign is bit-identical across ``--jobs N`` by the
    same argument as every other sweep point.
    """
    from ..faults import ComponentFaultSpec, FaultSpec
    from ..faults.campaign import (
        CampaignSpec,
        campaign_fault_spec,
        fabric_components,
    )

    e_init = scale.sort_keys
    specs = []

    campaign = CampaignSpec(
        seed=CHAOS_SUITE_SEED,
        horizon=scale.chaos_horizon,
        failure_rate=600.0,
        mttr=1.2e-3,
        min_outage=3e-4,
        max_failures=3,
        max_concurrent=1,
        detection_delay=1e-4,
    )
    spine_faults = campaign_fault_spec(
        campaign, fabric_components("fattree", 256)
    )
    specs.append(
        PointSpec(
            "sort-des",
            "chaos-sort-fattree-p256",
            {
                "e_init": e_init,
                "p": 256,
                "card": "aceii-prototype",
                "seed": 2,
                "fabric": "fattree",
                "faults": spine_faults.to_params(),
                "retries": CHAOS_SUITE_RETRIES,
            },
        )
    )

    # 64 stations on a 4x4x5 torus: routers 64..79 (the z=4 plane) carry
    # transit wrap traffic but no stations, so failing one yields pure
    # detours — the "no non-partitioned transfer aborts" anchor.
    torus_faults = FaultSpec(
        seed=CHAOS_SUITE_SEED,
        components=(
            ComponentFaultSpec("router64", windows=((5e-4, 5e-3),)),
        ),
    )
    specs.append(
        PointSpec(
            "sort-des",
            "chaos-sort-torus-p64",
            {
                "e_init": e_init,
                "p": 64,
                "card": "aceii-prototype",
                "seed": 2,
                "fabric": "torus",
                "fabric_options": {"dims": [4, 4, 5]},
                "faults": torus_faults.to_params(),
                "retries": CHAOS_SUITE_RETRIES,
            },
        )
    )

    uplink_faults = FaultSpec(
        seed=CHAOS_SUITE_SEED,
        components=(
            ComponentFaultSpec(
                "up3", windows=((1e-3, 8e-4),), kind="uplink"
            ),
        ),
    )
    specs.append(
        PointSpec(
            "sort-des",
            "chaos-sort-aggregate-p64",
            {
                "e_init": e_init,
                "p": 64,
                "card": "aceii-prototype",
                "seed": 2,
                "fabric": "aggregate",
                "faults": uplink_faults.to_params(),
                "retries": CHAOS_SUITE_RETRIES,
            },
        )
    )
    return specs


def chaos_summary(doc: dict) -> dict:
    """The wall-free canonical view of a chaos report: simulation output
    only (events, makespans, outcome flags, robustness counters), no
    wall clocks or cache state — two runs of the same campaign must
    produce byte-identical summaries regardless of ``--jobs`` or host
    load, and CI diffs them with ``cmp``."""
    out = {"scale": doc["scale"], "scenarios": {}}
    for name, entry in doc["scenarios"].items():
        out["scenarios"][name] = {
            k: entry[k]
            for k in ("events", "makespan", "fabric", "aborted", "fallbacks",
                      "faults", "hops")
            if k in entry
        }
    return out


def scheduler_kind() -> str:
    """The scheduler kind new Simulators default to (env-overridable)."""
    from ..sim.engine import _DEFAULT_SCHEDULER

    return os.environ.get("REPRO_SIM_SCHEDULER") or _DEFAULT_SCHEDULER


def scheduler_backend() -> dict[str, Any]:
    """The backend ``scheduler_kind()`` actually resolves to, probed live.

    Distinguishes the compiled native extension from its pure-python
    fallback — the perf report must record which one produced the walls.
    """
    from ..sim.sched import make_scheduler

    kind = scheduler_kind()
    stats = make_scheduler(kind).stats()
    return {
        "kind": kind,
        "backend": stats["kind"],
        "compiled": bool(stats.get("compiled", False)),
    }


def build_report(
    results: dict[str, PointResult], scale_name: str, engine: SweepEngine
) -> dict[str, Any]:
    """The engine's JSON report — the single source every perf artifact
    (``BENCH_perf.json``, the committed reference) is written from."""
    backend = scheduler_backend()
    scenarios = {}
    for name, r in results.items():
        entry: dict[str, Any] = {
            "events": r.events,
            "wall_seconds": round(r.wall_seconds, 4),
            "cached": r.cached,
            # which event-queue backend produced this scenario's wall —
            # "native" + compiled=False means the pure-python fallback ran
            "scheduler": backend["backend"],
            "compiled": backend["compiled"],
            # fabric topology comes from the spec (not the cached value),
            # so legacy cache entries report correctly too
            "fabric": r.spec.params.get("fabric", "wire"),
            # bulk flow-clock admission opt-in (spec-side, like fabric)
            "fastpath": bool(r.spec.params.get("fastpath", False)),
        }
        if r.cached:
            # The wall (and anything derived from it) was measured by
            # whichever host populated the cache — tag it so `--check`
            # style gates never read wall-derived fields off this row
            # (see repro.bench.perf.WALL_DERIVED).
            entry["wall_cached"] = True
        if "hops" in r.value:  # hierarchical fabrics: routing cost
            entry["hops"] = r.value["hops"]
        if "trains_fast" in r.value:
            entry["trains_fast"] = r.value["trains_fast"]
        if r.wall_seconds > 0 and r.events:
            #: host throughput — the human-facing perf headline; event
            #: counts remain the machine-independent gate
            entry["events_per_sec"] = round(r.events / r.wall_seconds)
        if "makespan" in r.value:
            entry["makespan"] = r.value["makespan"]
        # fault-scenario points also surface their robustness counters
        for key in ("faults", "aborted", "fallbacks"):
            if key in r.value:
                entry[key] = r.value[key]
        # instrumented points carry their flat telemetry snapshot
        if "metrics" in r.value:
            entry["metrics"] = r.value["metrics"]
        scenarios[name] = entry
    stats = engine.last_run
    return {
        "scale": scale_name,
        "scheduler": scheduler_kind(),
        "scheduler_backend": backend,
        "jobs": engine.jobs,
        "repeats": engine.repeats,
        "cache": {
            "hits": stats.hits,
            "executed": stats.executed,
            "hit_rate": round(stats.hit_rate, 4),
        },
        "total_events": sum(s["events"] for s in scenarios.values()),
        "total_wall_seconds": round(
            sum(s["wall_seconds"] for s in scenarios.values()), 4
        ),
        "sweep_wall_seconds": round(stats.wall_seconds, 4),
        "scenarios": scenarios,
    }


def write_report(doc: dict[str, Any], path: str) -> None:
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def main(argv: Optional[list[str]] = None) -> int:
    import argparse

    from .harness import Scale

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.sweep", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--suite", default="perf",
        choices=["perf", "figures", "faults", "scale", "chaos"],
        help="perf: the regression scenario suite; figures: every paper "
        "panel; faults: seeded lossy/degraded scenarios with recovery; "
        "scale: the 32-1024 node scale-out suite (aggregated star + "
        "hierarchical fat-tree/torus fabrics); chaos: seeded "
        "component-failure campaigns with reroute/failover and "
        "liveness/conservation invariant checks",
    )
    parser.add_argument(
        "--scale", default=None, choices=["ci", "bench", "paper", "large"],
        help="problem-size bundle (default: ci, or large for "
        "--suite scale/chaos)",
    )
    parser.add_argument(
        "--max-p", type=int, default=None,
        help="(scale suite) trim the processor axis to <= this many nodes "
        "(the CI smoke job runs --max-p 64)",
    )
    parser.add_argument(
        "--fabric", action="append", default=None, dest="fabrics",
        choices=["aggregate", "fattree", "torus"],
        help="(scale suite) restrict to these fabric kinds (repeatable; "
        "default: all).  The CI matrix runs one kind per job; point "
        "identities are filter-independent so the legs share caches",
    )
    parser.add_argument(
        "--no-fastpath", action="store_true",
        help="(scale suite) run the INIC points frame-level instead of "
        "with bulk flow-clock admission (repro.net.flowclock); the two "
        "modes cache separately",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: os.cpu_count())",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="wall-clock repeats per executed point (median recorded)",
    )
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the on-disk cache"
    )
    parser.add_argument(
        "--force", action="store_true",
        help="recompute every point even when cached",
    )
    parser.add_argument("--out", default="BENCH_perf.json")
    parser.add_argument(
        "--summary", default=None, metavar="PATH",
        help="(chaos suite) also write the wall-free canonical summary "
        "here — two runs of one campaign must match byte-for-byte, "
        "whatever --jobs was (the CI chaos-smoke job cmp's them)",
    )
    parser.add_argument(
        "--csv", default=None,
        help="(figures suite) export per-figure CSVs to this directory",
    )
    parser.add_argument(
        "--telemetry", action="store_true",
        help="(perf/faults suites) instrument every point; the flat "
        "metrics snapshot rides into the report (instrumented points "
        "hash separately, so un-instrumented caches stay valid)",
    )
    parser.add_argument(
        "--report", action="store_true",
        help="print per-scenario telemetry tables (implies --telemetry)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="(perf suite) fail if event counts regress vs the reference",
    )
    parser.add_argument("--tolerance", type=float, default=0.10)
    parser.add_argument(
        "--reference", default=None,
        help="event-count reference (default: benchmarks/perf_reference.json, "
        "or benchmarks/scale_reference.json for --suite scale)",
    )
    parser.add_argument("--update-reference", action="store_true")
    parser.add_argument(
        "--assert-cache-hits", type=float, default=None, metavar="FRACTION",
        help="fail unless at least this fraction of points were cache hits",
    )
    args = parser.parse_args(argv)

    if args.scale is None:
        args.scale = "large" if args.suite in ("scale", "chaos") else "ci"
    if args.reference is None:
        name = "scale_reference.json" if args.suite == "scale" else "perf_reference.json"
        args.reference = os.path.join("benchmarks", name)
    scale = Scale.by_name(args.scale)
    engine = SweepEngine(
        jobs=args.jobs,
        cache_dir=None if args.no_cache else args.cache_dir,
        force=args.force,
        repeats=args.repeats,
    )

    if args.suite == "figures":
        from .figures import all_figures
        from .harness import render_all

        experiments = all_figures(scale, engine=engine)
        print(render_all(experiments))
        if args.csv:
            from .export import export_all_csv

            for path in export_all_csv(experiments, args.csv):
                print(f"wrote {path}")
        stats = engine.last_run  # all_figures runs one batched sweep
        print(
            f"sweep: {stats.unique} points, {stats.hits} cached, "
            f"{stats.executed} executed, jobs={engine.jobs}, "
            f"{stats.wall_seconds:.2f}s"
        )
    else:
        if args.suite == "faults":
            points = fault_points(scale)
        elif args.suite == "chaos":
            points = chaos_points(scale)
        elif args.suite == "scale":
            points = scale_points(
                scale,
                max_p=args.max_p,
                fabrics=args.fabrics,
                fastpath=not args.no_fastpath,
            )
        else:
            points = perf_points(scale)
        if args.telemetry or args.report:
            points = [
                PointSpec(s.kind, s.name, {**s.params, "telemetry": True})
                for s in points
            ]
        results = engine.run(points)
        doc = build_report(results, scale.name, engine)
        write_report(doc, args.out)
        if args.summary is not None:
            write_report(chaos_summary(doc), args.summary)
        for name, r in doc["scenarios"].items():
            tag = "cached" if r["cached"] else f"{r['wall_seconds']:.3f}s"
            extra = ""
            if args.suite in ("faults", "chaos") and r["fabric"] != "wire":
                extra += f" fabric={r['fabric']}"
            if "faults" in r:
                f = r["faults"]
                extra += (
                    f" dropped={f['frames_dropped']}"
                    f" retx={f['retransmits']}"
                    f" fallbacks={r['fallbacks']}"
                    f" aborted={r['aborted']}"
                )
                comp = f.get("components")
                if comp:
                    extra += (
                        f" reroutes={comp['reroutes']}"
                        f" failover_drops={comp['failover_drops']}"
                        f" partition_drops={comp['partition_drops']}"
                        f" uplink_drops={comp['uplink_drops']}"
                    )
            print(
                f"{name:22s} events={r['events']:>8d} "
                f"makespan={r['makespan']:.6f} wall={tag}{extra}"
            )
        print(
            f"{'TOTAL':16s} events={doc['total_events']:>8d} "
            f"wall={doc['total_wall_seconds']:.3f}s "
            f"(sweep {doc['sweep_wall_seconds']:.3f}s, jobs={doc['jobs']}) "
            f"-> {args.out}"
        )

        if args.report:
            from ..telemetry.report import render_outcomes, render_snapshot

            for name, r in doc["scenarios"].items():
                metrics = r.get("metrics")
                if metrics:
                    print(f"\n== {name} ==")
                    print(render_snapshot(metrics))
                if "faults" in r:
                    if not metrics:
                        print(f"\n== {name} ==")
                    print(render_outcomes(r))

        if args.update_reference:
            write_report(doc, args.reference)
            print(f"reference updated: {args.reference}")

        if args.check and args.suite == "chaos":
            from ..faults.campaign import check_invariants

            violations = []
            for name, r in doc["scenarios"].items():
                violations.extend(check_invariants(name, r))
            anchor = doc["scenarios"].get("chaos-sort-fattree-p256")
            if anchor is not None:
                comp = (anchor.get("faults") or {}).get("components") or {}
                if not comp.get("reroutes"):
                    violations.append(
                        "chaos-sort-fattree-p256: spine campaign produced "
                        "no reroutes (failover never engaged)"
                    )
            torus = doc["scenarios"].get("chaos-sort-torus-p64")
            if torus is not None:
                comp = (torus.get("faults") or {}).get("components") or {}
                if not comp.get("reroutes"):
                    violations.append(
                        "chaos-sort-torus-p64: router failure produced no "
                        "detours"
                    )
                if torus.get("aborted") or comp.get("partition_drops"):
                    violations.append(
                        "chaos-sort-torus-p64: a non-partitioned transfer "
                        "aborted or was partition-dropped"
                    )
            print(
                f"chaos campaign: {len(violations)} invariant violations "
                f"across {len(doc['scenarios'])} scenarios"
            )
            if violations:
                for msg in violations:
                    print(f"FAIL {msg}")
                return 1
            print(f"PASS chaos suite: {len(doc['scenarios'])} scenarios")
            return 0

        if args.check and args.suite == "faults":
            failures = []
            fpga = doc["scenarios"].get("sort-faults-fpga")
            if fpga is not None and fpga.get("fallbacks") != 1:
                failures.append(
                    "sort-faults-fpga: expected exactly one host-TCP fallback"
                )
            for name, r in doc["scenarios"].items():
                f = r.get("faults")
                if (
                    f
                    and f["frames_dropped"] > 0
                    and f["retransmits"] == 0
                    and not r.get("aborted")
                ):
                    failures.append(
                        f"{name}: frames were dropped but no recovery ran"
                    )
            if failures:
                for msg in failures:
                    print(f"FAIL {msg}")
                return 1
            print(f"PASS fault suite: {len(doc['scenarios'])} scenarios")
            return 0

        if args.check:
            from .perf import compare

            try:
                with open(args.reference) as fh:
                    reference = json.load(fh)
            except FileNotFoundError:
                print(f"no reference at {args.reference}; run --update-reference")
                return 1
            if args.suite == "scale" and (args.max_p is not None or args.fabrics):
                # The smoke job trims the processor/fabric axes; gate only
                # the points it actually selected (names are trim-stable).
                selected = {s.name for s in points}
                reference = {
                    **reference,
                    "scenarios": {
                        k: v
                        for k, v in reference["scenarios"].items()
                        if k in selected
                    },
                }
            failures = compare(doc, reference, args.tolerance)
            if failures:
                for f in failures:
                    print(f"FAIL {f}")
                return 1
            print(
                f"PASS all {len(reference['scenarios'])} scenarios within "
                f"{args.tolerance * 100:.0f}% of reference event counts"
            )

    if args.assert_cache_hits is not None:
        rate = engine.last_run.hit_rate
        if rate < args.assert_cache_hits:
            print(
                f"FAIL cache hit rate {rate:.0%} < "
                f"required {args.assert_cache_hits:.0%}"
            )
            return 1
        print(f"PASS cache hit rate {rate:.0%}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    import sys

    sys.exit(main())
