"""Paper-style reporting: tables, ASCII curves, markdown export.

``render_table`` (in :mod:`repro.bench.harness`) gives the numeric rows;
this module adds an ASCII plot (for terminal inspection of curve
*shapes*, which is what the reproduction is judged on) and a markdown
emitter used to refresh EXPERIMENTS.md.
"""

from __future__ import annotations

from ..models.speedup import Series
from .harness import Experiment

__all__ = ["ascii_plot", "to_markdown", "shape_summary"]


def ascii_plot(
    exp: Experiment, width: int = 64, height: int = 18
) -> str:
    """A rough terminal plot of all series of an experiment."""
    pts = [(x, y) for s in exp.series for x, y in zip(s.x, s.y)]
    if not pts:
        return f"(no data for {exp.exp_id})"
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    marks = "ox+*#@%&"
    for i, s in enumerate(exp.series):
        mark = marks[i % len(marks)]
        for x, y in zip(s.x, s.y):
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = height - 1 - int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[row][col] = mark
    lines = [f"{exp.exp_id}: {exp.title}"]
    for r, row in enumerate(grid):
        label = f"{y_hi:8.2f} |" if r == 0 else (
            f"{y_lo:8.2f} |" if r == height - 1 else "         |"
        )
        lines.append(label + "".join(row))
    lines.append("         +" + "-" * width)
    lines.append(f"          {x_lo:<10g}{'':>{max(0, width - 20)}}{x_hi:>10g}")
    for i, s in enumerate(exp.series):
        lines.append(f"   {marks[i % len(marks)]} = {s.name}")
    return "\n".join(lines)


def to_markdown(exp: Experiment, precision: int = 2) -> str:
    """Markdown table for EXPERIMENTS.md."""
    xs = sorted({x for s in exp.series for x in s.x})
    head = f"| {exp.x_label} | " + " | ".join(s.name for s in exp.series) + " |"
    sep = "|" + "---|" * (len(exp.series) + 1)
    rows = []
    for x in xs:
        cells = []
        for s in exp.series:
            try:
                cells.append(f"{s.at(x):.{precision}f}")
            except Exception:
                cells.append("-")
        rows.append(f"| {x:g} | " + " | ".join(cells) + " |")
    out = [f"**{exp.exp_id} — {exp.title}** ({exp.y_label})", "", head, sep, *rows]
    for note in exp.notes:
        out.append(f"\n*{note}*")
    return "\n".join(out)


def shape_summary(series: Series) -> dict[str, float]:
    """Shape descriptors used in assertions: endpoint, peak, monotone runs."""
    if not series.y:
        return {"points": 0.0}
    y = series.y
    rises = sum(1 for a, b in zip(y, y[1:]) if b > a)
    return {
        "points": float(len(y)),
        "first": y[0],
        "last": y[-1],
        "peak": max(y),
        "rising_fraction": rises / max(1, len(y) - 1),
    }
