"""Benchmark harness: figure definitions, scales, reporting, calibration."""

from .calibration import KernelRates, compare_des_vs_model, measure_kernel_rates
from .figures import all_figures, fig4a, fig4b, fig5a, fig5b, fig8a, fig8b
from .harness import Experiment, Scale, render_all, render_table
from .report import ascii_plot, shape_summary, to_markdown
from .sweep import PointResult, PointSpec, SweepEngine, SweepStats

__all__ = [
    "Experiment",
    "KernelRates",
    "PointResult",
    "PointSpec",
    "Scale",
    "SweepEngine",
    "SweepStats",
    "all_figures",
    "ascii_plot",
    "compare_des_vs_model",
    "fig4a",
    "fig4b",
    "fig5a",
    "fig5b",
    "fig8a",
    "fig8b",
    "measure_kernel_rates",
    "render_all",
    "render_table",
    "shape_summary",
    "to_markdown",
]
