"""Perf-regression harness for the DES kernel and network stack.

A thin front-end over the sweep engine (:mod:`repro.bench.sweep`): the
scenario suite — the Fig. 8(b) integer-sort sweep at a chosen scale,
over both the TCP/GigE baseline and the prototype INIC — is enumerated
by :func:`repro.bench.sweep.perf_points` and executed (in parallel,
with caching) by :class:`~repro.bench.sweep.SweepEngine`.  Per
scenario the engine's report records:

* ``events`` — :attr:`repro.sim.engine.Simulator.event_count`, the
  deterministic cost metric (identical across machines and runs),
* ``makespan`` — the simulated result (a fidelity canary: a perf change
  must not silently change what the simulation *computes*),
* ``wall_seconds`` — median host seconds over ``repeats`` runs of the
  scenario (the median keeps the number noise-resistant; the engine
  verifies all repeats produce identical simulation output).

``BENCH_perf.json`` (git-ignored) is a verbatim copy of the engine's
report — there is a single writer, so it can never drift from what the
engine measured.  A committed reference lives in
``benchmarks/perf_reference.json``; ``--check`` compares the current
run against it and fails (exit 1) when any scenario's event count
regresses by more than ``--tolerance`` (default 10%).  Event counts,
not wall seconds, gate CI — wall time is recorded for humans but
depends on the host.

Usage::

    python -m repro.bench.perf                 # measure, write BENCH_perf.json
    python -m repro.bench.perf --check         # also compare vs reference
    python -m repro.bench.perf --update-reference
    python -m repro.bench.sweep --suite perf --jobs 2 --check   # same, full CLI
"""

from __future__ import annotations

import os
import sys
from typing import Any, Optional

__all__ = ["SCENARIOS", "run_suite", "compare", "main"]

#: committed baseline the --check mode compares against
REFERENCE_PATH = os.path.join("benchmarks", "perf_reference.json")
#: default output of a measurement run (git-ignored)
OUTPUT_PATH = "BENCH_perf.json"


def _scenario_names(scale_name: str) -> list[str]:
    from .harness import Scale
    from .sweep import perf_points

    return [spec.name for spec in perf_points(Scale.by_name(scale_name))]


#: scenario names at the default (ci) scale, for reference
SCENARIOS = _scenario_names("ci")


def run_suite(
    scale_name: str = "ci",
    repeats: int = 3,
    jobs: Optional[int] = 1,
    cache_dir: Optional[str] = None,
    force: bool = False,
) -> dict[str, Any]:
    """Measure every scenario; returns the engine's report document.

    Defaults preserve the historical behaviour of this module (serial,
    uncached); pass ``jobs``/``cache_dir`` to opt in to fan-out and the
    content-addressed cache, or use ``python -m repro.bench.sweep``.
    """
    from .harness import Scale
    from .sweep import SweepEngine, build_report, perf_points

    scale = Scale.by_name(scale_name)
    engine = SweepEngine(
        jobs=jobs, cache_dir=cache_dir, force=force, repeats=repeats
    )
    results = engine.run(perf_points(scale))
    return build_report(results, scale.name, engine)


#: per-scenario fields derived from the measuring host's wall clock —
#: never part of any regression gate, and stripped outright from rows
#: tagged ``wall_cached`` (their wall was measured by whichever host
#: populated the cache, so even a human reading a diff must not treat
#: it as this machine's number)
WALL_DERIVED = frozenset({"wall_seconds", "events_per_sec"})


def _gateable(row: dict[str, Any]) -> dict[str, Any]:
    """The comparable view of a scenario row: wall-derived fields are
    dropped whenever the row's wall came out of the cache."""
    if not row.get("wall_cached"):
        return row
    return {k: v for k, v in row.items() if k not in WALL_DERIVED}


def compare(
    current: dict[str, Any], reference: dict[str, Any], tolerance: float
) -> list[str]:
    """Regression report: list of failures (empty means pass).

    Only machine-independent fields are gated (event counts); rows are
    passed through :func:`_gateable` first, so wall-derived fields of
    cached rows are structurally invisible to every check here.
    """
    failures = []
    if current.get("scale") != reference.get("scale"):
        failures.append(
            f"scale mismatch: ran {current.get('scale')!r}, reference is "
            f"{reference.get('scale')!r}"
        )
        return failures
    ref = {k: _gateable(v) for k, v in reference["scenarios"].items()}
    cur = {k: _gateable(v) for k, v in current["scenarios"].items()}
    for name, r in ref.items():
        c = cur.get(name)
        if c is None:
            failures.append(f"{name}: scenario missing from current run")
            continue
        limit = r["events"] * (1.0 + tolerance)
        if c["events"] > limit:
            failures.append(
                f"{name}: event_count regressed {r['events']} -> {c['events']} "
                f"(+{(c['events'] / r['events'] - 1) * 100:.1f}%, "
                f"tolerance {tolerance * 100:.0f}%)"
            )
    return failures


def main(argv: Optional[list[str]] = None) -> int:
    """Back-compat entry point: delegates to the sweep-engine CLI with
    this module's historical defaults (serial, no cache)."""
    from .sweep import main as sweep_main

    argv = list(sys.argv[1:] if argv is None else argv)
    return sweep_main(["--suite", "perf", "--jobs", "1", "--no-cache", *argv])


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
