"""Perf-regression harness for the DES kernel and network stack.

Runs a fixed scenario suite — the Fig. 8(b) integer-sort sweep at a
chosen scale, over both the TCP/GigE baseline and the prototype INIC —
and records, per scenario:

* ``events`` — :attr:`repro.sim.engine.Simulator.event_count`, the
  deterministic cost metric (identical across machines and runs),
* ``makespan`` — the simulated result (a fidelity canary: a perf change
  must not silently change what the simulation *computes*),
* ``wall`` — host seconds for the scenario (best of ``repeats``).

Results are written to ``BENCH_perf.json`` (git-ignored).  A committed
reference lives in ``benchmarks/perf_reference.json``; ``--check``
compares the current run against it and fails (exit 1) when any
scenario's event count regresses by more than ``--tolerance``
(default 10%).  Event counts, not wall seconds, gate CI — wall time is
recorded for humans but depends on the host.

Usage::

    python -m repro.bench.perf                 # measure, write BENCH_perf.json
    python -m repro.bench.perf --check         # also compare vs reference
    python -m repro.bench.perf --update-reference
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Optional

import numpy as np

__all__ = ["SCENARIOS", "run_suite", "compare", "main"]

#: committed baseline the --check mode compares against
REFERENCE_PATH = os.path.join("benchmarks", "perf_reference.json")
#: default output of a measurement run (git-ignored)
OUTPUT_PATH = "BENCH_perf.json"


def _sort_keys(scale) -> np.ndarray:
    g = np.random.default_rng(2)
    return g.integers(0, 2**32, size=scale.sort_keys, dtype=np.uint32)


def _gige_sort(keys: np.ndarray, p: int) -> tuple[int, float]:
    from .figures import Cluster, ClusterSpec, baseline_sort

    cluster = Cluster.build(ClusterSpec(n_nodes=p))
    _, res = baseline_sort(cluster, keys)
    return cluster.sim.event_count, res.makespan


def _inic_sort(keys: np.ndarray, p: int) -> tuple[int, float]:
    from .figures import ACEII_PROTOTYPE, build_acc, inic_sort

    cluster, manager = build_acc(p, card=ACEII_PROTOTYPE)
    _, res = inic_sort(cluster, manager, keys)
    return cluster.sim.event_count, res.makespan


def _scenarios(scale) -> list[tuple[str, Any, int]]:
    procs = [p for p in scale.sort_procs if scale.sort_keys % p == 0]
    suite = [(f"sort-gige-p{p}", _gige_sort, p) for p in procs]
    suite += [(f"sort-inic-p{p}", _inic_sort, p) for p in procs if p > 1]
    return suite


#: scenario names at the default (ci) scale, for reference
SCENARIOS = [name for name, _, _ in _scenarios(__import__(
    "repro.bench.harness", fromlist=["Scale"]).Scale.ci())]


def run_suite(scale_name: str = "ci", repeats: int = 1) -> dict[str, Any]:
    """Measure every scenario; returns the result document."""
    from .harness import Scale

    scale = getattr(Scale, scale_name)()
    keys = _sort_keys(scale)
    results: dict[str, Any] = {}
    for name, fn, p in _scenarios(scale):
        best_wall: Optional[float] = None
        events = makespan = None
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            events, makespan = fn(keys, p)
            wall = time.perf_counter() - t0
            best_wall = wall if best_wall is None else min(best_wall, wall)
        results[name] = {
            "events": events,
            "makespan": makespan,
            "wall_seconds": round(best_wall, 4),
        }
    return {
        "scale": scale.name,
        "repeats": repeats,
        "total_events": sum(r["events"] for r in results.values()),
        "total_wall_seconds": round(
            sum(r["wall_seconds"] for r in results.values()), 4
        ),
        "scenarios": results,
    }


def compare(
    current: dict[str, Any], reference: dict[str, Any], tolerance: float
) -> list[str]:
    """Regression report: list of failures (empty means pass)."""
    failures = []
    if current.get("scale") != reference.get("scale"):
        failures.append(
            f"scale mismatch: ran {current.get('scale')!r}, reference is "
            f"{reference.get('scale')!r}"
        )
        return failures
    ref = reference["scenarios"]
    cur = current["scenarios"]
    for name, r in ref.items():
        c = cur.get(name)
        if c is None:
            failures.append(f"{name}: scenario missing from current run")
            continue
        limit = r["events"] * (1.0 + tolerance)
        if c["events"] > limit:
            failures.append(
                f"{name}: event_count regressed {r['events']} -> {c['events']} "
                f"(+{(c['events'] / r['events'] - 1) * 100:.1f}%, "
                f"tolerance {tolerance * 100:.0f}%)"
            )
    return failures


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.perf", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--scale", default="ci", choices=["ci", "bench", "paper"])
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--out", default=OUTPUT_PATH)
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail if event counts regress vs the committed reference",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed fractional event-count growth in --check mode",
    )
    parser.add_argument(
        "--reference",
        default=REFERENCE_PATH,
        help="reference JSON for --check / --update-reference",
    )
    parser.add_argument(
        "--update-reference",
        action="store_true",
        help="write this run as the new committed reference",
    )
    args = parser.parse_args(argv)

    doc = run_suite(args.scale, args.repeats)
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for name, r in doc["scenarios"].items():
        print(
            f"{name:16s} events={r['events']:>8d} "
            f"makespan={r['makespan']:.6f} wall={r['wall_seconds']:.3f}s"
        )
    print(
        f"{'TOTAL':16s} events={doc['total_events']:>8d} "
        f"wall={doc['total_wall_seconds']:.3f}s -> {args.out}"
    )

    if args.update_reference:
        os.makedirs(os.path.dirname(args.reference) or ".", exist_ok=True)
        with open(args.reference, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"reference updated: {args.reference}")

    if args.check:
        try:
            with open(args.reference) as fh:
                reference = json.load(fh)
        except FileNotFoundError:
            print(f"no reference at {args.reference}; run --update-reference")
            return 1
        failures = compare(doc, reference, args.tolerance)
        if failures:
            for f in failures:
                print(f"FAIL {f}")
            return 1
        print(
            f"PASS all {len(reference['scenarios'])} scenarios within "
            f"{args.tolerance * 100:.0f}% of reference event counts"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
