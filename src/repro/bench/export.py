"""Result export: CSV files for downstream plotting.

``export_csv`` writes one CSV per experiment (long format: series, x,
y) so any plotting tool can regenerate the paper's figures from the
repository's output.  Used by the ``--csv`` flag of
``python -m repro.bench.figures``.
"""

from __future__ import annotations

import csv
import os

from ..errors import ApplicationError
from .harness import Experiment

__all__ = ["export_csv", "export_all_csv"]


def export_csv(exp: Experiment, directory: str) -> str:
    """Write ``<directory>/<exp_id>.csv``; returns the path."""
    if not exp.series:
        raise ApplicationError(f"{exp.exp_id}: nothing to export")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{exp.exp_id}.csv")
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["experiment", "title", "series", exp.x_label, exp.y_label])
        for s in exp.series:
            for x, y in zip(s.x, s.y):
                writer.writerow([exp.exp_id, exp.title, s.name, repr(x), repr(y)])
    return path


def export_all_csv(experiments: list[Experiment], directory: str) -> list[str]:
    return [export_csv(e, directory) for e in experiments]
