"""One reproduction function per paper figure panel.

Methodology mirrors the paper's:

* **Figures 4 and 5** come from the Section-4 *analytical model*
  (Eqs. 3-17) with the calibrated baseline closed form as opponent —
  exactly what the paper plots in its analysis section.
* **Figure 8** comes from full *discrete-event simulation* runs of the
  prototype (Fast Ethernet and Gigabit Ethernet baselines over TCP;
  the ACEII-prototype INIC), as the paper's Section 6 measures/estimates
  on real hardware.

Every figure is reproduced in two steps that route through the sweep
engine (:mod:`repro.bench.sweep`): *enumerate* the panel's points as
:class:`~repro.bench.sweep.PointSpec` s, then *assemble* the engine's
results into an :class:`~repro.bench.harness.Experiment`.  Passing an
engine parallelizes and caches the points; passing none runs them
serially in-process (bit-identical either way, since every point seeds
its own RNG from its spec).

Run the full suite from the command line::

    python -m repro.bench.figures --scale paper --jobs 8 --csv results
"""

from __future__ import annotations

from typing import Callable, Optional

from ..models.params import DEFAULT_PARAMS, MachineParams
from ..models.speedup import Series, speedup_series
from .harness import Experiment, Scale
from .sweep import PointResult, PointSpec, SweepEngine, machine_params_dict

__all__ = [
    "fig4a",
    "fig4b",
    "fig5a",
    "fig5b",
    "fig8a",
    "fig8b",
    "figfaults",
    "all_figures",
]

#: networks as spec-embeddable names (resolved by the sweep runners)
_GIGE = "gigabit-ethernet"
_FE = "fast-ethernet"
#: the measured prototype card
_PROTO = "aceii-prototype"

#: workload seeds, kept identical to the pre-engine reproduction so the
#: committed results/fig*.csv stay stable
_FFT_SEED = 1
_SORT_SEED = 2


def _run(
    engine: Optional[SweepEngine], specs: list[PointSpec]
) -> dict[str, PointResult]:
    engine = engine or SweepEngine(jobs=1, cache_dir=None)
    return engine.run(specs)


# ---------------------------------------------------------------------------
# Figure 4 — FFT analysis
# ---------------------------------------------------------------------------
def _fig4a_specs(scale: Scale, params: MachineParams) -> list[PointSpec]:
    machine = machine_params_dict(params)
    return [
        PointSpec(
            "fft-analytic",
            f"fig4a/r{rows}/p{p}",
            {"rows": rows, "p": p, "machine": machine},
        )
        for rows in scale.fft_sizes
        for p in scale.fft_procs
        if rows % p == 0
    ]


def _fig4a_build(
    scale: Scale, params: MachineParams, results: dict[str, PointResult]
) -> Experiment:
    exp = Experiment(
        "fig4a",
        "FFTW speedups: ideal INIC vs Gigabit Ethernet (analytical)",
        "P",
        "speedup over one processor",
    )
    for rows in scale.fft_sizes:
        procs = [p for p in scale.fft_procs if rows % p == 0]
        pts = [results[f"fig4a/r{rows}/p{p}"].value for p in procs]
        t1 = pts[0]["serial"]
        exp.add(speedup_series(f"INIC {rows}x{rows}", procs, [v["inic"] for v in pts], t1))
        exp.add(speedup_series(f"GigE {rows}x{rows}", procs, [v["gige"] for v in pts], t1))
    exp.notes.append("INIC curves from Eqs. (3)-(10); GigE from calibrated TCP model")
    return exp


def fig4a(
    scale: Scale,
    params: MachineParams = DEFAULT_PARAMS,
    engine: Optional[SweepEngine] = None,
) -> Experiment:
    """Fig. 4(a): analytic FFTW speedups, INIC vs Gigabit Ethernet."""
    return _fig4a_build(scale, params, _run(engine, _fig4a_specs(scale, params)))


def _fig4b_specs(scale: Scale, params: MachineParams) -> list[PointSpec]:
    rows = max(scale.fft_sizes)
    machine = machine_params_dict(params)
    return [
        PointSpec(
            "transpose-analytic",
            f"fig4b/r{rows}/p{p}",
            {"rows": rows, "p": p, "machine": machine},
        )
        for p in scale.fft_procs
        if rows % p == 0
    ]


def _fig4b_build(
    scale: Scale, params: MachineParams, results: dict[str, PointResult]
) -> Experiment:
    rows = max(scale.fft_sizes)
    procs = [p for p in scale.fft_procs if rows % p == 0]
    exp = Experiment(
        "fig4b",
        f"transpose decomposition, {rows}x{rows}",
        "P",
        "milliseconds (partition in KiB)",
    )
    pts = [results[f"fig4b/r{rows}/p{p}"].value for p in procs]
    x = [float(p) for p in procs]
    exp.add(Series("NIC comm time (ms)", x, [v["comm_ms"] for v in pts]))
    exp.add(Series("NIC compute time (ms)", x, [v["compute_ms"] for v in pts]))
    exp.add(Series("INIC transpose (ms)", x, [v["inic_ms"] for v in pts]))
    exp.add(Series("partition (KiB)", x, [v["partition_kib"] for v in pts]))
    exp.notes.append(
        "partition size falls faster than NIC comm time; INIC transpose sits below it"
    )
    return exp


def fig4b(
    scale: Scale,
    params: MachineParams = DEFAULT_PARAMS,
    engine: Optional[SweepEngine] = None,
) -> Experiment:
    """Fig. 4(b): transpose decomposition vs partition size (largest
    matrix of the scale)."""
    return _fig4b_build(scale, params, _run(engine, _fig4b_specs(scale, params)))


# ---------------------------------------------------------------------------
# Figure 5 — sort analysis
# ---------------------------------------------------------------------------
def _analytic_sort_keys(scale: Scale, params: MachineParams) -> int:
    return params.sort_total_keys if scale.name == "paper" else scale.sort_keys


def _fig5a_specs(scale: Scale, params: MachineParams) -> list[PointSpec]:
    e_init = _analytic_sort_keys(scale, params)
    machine = machine_params_dict(params)
    return [
        PointSpec(
            "sort-components-analytic",
            f"fig5a/e{e_init}/p{p}",
            {"e_init": e_init, "p": p, "machine": machine},
        )
        for p in scale.sort_procs
    ]


def _fig5a_build(
    scale: Scale, params: MachineParams, results: dict[str, PointResult]
) -> Experiment:
    from ..units import seconds_to_ms

    e_init = _analytic_sort_keys(scale, params)
    procs = list(scale.sort_procs)
    exp = Experiment(
        "fig5a",
        f"sort components, E = {e_init} keys",
        "P",
        "milliseconds (partition in KiB)",
    )
    pts = [results[f"fig5a/e{e_init}/p{p}"].value for p in procs]
    x = [float(p) for p in procs]
    exp.add(Series("count sort (ms)", x, [seconds_to_ms(v["count_sort"]) for v in pts]))
    exp.add(
        Series("phase1 bucket (ms)", x, [seconds_to_ms(v["phase1_bucket"]) for v in pts])
    )
    exp.add(
        Series("phase2 bucket (ms)", x, [seconds_to_ms(v["phase2_bucket"]) for v in pts])
    )
    exp.add(
        Series("communication (ms)", x, [seconds_to_ms(v["communication"]) for v in pts])
    )
    exp.add(Series("partition (KiB)", x, [v["partition_kib"] for v in pts]))
    return exp


def fig5a(
    scale: Scale,
    params: MachineParams = DEFAULT_PARAMS,
    engine: Optional[SweepEngine] = None,
) -> Experiment:
    """Fig. 5(a): sort phase times and partition size vs P."""
    return _fig5a_build(scale, params, _run(engine, _fig5a_specs(scale, params)))


def _fig5b_specs(scale: Scale, params: MachineParams) -> list[PointSpec]:
    e_init = _analytic_sort_keys(scale, params)
    machine = machine_params_dict(params)
    return [
        PointSpec(
            "sort-analytic",
            f"fig5b/e{e_init}/p{p}",
            {"e_init": e_init, "p": p, "machine": machine},
        )
        for p in scale.sort_procs
    ]


def _fig5b_build(
    scale: Scale, params: MachineParams, results: dict[str, PointResult]
) -> Experiment:
    e_init = _analytic_sort_keys(scale, params)
    procs = list(scale.sort_procs)
    pts = [results[f"fig5b/e{e_init}/p{p}"].value for p in procs]
    t1 = pts[0]["serial"]
    exp = Experiment(
        "fig5b",
        f"integer-sort speedups, E = {e_init} keys (analytical)",
        "P",
        "speedup over one processor",
    )
    exp.add(speedup_series("INIC", procs, [v["inic"] for v in pts], t1))
    exp.add(speedup_series("GigE", procs, [v["gige"] for v in pts], t1))
    exp.notes.append(
        "INIC superlinearity: host bucket-sort time is eliminated entirely"
    )
    return exp


def fig5b(
    scale: Scale,
    params: MachineParams = DEFAULT_PARAMS,
    engine: Optional[SweepEngine] = None,
) -> Experiment:
    """Fig. 5(b): analytic sort speedups, INIC (superlinear) vs GigE."""
    return _fig5b_build(scale, params, _run(engine, _fig5b_specs(scale, params)))


# ---------------------------------------------------------------------------
# Figure 8 — prototype measurements (DES)
# ---------------------------------------------------------------------------
def _fft_des_spec(
    rows: int, p: int, network: str, card: Optional[str]
) -> PointSpec:
    tag = card or network
    return PointSpec(
        "fft-des",
        f"fig8a/{tag}/r{rows}/p{p}",
        {"rows": rows, "p": p, "network": network, "card": card, "seed": _FFT_SEED},
    )


#: Fig. 8(a)'s curves: (label, network, card).  P=1 is the serial host
#: run for every curve (speedup 1 by definition; nobody offloads a
#: one-node transpose), so all curves share the GigE baseline point.
_FIG8A_CURVES: list[tuple[str, str, Optional[str]]] = [
    ("proto INIC", _GIGE, _PROTO),
    ("Fast Ethernet", _FE, None),
    ("GigE", _GIGE, None),
]


def _fig8a_specs(scale: Scale) -> list[PointSpec]:
    specs = []
    for rows in scale.fft_sizes:
        procs = [p for p in scale.fft_procs if rows % p == 0]
        specs.append(_fft_des_spec(rows, 1, _GIGE, None))  # shared t1
        for _, network, card in _FIG8A_CURVES:
            specs += [
                _fft_des_spec(rows, p, network, card) for p in procs if p != 1
            ]
    return specs


def _fig8a_build(scale: Scale, results: dict[str, PointResult]) -> Experiment:
    exp = Experiment(
        "fig8a",
        "2D-FFT speedup: Fast Ethernet vs GigE vs prototype INIC (DES)",
        "P",
        "speedup over one processor",
    )
    for rows in scale.fft_sizes:
        procs = [p for p in scale.fft_procs if rows % p == 0]
        t1 = results[_fft_des_spec(rows, 1, _GIGE, None).name].value["makespan"]
        for label, network, card in _FIG8A_CURVES:
            times = [
                t1
                if p == 1
                else results[_fft_des_spec(rows, p, network, card).name].value[
                    "makespan"
                ]
                for p in procs
            ]
            exp.add(speedup_series(f"{label} {rows}", procs, times, t1))
    exp.notes.append("all curves: discrete-event simulation, speedup vs 1-node run")
    return exp


def fig8a(scale: Scale, engine: Optional[SweepEngine] = None) -> Experiment:
    """Fig. 8(a): simulated 2D-FFT speedups on Fast Ethernet, Gigabit
    Ethernet, and the prototype INIC."""
    return _fig8a_build(scale, _run(engine, _fig8a_specs(scale)))


def _sort_des_spec(e_init: int, p: int, card: Optional[str]) -> PointSpec:
    tag = card or "gige"
    return PointSpec(
        "sort-des",
        f"fig8b/{tag}/e{e_init}/p{p}",
        {"e_init": e_init, "p": p, "card": card, "seed": _SORT_SEED},
    )


def _fig8b_specs(scale: Scale) -> list[PointSpec]:
    e_init = scale.sort_keys
    procs = [p for p in scale.sort_procs if e_init % p == 0]
    specs = [_sort_des_spec(e_init, 1, None)]
    specs += [_sort_des_spec(e_init, p, None) for p in procs if p != 1]
    specs += [_sort_des_spec(e_init, p, _PROTO) for p in procs if p != 1]
    return specs


def _fig8b_build(scale: Scale, results: dict[str, PointResult]) -> Experiment:
    e_init = scale.sort_keys
    procs = [p for p in scale.sort_procs if e_init % p == 0]
    t1 = results[_sort_des_spec(e_init, 1, None).name].value["makespan"]
    gige = [
        t1 if p == 1 else results[_sort_des_spec(e_init, p, None).name].value["makespan"]
        for p in procs
    ]
    proto = [
        t1
        if p == 1
        else results[_sort_des_spec(e_init, p, _PROTO).name].value["makespan"]
        for p in procs
    ]
    exp = Experiment(
        "fig8b",
        f"integer-sort speedup, E = {e_init} keys (DES)",
        "P",
        "speedup over one processor",
    )
    exp.add(speedup_series("proto INIC", procs, proto, t1))
    exp.add(speedup_series("GigE", procs, gige, t1))
    return exp


def fig8b(scale: Scale, engine: Optional[SweepEngine] = None) -> Experiment:
    """Fig. 8(b): simulated integer-sort speedups, prototype INIC vs GigE."""
    return _fig8b_build(scale, _run(engine, _fig8b_specs(scale)))


# ---------------------------------------------------------------------------
# Fault-injection curve (not a paper panel; opt-in via --only figfaults)
# ---------------------------------------------------------------------------
def _figfaults_sort_p(scale: Scale) -> int:
    procs = [q for q in scale.sort_procs if q > 1 and scale.sort_keys % q == 0]
    return max(procs) if procs else 2


def _figfaults_specs(scale: Scale) -> list[PointSpec]:
    from ..faults import FaultSpec
    from .sweep import FAULT_SUITE_RETRIES, FAULT_SUITE_SEED

    e_init = scale.sort_keys
    p = _figfaults_sort_p(scale)
    specs = []
    for rate in scale.loss_rates:
        params = {"e_init": e_init, "p": p, "card": _PROTO, "seed": _SORT_SEED}
        if rate > 0:
            params["faults"] = FaultSpec(
                seed=FAULT_SUITE_SEED, loss_rate=rate
            ).to_params()
            params["retries"] = FAULT_SUITE_RETRIES
        specs.append(PointSpec("sort-des", f"figfaults/loss{rate:g}", params))
    return specs


def _figfaults_build(scale: Scale, results: dict[str, PointResult]) -> Experiment:
    e_init = scale.sort_keys
    p = _figfaults_sort_p(scale)
    rates = list(scale.loss_rates)
    vals = [results[f"figfaults/loss{r:g}"].value for r in rates]
    exp = Experiment(
        "figfaults",
        f"INIC sort makespan vs link loss rate, E = {e_init}, P = {p} (DES)",
        "loss rate",
        "seconds (counters unitless)",
    )
    x = [float(r) for r in rates]
    exp.add(Series("INIC sort makespan (s)", x, [v["makespan"] for v in vals]))
    exp.add(
        Series(
            "retransmits",
            x,
            [float(v.get("faults", {}).get("retransmits", 0)) for v in vals],
        )
    )
    exp.add(
        Series(
            "frames dropped",
            x,
            [float(v.get("faults", {}).get("frames_dropped", 0)) for v in vals],
        )
    )
    exp.notes.append(
        "loss recovery: NACK-driven retransmission with exponential backoff; "
        "the zero-loss anchor is the ideal-fabric point (shared cache entry)"
    )
    return exp


def figfaults(scale: Scale, engine: Optional[SweepEngine] = None) -> Experiment:
    """Makespan-vs-loss-rate curve for the INIC sort under deterministic
    link-fault injection (the robustness sweep; not a paper panel)."""
    return _figfaults_build(scale, _run(engine, _figfaults_specs(scale)))


# ---------------------------------------------------------------------------
# Full suite
# ---------------------------------------------------------------------------
#: (figure id, spec enumerator, result assembler); analytic enumerators
#: and assemblers also take MachineParams.
_ANALYTIC = {"fig4a": (_fig4a_specs, _fig4a_build), "fig4b": (_fig4b_specs, _fig4b_build),
             "fig5a": (_fig5a_specs, _fig5a_build), "fig5b": (_fig5b_specs, _fig5b_build)}
_DES = {"fig8a": (_fig8a_specs, _fig8a_build), "fig8b": (_fig8b_specs, _fig8b_build),
        "figfaults": (_figfaults_specs, _figfaults_build)}
#: panels regenerated by default; ``figfaults`` is opt-in (``--only
#: figfaults``) so the committed paper CSVs stay byte-stable
_DEFAULT_FIGURES = [*_ANALYTIC, "fig8a", "fig8b"]


def all_figures(
    scale: Scale,
    engine: Optional[SweepEngine] = None,
    only: Optional[list[str]] = None,
) -> list[Experiment]:
    """Reproduce every panel (or the ``only`` subset) through **one**
    batched sweep, so the engine can overlap DES points from different
    figures across its workers."""
    names = only or list(_DEFAULT_FIGURES)
    unknown = [n for n in names if n not in _ANALYTIC and n not in _DES]
    if unknown:
        raise ValueError(f"unknown figures {unknown}; have {[*_ANALYTIC, *_DES]}")
    specs: list[PointSpec] = []
    for n in names:
        if n in _ANALYTIC:
            specs += _ANALYTIC[n][0](scale, DEFAULT_PARAMS)
        else:
            specs += _DES[n][0](scale)
    results = _run(engine, specs)
    out = []
    for n in names:
        if n in _ANALYTIC:
            out.append(_ANALYTIC[n][1](scale, DEFAULT_PARAMS, results))
        else:
            out.append(_DES[n][1](scale, results))
    return out


def _main() -> None:  # pragma: no cover - CLI entry
    import argparse

    from .harness import render_all
    from .sweep import DEFAULT_CACHE_DIR

    ap = argparse.ArgumentParser(description="regenerate the paper's figures")
    ap.add_argument("--scale", choices=["paper", "bench", "ci"], default="paper")
    ap.add_argument(
        "--only", nargs="*", default=None, help="subset, e.g. --only fig4a fig8b"
    )
    ap.add_argument("--csv", default=None, help="also export CSVs to this directory")
    ap.add_argument("--plot", action="store_true", help="append ASCII plots")
    ap.add_argument(
        "--jobs", type=int, default=None,
        help="sweep worker processes (default: os.cpu_count())",
    )
    ap.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
    ap.add_argument("--no-cache", action="store_true")
    ap.add_argument("--force", action="store_true", help="ignore cached points")
    args = ap.parse_args()
    scale = Scale.by_name(args.scale)
    engine = SweepEngine(
        jobs=args.jobs,
        cache_dir=None if args.no_cache else args.cache_dir,
        force=args.force,
    )
    experiments = all_figures(scale, engine=engine, only=args.only)
    print(render_all(experiments))
    stats = engine.last_run
    print(
        f"\nsweep: {stats.unique} points, {stats.hits} cached, "
        f"{stats.executed} executed, jobs={engine.jobs}, {stats.wall_seconds:.2f}s"
    )
    if args.plot:
        from .report import ascii_plot

        for e in experiments:
            print()
            print(ascii_plot(e))
    if args.csv:
        from .export import export_all_csv

        for path in export_all_csv(experiments, args.csv):
            print(f"wrote {path}")


if __name__ == "__main__":  # pragma: no cover
    _main()
