"""One reproduction function per paper figure panel.

Methodology mirrors the paper's:

* **Figures 4 and 5** come from the Section-4 *analytical model*
  (Eqs. 3-17) with the calibrated baseline closed form as opponent —
  exactly what the paper plots in its analysis section.
* **Figure 8** comes from full *discrete-event simulation* runs of the
  prototype (Fast Ethernet and Gigabit Ethernet baselines over TCP;
  the ACEII-prototype INIC), as the paper's Section 6 measures/estimates
  on real hardware.

Every function returns an :class:`~repro.bench.harness.Experiment`
whose series print as paper-style rows via ``render_table``.

Run the full suite from the command line::

    python -m repro.bench.figures --scale paper
"""

from __future__ import annotations

import numpy as np

from ..apps.fft import baseline_fft2d, inic_fft2d
from ..apps.sort import baseline_sort, inic_sort
from ..cluster.builder import Cluster, ClusterSpec, athlon_node
from ..core.api import build_acc
from ..inic.card import ACEII_PROTOTYPE, CardSpec, IDEAL_INIC
from ..models.fft_model import (
    fft_compute_total,
    inic_fft_time,
    inic_transpose_time,
    partition_bytes,
    serial_fft_time,
)
from ..models.gige_model import (
    fe_fft_time,
    gige_fft_time,
    gige_sort_time,
    tcp_alltoall_time,
)
from ..models.params import DEFAULT_PARAMS, MachineParams
from ..models.sort_model import (
    inic_sort_time,
    serial_sort_time,
    sort_component_series,
)
from ..models.speedup import Series, speedup_series
from ..net.fabric import FAST_ETHERNET, GIGABIT_ETHERNET, NetworkTechnology
from ..units import seconds_to_ms
from .harness import Experiment, Scale

__all__ = [
    "fig4a",
    "fig4b",
    "fig5a",
    "fig5b",
    "fig8a",
    "fig8b",
    "all_figures",
]

_HIERARCHY = athlon_node().hierarchy()


# ---------------------------------------------------------------------------
# Figure 4 — FFT analysis
# ---------------------------------------------------------------------------
def fig4a(scale: Scale, params: MachineParams = DEFAULT_PARAMS) -> Experiment:
    """Fig. 4(a): analytic FFTW speedups, INIC vs Gigabit Ethernet."""
    exp = Experiment(
        "fig4a",
        "FFTW speedups: ideal INIC vs Gigabit Ethernet (analytical)",
        "P",
        "speedup over one processor",
    )
    for rows in scale.fft_sizes:
        procs = [p for p in scale.fft_procs if rows % p == 0]
        t1 = serial_fft_time(rows, _HIERARCHY, params)
        inic_times = [
            t1 if p == 1 else inic_fft_time(rows, p, _HIERARCHY, params)
            for p in procs
        ]
        gige_times = [gige_fft_time(rows, p, _HIERARCHY, params) for p in procs]
        exp.add(speedup_series(f"INIC {rows}x{rows}", procs, inic_times, t1))
        exp.add(speedup_series(f"GigE {rows}x{rows}", procs, gige_times, t1))
    exp.notes.append("INIC curves from Eqs. (3)-(10); GigE from calibrated TCP model")
    return exp


def fig4b(scale: Scale, params: MachineParams = DEFAULT_PARAMS) -> Experiment:
    """Fig. 4(b): transpose decomposition vs partition size (largest
    matrix of the scale)."""
    rows = max(scale.fft_sizes)
    procs = [p for p in scale.fft_procs if rows % p == 0]
    exp = Experiment(
        "fig4b",
        f"transpose decomposition, {rows}x{rows}",
        "P",
        "milliseconds (partition in KiB)",
    )
    comm, compute, inic_t, part = [], [], [], []
    for p in procs:
        s = partition_bytes(rows, p, params)
        comm.append(
            seconds_to_ms(
                2
                * tcp_alltoall_time(
                    s, p, params.gige_tcp_bulk_rate, params.gige_tcp_message_overhead
                )
            )
        )
        compute.append(seconds_to_ms(fft_compute_total(rows, p, _HIERARCHY, params)))
        inic_t.append(seconds_to_ms(inic_transpose_time(rows, p, params)))
        part.append(s / 1024.0)
    x = [float(p) for p in procs]
    exp.add(Series("NIC comm time (ms)", x, comm))
    exp.add(Series("NIC compute time (ms)", x, compute))
    exp.add(Series("INIC transpose (ms)", x, inic_t))
    exp.add(Series("partition (KiB)", x, part))
    exp.notes.append(
        "partition size falls faster than NIC comm time; INIC transpose sits below it"
    )
    return exp


# ---------------------------------------------------------------------------
# Figure 5 — sort analysis
# ---------------------------------------------------------------------------
def _analytic_sort_keys(scale: Scale, params: MachineParams) -> int:
    return params.sort_total_keys if scale.name == "paper" else scale.sort_keys


def fig5a(scale: Scale, params: MachineParams = DEFAULT_PARAMS) -> Experiment:
    """Fig. 5(a): sort phase times and partition size vs P."""
    e_init = _analytic_sort_keys(scale, params)
    procs = list(scale.sort_procs)
    exp = Experiment(
        "fig5a",
        f"sort components, E = {e_init} keys",
        "P",
        "milliseconds (partition in KiB)",
    )
    pts = sort_component_series(e_init, procs, _HIERARCHY, params)
    x = [float(p.p) for p in pts]
    exp.add(Series("count sort (ms)", x, [seconds_to_ms(p.count_sort_time) for p in pts]))
    exp.add(
        Series("phase1 bucket (ms)", x, [seconds_to_ms(p.phase1_bucket_time) for p in pts])
    )
    exp.add(
        Series("phase2 bucket (ms)", x, [seconds_to_ms(p.phase2_bucket_time) for p in pts])
    )
    comm = [
        seconds_to_ms(
            tcp_alltoall_time(
                p.partition_kib * 1024.0,
                int(p.p),
                params.gige_tcp_bulk_rate,
                params.gige_tcp_message_overhead,
            )
        )
        for p in pts
    ]
    exp.add(Series("communication (ms)", x, comm))
    exp.add(Series("partition (KiB)", x, [p.partition_kib for p in pts]))
    return exp


def fig5b(scale: Scale, params: MachineParams = DEFAULT_PARAMS) -> Experiment:
    """Fig. 5(b): analytic sort speedups, INIC (superlinear) vs GigE."""
    e_init = _analytic_sort_keys(scale, params)
    procs = list(scale.sort_procs)
    t1 = serial_sort_time(e_init, _HIERARCHY, params)
    inic_times = [
        t1 if p == 1 else inic_sort_time(e_init, p, _HIERARCHY, params) for p in procs
    ]
    gige_times = [gige_sort_time(e_init, p, _HIERARCHY, params) for p in procs]
    exp = Experiment(
        "fig5b",
        f"integer-sort speedups, E = {e_init} keys (analytical)",
        "P",
        "speedup over one processor",
    )
    exp.add(speedup_series("INIC", procs, inic_times, t1))
    exp.add(speedup_series("GigE", procs, gige_times, t1))
    exp.notes.append(
        "INIC superlinearity: host bucket-sort time is eliminated entirely"
    )
    return exp


# ---------------------------------------------------------------------------
# Figure 8 — prototype measurements (DES)
# ---------------------------------------------------------------------------
def _fft_des_time(
    rows: int, p: int, network: NetworkTechnology, card: CardSpec | None, seed: int = 1
) -> float:
    g = np.random.default_rng(seed)
    m = g.standard_normal((rows, rows)) + 1j * g.standard_normal((rows, rows))
    if card is None:
        cluster = Cluster.build(ClusterSpec(n_nodes=p, network=network))
        _, res = baseline_fft2d(cluster, m)
    else:
        cluster, manager = build_acc(p, card=card, network=network)
        _, res = inic_fft2d(cluster, manager, m)
    return res.makespan


def fig8a(scale: Scale) -> Experiment:
    """Fig. 8(a): simulated 2D-FFT speedups on Fast Ethernet, Gigabit
    Ethernet, and the prototype INIC."""
    exp = Experiment(
        "fig8a",
        "2D-FFT speedup: Fast Ethernet vs GigE vs prototype INIC (DES)",
        "P",
        "speedup over one processor",
    )
    for rows in scale.fft_sizes:
        procs = [p for p in scale.fft_procs if rows % p == 0]
        t1 = _fft_des_time(rows, 1, GIGABIT_ETHERNET, None)
        for label, network, card in (
            ("proto INIC", GIGABIT_ETHERNET, ACEII_PROTOTYPE),
            ("Fast Ethernet", FAST_ETHERNET, None),
            ("GigE", GIGABIT_ETHERNET, None),
        ):
            # P=1 is the serial host run for every curve (speedup 1 by
            # definition; nobody offloads a one-node transpose).
            times = [
                t1 if p == 1 else _fft_des_time(rows, p, network, card)
                for p in procs
            ]
            exp.add(speedup_series(f"{label} {rows}", procs, times, t1))
    exp.notes.append("all curves: discrete-event simulation, speedup vs 1-node run")
    return exp


def _sort_des_time(
    e_init: int, p: int, card: CardSpec | None, seed: int = 2
) -> float:
    g = np.random.default_rng(seed)
    keys = g.integers(0, 2**32, size=e_init, dtype=np.uint32)
    if card is None:
        cluster = Cluster.build(ClusterSpec(n_nodes=p))
        _, res = baseline_sort(cluster, keys)
    else:
        cluster, manager = build_acc(p, card=card)
        _, res = inic_sort(cluster, manager, keys)
    return res.makespan


def fig8b(scale: Scale) -> Experiment:
    """Fig. 8(b): simulated integer-sort speedups, prototype INIC vs GigE."""
    e_init = scale.sort_keys
    procs = [p for p in scale.sort_procs if e_init % p == 0]
    t1 = _sort_des_time(e_init, 1, None)
    gige = [t1 if p == 1 else _sort_des_time(e_init, p, None) for p in procs]
    proto = [
        t1 if p == 1 else _sort_des_time(e_init, p, ACEII_PROTOTYPE) for p in procs
    ]
    exp = Experiment(
        "fig8b",
        f"integer-sort speedup, E = {e_init} keys (DES)",
        "P",
        "speedup over one processor",
    )
    exp.add(speedup_series("proto INIC", procs, proto, t1))
    exp.add(speedup_series("GigE", procs, gige, t1))
    return exp


def all_figures(scale: Scale) -> list[Experiment]:
    return [fig4a(scale), fig4b(scale), fig5a(scale), fig5b(scale), fig8a(scale), fig8b(scale)]


def _main() -> None:  # pragma: no cover - CLI entry
    import argparse

    from .harness import render_all

    ap = argparse.ArgumentParser(description="regenerate the paper's figures")
    ap.add_argument("--scale", choices=["paper", "bench", "ci"], default="paper")
    ap.add_argument(
        "--only", nargs="*", default=None, help="subset, e.g. --only fig4a fig8b"
    )
    ap.add_argument("--csv", default=None, help="also export CSVs to this directory")
    ap.add_argument("--plot", action="store_true", help="append ASCII plots")
    args = ap.parse_args()
    scale = {"paper": Scale.paper, "bench": Scale.bench, "ci": Scale.ci}[args.scale]()
    table = {
        "fig4a": fig4a,
        "fig4b": fig4b,
        "fig5a": fig5a,
        "fig5b": fig5b,
        "fig8a": fig8a,
        "fig8b": fig8b,
    }
    names = args.only or list(table)
    experiments = [table[n](scale) for n in names]
    print(render_all(experiments))
    if args.plot:
        from .report import ascii_plot

        for e in experiments:
            print()
            print(ascii_plot(e))
    if args.csv:
        from .export import export_all_csv

        for path in export_all_csv(experiments, args.csv):
            print(f"wrote {path}")


if __name__ == "__main__":  # pragma: no cover
    _main()
