"""Seeded chaos campaigns: randomized component-failure schedules.

A :class:`CampaignSpec` describes a failure *process* — arrival rate,
mean-time-to-repair, blast-radius knobs — and :func:`realize` turns it
into a concrete, validated tuple of
:class:`~repro.faults.ComponentFaultSpec` windows against a fabric's
failable components.  Every draw comes from one stream derived via
:func:`repro.sim.rand.derive_seed` over ``(seed, "campaign",
"schedule")``, so the realized schedule is a pure function of the spec:
bit-identical across processes, ``--jobs`` fan-outs, and machines.

The realized schedule rides inside a :class:`~repro.faults.FaultSpec`
(and therefore inside a sweep ``PointSpec``), which is what makes a
chaos campaign just another cacheable, parallelizable sweep point —
``--suite chaos`` in :mod:`repro.bench.sweep` is built from exactly
this.

:func:`check_invariants` is the other half of the harness: given a
report scenario row it asserts the liveness/conservation properties a
faulted run must still satisfy (finite makespan or a surfaced abort,
a balanced frame ledger with no frame both delivered and dropped,
non-negative counters).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..config import ConfigError, config_from_json, config_to_json
from ..errors import FaultConfigError
from ..sim.rand import derive_seed
from . import ComponentFaultSpec, FaultSpec

__all__ = [
    "CampaignSpec",
    "realize",
    "campaign_fault_spec",
    "fabric_components",
    "check_invariants",
]


@dataclass(frozen=True)
class CampaignSpec:
    """A randomized failure process, as sweep-able plain data.

    Failures arrive as a Poisson process at ``failure_rate`` per second
    over ``[0, horizon)``; each picks a uniform target from the fabric's
    failable components and repairs after an exponential
    ``mttr``-mean outage (floored at ``min_outage`` so a draw can never
    produce a vanishing window).  ``max_failures`` caps the campaign's
    total injections and ``max_concurrent`` its blast radius — an
    arrival that would exceed the concurrent-outage budget (or overlap
    an existing window on the same component) is skipped, with its
    draws consumed, so every budget realizes from the same underlying
    candidate-failure sequence: loosening a budget changes which
    arrivals are *admitted*, never when they occur or what they drew.
    """

    #: root seed for the campaign's derived schedule stream
    seed: int = 0
    #: campaign window in simulated seconds (failures arrive in [0, horizon))
    horizon: float = 0.01
    #: failure arrival intensity, failures per simulated second
    failure_rate: float = 400.0
    #: mean time to repair (exponential), seconds
    mttr: float = 2e-3
    #: floor on drawn outage durations, seconds
    min_outage: float = 2e-4
    #: cap on total injected failures
    max_failures: int = 4
    #: blast radius: maximum simultaneously-dead components
    max_concurrent: int = 1
    #: failure-detection latency copied into the realized FaultSpec
    detection_delay: float = 0.0

    def __post_init__(self) -> None:
        for name in ("horizon", "failure_rate", "mttr", "min_outage"):
            v = getattr(self, name)
            if not v > 0:
                raise FaultConfigError(f"{name} must be > 0, got {v}")
        for name in ("max_failures", "max_concurrent"):
            v = getattr(self, name)
            if int(v) != v or v < 1:
                raise FaultConfigError(
                    f"{name} must be a positive integer, got {v!r}"
                )
        if self.detection_delay < 0:
            raise FaultConfigError(
                f"detection_delay must be >= 0 seconds, "
                f"got {self.detection_delay}"
            )

    def to_json(self) -> dict:
        """JSON-safe dict (round-trips through :meth:`from_json`)."""
        return config_to_json(self)

    @classmethod
    def from_json(cls, doc: dict) -> "CampaignSpec":
        try:
            return config_from_json(cls, doc)
        except FaultConfigError:
            raise  # field validation from __post_init__ passes through
        except ConfigError as exc:
            raise FaultConfigError(str(exc)) from None


def realize(
    campaign: CampaignSpec, components: Sequence[tuple[str, str]]
) -> tuple[ComponentFaultSpec, ...]:
    """Draw the campaign's concrete fail/repair schedule.

    ``components`` lists the fabric's failable ``(name, kind)`` targets
    (see :func:`fabric_components`).  Returns one
    :class:`ComponentFaultSpec` per component that drew at least one
    window — already sorted and non-overlapping, so the result always
    validates.
    """
    if not components:
        raise FaultConfigError(
            "cannot realize a campaign against zero failable components"
        )
    rng = np.random.default_rng(
        derive_seed(campaign.seed, "campaign", "schedule")
    )
    windows: dict[tuple[str, str], list[tuple[float, float]]] = {}
    injected: list[tuple[float, float]] = []
    t = 0.0
    arrivals = 0
    while len(injected) < campaign.max_failures:
        t += float(rng.exponential(1.0 / campaign.failure_rate))
        if t >= campaign.horizon:
            break
        arrivals += 1
        target = tuple(components[int(rng.integers(len(components)))])
        duration = max(
            campaign.min_outage, float(rng.exponential(campaign.mttr))
        )
        concurrent = sum(1 for s, d in injected if s <= t < s + d)
        if concurrent >= campaign.max_concurrent:
            continue  # blast-radius budget spent; draws stay consumed
        mine = windows.setdefault(target, [])
        if any(t < s + d and s < t + duration for s, d in mine):
            continue  # would overlap this component's own outage
        mine.append((t, duration))
        injected.append((t, duration))
    return tuple(
        ComponentFaultSpec(
            component=name, windows=tuple(sorted(wins)), kind=kind
        )
        for (name, kind), wins in sorted(windows.items())
    )


def campaign_fault_spec(
    campaign: CampaignSpec,
    components: Sequence[tuple[str, str]],
    **fault_fields,
) -> FaultSpec:
    """The full :class:`FaultSpec` a campaign point runs under: the
    realized schedule plus any extra fault dimensions (``loss_rate``,
    ``wires``, ...) passed through ``fault_fields``."""
    return FaultSpec(
        seed=campaign.seed,
        components=realize(campaign, components),
        detection_delay=campaign.detection_delay,
        **fault_fields,
    )


def fabric_components(
    fabric: str, n_stations: int, fabric_options: Optional[dict] = None
) -> list[tuple[str, str]]:
    """The failable ``(name, kind)`` targets of a fabric kind, derived
    from the same topology constructor the cluster builder uses — a
    campaign can only ever draw components the built fabric will accept."""
    opts = dict(fabric_options or {})
    if fabric == "fattree":
        from ..net.topology import FatTreeTopology

        topo = FatTreeTopology(n_stations, **opts)
        return [(name, "switch") for name in topo.switch_components()]
    if fabric == "torus":
        from ..net.topology import TorusTopology

        if "dims" in opts:
            opts["dims"] = tuple(opts["dims"])
        topo = TorusTopology(n_stations, **opts)
        return [(name, "switch") for name in topo.switch_components()]
    if fabric == "aggregate":
        return [(f"up{p}", "uplink") for p in range(n_stations)]
    raise FaultConfigError(
        f"fabric {fabric!r} has no failable components "
        f"(choose from aggregate, fattree, torus)"
    )


def check_invariants(name: str, entry: dict) -> list[str]:
    """Liveness/conservation checks for one report scenario row.

    Returns human-readable violations (empty: the row is sound):

    * the makespan is finite, or the run surfaced an abort/fallback;
    * the frame-conservation ledger balances — every routed frame is
      delivered, dropped, partition-dropped, or still queued, so no
      frame can be both delivered and dropped;
    * every robustness counter is non-negative;
    * a run whose INIC stacks aborted transfers reports ``aborted``
      (or degraded to the host-TCP fallback) instead of hiding it.
    """
    failures: list[str] = []
    makespan = entry.get("makespan")
    if makespan is None or not math.isfinite(makespan):
        failures.append(f"{name}: makespan {makespan!r} is not finite")
    f = entry.get("faults") or {}

    def walk(prefix: str, doc: dict) -> None:
        for key, value in doc.items():
            if isinstance(value, dict):
                walk(f"{prefix}{key}.", value)
            elif isinstance(value, (int, float)) and value < 0:
                failures.append(
                    f"{name}: counter {prefix}{key} is negative ({value})"
                )

    walk("", f)
    cons = f.get("conservation")
    if cons:
        accounted = (
            cons["frames_delivered"]
            + cons["frames_dropped"]
            + cons["partition_drops"]
            + cons.get("frames_queued", 0)
        )
        if accounted != cons["frames_in"]:
            failures.append(
                f"{name}: conservation ledger off by "
                f"{cons['frames_in'] - accounted} frames "
                f"(in={cons['frames_in']}, accounted={accounted})"
            )
    if (
        f.get("transfer_aborts", 0) > 0
        and not entry.get("aborted")
        and not entry.get("fallbacks")
    ):
        failures.append(
            f"{name}: {f['transfer_aborts']} transfer aborts were not "
            f"surfaced as an aborted/fallback outcome"
        )
    return failures
