"""Deterministic fault injection for the simulated fabric.

The paper's application-specific protocol (Section 4.1) assumes a
loss-free fabric *by construction*.  Real deployments do not get that
luxury: links take bit errors, switches tail-drop under pressure, NIC
RX rings overflow, and FPGA bitstream loads fail.  This module lets a
scenario schedule exactly those faults — **deterministically** — so the
recovery machinery (NACK-driven retransmission in the protocols, the
INIC→host-TCP fallback) can be exercised and measured.

Design rules
------------
* A :class:`FaultSpec` is frozen and JSON-safe, so it can ride inside a
  :class:`~repro.bench.sweep.PointSpec`'s params and participate in the
  sweep engine's content-addressed caching.
* Every stochastic decision draws from a stream derived by
  :func:`repro.sim.rand.derive_seed` over ``(seed, component kind,
  component name)``.  Streams are per-component and draws happen in
  simulation-event order, so a run is bit-identical no matter how many
  ``--jobs`` workers the sweep fans out over, and adding a faulty
  component never perturbs the draws of another.
* A spec with every field at its default (:data:`NO_FAULTS`) must be
  indistinguishable from no fault plan at all: injectors are only
  installed where a fault dimension is active, so zero-fault runs stay
  bit-identical to pre-fault-subsystem output.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from fnmatch import fnmatch
from typing import Optional, TYPE_CHECKING

import numpy as np

from ..errors import FaultConfigError
from ..sim.rand import derive_seed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..net.packet import Frame

__all__ = [
    "FaultSpec",
    "ComponentFaultSpec",
    "COMPONENT_KINDS",
    "NO_FAULTS",
    "WireFault",
    "FaultPlan",
    "robustness_counters",
    "DELIVER",
    "DROP",
    "CORRUPT",
]

#: wire-fault dispositions
DELIVER = "deliver"
#: the frame vanishes before serialization (cable pull, outage)
DROP = "drop"
#: the frame burns wire time but fails CRC at the sink (bit error)
CORRUPT = "corrupt"

#: component kinds a :class:`ComponentFaultSpec` may target
COMPONENT_KINDS = ("switch", "uplink")


def _validate_windows(
    windows, field_name: str
) -> tuple[tuple[float, float], ...]:
    """Coerce and validate ``(start_s, duration_s)`` windows.

    Windows must be sorted by start time and non-overlapping; a
    zero-length gap (one window starting exactly where the previous one
    ends) is allowed.  Violations raise :class:`FaultConfigError` naming
    the offending field, its value, and the valid shape.
    """
    try:
        coerced = tuple(tuple(float(x) for x in w) for w in windows)
    except (TypeError, ValueError) as exc:
        raise FaultConfigError(
            f"{field_name} must be a sequence of (start_s, duration_s) "
            f"pairs, got {windows!r}"
        ) from exc
    for i, w in enumerate(coerced):
        if len(w) != 2:
            raise FaultConfigError(
                f"{field_name}[{i}] must be a (start_s, duration_s) pair, "
                f"got {w!r}"
            )
    prev_start = prev_dur = None
    for i, (start, duration) in enumerate(coerced):
        if start < 0 or duration <= 0:
            raise FaultConfigError(
                f"{field_name}[{i}] is ({start}, {duration}): windows need "
                f"start >= 0 and duration > 0"
            )
        if prev_start is not None:
            if start < prev_start:
                raise FaultConfigError(
                    f"{field_name}[{i}] starts at {start}, before "
                    f"{field_name}[{i - 1}] at {prev_start}: windows must "
                    f"be sorted by start time"
                )
            if start < prev_start + prev_dur:
                raise FaultConfigError(
                    f"{field_name}[{i}] starting at {start} overlaps "
                    f"{field_name}[{i - 1}] ({prev_start}, {prev_dur}), "
                    f"which ends at {prev_start + prev_dur}: windows must "
                    f"not overlap (zero-length gaps are allowed)"
                )
        prev_start, prev_dur = start, duration
    return coerced


@dataclass(frozen=True)
class ComponentFaultSpec:
    """Fail/repair schedule for one named fabric component.

    ``component`` names a switch-level entity of the built fabric —
    ``spine<K>`` / ``router<R>`` for ``kind="switch"`` on the
    hierarchical fabrics, or an uplink port index (``up<P>``) for
    ``kind="uplink"``.  During each ``(start_s, duration_s)`` window the
    component is dead: frames crossing it are dropped (and charged to
    the fabric's drop accounting) and, after the owning
    :class:`FaultSpec`'s ``detection_delay``, routing adapts — the
    fat-tree rehashes flows over surviving spines and the torus detours
    via a fault-tolerant next-hop table.  At ``start + duration`` the
    component repairs and routing converges back.

    Frozen and JSON-safe so it can ride inside :class:`FaultSpec` (and
    therefore inside a sweep ``PointSpec``) without breaking the
    content-addressed cache.
    """

    #: fabric component name (e.g. ``"spine1"``, ``"router12"``, ``"up3"``)
    component: str
    #: fail/repair windows, ``(start_s, duration_s)`` each — sorted,
    #: non-overlapping (validated like :attr:`FaultSpec.outages`)
    windows: tuple[tuple[float, float], ...] = ()
    #: what the name refers to — one of :data:`COMPONENT_KINDS`
    kind: str = "switch"

    def __post_init__(self) -> None:
        if not isinstance(self.component, str) or not self.component:
            raise FaultConfigError(
                f"component must be a non-empty name string, "
                f"got {self.component!r}"
            )
        if self.kind not in COMPONENT_KINDS:
            raise FaultConfigError(
                f"unknown component fault kind {self.kind!r} for "
                f"{self.component!r} (choose from "
                f"{', '.join(COMPONENT_KINDS)})"
            )
        object.__setattr__(
            self,
            "windows",
            _validate_windows(
                self.windows, f"components[{self.component!r}].windows"
            ),
        )
        if not self.windows:
            raise FaultConfigError(
                f"components[{self.component!r}] schedules no windows: a "
                f"component fault needs at least one (start_s, duration_s) "
                f"window"
            )

    # -- serialization -----------------------------------------------------
    def to_json(self) -> dict:
        """JSON-safe dict (round-trips through :meth:`from_json`)."""
        from ..config import config_to_json

        return config_to_json(self)

    @classmethod
    def from_params(cls, doc: dict) -> "ComponentFaultSpec":
        if isinstance(doc, ComponentFaultSpec):
            return doc
        if not isinstance(doc, dict):
            raise FaultConfigError(
                f"component fault entries must be dicts or "
                f"ComponentFaultSpec, got {doc!r}"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise FaultConfigError(
                f"unknown component fault fields {sorted(unknown)} "
                f"(choose from {', '.join(sorted(known))})"
            )
        doc = dict(doc)
        if "windows" in doc:
            doc["windows"] = tuple(tuple(w) for w in doc["windows"])
        return cls(**doc)

    from_json = from_params


@dataclass(frozen=True)
class FaultSpec:
    """One scenario's fault schedule, as sweep-able plain data.

    All probabilities are per *wire transfer* — at CHUNK fidelity one
    transfer may stand for a train of ``frame_count`` physical frames,
    and a hit takes the whole train (a burst loss, which is also what
    tail drops and outages produce in practice).
    """

    #: root seed for every derived fault stream
    seed: int = 0
    #: per-transfer probability a matching wire silently drops the train
    loss_rate: float = 0.0
    #: per-transfer probability of frame corruption: the train occupies
    #: the wire but is discarded by the receiver's CRC check
    corrupt_rate: float = 0.0
    #: transient link outages: ``(start_s, duration_s)`` windows during
    #: which every matching wire drops everything it is handed
    outages: tuple[tuple[float, float], ...] = ()
    #: fnmatch pattern selecting which wires take link faults
    wires: str = "*"
    #: multiplier on switch buffer bytes per port (< 1 forces pressure)
    switch_buffer_scale: float = 1.0
    #: multiplier on NIC RX descriptor-ring depth (< 1 forces overflow)
    rx_ring_scale: float = 1.0
    #: per-attempt probability that an FPGA bitstream load fails
    config_failure_rate: float = 0.0
    #: scheduled component (switch/spine/router/uplink) fail+repair
    #: windows — see :class:`ComponentFaultSpec`
    components: tuple[ComponentFaultSpec, ...] = ()
    #: seconds between a component dying and routing reacting; frames
    #: routed toward the dead component during this window are dropped
    #: and charged (models failure-detection latency)
    detection_delay: float = 0.0

    def __post_init__(self) -> None:
        for name in ("loss_rate", "corrupt_rate", "config_failure_rate"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise FaultConfigError(
                    f"{name} must be in [0, 1], got {v}"
                )
        for name in ("switch_buffer_scale", "rx_ring_scale"):
            v = getattr(self, name)
            if not v > 0:
                raise FaultConfigError(f"{name} must be > 0, got {v}")
        if self.detection_delay < 0:
            raise FaultConfigError(
                f"detection_delay must be >= 0 seconds, "
                f"got {self.detection_delay}"
            )
        object.__setattr__(
            self, "outages", _validate_windows(self.outages, "outages")
        )
        object.__setattr__(
            self,
            "components",
            tuple(ComponentFaultSpec.from_params(c) for c in self.components),
        )
        seen: set[tuple[str, str]] = set()
        for c in self.components:
            key = (c.kind, c.component)
            if key in seen:
                raise FaultConfigError(
                    f"duplicate component fault for {c.kind} "
                    f"{c.component!r}: merge its windows into a single "
                    f"ComponentFaultSpec"
                )
            seen.add(key)

    # -- sweep-spec embedding ----------------------------------------------------
    @property
    def enabled(self) -> bool:
        """True if any fault dimension is active."""
        return self != NO_FAULTS

    @property
    def link_faults(self) -> bool:
        return bool(self.loss_rate or self.corrupt_rate or self.outages)

    def to_params(self) -> Optional[dict]:
        """JSON-safe dict for PointSpec params (``None`` when inactive,
        so zero-fault specs keep their historical identity and cache)."""
        if not self.enabled:
            return None
        return self.to_json()

    @classmethod
    def from_params(cls, doc: Optional[dict]) -> "FaultSpec":
        if doc is None:
            return NO_FAULTS
        known = {f.name for f in fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise FaultConfigError(
                f"unknown fault fields {sorted(unknown)} "
                f"(choose from {', '.join(sorted(known))})"
            )
        doc = dict(doc)
        if "outages" in doc:
            doc["outages"] = tuple(tuple(o) for o in doc["outages"])
        if "components" in doc:
            doc["components"] = tuple(
                ComponentFaultSpec.from_params(c) for c in doc["components"]
            )
        return cls(**doc)

    # -- repo-wide config convention ----------------------------------------
    def to_json(self) -> dict:
        """JSON-safe dict (round-trips through :meth:`from_json`).

        Unlike :meth:`to_params` — which returns ``None`` for inactive
        specs to preserve sweep-cache identity — this always emits the
        full document, matching the other configs' ``to_json``.
        """
        from ..config import config_to_json

        return config_to_json(self)

    @classmethod
    def from_json(cls, doc: dict) -> "FaultSpec":
        if doc is None:
            raise FaultConfigError("from_json needs a dict; use from_params for None")
        return cls.from_params(doc)


#: the ideal fabric — every injector hook resolves to "do nothing"
NO_FAULTS = FaultSpec()


class WireFault:
    """Per-wire link-fault injector (installed via ``Wire.install_fault``).

    Holds its own named random stream, so the decision sequence for one
    wire is a pure function of ``(spec.seed, wire name)`` — independent
    of any other wire's traffic and of sweep parallelism.
    """

    def __init__(self, spec: FaultSpec, wire_name: str):
        self.spec = spec
        self.wire_name = wire_name
        self._rng = np.random.default_rng(derive_seed(spec.seed, "wire", wire_name))
        # -- statistics ----------------------------------------------------
        self.frames_dropped = 0
        self.frames_corrupted = 0
        self.bytes_dropped = 0.0
        #: ``(sim_time, disposition, frame_count)`` decision log — the
        #: "fault schedule" the determinism tests compare across runs
        self.log: list[tuple[float, str, int]] = []

    def _in_outage(self, now: float) -> bool:
        return any(start <= now < start + dur for start, dur in self.spec.outages)

    def disposition(self, frame: "Frame", now: float) -> str:
        """Decide this transfer's fate; updates counters and the log."""
        spec = self.spec
        if self._in_outage(now):
            verdict = DROP
        elif spec.loss_rate > 0 and self._rng.random() < spec.loss_rate:
            verdict = DROP
        elif spec.corrupt_rate > 0 and self._rng.random() < spec.corrupt_rate:
            verdict = CORRUPT
        else:
            return DELIVER
        if verdict is DROP:
            self.frames_dropped += frame.frame_count
        else:
            self.frames_corrupted += frame.frame_count
        self.bytes_dropped += frame.wire_size
        self.log.append((now, verdict, frame.frame_count))
        return verdict


class FaultPlan:
    """The runtime side of a :class:`FaultSpec`: hands out injectors.

    One plan per built cluster; components ask it for their hook at
    wiring time.  It keeps every injector it created so scenario runners
    can aggregate drop/corruption counters afterwards.
    """

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        self._wire_faults: dict[str, WireFault] = {}

    @classmethod
    def from_params(cls, doc: Optional[dict]) -> Optional["FaultPlan"]:
        spec = FaultSpec.from_params(doc)
        return cls(spec) if spec.enabled else None

    # -- component hooks ---------------------------------------------------------
    def wire_fault(self, wire_name: str) -> Optional[WireFault]:
        """The injector for ``wire_name`` (``None``: wire stays ideal)."""
        if not self.spec.link_faults or not fnmatch(wire_name, self.spec.wires):
            return None
        wf = self._wire_faults.get(wire_name)
        if wf is None:
            wf = WireFault(self.spec, wire_name)
            self._wire_faults[wire_name] = wf
        return wf

    def switch_buffer(self, buffer_bytes: float) -> float:
        """Apply forced buffer pressure to a switch port budget."""
        return buffer_bytes * self.spec.switch_buffer_scale

    def rx_ring_depth(self, depth: int) -> int:
        """Apply RX descriptor-ring pressure to a NIC."""
        return max(1, int(depth * self.spec.rx_ring_scale))

    def config_attempt_fails(self, card_name: str, attempt: int) -> bool:
        """Does bitstream-load ``attempt`` (0-based) on ``card_name`` fail?

        Drawn from a stream derived per ``(card, attempt)``, so retrying
        a failed load is a fresh, reproducible draw — not a replay.
        """
        rate = self.spec.config_failure_rate
        if rate <= 0:
            return False
        rng = np.random.default_rng(
            derive_seed(self.spec.seed, "fpga", card_name, attempt)
        )
        return bool(rng.random() < rate)

    # -- aggregation -------------------------------------------------------------
    def link_counters(self) -> dict[str, float | int]:
        """Cluster-wide link-fault totals (JSON-safe)."""
        return {
            "frames_dropped": sum(
                w.frames_dropped for w in self._wire_faults.values()
            ),
            "frames_corrupted": sum(
                w.frames_corrupted for w in self._wire_faults.values()
            ),
            "bytes_dropped": float(
                sum(w.bytes_dropped for w in self._wire_faults.values())
            ),
        }

    def schedule(self) -> dict[str, list[tuple[float, str, int]]]:
        """The realized fault schedule: per-wire decision logs.

        Two runs of the same scenario must produce identical schedules —
        the determinism regression test compares these verbatim.
        """
        return {name: list(w.log) for name, w in sorted(self._wire_faults.items())}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultPlan seed={self.spec.seed} {len(self._wire_faults)} wires>"


def robustness_counters(cluster) -> dict:
    """Cluster-wide fault/recovery counters, JSON-safe.

    The single aggregation every surface shares: fault-suite report rows,
    the chaos campaign's invariant checks, and ``Session.report()``'s
    outcome table all read this.  When the scenario schedules component
    faults the payload gains ``components`` (reroute/failover/partition
    accounting) and ``conservation`` (the frame ledger) sub-dicts;
    link-fault-only payloads keep their historical flat shape.
    """
    out: dict = {
        "frames_dropped": 0,
        "frames_corrupted": 0,
        "bytes_dropped": 0.0,
    }
    plan = cluster.fault_plan
    if plan is not None:
        out.update(plan.link_counters())
    out["switch_dropped_frames"] = int(cluster.switch.total_dropped())
    out["switch_dropped_bytes"] = float(cluster.switch.total_dropped_bytes())
    rx_drops = 0
    rx_drop_bytes = 0.0
    retransmits = nacks = aborts = config_failures = 0
    retransmitted_bytes = 0.0
    for node in cluster.nodes:
        if node.nic is not None:
            rx_drops += node.nic.stats.rx_ring_drops
            rx_drop_bytes += node.nic.stats.rx_ring_drop_bytes
        if node.inic is not None:
            s = node.inic.stats
            retransmits += s.retransmits
            retransmitted_bytes += s.retransmitted_bytes
            nacks += s.nacks_sent
            aborts += s.transfer_aborts
            config_failures += node.inic.fabric.config_failures
    out.update(
        rx_ring_drops=rx_drops,
        rx_ring_drop_bytes=float(rx_drop_bytes),
        retransmits=retransmits,
        retransmitted_bytes=float(retransmitted_bytes),
        nacks_sent=nacks,
        transfer_aborts=aborts,
        config_failures=config_failures,
    )
    if plan is not None and plan.spec.components:
        component_counters = getattr(
            cluster.switch, "component_counters", None
        )
        if component_counters is not None:
            out["components"] = component_counters()
        conservation = getattr(cluster.switch, "conservation_counters", None)
        if conservation is not None:
            out["conservation"] = conservation()
    return out
