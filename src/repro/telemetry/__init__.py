"""Unified telemetry: metrics registry, timelines, exporters.

Every simulated component (CPU, PCI bus, DMA engines, interrupt
controller, wires, NICs, switch ports, INIC cards, FPGA fabrics, both
protocol stacks) can register *instruments* — counters, gauges, and
time-weighted busy accumulators — with a :class:`MetricsRegistry` under
a stable hierarchical name scheme::

    node0.pci.busy_time
    node3.inic.fpga.config_time
    switch.port2.drops

Instruments are *bound reads*: registration stores a callable that pulls
the component's own statistics at snapshot time, so an enabled registry
never schedules simulation events and never perturbs event counts or
makespans.  A disabled session uses :data:`NULL_REGISTRY`, whose every
operation is a no-op — the zero-cost path the perf gate verifies.

On top of the registry sit:

* :class:`Timeline` — turns trace spans + busy instruments into
  per-component utilization tracks;
* :mod:`repro.telemetry.perfetto` — Chrome/Perfetto ``trace_event``
  JSON export (load the file at https://ui.perfetto.dev);
* :mod:`repro.telemetry.report` — a human-readable metrics table;
* a flat ``snapshot()`` dict merged into sweep results and
  ``BENCH_perf.json`` when a point runs with ``telemetry: true``.

The public entry point is the :class:`~repro.core.api.Experiment`
facade: ``Experiment().nodes(8).telemetry(True).build()``.
"""

from .instruments import instrument_cluster
from .registry import (
    Instrument,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    TelemetryError,
    TimeWeighted,
)
from .timeline import Timeline, Track
from .perfetto import (
    export_trace,
    phase_totals_from_trace,
    to_trace_events,
    validate_trace,
)
from .report import render_metrics, render_snapshot, render_utilization

__all__ = [
    "Instrument",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "TelemetryError",
    "TimeWeighted",
    "Timeline",
    "Track",
    "export_trace",
    "instrument_cluster",
    "phase_totals_from_trace",
    "render_metrics",
    "render_snapshot",
    "render_utilization",
    "to_trace_events",
    "validate_trace",
]
