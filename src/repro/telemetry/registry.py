"""The metrics registry: named instruments over component statistics.

Design constraints (see ISSUE/docs/observability.md):

* **Deterministic** — an instrument is a pure read over state the
  simulation already maintains; registering or reading one never touches
  the event heap, so enabling telemetry cannot change event counts,
  makespans, or any simulated quantity.
* **Zero-cost when disabled** — the disabled path is
  :data:`NULL_REGISTRY`, a shared :class:`NullRegistry` whose methods do
  nothing; components are simply never asked to register.
* **Stable names** — hierarchical dotted names (``node0.pci.busy_time``)
  assigned by the cluster instrumenter
  (:func:`repro.telemetry.instruments.instrument_cluster`), never by the
  components themselves, so two clusters always agree on the scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from ..errors import ReproError

__all__ = [
    "TelemetryError",
    "Instrument",
    "TimeWeighted",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
]

#: instrument kinds, in the only order reports group by
KINDS = ("counter", "gauge", "busy")


class TelemetryError(ReproError):
    """A telemetry misuse (duplicate instrument, unknown name, ...)."""


@dataclass(frozen=True)
class Instrument:
    """One named metric: a kind, a unit, and a bound read."""

    name: str
    kind: str  # "counter" | "gauge" | "busy"
    read: Callable[[], float]
    unit: str = ""

    def value(self) -> float:
        return self.read()


class TimeWeighted:
    """A time-weighted occupancy accumulator.

    Integrates a piecewise-constant quantity (queue depth, bytes in
    flight) over simulation time: ``update(t, v)`` closes the interval
    since the previous update at the previous value.  ``average(t)`` is
    the time-weighted mean over ``[t0, t]``.  Pure arithmetic — no
    events — so components may update it from hot paths when (and only
    when) telemetry attached one.
    """

    __slots__ = ("_t_last", "_t_start", "_value", "integral", "peak")

    def __init__(self, t0: float = 0.0, value: float = 0.0):
        self._t_start = t0
        self._t_last = t0
        self._value = value
        self.integral = 0.0
        self.peak = value

    @property
    def current(self) -> float:
        return self._value

    def update(self, t: float, value: float) -> None:
        """The quantity becomes ``value`` at time ``t``."""
        if t > self._t_last:
            self.integral += self._value * (t - self._t_last)
            self._t_last = t
        self._value = value
        if value > self.peak:
            self.peak = value

    def average(self, t: float) -> float:
        """Time-weighted mean over ``[t0, t]``."""
        span = t - self._t_start
        if span <= 0:
            return self._value
        tail = self._value * max(0.0, t - self._t_last)
        return (self.integral + tail) / span


class MetricsRegistry:
    """Holds every registered instrument; snapshot-only reads."""

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[str, Instrument] = {}

    # -- registration ------------------------------------------------------
    def register(
        self, name: str, kind: str, read: Callable[[], float], unit: str = ""
    ) -> None:
        if kind not in KINDS:
            raise TelemetryError(f"unknown instrument kind {kind!r}; have {KINDS}")
        if not name or name != name.strip("."):
            raise TelemetryError(f"bad instrument name {name!r}")
        if name in self._instruments:
            raise TelemetryError(f"instrument {name!r} already registered")
        self._instruments[name] = Instrument(name, kind, read, unit)

    def counter(self, name: str, read: Callable[[], float], unit: str = "") -> None:
        """A monotonically growing count (frames, drops, interrupts)."""
        self.register(name, "counter", read, unit)

    def gauge(self, name: str, read: Callable[[], float], unit: str = "") -> None:
        """A point-in-time level (utilization, peak memory, ratio)."""
        self.register(name, "gauge", read, unit)

    def busy(self, name: str, read: Callable[[], float], unit: str = "s") -> None:
        """Accumulated busy/occupied seconds of one component."""
        self.register(name, "busy", read, unit)

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def instrument(self, name: str) -> Instrument:
        try:
            return self._instruments[name]
        except KeyError:
            raise TelemetryError(f"no instrument named {name!r}") from None

    def read(self, name: str) -> float:
        return self.instrument(name).value()

    def names(self, prefix: Optional[str] = None) -> list[str]:
        """Sorted instrument names, optionally under ``prefix.``."""
        names = sorted(self._instruments)
        if prefix is None:
            return names
        dotted = prefix + "."
        return [n for n in names if n == prefix or n.startswith(dotted)]

    def instruments(self, kind: Optional[str] = None) -> Iterable[Instrument]:
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if kind is None or inst.kind == kind:
                yield inst

    def snapshot(self) -> dict[str, float]:
        """The flat metrics dict: ``{name: value}``, keys sorted.

        Values are plain ints/floats (JSON-safe); this is what sweep
        points merge into their results and ``BENCH_perf.json``.
        """
        out: dict[str, float] = {}
        for name in sorted(self._instruments):
            v = self._instruments[name].value()
            out[name] = int(v) if isinstance(v, bool) else v
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MetricsRegistry {len(self._instruments)} instruments>"


class NullRegistry(MetricsRegistry):
    """The disabled registry: every operation is a no-op.

    A single shared instance (:data:`NULL_REGISTRY`) stands in wherever
    telemetry is off; nothing is stored, nothing is read, and the
    simulation sees zero extra work.
    """

    enabled = False

    def register(self, name, kind, read, unit="") -> None:  # noqa: D102
        return None

    def snapshot(self) -> dict[str, float]:
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NullRegistry (telemetry disabled)>"


#: the shared disabled registry
NULL_REGISTRY = NullRegistry()
