"""Chrome/Perfetto ``trace_event`` JSON export.

Produces the JSON object format of the Trace Event spec (the format
both ``chrome://tracing`` and https://ui.perfetto.dev load):

* one *process* per rank (``pid = rank + 1``; ``pid 0`` is the cluster
  itself, holding spans with no rank, e.g. the driver's
  ``inic-exchange`` card spans),
* one *thread* per span name inside each process, so each phase renders
  as its own track,
* ``"X"`` (complete) events for spans, with microsecond ``ts``/``dur``,
* ``"C"`` (counter) events sampling every registry instrument at the
  end of the run,
* ``"M"`` metadata events naming processes and threads.

Everything is emitted in a deterministic order and serialized with
sorted keys, so the exported file is byte-identical for identical runs
regardless of ``--jobs N`` or host.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from ..sim.trace import TraceRecorder, merge_intervals
from .registry import MetricsRegistry

__all__ = [
    "to_trace_events",
    "export_trace",
    "validate_trace",
    "phase_totals_from_trace",
]

_US = 1e6  # trace_event timestamps are microseconds


def _pid(span) -> int:
    rank = span.meta.get("rank")
    return int(rank) + 1 if isinstance(rank, int) else 0


def to_trace_events(
    trace: TraceRecorder,
    registry: Optional[MetricsRegistry] = None,
    now: Optional[float] = None,
) -> dict[str, Any]:
    """The run as a ``trace_event`` JSON object (not yet serialized)."""
    end = trace.sim.now if now is None else now
    events: list[dict[str, Any]] = []

    # Stable thread ids: span names in first-appearance order.
    tids: dict[str, int] = {}
    pids: dict[int, None] = {}
    for span in trace.spans:
        tids.setdefault(span.name, len(tids) + 1)
        pids.setdefault(_pid(span), None)

    for pid in sorted(pids):
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "ts": 0,
                "args": {"name": "cluster" if pid == 0 else f"node{pid - 1}"},
            }
        )
        for name, tid in tids.items():
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "ts": 0,
                    "args": {"name": name},
                }
            )

    for span in trace.spans:
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": "phase",
                "pid": _pid(span),
                "tid": tids[span.name],
                "ts": span.start * _US,
                "dur": span.duration * _US,
                "args": {k: v for k, v in sorted(span.meta.items())},
            }
        )

    if registry is not None:
        for inst in registry.instruments():
            events.append(
                {
                    "ph": "C",
                    "name": inst.name,
                    "cat": inst.kind,
                    "pid": 0,
                    "tid": 0,
                    "ts": end * _US,
                    "args": {"value": float(inst.value())},
                }
            )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "simulated_seconds": end,
            "spans": len(trace.spans),
            "instruments": 0 if registry is None else len(registry),
        },
    }


def export_trace(
    path: str,
    trace: TraceRecorder,
    registry: Optional[MetricsRegistry] = None,
    now: Optional[float] = None,
) -> str:
    """Serialize :func:`to_trace_events` to ``path``; returns ``path``.

    Serialization is canonical (sorted keys, fixed separators) so the
    file bytes depend only on the simulated run.
    """
    doc = to_trace_events(trace, registry, now)
    with open(path, "w") as fh:
        json.dump(doc, fh, sort_keys=True, separators=(",", ":"))
        fh.write("\n")
    return path


def validate_trace(doc: Any) -> list[str]:
    """Validate ``doc`` against the trace_event schema we emit.

    Returns a list of problems (empty = valid).  Intentionally strict
    about the fields Perfetto needs: phase, name, pid/tid ints,
    microsecond ``ts``, ``dur`` on complete events, ``args`` dicts on
    metadata/counter events.
    """
    problems: list[str] = []
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["top level must be an object with a traceEvents array"]
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        return ["traceEvents must be a non-empty array"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "M", "C", "B", "E", "i"):
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            problems.append(f"{where}: missing event name")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                problems.append(f"{where}: {key} must be an int")
        if not isinstance(ev.get("ts"), (int, float)) or ev.get("ts", -1) < 0:
            problems.append(f"{where}: ts must be a non-negative number")
        if ph == "X":
            if not isinstance(ev.get("dur"), (int, float)) or ev["dur"] < 0:
                problems.append(f"{where}: X event needs non-negative dur")
        if ph in ("M", "C"):
            args = ev.get("args")
            if not isinstance(args, dict):
                problems.append(f"{where}: {ph} event needs an args object")
            elif ph == "M" and "name" not in args:
                problems.append(f"{where}: metadata event needs args.name")
            elif ph == "C" and not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                problems.append(f"{where}: counter args must be numbers")
    return problems


def phase_totals_from_trace(doc: dict[str, Any]) -> dict[str, float]:
    """Per-phase wall seconds (interval union) re-derived from the
    exported JSON — what a consumer of the trace file would compute,
    compared against the run's own breakdown by the CI smoke check."""
    intervals: dict[str, list[tuple[float, float]]] = {}
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") != "X" or ev.get("cat") != "phase":
            continue
        start = ev["ts"] / _US
        intervals.setdefault(ev["name"], []).append(
            (start, start + ev["dur"] / _US)
        )
    return {
        name: sum(e - s for s, e in merge_intervals(ivs))
        for name, ivs in intervals.items()
    }
