"""Timeline: spans + instruments -> per-component utilization tracks.

The paper's figures are decompositions of run time; the timeline is the
same decomposition generalized: one *phase track* per span name (the
application's ``fft-compute`` / ``transpose-comm`` / ``inic-exchange``
phases, with their real intervals) and one *component track* per busy
instrument (``node0.pci``, ``switch.port2.wire``, ...) carrying its
accumulated busy time and utilization over the run.

Built after a run from the cluster's :class:`~repro.sim.trace.TraceRecorder`
and the session's :class:`~repro.telemetry.registry.MetricsRegistry`;
the Perfetto exporter (:mod:`repro.telemetry.perfetto`) renders it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..sim.trace import Span, TraceRecorder, merge_intervals
from .registry import MetricsRegistry

__all__ = ["Track", "Timeline"]

#: suffixes that mark a busy instrument's component track
_BUSY_SUFFIXES = (".busy_time", ".config_time", ".time")


@dataclass
class Track:
    """One timeline row."""

    name: str
    kind: str  # "phase" | "component"
    #: closed spans on this track (phase tracks only; component tracks
    #: summarize with busy_time/utilization instead of intervals)
    spans: list[Span] = field(default_factory=list)
    busy_time: float = 0.0
    utilization: float = 0.0

    def wall(self) -> float:
        """Union duration of this track's spans."""
        ivs = merge_intervals((s.start, s.end) for s in self.spans)
        return sum(e - s for s, e in ivs)


class Timeline:
    """Per-component utilization tracks for one finished run."""

    def __init__(self, tracks: list[Track], now: float):
        self.tracks = tracks
        self.now = now

    @classmethod
    def build(
        cls,
        trace: TraceRecorder,
        registry: Optional[MetricsRegistry] = None,
        now: Optional[float] = None,
    ) -> "Timeline":
        end = trace.sim.now if now is None else now
        tracks: list[Track] = []
        # Phase tracks: one per span name, in first-seen order (stable).
        by_name: dict[str, Track] = {}
        for span in trace.spans:
            track = by_name.get(span.name)
            if track is None:
                track = Track(span.name, "phase")
                by_name[span.name] = track
                tracks.append(track)
            track.spans.append(span)
        for track in tracks:
            track.busy_time = track.wall()
            track.utilization = track.busy_time / end if end > 0 else 0.0
        # Component tracks: every busy instrument becomes a utilization row.
        if registry is not None:
            for inst in registry.instruments(kind="busy"):
                busy = float(inst.value())
                component = inst.name
                for suffix in _BUSY_SUFFIXES:
                    if component.endswith(suffix):
                        component = component[: -len(suffix)]
                        break
                tracks.append(
                    Track(
                        component,
                        "component",
                        busy_time=busy,
                        utilization=busy / end if end > 0 else 0.0,
                    )
                )
        return cls(tracks, end)

    # -- queries -----------------------------------------------------------
    def phase_tracks(self) -> list[Track]:
        return [t for t in self.tracks if t.kind == "phase"]

    def component_tracks(self) -> list[Track]:
        return [t for t in self.tracks if t.kind == "component"]

    def phase_totals(self) -> dict[str, float]:
        """Phase-name -> wall time (interval union), the figure view."""
        return {t.name: t.busy_time for t in self.phase_tracks()}

    def utilization(self) -> dict[str, float]:
        """Component -> busy fraction of the run."""
        return {t.name: t.utilization for t in self.component_tracks()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Timeline {len(self.tracks)} tracks over {self.now:g}s>"
