"""Telemetry smoke harness: the Fig. 4(b) scenario with the lights on.

Runs the INIC 2D-FFT (the paper's transpose-decomposition workload) on
an ACEII-prototype cluster with telemetry enabled, then optionally

* ``--report``  — print the human utilization + metrics tables,
* ``--trace``   — export a Chrome/Perfetto ``trace_event`` JSON file,
* ``--check``   — assert the subsystem's core guarantees:

  1. the exported trace satisfies the ``trace_event`` schema,
  2. trace-derived phase totals match the application's reported
     comm/compute decomposition within 1%,
  3. every node shows nonzero PCI, FPGA-configuration, and interrupt
     time (the hardware timelines actually observed the hardware),
  4. re-running the identical scenario with telemetry *disabled*
     produces the same event count and makespan — observation is free.

CI runs ``python -m repro.telemetry --check --trace <tmp>`` as the
telemetry smoke job; the same command is the local repro.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

import numpy as np

from ..core.api import Experiment, Session
from ..inic.card import ACEII_PROTOTYPE
from .perfetto import phase_totals_from_trace, to_trace_events, validate_trace

#: relative tolerance for trace-vs-decomposition phase totals
PHASE_TOLERANCE = 0.01


def _run(nodes: int, rows: int, seed: int, telemetry: bool):
    """One INIC FFT run; returns ``(session, app_result)``."""
    from ..apps.fft import inic_fft2d

    g = np.random.default_rng(seed)
    matrix = g.standard_normal((rows, rows)) + 1j * g.standard_normal((rows, rows))
    session = (
        Experiment()
        .nodes(nodes)
        .card(ACEII_PROTOTYPE)
        .telemetry(telemetry)
        .build()
    )
    _, res = inic_fft2d(session.cluster, session.manager, matrix)
    return session, res


def check(session: Session, res, nodes: int, rows: int, seed: int) -> list[str]:
    """The smoke assertions; returns a list of failure messages."""
    failures: list[str] = []

    doc = to_trace_events(session.trace, session.registry, now=session.sim.now)
    for problem in validate_trace(doc):
        failures.append(f"trace schema: {problem}")

    totals = phase_totals_from_trace(doc)
    for phase, expected in res.breakdown.items():
        got = totals.get(phase)
        if got is None:
            failures.append(f"phase {phase!r} missing from trace")
        elif expected > 0 and abs(got - expected) > PHASE_TOLERANCE * expected:
            failures.append(
                f"phase {phase!r}: trace says {got:.6g}s, "
                f"decomposition says {expected:.6g}s (> {PHASE_TOLERANCE:.0%})"
            )

    metrics = session.metrics()
    for rank in range(nodes):
        for suffix in ("pci.busy_time", "inic.fpga.config_time", "irq.time"):
            name = f"node{rank}.{suffix}"
            if metrics.get(name, 0.0) <= 0.0:
                failures.append(f"{name} is zero — hardware timeline went blind")

    # observation must be free: the same scenario with telemetry off is
    # event-for-event identical
    dark, dark_res = _run(nodes, rows, seed, telemetry=False)
    if dark.sim.event_count != session.sim.event_count:
        failures.append(
            f"telemetry perturbed the event count: "
            f"{session.sim.event_count} on vs {dark.sim.event_count} off"
        )
    if dark_res.makespan != res.makespan:
        failures.append(
            f"telemetry perturbed the makespan: "
            f"{res.makespan!r} on vs {dark_res.makespan!r} off"
        )
    return failures


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--rows", type=int, default=64)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="export a Perfetto trace_event JSON file",
    )
    parser.add_argument(
        "--report", action="store_true",
        help="print the utilization + metrics tables",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="run the smoke assertions (schema, phase totals, "
        "per-node hardware activity, zero-cost-when-disabled)",
    )
    args = parser.parse_args(argv)
    if args.rows % args.nodes:
        parser.error(f"--rows {args.rows} must divide by --nodes {args.nodes}")

    session, res = _run(args.nodes, args.rows, args.seed, telemetry=True)
    print(
        f"fft {args.rows}x{args.rows} on {args.nodes} INIC nodes: "
        f"makespan={res.makespan:.6f}s events={session.sim.event_count} "
        f"instruments={len(session.registry)}"
    )

    if args.report:
        print()
        print(session.report())

    if args.trace:
        path = session.export_trace(args.trace)
        with open(path) as fh:
            doc = json.load(fh)
        print(
            f"wrote {path}: {len(doc['traceEvents'])} trace events "
            f"({len(validate_trace(doc))} schema problems)"
        )

    if args.check:
        failures = check(session, res, args.nodes, args.rows, args.seed)
        if failures:
            for msg in failures:
                print(f"FAIL {msg}")
            return 1
        print(
            f"PASS telemetry smoke: schema valid, phase totals within "
            f"{PHASE_TOLERANCE:.0%}, all {args.nodes} nodes active, "
            f"zero-cost when disabled"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
