"""Cluster instrumentation: assign hierarchical names to every component.

``instrument_cluster`` walks a built :class:`~repro.cluster.builder.Cluster`
and asks each simulated component to register its instruments under the
repo-wide naming scheme:

====================================  =======================================
prefix                                component
====================================  =======================================
``node{r}.cpu``                       host CPU (busy/interrupt/task counters)
``node{r}.pci``                       the node's host-side I/O bus (see note)
``node{r}.irq``                       interrupt delivery to the host CPU
``node{r}.nic``                       standard NIC (+ ``.txdma``/``.rxdma``,
                                      ``.uplink`` wire)
``node{r}.tcp``                       host TCP stack
``node{r}.inic``                      INIC card (+ ``.bus`` or per-direction
                                      buses, ``.fpga``, ``.uplink`` wire)
``switch`` / ``switch.port{p}``       the fabric switch and its output ports
                                      (+ ``.wire`` downlink)
====================================  =======================================

PCI note: on a standard node, payloads DMA across the node's own PCI bus,
so ``node{r}.pci`` reads it directly.  On an INIC node the datapath
bypasses the host PCI bus entirely — every host<->card byte instead
crosses the *card's* host-side bus (on the ACEII prototype that bus IS a
132 MB/s PCI-rate bus, Section 6 of the paper) — so ``node{r}.pci``
reads the card's host path.  Either way the name answers the question
the paper's Section 4 model asks: how busy is the host I/O path of this
node?

Registration against a :class:`~repro.telemetry.registry.NullRegistry`
is a no-op at the source: this function returns immediately, so the
disabled path never even builds the closures.
"""

from __future__ import annotations

from typing import Optional

from .registry import MetricsRegistry

__all__ = ["instrument_cluster"]


def _instrument_standard_node(registry: MetricsRegistry, node, prefix: str) -> None:
    node.pci.register_telemetry(registry, f"{prefix}.pci")
    nic = node.nic
    # Interrupt path: controller counters plus the CPU time its
    # deliveries stole (the "interrupt-controller utilization" view).
    registry.busy(f"{prefix}.irq.time", lambda cpu=node.cpu: cpu.interrupt_time)
    nic.irq.register_telemetry(registry, f"{prefix}.irq")
    nic.register_telemetry(registry, f"{prefix}.nic")
    if node.tcp is not None:
        node.tcp.register_telemetry(registry, f"{prefix}.tcp")


def _instrument_inic_node(registry: MetricsRegistry, node, prefix: str) -> None:
    card = node.inic
    # The node's effective host I/O path is the card's host-side bus
    # (the datapath never touches the motherboard PCI bus; see module
    # docstring).  Shared-bus cards have one bus for both directions.
    if card.host_tx is card.host_rx:
        registry.busy(
            f"{prefix}.pci.busy_time", lambda b=card.host_tx: b.busy_snapshot()
        )
        registry.counter(
            f"{prefix}.pci.bytes",
            lambda b=card.host_tx: b.stats.bytes_transferred,
            unit="B",
        )
    else:
        registry.busy(
            f"{prefix}.pci.busy_time",
            lambda tx=card.host_tx, rx=card.host_rx: tx.busy_snapshot()
            + rx.busy_snapshot(),
        )
        registry.counter(
            f"{prefix}.pci.bytes",
            lambda tx=card.host_tx, rx=card.host_rx: tx.stats.bytes_transferred
            + rx.stats.bytes_transferred,
            unit="B",
        )
    # Interrupt path: the card raises one completion interrupt per
    # operation; the stolen handler time accumulates on the host CPU.
    registry.busy(f"{prefix}.irq.time", lambda cpu=node.cpu: cpu.interrupt_time)
    registry.counter(
        f"{prefix}.irq.delivered", lambda s=card.stats: s.completion_interrupts
    )
    card.register_telemetry(registry, f"{prefix}.inic")


def instrument_cluster(
    registry: MetricsRegistry, cluster, manager: Optional[object] = None
) -> MetricsRegistry:
    """Register instruments for every component of ``cluster``.

    ``manager`` is accepted for signature symmetry with the facade (the
    INIC manager owns no stats of its own — the cards do).  Returns the
    registry for chaining.
    """
    if not registry.enabled:
        return registry
    for node in cluster.nodes:
        prefix = f"node{node.rank}"
        node.cpu.register_telemetry(registry, f"{prefix}.cpu")
        if node.inic is not None:
            _instrument_inic_node(registry, node, prefix)
        else:
            _instrument_standard_node(registry, node, prefix)
    cluster.switch.register_telemetry(registry, "switch")
    return registry
