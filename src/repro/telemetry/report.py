"""Human-readable rendering of registry snapshots and timelines."""

from __future__ import annotations

from typing import Optional

from .registry import MetricsRegistry
from .timeline import Timeline

__all__ = [
    "render_metrics",
    "render_outcomes",
    "render_snapshot",
    "render_utilization",
]


def _fmt(value: float, unit: str) -> str:
    if unit == "s":
        return f"{value * 1e3:.3f} ms"
    if unit == "B":
        if value >= 1 << 20:
            return f"{value / (1 << 20):.2f} MiB"
        if value >= 1 << 10:
            return f"{value / (1 << 10):.2f} KiB"
        return f"{value:.0f} B"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.4g}"
    return f"{int(value)}"


def render_metrics(
    registry: MetricsRegistry, prefix: Optional[str] = None
) -> str:
    """The registry as an aligned ``name  kind  value`` table."""
    rows = []
    for inst in registry.instruments():
        if prefix is not None:
            dotted = prefix + "."
            if inst.name != prefix and not inst.name.startswith(dotted):
                continue
        rows.append((inst.name, inst.kind, _fmt(inst.value(), inst.unit)))
    if not rows:
        return "(no instruments registered)"
    w_name = max(len(r[0]) for r in rows)
    w_kind = max(len(r[1]) for r in rows)
    lines = [f"{'instrument':<{w_name}}  {'kind':<{w_kind}}  value"]
    lines.append(f"{'-' * w_name}  {'-' * w_kind}  {'-' * 12}")
    for name, kind, value in rows:
        lines.append(f"{name:<{w_name}}  {kind:<{w_kind}}  {value}")
    return "\n".join(lines)


def _guess_unit(name: str) -> str:
    """Unit inference for detached snapshots (no live instruments): the
    naming convention puts ``*_time``/``.time`` on busy seconds and
    ``*bytes`` on byte counters."""
    if name.endswith(("_time", ".time")):
        return "s"
    if name.endswith("bytes") or name.endswith(".bytes"):
        return "B"
    return ""


def render_snapshot(metrics: dict, prefix: Optional[str] = None) -> str:
    """A flat ``{instrument: value}`` snapshot (e.g. out of a sweep
    report) as an aligned table — for when the registry is long gone."""
    rows = []
    for name in sorted(metrics):
        if prefix is not None:
            dotted = prefix + "."
            if name != prefix and not name.startswith(dotted):
                continue
        rows.append((name, _fmt(metrics[name], _guess_unit(name))))
    if not rows:
        return "(no instruments recorded)"
    w_name = max(len(r[0]) for r in rows)
    lines = [f"{'instrument':<{w_name}}  value", f"{'-' * w_name}  {'-' * 12}"]
    lines.extend(f"{name:<{w_name}}  {value}" for name, value in rows)
    return "\n".join(lines)


def render_outcomes(entry: dict) -> str:
    """Structured transfer-outcome table for a faulted run.

    ``entry`` is either a sweep report scenario row (with ``faults``,
    ``aborted``, ``fallbacks`` keys) or a bare counters dict as returned
    by :func:`repro.faults.robustness_counters`.  Nested ``components``
    and ``conservation`` ledgers render as dotted rows; zero-valued
    counters are kept so absence of a failure mode is visible too.
    """
    counters = entry.get("faults", entry) or {}
    rows: list[tuple[str, str]] = []
    if counters is not entry:
        for key in ("aborted", "fallbacks"):
            rows.append((key, _fmt(float(entry.get(key) or 0), "")))

    def flatten(prefix: str, doc: dict) -> None:
        for name in sorted(doc):
            value = doc[name]
            if isinstance(value, dict):
                flatten(f"{prefix}{name}.", value)
            else:
                rows.append(
                    (f"{prefix}{name}", _fmt(value, _guess_unit(name)))
                )

    flatten("", counters)
    if not rows:
        return "(no outcome counters recorded)"
    w_name = max(len(r[0]) for r in rows)
    lines = [f"{'outcome':<{w_name}}  value", f"{'-' * w_name}  {'-' * 12}"]
    lines.extend(f"{name:<{w_name}}  {value}" for name, value in rows)
    return "\n".join(lines)


def render_utilization(timeline: Timeline, width: int = 30) -> str:
    """Timeline tracks as a bar chart: busy seconds + busy fraction."""
    tracks = timeline.phase_tracks() + timeline.component_tracks()
    if not tracks:
        return "(empty timeline)"
    w_name = max(len(t.name) for t in tracks)
    lines = [
        f"timeline over {timeline.now * 1e3:.3f} ms simulated",
        f"{'track':<{w_name}}  {'busy':>12}  {'util':>6}  ",
    ]
    for track in tracks:
        frac = min(1.0, max(0.0, track.utilization))
        bar = "#" * round(frac * width)
        lines.append(
            f"{track.name:<{w_name}}  {track.busy_time * 1e3:>9.3f} ms"
            f"  {track.utilization * 100:>5.1f}%  |{bar:<{width}}|"
        )
    return "\n".join(lines)
