"""Cluster-wide INIC management.

Configures every card in an ACC with a design (in parallel — bitstream
loads are per-card), validates modes, and hands out per-node
:class:`~repro.core.driver.HostDriver` instances.  Reconfiguration
between applications is counted, so ablations can charge the paper's
bitstream-load latency when an application switches designs mid-run.
"""

from __future__ import annotations

from typing import Callable

from ..cluster.builder import Cluster
from ..errors import ConfigurationError
from ..inic.bitstream import Design
from .driver import HostDriver
from .modes import validate_mode_cores

__all__ = ["INICManager"]


class INICManager:
    """Owns the cards of one ACC cluster."""

    def __init__(self, cluster: Cluster):
        if cluster.spec.inic is None:
            raise ConfigurationError(
                "cluster was built without INIC cards; use ClusterSpec.with_inic()"
            )
        self.cluster = cluster
        self.drivers = [
            HostDriver(node.require_inic(), trace=cluster.trace)
            for node in cluster.nodes
        ]

    def driver(self, rank: int) -> HostDriver:
        return self.drivers[rank]

    def configure_all(
        self, design_factory: Callable[[], Design], max_attempts: int = 2
    ) -> float:
        """Configure every card (fresh design instance per card, since
        cores carry per-card statistics).  Runs the loads in parallel and
        returns the elapsed configuration time.

        A bitstream load that fails readback (only possible under an
        injected configuration fault) is retried up to ``max_attempts``
        times per card — each attempt paying the full reconfiguration
        latency — before :class:`~repro.errors.ConfigurationError`
        escapes to the caller, who may degrade to the host-TCP path.
        """
        if max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        sim = self.cluster.sim
        t0 = sim.now
        procs = []
        for node in self.cluster.nodes:
            design = design_factory()
            validate_mode_cores(design.mode, [c.spec.name for c in design.cores])

            def load(card=node.require_inic(), d=design):
                for attempt in range(max_attempts):
                    try:
                        yield from card.configure(d)
                        return
                    except ConfigurationError:
                        if attempt + 1 >= max_attempts:
                            raise

            procs.append(sim.process(load(), name=f"cfg.{node.rank}"))
        sim.run(until=sim.all_of(procs))
        return sim.now - t0

    def reconfigurations(self) -> int:
        """Total bitstream loads across the cluster so far."""
        return sum(
            node.require_inic().fabric.configurations for node in self.cluster.nodes
        )

    def config_failures(self) -> int:
        """Total failed bitstream-load attempts across the cluster."""
        return sum(
            node.require_inic().fabric.config_failures for node in self.cluster.nodes
        )

    def total_completion_interrupts(self) -> int:
        return sum(
            node.require_inic().stats.completion_interrupts
            for node in self.cluster.nodes
        )
