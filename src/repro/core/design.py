"""Ready-made offload designs for the paper's applications.

Each factory returns a :class:`~repro.inic.bitstream.Design` that a
card can be configured with.  The sort design auto-sizes its bucket
count to the target card's FPGA budget, which is how the prototype ends
up with the 16-bucket two-phase scheme of Section 6 while the ideal
card runs the full single-phase sort of Figure 3(b).
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..inic.bitstream import Design, INFRASTRUCTURE_CLBS
from ..inic.card import CardSpec
from ..inic.cores import (
    BroadcastCore,
    BucketSortCore,
    DatatypeEngineCore,
    DepacketizerCore,
    FIFOCore,
    FinalPermutationCore,
    LocalTransposeCore,
    PacketizerCore,
    ReduceCore,
    max_buckets_for_clbs,
)
from .modes import Mode, validate_mode_cores

__all__ = [
    "fft_transpose_design",
    "integer_sort_design",
    "supported_bucket_count",
    "protocol_processor_design",
    "collective_design",
    "datatype_design",
    "compute_design",
    "validated",
]


def validated(design: Design) -> Design:
    """Run mode validation and return the design (fluent helper)."""
    validate_mode_cores(design.mode, [c.spec.name for c in design.cores])
    return design


def _protocol_path(packet_size: int = 1024):
    return [
        PacketizerCore(packet_size),
        DepacketizerCore(packet_size),
        FIFOCore(name="fifo"),
    ]


def fft_transpose_design(packet_size: int = 1024) -> Design:
    """Figure 2(b): local transpose out, final permutation in."""
    return validated(
        Design(
            "fft-transpose",
            _protocol_path(packet_size)
            + [LocalTransposeCore(), FinalPermutationCore()],
            mode=Mode.COMBINED.value,
        )
    )


def supported_bucket_count(card: CardSpec, packet_size: int = 1024) -> int:
    """Largest power-of-two bucket count the card's FPGA(s) can host
    alongside the protocol path."""
    fixed = INFRASTRUCTURE_CLBS + sum(c.spec.clbs for c in _protocol_path(packet_size))
    budget = sum(d.clbs for d in card.devices) - fixed
    if budget <= 0:
        raise ConfigurationError(f"{card.name}: no CLBs left for a sort core")
    return max_buckets_for_clbs(budget)


def integer_sort_design(
    card: CardSpec, n_buckets: int | None = None, packet_size: int = 1024
) -> Design:
    """Figures 3(b)/7: bucket sort in the datapath, both directions.

    ``n_buckets=None`` auto-sizes to the card (16 on the ACEII
    prototype, >=128 on the ideal card).
    """
    if n_buckets is None:
        n_buckets = supported_bucket_count(card, packet_size)
    return validated(
        Design(
            "integer-sort",
            _protocol_path(packet_size) + [BucketSortCore(n_buckets)],
            mode=Mode.COMBINED.value,
        )
    )


def protocol_processor_design(packet_size: int = 1024) -> Design:
    """Section 2's pure Protocol Processor mode."""
    return validated(
        Design("protocol-processor", _protocol_path(packet_size), mode=Mode.PROTOCOL.value)
    )


def collective_design(op: str = "sum", element_bytes: int = 8) -> Design:
    """Future-work extension: in-datapath reduce + broadcast."""
    return validated(
        Design(
            f"collective-{op}",
            _protocol_path() + [ReduceCore(op, element_bytes), BroadcastCore()],
            mode=Mode.COMBINED.value,
        )
    )


def datatype_design() -> Design:
    """Future-work extension: MPI derived-datatype engine."""
    return validated(
        Design(
            "derived-datatypes",
            _protocol_path() + [DatatypeEngineCore()],
            mode=Mode.COMBINED.value,
        )
    )


def compute_design(cores) -> Design:
    """Section 2's Compute Accelerator mode (caller supplies kernels)."""
    return validated(Design("compute-accelerator", list(cores), mode=Mode.COMPUTE.value))
