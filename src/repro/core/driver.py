"""Host-side INIC driver.

What the node's CPU actually does when the INIC is in charge: write a
descriptor (cheap — "starting a send is handled by hardware that sits
idle if no send is in progress"), then go do something useful until the
card's single completion interrupt.  The driver also stamps trace spans
so benchmark decompositions can separate offloaded-communication time
from host compute.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..errors import OffloadError
from ..inic.card import GatherOp, INICCard, ScatterOp, SendBlock
from ..protocols.inicproto import TransferPlan
from ..sim.trace import TraceRecorder

__all__ = ["HostDriver"]

#: CPU seconds to write one descriptor (a few PIO writes)
DESCRIPTOR_POST_COST = 1e-6


class HostDriver:
    """Descriptor-level interface between a node's CPU and its card."""

    def __init__(self, card: INICCard, trace: Optional[TraceRecorder] = None):
        self.card = card
        self.trace = trace
        self.sim = card.sim
        self.descriptors_posted = 0

    # -- descriptor posts --------------------------------------------------------
    def _charge_post(self, n_descriptors: int = 1):
        """Generator: charge the (tiny) host cost of descriptor writes."""
        self.descriptors_posted += n_descriptors
        if self.card.cpu is not None:
            yield from self.card.cpu.busy(DESCRIPTOR_POST_COST * n_descriptors)

    def scatter(
        self,
        tag: int,
        blocks: list[SendBlock],
        window_bytes: int | None = None,
        train: bool = False,
    ):
        """Generator: post a scatter; returns the :class:`ScatterOp`.

        ``window_bytes`` narrows the per-destination flow window for
        incast-shaped operations (see :class:`~repro.inic.card.CardSpec`).
        ``train`` marks the blocks as one sender's slice of a bulk
        exchange so the card may take the flow-clock fast path.
        """
        yield from self._charge_post(len(blocks))
        return self.card.post_scatter(tag, blocks, window_bytes, train=train)

    def gather(
        self,
        tag: int,
        plan: TransferPlan,
        assemble: Optional[Callable[[dict[int, list]], Any]] = None,
        reduce_core=None,
    ):
        """Generator: post a gather; returns the :class:`GatherOp`."""
        yield from self._charge_post(1)
        return self.card.post_gather(tag, plan, assemble, reduce_core)

    def exchange(
        self,
        tag: int,
        blocks: list[SendBlock],
        plan: TransferPlan,
        assemble: Optional[Callable[[dict[int, list]], Any]] = None,
    ):
        """Generator: the all-to-all primitive — post gather then scatter,
        wait for the gather to complete, return its assembled result.

        Records a ``inic-exchange`` trace span covering the whole
        offloaded operation (what Fig. 4(b) calls "INIC Transpose Time").
        """
        span = self.trace.open("inic-exchange", card=self.card.name) if self.trace else None
        gop: GatherOp = yield from self.gather(tag, plan, assemble)
        sop: ScatterOp = yield from self.scatter(tag, blocks, train=True)
        result = yield gop.done
        yield sop.sent  # always already done, but keeps invariants explicit
        if span is not None:
            span.close()
        return result

    # -- protocol-processor mode ----------------------------------------------------
    def send_message(self, dst, nbytes: int, payload: Any = None, tag: int = 0):
        """Generator: reliable large-message send via the card (PROTOCOL
        mode): the host never touches packets or interrupts."""
        if nbytes < 1:
            raise OffloadError(f"cannot send {nbytes} bytes")
        yield from self._charge_post(1)
        op = self.card.post_scatter(tag, [SendBlock(dst, nbytes, payload)])
        yield op.sent
        return op

    def recv_message(self, src, nbytes: int, tag: int = 0):
        """Generator: matching receive; returns the payload."""
        yield from self._charge_post(1)
        plan = TransferPlan(self.sim, {src.value: nbytes}, name=f"recv#{tag}")
        op = self.card.post_gather(tag, plan)
        payloads = yield op.done
        items = payloads.get(src.value, [None])
        return items[-1]
