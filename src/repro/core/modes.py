"""INIC operating modes (Section 2).

The paper defines three ways to use the FPGAs in the datapath:

``COMPUTE``
    "Compute Accelerator — using the FPGAs strictly for application
    computing tasks ... a separate path to host memory is configured to
    allow normal network operations."

``PROTOCOL``
    "Protocol Processor — the FPGAs are used strictly for network
    processing ... performing all of the protocol processing for a
    node."

``COMBINED``
    "Combined Compute/Protocol Accelerator — ... the most interesting of
    the three modes ... the computing portion can be a passive element,
    processing data as it passes through the device at zero cost."

Mode membership constrains which cores a design may carry; the manager
validates this at configuration time.
"""

from __future__ import annotations

import enum

from ..errors import ConfigurationError

__all__ = ["Mode", "validate_mode_cores"]


class Mode(enum.Enum):
    COMPUTE = "compute"
    PROTOCOL = "protocol"
    COMBINED = "combined"

    @classmethod
    def parse(cls, value: "str | Mode") -> "Mode":
        if isinstance(value, Mode):
            return value
        try:
            return cls(value)
        except ValueError:
            raise ConfigurationError(
                f"unknown INIC mode {value!r}; expected one of "
                f"{[m.value for m in cls]}"
            ) from None


#: core-name prefixes that constitute protocol machinery
_PROTOCOL_CORES = ("packetize", "depacketize", "fifo")
#: core-name prefixes that constitute application computation
_COMPUTE_CORES = (
    "local-transpose",
    "final-permutation",
    "bucket-sort",
    "reduce",
    "broadcast",
    "datatype-engine",
)


def _classify(core_name: str) -> str:
    for prefix in _PROTOCOL_CORES:
        if core_name.startswith(prefix):
            return "protocol"
    for prefix in _COMPUTE_CORES:
        if core_name.startswith(prefix):
            return "compute"
    return "other"


def validate_mode_cores(mode: "str | Mode", core_names: list[str]) -> Mode:
    """Check that a design's cores are legal for its mode.

    * PROTOCOL designs must not carry application-compute cores.
    * COMPUTE designs must not carry protocol cores (the network path
      bypasses the FPGAs in that mode).
    * COMBINED designs must carry protocol cores (data enters through
      the packetizers) and may carry anything.
    """
    m = Mode.parse(mode)
    kinds = {name: _classify(name) for name in core_names}
    if m is Mode.PROTOCOL:
        offenders = [n for n, k in kinds.items() if k == "compute"]
        if offenders:
            raise ConfigurationError(
                f"PROTOCOL-mode design carries compute cores {offenders}"
            )
    elif m is Mode.COMPUTE:
        offenders = [n for n, k in kinds.items() if k == "protocol"]
        if offenders:
            raise ConfigurationError(
                f"COMPUTE-mode design carries protocol cores {offenders}"
            )
    else:  # COMBINED
        if not any(k == "protocol" for k in kinds.values()):
            raise ConfigurationError(
                "COMBINED-mode design needs the packetize/depacketize path"
            )
    return m
