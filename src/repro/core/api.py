"""Top-level convenience API.

The two-liner a downstream user starts from::

    from repro.core.api import build_acc
    cluster, manager = build_acc(8)                 # ideal INIC ACC
    cluster, manager = build_acc(8, card=ACEII_PROTOTYPE)

and the matched baseline::

    from repro.core.api import build_beowulf
    cluster = build_beowulf(8)                      # GigE + TCP
"""

from __future__ import annotations

from ..cluster.builder import Cluster, ClusterSpec
from ..inic.card import CardSpec, IDEAL_INIC
from ..net.fabric import GIGABIT_ETHERNET, NetworkTechnology
from .manager import INICManager

__all__ = ["build_acc", "build_beowulf"]


def build_acc(
    n_nodes: int,
    card: CardSpec = IDEAL_INIC,
    network: NetworkTechnology = GIGABIT_ETHERNET,
    seed: int = 0x5EED,
) -> tuple[Cluster, INICManager]:
    """Build an Adaptable Computing Cluster: every node carries an INIC."""
    cluster = Cluster.build(
        ClusterSpec(n_nodes=n_nodes, network=network, seed=seed).with_inic(card)
    )
    return cluster, INICManager(cluster)


def build_beowulf(
    n_nodes: int,
    network: NetworkTechnology = GIGABIT_ETHERNET,
    seed: int = 0x5EED,
) -> Cluster:
    """Build the commodity baseline: standard NICs + TCP."""
    return Cluster.build(ClusterSpec(n_nodes=n_nodes, network=network, seed=seed))
