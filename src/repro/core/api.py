"""The experiment facade: one front door to cluster construction.

The builder a downstream user starts from::

    from repro.api import Experiment, ACEII_PROTOTYPE

    session = Experiment().nodes(8).card(ACEII_PROTOTYPE).build()
    session.run()

``Experiment`` is an immutable builder — every method returns a new
experiment, so chaining order never matters and a base experiment can be
branched::

    base = Experiment().nodes(8).telemetry(True)
    acc = base.card()                    # ideal INIC
    beowulf = base                       # standard NICs + TCP

``build()`` wires the cluster (and, for INIC experiments, the
:class:`~repro.core.manager.INICManager`), instruments every component
when telemetry is enabled, starts any processes registered with
``Experiment().process(name, fn)``, and returns a :class:`Session` that
owns the run loop, process spawning (``spawn()``, ``env``), and the
telemetry queries (``metrics()``, ``timeline()``, ``export_trace()``,
``report()``).

Scenario logic is authored as coroutine (or generator) processes — see
:mod:`repro.sim.process` and ``docs/processes.md``::

    async def traffic(session):
        env = session.env
        while True:
            await env.sleep(1e-3)
            ...

    session = Experiment().nodes(8).process("traffic", traffic).build()
    session.run()

The deprecated ``build_acc``/``build_beowulf`` wrappers from the
pre-facade API have been removed; use the builder chains shown above
(``Experiment().nodes(n).card(...).build()`` for an INIC cluster,
``Experiment().nodes(n).build()`` for the TCP baseline).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..cluster.builder import Cluster, ClusterSpec, NodeHardware
from ..faults import FaultSpec
from ..inic.card import CardSpec, IDEAL_INIC
from ..net.fabric import NetworkTechnology
from ..protocols.tcp import TCPConfig
from ..sim.process import Environment
from ..telemetry import (
    MetricsRegistry,
    NULL_REGISTRY,
    Timeline,
    instrument_cluster,
)
from ..telemetry.perfetto import export_trace as _export_trace
from ..telemetry.report import (
    render_metrics,
    render_outcomes,
    render_utilization,
)
from .manager import INICManager

__all__ = ["Experiment", "Session"]


class Session:
    """A built, wired, optionally instrumented cluster ready to run."""

    def __init__(
        self,
        cluster: Cluster,
        manager: Optional[INICManager],
        registry: MetricsRegistry,
    ):
        self.cluster = cluster
        #: the INIC manager, or ``None`` for a standard-NIC cluster
        self.manager = manager
        #: the metrics registry (:data:`~repro.telemetry.NULL_REGISTRY`
        #: when telemetry is disabled)
        self.registry = registry
        #: process-API view of the cluster's simulator
        #: (:class:`repro.sim.process.Environment`)
        self.env = Environment(cluster.sim)
        #: processes started via :meth:`spawn` or
        #: :meth:`Experiment.process`, by name
        self.processes: dict[str, Any] = {}

    # -- run ---------------------------------------------------------------
    @property
    def sim(self):
        return self.cluster.sim

    @property
    def trace(self):
        return self.cluster.trace

    @property
    def nodes(self):
        return self.cluster.nodes

    @property
    def telemetry_enabled(self) -> bool:
        return self.registry.enabled

    def run(self, until=None, max_events=None):
        """Advance the simulation (delegates to the cluster)."""
        return self.cluster.run(until=until, max_events=max_events)

    def spawn(self, fn: Callable[..., Any], *args, name: str = "", **kwargs):
        """Start a coroutine (or generator) process on this session.

        ``fn`` is an ``async def`` or generator function; it is called
        with ``(*args, **kwargs)`` and the resulting body is scheduled
        as a :class:`~repro.sim.engine.Process`::

            async def traffic(session, period):
                while True:
                    await session.env.sleep(period)
                    ...

            proc = session.spawn(traffic, session, 1e-3, name="traffic")

        Returns the process; it is also recorded in
        :attr:`processes` under its name.
        """
        proc = self.env.process(fn, *args, name=name, **kwargs)
        self.processes[proc.name] = proc
        return proc

    # -- telemetry queries -------------------------------------------------
    def metrics(self) -> dict[str, float]:
        """Flat ``{instrument: value}`` snapshot (empty when disabled)."""
        return self.registry.snapshot()

    def timeline(self) -> Timeline:
        """Per-phase and per-component utilization tracks for the run."""
        return Timeline.build(self.cluster.trace, self.registry)

    def export_trace(self, path: str) -> str:
        """Write a Chrome/Perfetto ``trace_event`` JSON file."""
        return _export_trace(path, self.cluster.trace, self.registry)

    def report(self) -> str:
        """Human-readable utilization + metrics tables.  A faulted run
        appends its transfer-outcome counters (drops, retransmits,
        reroutes, the conservation ledger) so degraded paths are never
        silent."""
        parts = [render_utilization(self.timeline())]
        if self.registry.enabled:
            parts.append(render_metrics(self.registry))
        if self.cluster.fault_plan is not None:
            from ..faults import robustness_counters

            parts.append(render_outcomes(robustness_counters(self.cluster)))
        return "\n\n".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tele = "on" if self.registry.enabled else "off"
        return f"<Session {self.cluster!r} telemetry={tele}>"


class Experiment:
    """Immutable builder for a cluster experiment.

    Defaults describe the commodity baseline: Gigabit Ethernet, standard
    NICs + TCP, no faults, telemetry off.
    """

    def __init__(
        self,
        spec: Optional[ClusterSpec] = None,
        telemetry: bool = False,
        processes: tuple = (),
    ):
        self._spec = spec if spec is not None else ClusterSpec(n_nodes=1)
        self._telemetry = telemetry
        self._processes = processes

    # -- builder steps (each returns a new Experiment) ---------------------
    def _with(self, **changes) -> "Experiment":
        spec = self._spec
        telemetry = changes.pop("telemetry", self._telemetry)
        processes = changes.pop("processes", self._processes)
        if changes:
            spec = spec.replace(**changes)
        return Experiment(spec, telemetry, processes)

    def nodes(self, n: int) -> "Experiment":
        """Cluster size."""
        return self._with(n_nodes=n)

    def network(self, tech: NetworkTechnology) -> "Experiment":
        """Fabric technology (``FAST_ETHERNET`` / ``GIGABIT_ETHERNET``)."""
        return self._with(network=tech)

    def card(self, spec: Optional[CardSpec] = IDEAL_INIC) -> "Experiment":
        """Put an INIC card in every node (``None`` reverts to NIC+TCP)."""
        return self._with(inic=spec)

    def tcp(self, config: TCPConfig) -> "Experiment":
        """TCP tunables for standard-NIC clusters."""
        return self._with(tcp=config)

    def node_hardware(self, hw: NodeHardware) -> "Experiment":
        """Per-node CPU/memory/interrupt parameters."""
        return self._with(node=hw)

    def seed(self, seed: int) -> "Experiment":
        """Root seed for the cluster's deterministic random streams."""
        return self._with(seed=seed)

    def faults(self, spec: Optional[FaultSpec]) -> "Experiment":
        """Fault-injection scenario (``None`` restores the ideal fabric)."""
        return self._with(faults=spec)

    def fabric(self, kind: str, **options) -> "Experiment":
        """Fabric topology/fidelity (see
        :data:`~repro.cluster.builder.FABRIC_KINDS`): ``"wire"`` (full
        star, the default), ``"aggregate"`` (O(ports) busy-until star),
        ``"fattree"`` or ``"torus"`` (hierarchical multi-hop models).

        Keyword options parameterize hierarchical topologies::

            Experiment().nodes(1024).fabric("fattree", oversub=2)
            Experiment().nodes(512).fabric("torus", dims=(8, 8, 8))
        """
        return self._with(
            fabric=kind, fabric_options=tuple(sorted(options.items()))
        )

    def fastpath(self, enabled: bool = True) -> "Experiment":
        """Opt in to the exchange-phase bulk fast path
        (:mod:`repro.net.flowclock`): INIC cards admit all-to-all frame
        trains in closed form, collapsing per-chunk event cascades to a
        handful of scheduled callbacks.  Eligibility is still checked
        per operation; ineligible scatters (retries enabled, faulted
        wires, busy flow windows) take the frame-level path unchanged.
        """
        return self._with(fastpath=enabled)

    def telemetry(self, enabled: bool = True) -> "Experiment":
        """Instrument every component at build time."""
        return self._with(telemetry=enabled)

    def process(self, name: str, fn: Callable[["Session"], Any]) -> "Experiment":
        """Register a named process to spawn when the session is built.

        ``fn`` is an ``async def`` or generator function of one
        argument — the built :class:`Session`::

            async def traffic(session):
                while True:
                    await session.env.sleep(1e-3)
                    ...

            session = Experiment().nodes(8).process("traffic", traffic).build()

        Registered processes spawn in registration order at ``build()``
        time (before any event runs), so registration order — like
        every builder step — is part of the experiment's deterministic
        identity.  Registering a second process under the same name
        replaces the first (in its original position).
        """
        entries = tuple(e for e in self._processes if e[0] != name)
        replaced = len(entries) != len(self._processes)
        if replaced:
            entries = tuple(
                (name, fn) if e[0] == name else e for e in self._processes
            )
        else:
            entries = self._processes + ((name, fn),)
        return self._with(processes=entries)

    # -- inspection --------------------------------------------------------
    @property
    def spec(self) -> ClusterSpec:
        """The :class:`ClusterSpec` this experiment would build."""
        return self._spec

    @property
    def telemetry_enabled(self) -> bool:
        return self._telemetry

    # -- terminal ----------------------------------------------------------
    def build(self) -> Session:
        """Build and wire the cluster; returns a ready :class:`Session`.

        Processes registered via :meth:`process` are spawned (in
        registration order) on the fresh session before it is returned;
        nothing executes until ``session.run()``.
        """
        cluster = Cluster.build(self._spec)
        manager = INICManager(cluster) if self._spec.inic is not None else None
        registry = MetricsRegistry() if self._telemetry else NULL_REGISTRY
        if registry.enabled:
            instrument_cluster(registry, cluster, manager)
        session = Session(cluster, manager, registry)
        for name, fn in self._processes:
            session.spawn(fn, session, name=name)
        return session

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Experiment {self._spec!r} telemetry={self._telemetry}>"
