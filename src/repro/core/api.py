"""Top-level convenience API.

The two-liner a downstream user starts from::

    from repro.core.api import build_acc
    cluster, manager = build_acc(8)                 # ideal INIC ACC
    cluster, manager = build_acc(8, card=ACEII_PROTOTYPE)

and the matched baseline::

    from repro.core.api import build_beowulf
    cluster = build_beowulf(8)                      # GigE + TCP
"""

from __future__ import annotations

from typing import Optional

from ..cluster.builder import Cluster, ClusterSpec
from ..faults import FaultSpec
from ..inic.card import CardSpec, IDEAL_INIC
from ..net.fabric import GIGABIT_ETHERNET, NetworkTechnology
from .manager import INICManager

__all__ = ["build_acc", "build_beowulf"]


def build_acc(
    n_nodes: int,
    card: CardSpec = IDEAL_INIC,
    network: NetworkTechnology = GIGABIT_ETHERNET,
    seed: int = 0x5EED,
    faults: Optional[FaultSpec] = None,
) -> tuple[Cluster, INICManager]:
    """Build an Adaptable Computing Cluster: every node carries an INIC."""
    spec = ClusterSpec(n_nodes=n_nodes, network=network, seed=seed).with_inic(card)
    if faults is not None:
        spec = spec.with_faults(faults)
    cluster = Cluster.build(spec)
    return cluster, INICManager(cluster)


def build_beowulf(
    n_nodes: int,
    network: NetworkTechnology = GIGABIT_ETHERNET,
    seed: int = 0x5EED,
    faults: Optional[FaultSpec] = None,
) -> Cluster:
    """Build the commodity baseline: standard NICs + TCP."""
    spec = ClusterSpec(n_nodes=n_nodes, network=network, seed=seed)
    if faults is not None:
        spec = spec.with_faults(faults)
    return Cluster.build(spec)
