"""The offload framework: modes, designs, driver, manager, facade."""

from .api import Experiment, Session
from .design import (
    collective_design,
    compute_design,
    datatype_design,
    fft_transpose_design,
    integer_sort_design,
    protocol_processor_design,
    supported_bucket_count,
)
from .driver import HostDriver
from .manager import INICManager
from .modes import Mode, validate_mode_cores

__all__ = [
    "Experiment",
    "HostDriver",
    "INICManager",
    "Mode",
    "Session",
    "collective_design",
    "compute_design",
    "datatype_design",
    "fft_transpose_design",
    "integer_sort_design",
    "protocol_processor_design",
    "supported_bucket_count",
    "validate_mode_cores",
]
