"""Deterministic fault injection for the simulated fabric.

The paper's application-specific protocol (Section 4.1) assumes a
loss-free fabric *by construction*.  Real deployments do not get that
luxury: links take bit errors, switches tail-drop under pressure, NIC
RX rings overflow, and FPGA bitstream loads fail.  This module lets a
scenario schedule exactly those faults — **deterministically** — so the
recovery machinery (NACK-driven retransmission in the protocols, the
INIC→host-TCP fallback) can be exercised and measured.

Design rules
------------
* A :class:`FaultSpec` is frozen and JSON-safe, so it can ride inside a
  :class:`~repro.bench.sweep.PointSpec`'s params and participate in the
  sweep engine's content-addressed caching.
* Every stochastic decision draws from a stream derived by
  :func:`repro.sim.rand.derive_seed` over ``(seed, component kind,
  component name)``.  Streams are per-component and draws happen in
  simulation-event order, so a run is bit-identical no matter how many
  ``--jobs`` workers the sweep fans out over, and adding a faulty
  component never perturbs the draws of another.
* A spec with every field at its default (:data:`NO_FAULTS`) must be
  indistinguishable from no fault plan at all: injectors are only
  installed where a fault dimension is active, so zero-fault runs stay
  bit-identical to pre-fault-subsystem output.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from fnmatch import fnmatch
from typing import Optional, TYPE_CHECKING

import numpy as np

from .errors import FaultConfigError
from .sim.rand import derive_seed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .net.packet import Frame

__all__ = [
    "FaultSpec",
    "NO_FAULTS",
    "WireFault",
    "FaultPlan",
    "DELIVER",
    "DROP",
    "CORRUPT",
]

#: wire-fault dispositions
DELIVER = "deliver"
#: the frame vanishes before serialization (cable pull, outage)
DROP = "drop"
#: the frame burns wire time but fails CRC at the sink (bit error)
CORRUPT = "corrupt"


@dataclass(frozen=True)
class FaultSpec:
    """One scenario's fault schedule, as sweep-able plain data.

    All probabilities are per *wire transfer* — at CHUNK fidelity one
    transfer may stand for a train of ``frame_count`` physical frames,
    and a hit takes the whole train (a burst loss, which is also what
    tail drops and outages produce in practice).
    """

    #: root seed for every derived fault stream
    seed: int = 0
    #: per-transfer probability a matching wire silently drops the train
    loss_rate: float = 0.0
    #: per-transfer probability of frame corruption: the train occupies
    #: the wire but is discarded by the receiver's CRC check
    corrupt_rate: float = 0.0
    #: transient link outages: ``(start_s, duration_s)`` windows during
    #: which every matching wire drops everything it is handed
    outages: tuple[tuple[float, float], ...] = ()
    #: fnmatch pattern selecting which wires take link faults
    wires: str = "*"
    #: multiplier on switch buffer bytes per port (< 1 forces pressure)
    switch_buffer_scale: float = 1.0
    #: multiplier on NIC RX descriptor-ring depth (< 1 forces overflow)
    rx_ring_scale: float = 1.0
    #: per-attempt probability that an FPGA bitstream load fails
    config_failure_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("loss_rate", "corrupt_rate", "config_failure_rate"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise FaultConfigError(f"{name} must be in [0, 1], got {v}")
        if self.switch_buffer_scale <= 0 or self.rx_ring_scale <= 0:
            raise FaultConfigError("resource scale factors must be > 0")
        object.__setattr__(
            self, "outages", tuple(tuple(float(x) for x in o) for o in self.outages)
        )
        for start, duration in self.outages:
            if start < 0 or duration <= 0:
                raise FaultConfigError(
                    f"outage windows need start >= 0 and duration > 0, "
                    f"got ({start}, {duration})"
                )

    # -- sweep-spec embedding ----------------------------------------------------
    @property
    def enabled(self) -> bool:
        """True if any fault dimension is active."""
        return self != NO_FAULTS

    @property
    def link_faults(self) -> bool:
        return bool(self.loss_rate or self.corrupt_rate or self.outages)

    def to_params(self) -> Optional[dict]:
        """JSON-safe dict for PointSpec params (``None`` when inactive,
        so zero-fault specs keep their historical identity and cache)."""
        if not self.enabled:
            return None
        doc = asdict(self)
        doc["outages"] = [list(o) for o in self.outages]
        return doc

    @classmethod
    def from_params(cls, doc: Optional[dict]) -> "FaultSpec":
        if doc is None:
            return NO_FAULTS
        known = {f.name for f in fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise FaultConfigError(f"unknown fault fields {sorted(unknown)}")
        doc = dict(doc)
        if "outages" in doc:
            doc["outages"] = tuple(tuple(o) for o in doc["outages"])
        return cls(**doc)

    # -- repo-wide config convention ----------------------------------------
    def to_json(self) -> dict:
        """JSON-safe dict (round-trips through :meth:`from_json`).

        Unlike :meth:`to_params` — which returns ``None`` for inactive
        specs to preserve sweep-cache identity — this always emits the
        full document, matching the other configs' ``to_json``.
        """
        doc = asdict(self)
        doc["outages"] = [list(o) for o in self.outages]
        return doc

    @classmethod
    def from_json(cls, doc: dict) -> "FaultSpec":
        if doc is None:
            raise FaultConfigError("from_json needs a dict; use from_params for None")
        return cls.from_params(doc)


#: the ideal fabric — every injector hook resolves to "do nothing"
NO_FAULTS = FaultSpec()


class WireFault:
    """Per-wire link-fault injector (installed via ``Wire.install_fault``).

    Holds its own named random stream, so the decision sequence for one
    wire is a pure function of ``(spec.seed, wire name)`` — independent
    of any other wire's traffic and of sweep parallelism.
    """

    def __init__(self, spec: FaultSpec, wire_name: str):
        self.spec = spec
        self.wire_name = wire_name
        self._rng = np.random.default_rng(derive_seed(spec.seed, "wire", wire_name))
        # -- statistics ----------------------------------------------------
        self.frames_dropped = 0
        self.frames_corrupted = 0
        self.bytes_dropped = 0.0
        #: ``(sim_time, disposition, frame_count)`` decision log — the
        #: "fault schedule" the determinism tests compare across runs
        self.log: list[tuple[float, str, int]] = []

    def _in_outage(self, now: float) -> bool:
        return any(start <= now < start + dur for start, dur in self.spec.outages)

    def disposition(self, frame: "Frame", now: float) -> str:
        """Decide this transfer's fate; updates counters and the log."""
        spec = self.spec
        if self._in_outage(now):
            verdict = DROP
        elif spec.loss_rate > 0 and self._rng.random() < spec.loss_rate:
            verdict = DROP
        elif spec.corrupt_rate > 0 and self._rng.random() < spec.corrupt_rate:
            verdict = CORRUPT
        else:
            return DELIVER
        if verdict is DROP:
            self.frames_dropped += frame.frame_count
        else:
            self.frames_corrupted += frame.frame_count
        self.bytes_dropped += frame.wire_size
        self.log.append((now, verdict, frame.frame_count))
        return verdict


class FaultPlan:
    """The runtime side of a :class:`FaultSpec`: hands out injectors.

    One plan per built cluster; components ask it for their hook at
    wiring time.  It keeps every injector it created so scenario runners
    can aggregate drop/corruption counters afterwards.
    """

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        self._wire_faults: dict[str, WireFault] = {}

    @classmethod
    def from_params(cls, doc: Optional[dict]) -> Optional["FaultPlan"]:
        spec = FaultSpec.from_params(doc)
        return cls(spec) if spec.enabled else None

    # -- component hooks ---------------------------------------------------------
    def wire_fault(self, wire_name: str) -> Optional[WireFault]:
        """The injector for ``wire_name`` (``None``: wire stays ideal)."""
        if not self.spec.link_faults or not fnmatch(wire_name, self.spec.wires):
            return None
        wf = self._wire_faults.get(wire_name)
        if wf is None:
            wf = WireFault(self.spec, wire_name)
            self._wire_faults[wire_name] = wf
        return wf

    def switch_buffer(self, buffer_bytes: float) -> float:
        """Apply forced buffer pressure to a switch port budget."""
        return buffer_bytes * self.spec.switch_buffer_scale

    def rx_ring_depth(self, depth: int) -> int:
        """Apply RX descriptor-ring pressure to a NIC."""
        return max(1, int(depth * self.spec.rx_ring_scale))

    def config_attempt_fails(self, card_name: str, attempt: int) -> bool:
        """Does bitstream-load ``attempt`` (0-based) on ``card_name`` fail?

        Drawn from a stream derived per ``(card, attempt)``, so retrying
        a failed load is a fresh, reproducible draw — not a replay.
        """
        rate = self.spec.config_failure_rate
        if rate <= 0:
            return False
        rng = np.random.default_rng(
            derive_seed(self.spec.seed, "fpga", card_name, attempt)
        )
        return bool(rng.random() < rate)

    # -- aggregation -------------------------------------------------------------
    def link_counters(self) -> dict[str, float | int]:
        """Cluster-wide link-fault totals (JSON-safe)."""
        return {
            "frames_dropped": sum(
                w.frames_dropped for w in self._wire_faults.values()
            ),
            "frames_corrupted": sum(
                w.frames_corrupted for w in self._wire_faults.values()
            ),
            "bytes_dropped": float(
                sum(w.bytes_dropped for w in self._wire_faults.values())
            ),
        }

    def schedule(self) -> dict[str, list[tuple[float, str, int]]]:
        """The realized fault schedule: per-wire decision logs.

        Two runs of the same scenario must produce identical schedules —
        the determinism regression test compares these verbatim.
        """
        return {name: list(w.log) for name, w in sorted(self._wire_faults.items())}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultPlan seed={self.spec.seed} {len(self._wire_faults)} wires>"
