"""Config-normalization helpers: renamed kwargs + JSON round-trips.

The protocol/fault configs (:class:`~repro.protocols.inicproto.INICProtoConfig`,
:class:`~repro.protocols.raw.RawConfig`,
:class:`~repro.net.batching.BatchPolicy`, :class:`~repro.faults.FaultSpec`)
share field conventions — ``max_retries``, ``timeout``, ``seed`` — and a
``to_json``/``from_json`` round-trip.  This module provides the plumbing:

* :func:`renamed_kwargs` — a class decorator that keeps old constructor
  kwarg names working for one release, emitting ``DeprecationWarning``
  (the repo's own callers treat that as an error, see pyproject.toml);
* :func:`config_to_json` / :func:`config_from_json` — recursive
  dataclass <-> plain-JSON-dict conversion with unknown-key rejection.

:class:`~repro.errors.ConfigError` (re-exported here) roots the error
family: domain-specific config errors such as
:class:`~repro.errors.FaultConfigError` subclass it, so unknown-key
rejection is catchable uniformly.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Any, Type, TypeVar

from .errors import ConfigError

__all__ = [
    "ConfigError",
    "renamed_kwargs",
    "config_to_json",
    "config_from_json",
]

T = TypeVar("T")


def renamed_kwargs(**old_to_new: str):
    """Class decorator: accept deprecated constructor kwarg names.

    ``@renamed_kwargs(nack_timeout="timeout")`` lets callers keep
    passing ``nack_timeout=`` for one release; the value is forwarded to
    ``timeout`` with a :class:`DeprecationWarning`.  Passing both names
    raises ``TypeError``.  Works on frozen dataclasses — only
    ``__init__`` is wrapped.
    """

    def decorate(cls):
        original_init = cls.__init__

        def __init__(self, *args, **kwargs):
            for old, new in old_to_new.items():
                if old in kwargs:
                    if new in kwargs:
                        raise TypeError(
                            f"{cls.__name__}: got both {old!r} (deprecated) "
                            f"and {new!r}"
                        )
                    warnings.warn(
                        f"{cls.__name__}({old}=...) is deprecated; "
                        f"use {new}=...",
                        DeprecationWarning,
                        stacklevel=2,
                    )
                    kwargs[new] = kwargs.pop(old)
            original_init(self, *args, **kwargs)

        __init__.__wrapped__ = original_init
        cls.__init__ = __init__
        return cls

    return decorate


def _encode(value: Any) -> Any:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _encode(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, tuple):
        return [_encode(v) for v in value]
    if isinstance(value, (list, dict, str, int, float, bool)) or value is None:
        return value
    raise ConfigError(f"cannot JSON-encode config value {value!r}")


def config_to_json(obj: Any) -> dict[str, Any]:
    """A dataclass config as a plain JSON-safe dict (recursive)."""
    if not dataclasses.is_dataclass(obj) or isinstance(obj, type):
        raise ConfigError(f"config_to_json needs a dataclass instance, got {obj!r}")
    return _encode(obj)


def config_from_json(cls: Type[T], doc: dict[str, Any]) -> T:
    """Rebuild a dataclass config from :func:`config_to_json` output.

    Unknown keys are rejected (catching typos and stale documents);
    nested dataclass fields are rebuilt recursively; lists are restored
    to tuples where the field was a tuple.
    """
    if not isinstance(doc, dict):
        raise ConfigError(f"{cls.__name__}: config document must be a dict")
    known = {f.name: f for f in dataclasses.fields(cls)}
    unknown = set(doc) - set(known)
    if unknown:
        raise ConfigError(f"{cls.__name__}: unknown config fields {sorted(unknown)}")
    kwargs: dict[str, Any] = {}
    for name, value in doc.items():
        f = known[name]
        if isinstance(value, dict):
            # Nested dataclass: infer the class from the field's default
            # (the configs here always default their nested policies).
            nested = None
            if f.default is not dataclasses.MISSING and dataclasses.is_dataclass(
                f.default
            ):
                nested = type(f.default)
            elif f.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
                probe = f.default_factory()  # type: ignore[misc]
                if dataclasses.is_dataclass(probe):
                    nested = type(probe)
            if nested is not None:
                value = config_from_json(nested, value)
        elif isinstance(value, list) and isinstance(f.default, tuple):
            value = tuple(tuple(v) if isinstance(v, list) else v for v in value)
        kwargs[name] = value
    return cls(**kwargs)
