"""Raw Ethernet datagram transport.

Thin framing directly on Ethernet — no connection state, no ACKs, no
congestion control.  Messages are segmented into MTU frames (optionally
quantum-batched) and reassembled by byte count at the receiver.

Used as:

* the host-driven "protocol-processor-less" comparison point in
  protocol ablation benches, and
* the building block for the INIC's application-specific protocol
  (Section 4.1: "INICs can use an application specific protocol ...
  the protocol needs minimal acknowledgement information"), which adds
  known-size transfer plans and coarse credits on top.

Reliability note: delivery is only guaranteed while in-flight data fits
the switch buffers — the transfer-plan property the INIC protocol
enforces by construction.  By default the stack only *detects* (and
counts) losses via byte accounting.  With ``RawConfig.reliable`` the
stack adds a minimal recovery layer for fault-injection scenarios
(:mod:`repro.faults`): receivers ACK completed messages and NACK
detected holes, senders retransmit missing bytes with exponential
backoff, and a sender whose retry budget runs out fails its send event
with :class:`~repro.errors.TransferAborted`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Optional

from ..config import config_from_json, config_to_json, renamed_kwargs
from ..errors import ProtocolError, TransferAborted
from ..hw.cpu import CPU
from ..net.addresses import MacAddress
from ..net.batching import BatchPolicy, DEFAULT_BATCH, adaptive_quantum
from ..net.nic import StandardNIC
from ..net.packet import ETHERNET_MTU, Frame, wire_bytes
from ..sim.engine import Event, Simulator
from .base import Mailbox, MessageView, choose_quantum, next_message_id

__all__ = ["RawConfig", "RawEthernetStack"]


@renamed_kwargs(retransmit_timeout="timeout")
@dataclass(frozen=True)
class RawConfig:
    """Tunables for the raw datagram stack.

    Field naming follows the repo-wide convention (``max_retries`` /
    ``timeout`` / ``retry_backoff``, shared with
    :class:`~repro.protocols.inicproto.INICProtoConfig`); the
    pre-normalization ``retransmit_timeout`` kwarg is still accepted
    with a deprecation warning.
    """

    mtu: int = ETHERNET_MTU
    headers: int = 8  # minimal type/length/msg-id header
    send_cost_per_frame: float = 1.0e-6  # host cost; 0 when driven by an INIC
    recv_cost_per_frame: float = 1.0e-6
    quantum_target_events: int = 48
    max_quantum: int = 32
    #: adaptive frame-train batching: with no windowing to respect, raw
    #: datagram chunks grow to the policy's full timing-tolerance train.
    batch: BatchPolicy = DEFAULT_BATCH
    #: loss recovery: with ``reliable`` the send event completes on the
    #: receiver's ACK (not on queueing) and lost bytes are retransmitted;
    #: off by default so ideal-fabric runs stay bit-identical.
    reliable: bool = False
    #: seconds without an ACK before the sender's first full retransmit
    timeout: float = 0.005
    #: multiplier on ``timeout`` between attempts
    retry_backoff: float = 2.0
    #: retransmit attempts before a send fails with ``TransferAborted``
    max_retries: int = 4

    def __post_init__(self) -> None:
        if self.mtu < 1 or self.headers < 0:
            raise ProtocolError("invalid raw framing configuration")
        if self.timeout <= 0 or self.retry_backoff < 1.0:
            raise ProtocolError("invalid raw retransmit timing")
        if self.max_retries < 0:
            raise ProtocolError("max_retries must be >= 0")

    @property
    def retransmit_timeout(self) -> float:
        """Deprecated alias for :attr:`timeout`."""
        warnings.warn(
            "RawConfig.retransmit_timeout is deprecated; use .timeout",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.timeout

    def to_json(self) -> dict:
        """JSON-safe dict (round-trips through :meth:`from_json`)."""
        return config_to_json(self)

    @classmethod
    def from_json(cls, doc: dict) -> "RawConfig":
        return config_from_json(cls, doc)


class RawEthernetStack:
    """Connectionless framing + reassembly over one NIC."""

    def __init__(
        self,
        sim: Simulator,
        nic: StandardNIC,
        cpu: Optional[CPU] = None,
        config: RawConfig = RawConfig(),
        name: str = "raw",
    ):
        self.sim = sim
        self.nic = nic
        self.cpu = cpu
        self.config = config
        self.name = name
        self.mailbox = Mailbox(sim, name=f"{name}.mbox")
        #: msg_id -> bytes received
        self._progress: dict[int, int] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.frames_sent = 0
        # -- reliable-mode state/counters (all zero when reliable=False) --
        #: msg_id -> (dst, payload, tag, total) retained to serve NACKs
        self._retained: dict[int, tuple[MacAddress, Any, int, int]] = {}
        #: msg_id -> the sender-side event an inbound ACK resolves
        self._pending_acks: dict[int, Event] = {}
        #: msg_ids fully delivered (dedup against duplicate retransmits)
        self._delivered_ids: set[int] = set()
        self.retransmits = 0
        self.retransmitted_bytes = 0.0
        self.acks_sent = 0
        self.acks_received = 0
        self.nacks_sent = 0
        self.nacks_received = 0
        self.transfer_aborts = 0
        nic.bind_receiver(self._on_frame)

    def register_telemetry(self, registry, prefix: str) -> None:
        """Register this stack's instruments under ``prefix``."""
        registry.counter(f"{prefix}.messages_sent", lambda: self.messages_sent)
        registry.counter(
            f"{prefix}.messages_delivered", lambda: self.messages_delivered
        )
        registry.counter(f"{prefix}.frames_sent", lambda: self.frames_sent)
        registry.counter(f"{prefix}.retransmits", lambda: self.retransmits)
        registry.counter(f"{prefix}.acks_sent", lambda: self.acks_sent)
        registry.counter(f"{prefix}.nacks_sent", lambda: self.nacks_sent)
        registry.counter(f"{prefix}.transfer_aborts", lambda: self.transfer_aborts)

    def send(
        self, dst: MacAddress, nbytes: int, payload: Any = None, tag: int = 0
    ) -> Event:
        """Send a message.

        Datagram mode (the default): the event fires when the last frame
        is *queued* on the wire — no delivery confirmation.  Reliable
        mode (``config.reliable``): the event fires on the receiver's
        ACK, and fails with :class:`~repro.errors.TransferAborted` once
        the retransmit budget is exhausted.
        """
        if nbytes < 1:
            raise ProtocolError(f"cannot send {nbytes} bytes")
        done = self.sim.event(name=f"{self.name}.sent")
        msg_id = next_message_id()
        if self.config.reliable:
            self._retained[msg_id] = (dst, payload, tag, nbytes)
            self.sim.process(
                self._send_reliable(dst, nbytes, payload, tag, msg_id, done),
                name=f"{self.name}.send",
            )
        else:
            self.sim.process(
                self._send_datagram(dst, nbytes, payload, tag, msg_id, done),
                name=f"{self.name}.send",
            )
        self.messages_sent += 1
        return done

    def _stream(self, dst, total, nbytes, payload, tag, msg_id):
        """Generator: emit ``nbytes`` worth of frames for message
        ``msg_id`` (``total`` is the message's full size — retransmits
        stream fewer bytes under the same accounting total)."""
        cfg = self.config
        n_frames = -(-nbytes // cfg.mtu)
        quantum = choose_quantum(n_frames, cfg.quantum_target_events, cfg.max_quantum)
        bw = self.nic.wire_bandwidth
        quantum = max(
            quantum,
            adaptive_quantum(
                n_frames,
                wire_bytes(cfg.mtu, cfg.headers) / bw if bw > 0 else 0.0,
                cfg.batch,
            ),
        )
        sent = 0
        while sent < nbytes:
            size = min(quantum * cfg.mtu, nbytes - sent)
            frames = -(-size // cfg.mtu)
            last = sent + size == nbytes
            if self.cpu is not None and cfg.send_cost_per_frame > 0:
                yield from self.cpu.busy(cfg.send_cost_per_frame * frames)
            frame = Frame(
                src=self.nic.address,
                dst=dst,
                payload_bytes=size,
                headers=cfg.headers,
                frame_count=frames,
                kind="raw",
                seq=sent,
                payload=payload if last else None,
                meta={"msg": msg_id, "tag": tag, "total": total, "last": last},
            )
            yield from self.nic.transmit(frame)
            self.frames_sent += frames
            sent += size

    def _send_datagram(self, dst, nbytes, payload, tag, msg_id, done):
        yield from self._stream(dst, nbytes, nbytes, payload, tag, msg_id)
        done.succeed(None)

    def _send_reliable(self, dst, nbytes, payload, tag, msg_id, done):
        cfg = self.config
        ack = self.sim.event(name=f"{self.name}.ack{msg_id}")
        self._pending_acks[msg_id] = ack
        yield from self._stream(dst, nbytes, nbytes, payload, tag, msg_id)
        attempt = 0
        while True:
            if ack.triggered:
                break
            deadline = cfg.timeout * cfg.retry_backoff ** attempt
            yield self.sim.any_of([ack, self.sim.timeout(deadline)])
            if ack.triggered:
                break
            if attempt >= cfg.max_retries:
                self.transfer_aborts += 1
                self._pending_acks.pop(msg_id, None)
                self._retained.pop(msg_id, None)
                done.fail(
                    TransferAborted(
                        f"{self.name}: message {msg_id} to {dst} unacknowledged "
                        f"after {attempt + 1} attempts ({nbytes} bytes)"
                    )
                )
                return
            # Timed out without an ACK: the tail (or the whole message,
            # or the ACK itself) was lost — resend everything.  NACK-driven
            # partial retransmits happen asynchronously in _on_nack.
            attempt += 1
            self.retransmits += 1
            self.retransmitted_bytes += nbytes
            yield from self._stream(dst, nbytes, nbytes, payload, tag, msg_id)
        self._pending_acks.pop(msg_id, None)
        self._retained.pop(msg_id, None)
        done.succeed(None)

    def recv(
        self, src: Optional[MacAddress] = None, tag: Optional[int] = None
    ) -> Event:
        return self.mailbox.recv(src, tag)

    def _on_frame(self, frame: Frame) -> None:
        if frame.kind == "raw-ack":
            self._on_ack(frame)
            return
        if frame.kind == "raw-nack":
            self._on_nack(frame)
            return
        if frame.kind != "raw":
            raise ProtocolError(f"raw stack got foreign frame kind {frame.kind!r}")
        cfg = self.config
        if self.cpu is not None and cfg.recv_cost_per_frame > 0:
            self.cpu.steal(cfg.recv_cost_per_frame * frame.frame_count)
        msg_id = frame.meta["msg"]
        if msg_id in self._delivered_ids:
            # Duplicate retransmit of an already-delivered message: our
            # ACK was lost, so re-ACK and drop the data.
            if frame.meta.get("last"):
                self._send_control(frame.src, "raw-ack", msg_id)
            return
        got = self._progress.get(msg_id, 0) + frame.payload_bytes
        if got >= frame.meta["total"]:
            self._progress.pop(msg_id, None)
            self.messages_delivered += 1
            if cfg.reliable:
                self._delivered_ids.add(msg_id)
                self._send_control(frame.src, "raw-ack", msg_id)
            self.mailbox.deliver(
                MessageView(
                    src=frame.src,
                    tag=frame.meta["tag"],
                    nbytes=frame.meta["total"],
                    payload=frame.payload,
                )
            )
        else:
            self._progress[msg_id] = got
            if cfg.reliable and frame.meta.get("last"):
                # The final frame arrived but earlier bytes are missing:
                # fast-path a NACK for the hole instead of waiting for
                # the sender's timeout.
                self.nacks_sent += 1
                self._send_control(
                    frame.src,
                    "raw-nack",
                    msg_id,
                    missing=frame.meta["total"] - got,
                )

    def _send_control(self, dst: MacAddress, kind: str, msg_id: int, **meta) -> None:
        """Queue a zero-payload ACK/NACK control frame (subject to the
        same fabric faults as data — loss is recovered by retry)."""
        if kind == "raw-ack":
            self.acks_sent += 1
        self.nic.transmit_nowait(
            Frame(
                src=self.nic.address,
                dst=dst,
                payload_bytes=0,
                headers=self.config.headers,
                kind=kind,
                meta={"msg": msg_id, **meta},
            )
        )

    def _on_ack(self, frame: Frame) -> None:
        self.acks_received += 1
        ack = self._pending_acks.get(frame.meta["msg"])
        if ack is not None and not ack.triggered:
            ack.succeed(None)

    def _on_nack(self, frame: Frame) -> None:
        self.nacks_received += 1
        msg_id = frame.meta["msg"]
        retained = self._retained.get(msg_id)
        if retained is None:
            return  # already ACKed (stale NACK) or unknown message
        dst, payload, tag, total = retained
        missing = min(frame.meta["missing"], total)
        if missing < 1:
            return
        self.retransmits += 1
        self.retransmitted_bytes += missing
        self.sim.process(
            self._stream(dst, total, missing, payload, tag, msg_id),
            name=f"{self.name}.rexmit",
        )

    def lost_messages(self) -> int:
        """Messages with missing bytes (only meaningful post-run)."""
        return len(self._progress)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RawEthernetStack {self.name!r} on {self.nic.name!r}>"
