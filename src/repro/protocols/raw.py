"""Raw Ethernet datagram transport.

Thin framing directly on Ethernet — no connection state, no ACKs, no
congestion control.  Messages are segmented into MTU frames (optionally
quantum-batched) and reassembled by byte count at the receiver.

Used as:

* the host-driven "protocol-processor-less" comparison point in
  protocol ablation benches, and
* the building block for the INIC's application-specific protocol
  (Section 4.1: "INICs can use an application specific protocol ...
  the protocol needs minimal acknowledgement information"), which adds
  known-size transfer plans and coarse credits on top.

Reliability note: delivery is only guaranteed while in-flight data fits
the switch buffers — the transfer-plan property the INIC protocol
enforces by construction.  The stack *detects* (and counts) losses via
byte accounting; it does not recover them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..errors import ProtocolError
from ..hw.cpu import CPU
from ..net.addresses import MacAddress
from ..net.batching import BatchPolicy, DEFAULT_BATCH, adaptive_quantum
from ..net.nic import StandardNIC
from ..net.packet import ETHERNET_MTU, Frame, wire_bytes
from ..sim.engine import Event, Simulator
from .base import Mailbox, MessageView, choose_quantum, next_message_id

__all__ = ["RawConfig", "RawEthernetStack"]


@dataclass(frozen=True)
class RawConfig:
    """Tunables for the raw datagram stack."""

    mtu: int = ETHERNET_MTU
    headers: int = 8  # minimal type/length/msg-id header
    send_cost_per_frame: float = 1.0e-6  # host cost; 0 when driven by an INIC
    recv_cost_per_frame: float = 1.0e-6
    quantum_target_events: int = 48
    max_quantum: int = 32
    #: adaptive frame-train batching: with no windowing to respect, raw
    #: datagram chunks grow to the policy's full timing-tolerance train.
    batch: BatchPolicy = DEFAULT_BATCH

    def __post_init__(self) -> None:
        if self.mtu < 1 or self.headers < 0:
            raise ProtocolError("invalid raw framing configuration")


class RawEthernetStack:
    """Connectionless framing + reassembly over one NIC."""

    def __init__(
        self,
        sim: Simulator,
        nic: StandardNIC,
        cpu: Optional[CPU] = None,
        config: RawConfig = RawConfig(),
        name: str = "raw",
    ):
        self.sim = sim
        self.nic = nic
        self.cpu = cpu
        self.config = config
        self.name = name
        self.mailbox = Mailbox(sim, name=f"{name}.mbox")
        #: msg_id -> bytes received
        self._progress: dict[int, int] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.frames_sent = 0
        nic.bind_receiver(self._on_frame)

    def send(
        self, dst: MacAddress, nbytes: int, payload: Any = None, tag: int = 0
    ) -> Event:
        """Send a message; the event fires when the last frame is *queued*
        on the wire (datagram semantics: no delivery confirmation)."""
        if nbytes < 1:
            raise ProtocolError(f"cannot send {nbytes} bytes")
        done = self.sim.event(name=f"{self.name}.sent")
        self.sim.process(
            self._send_proc(dst, nbytes, payload, tag, done),
            name=f"{self.name}.send",
        )
        self.messages_sent += 1
        return done

    def _send_proc(self, dst, nbytes, payload, tag, done):
        cfg = self.config
        msg_id = next_message_id()
        n_frames = -(-nbytes // cfg.mtu)
        quantum = choose_quantum(n_frames, cfg.quantum_target_events, cfg.max_quantum)
        bw = self.nic.wire_bandwidth
        quantum = max(
            quantum,
            adaptive_quantum(
                n_frames,
                wire_bytes(cfg.mtu, cfg.headers) / bw if bw > 0 else 0.0,
                cfg.batch,
            ),
        )
        sent = 0
        while sent < nbytes:
            size = min(quantum * cfg.mtu, nbytes - sent)
            frames = -(-size // cfg.mtu)
            last = sent + size == nbytes
            if self.cpu is not None and cfg.send_cost_per_frame > 0:
                yield from self.cpu.busy(cfg.send_cost_per_frame * frames)
            frame = Frame(
                src=self.nic.address,
                dst=dst,
                payload_bytes=size,
                headers=cfg.headers,
                frame_count=frames,
                kind="raw",
                seq=sent,
                payload=payload if last else None,
                meta={"msg": msg_id, "tag": tag, "total": nbytes, "last": last},
            )
            yield from self.nic.transmit(frame)
            self.frames_sent += frames
            sent += size
        done.succeed(None)

    def recv(
        self, src: Optional[MacAddress] = None, tag: Optional[int] = None
    ) -> Event:
        return self.mailbox.recv(src, tag)

    def _on_frame(self, frame: Frame) -> None:
        if frame.kind != "raw":
            raise ProtocolError(f"raw stack got foreign frame kind {frame.kind!r}")
        cfg = self.config
        if self.cpu is not None and cfg.recv_cost_per_frame > 0:
            self.cpu.steal(cfg.recv_cost_per_frame * frame.frame_count)
        msg_id = frame.meta["msg"]
        got = self._progress.get(msg_id, 0) + frame.payload_bytes
        if got == frame.meta["total"]:
            self._progress.pop(msg_id, None)
            self.messages_delivered += 1
            self.mailbox.deliver(
                MessageView(
                    src=frame.src,
                    tag=frame.meta["tag"],
                    nbytes=frame.meta["total"],
                    payload=frame.payload,
                )
            )
        else:
            self._progress[msg_id] = got

    def lost_messages(self) -> int:
        """Messages with missing bytes (only meaningful post-run)."""
        return len(self._progress)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RawEthernetStack {self.name!r} on {self.nic.name!r}>"
