"""Protocol stacks: TCP baseline, raw Ethernet, INIC custom protocol."""

from .base import Mailbox, MessageView, choose_quantum, next_message_id
from .inicproto import CreditGate, INICProtoConfig, TransferPlan
from .raw import RawConfig, RawEthernetStack
from .tcp import TCPConfig, TCPStack, TCPStats

__all__ = [
    "CreditGate",
    "INICProtoConfig",
    "Mailbox",
    "MessageView",
    "RawConfig",
    "RawEthernetStack",
    "TCPConfig",
    "TCPStack",
    "TCPStats",
    "TransferPlan",
    "choose_quantum",
    "next_message_id",
]
