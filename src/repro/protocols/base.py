"""Transport abstractions shared by all protocol stacks.

A *transport* moves application messages (byte counts plus optional
functional payload objects) between stations.  Three implementations:

* :class:`~repro.protocols.tcp.TCPStack` — the paper's Gigabit/Fast
  Ethernet baseline (host TCP/IP),
* :class:`~repro.protocols.raw.RawEthernetStack` — thin datagrams with
  message reassembly, no reliability (substrate for custom protocols),
* the INIC's on-card protocol (:mod:`repro.protocols.inicproto`).

Received messages land in a :class:`Mailbox` supporting blocking,
selectively matched receives — the foundation for the SimMPI layer.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

from ..errors import ProtocolError
from ..net.addresses import MacAddress
from ..sim.engine import Event, Simulator

__all__ = ["MessageView", "Mailbox", "next_message_id", "choose_quantum"]

_message_ids = [0]


def next_message_id() -> int:
    """Globally unique application-message id (for frame tagging)."""
    _message_ids[0] += 1
    return _message_ids[0]


@dataclass
class MessageView:
    """A delivered application message."""

    src: MacAddress
    tag: int
    nbytes: int
    payload: Any = None
    meta: dict[str, Any] = field(default_factory=dict)


class Mailbox:
    """Tag/source-matched blocking receive queue.

    ``recv(src, tag)`` matches the oldest message whose source and tag
    agree with the non-``None`` criteria (MPI-style wildcards).
    """

    def __init__(self, sim: Simulator, name: str = "mailbox"):
        self.sim = sim
        self.name = name
        self._messages: deque[MessageView] = deque()
        self._waiters: deque[tuple[Optional[MacAddress], Optional[int], Event]] = deque()
        self._poison: deque[tuple[Optional[MacAddress], Optional[int], BaseException]] = deque()

    def deliver(self, message: MessageView) -> None:
        """Called by a transport when a message completes reassembly."""
        for i, (src, tag, ev) in enumerate(self._waiters):
            if self._matches(message, src, tag):
                del self._waiters[i]
                ev.succeed(message)
                return
        self._messages.append(message)

    @staticmethod
    def _matches(
        m: MessageView, src: Optional[MacAddress], tag: Optional[int]
    ) -> bool:
        return (src is None or m.src == src) and (tag is None or m.tag == tag)

    def fail(
        self,
        src: Optional[MacAddress],
        tag: Optional[int],
        exc: BaseException,
    ) -> None:
        """Fail a matching waiter with ``exc`` (or poison the next
        matching ``recv``): a transport reporting that the message this
        receive is blocked on will never arrive."""
        for i, (wsrc, wtag, ev) in enumerate(self._waiters):
            if self._criteria_overlap(wsrc, wtag, src, tag):
                del self._waiters[i]
                ev.fail(exc)
                return
        self._poison.append((src, tag, exc))

    @staticmethod
    def _criteria_overlap(
        a_src: Optional[MacAddress],
        a_tag: Optional[int],
        b_src: Optional[MacAddress],
        b_tag: Optional[int],
    ) -> bool:
        return (a_src is None or b_src is None or a_src == b_src) and (
            a_tag is None or b_tag is None or a_tag == b_tag
        )

    def recv(
        self, src: Optional[MacAddress] = None, tag: Optional[int] = None
    ) -> Event:
        """Event that fires with the next matching :class:`MessageView`."""
        for i, (psrc, ptag, exc) in enumerate(self._poison):
            if self._criteria_overlap(src, tag, psrc, ptag):
                del self._poison[i]
                ev = self.sim.event(name=f"{self.name}.recv")
                ev.fail(exc)
                return ev
        for i, m in enumerate(self._messages):
            if self._matches(m, src, tag):
                del self._messages[i]
                ev = self.sim.event(name=f"{self.name}.recv")
                ev.succeed(m)
                return ev
        ev = self.sim.event(name=f"{self.name}.recv")
        self._waiters.append((src, tag, ev))
        return ev

    def pending(self) -> int:
        return len(self._messages)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Mailbox {self.name!r} {len(self._messages)} queued, "
            f"{len(self._waiters)} waiting>"
        )


def choose_quantum(
    total_units: int, target_events: int = 64, max_quantum: int = 64
) -> int:
    """Pick a frame-batching quantum (DESIGN.md §7, CHUNK fidelity).

    Returns how many physical frames to batch per simulation event so a
    transfer of ``total_units`` frames costs about ``target_events``
    events, capped at ``max_quantum`` to keep windowing math honest.
    """
    if total_units < 0:
        raise ProtocolError(f"negative unit count {total_units}")
    if target_events < 1 or max_quantum < 1:
        raise ProtocolError("target_events and max_quantum must be >= 1")
    if total_units <= target_events:
        return 1
    return min(max_quantum, -(-total_units // target_events))
