"""The INIC's application-specific protocol (policy layer).

Section 4.1: "INICs can use an application specific protocol ... there
should be no packet loss as the total amount of data put into the
network never exceeds the total size of the network buffers (combined
NIC and switch buffers).  The protocol also has the advantage of knowing
exactly how much data to expect; hence, the protocol needs minimal
acknowledgement information."

Three pieces implement that:

* :class:`INICProtoConfig` — framing parameters.  The paper picks a
  1024-byte packet (Section 4.2): small packets are fine because the
  INIC pays no per-packet interrupt or host-CPU cost.
* :class:`TransferPlan` — per-peer expected byte counts for one
  collective phase (each node "knows exactly how much data will be sent
  to and received from every other node", Section 3.1.2).  Completion is
  detected by byte accounting, not ACKs.
* :class:`CreditGate` — conservative in-flight budget that enforces the
  no-loss invariant: a sender never has more unacknowledged-by-arrival
  bytes in the fabric than its share of the switch buffers.  Credits are
  returned by time (the known drain rate), not by ACK packets — this is
  the "minimal acknowledgement information" property.

The data movement itself is done by the INIC card
(:mod:`repro.inic.card`), which consumes these policies.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Optional

from ..config import config_from_json, config_to_json, renamed_kwargs
from ..errors import ProtocolError
from ..net.addresses import MacAddress
from ..net.batching import BatchPolicy, DEFAULT_BATCH
from ..sim.engine import Event, Simulator
from ..sim.resources import Container

__all__ = ["INICProtoConfig", "TransferPlan", "CreditGate"]


@renamed_kwargs(nack_timeout="timeout")
@dataclass(frozen=True)
class INICProtoConfig:
    """Framing for the custom on-card protocol.

    Field naming follows the repo-wide convention (``max_retries`` /
    ``timeout`` / ``retry_backoff``, shared with
    :class:`~repro.protocols.raw.RawConfig`); the pre-normalization
    ``nack_timeout`` kwarg is still accepted with a deprecation warning.
    """

    packet_size: int = 1024  # paper, Section 4.2
    headers: int = 8  # built directly on Ethernet; minimal header
    quantum_target_events: int = 48
    max_quantum: int = 64
    #: adaptive packet-train batching: the card's chunk quantum grows to
    #: the largest train whose serialization fits the policy's timing
    #: tolerance (the flow window still caps each chunk at window/4).
    batch: BatchPolicy = field(default_factory=lambda: DEFAULT_BATCH)
    #: loss recovery: NACK/retransmit rounds per gather before the
    #: operation aborts with :class:`~repro.errors.TransferAborted`.
    #: ``0`` keeps the paper's pure no-loss protocol (a stalled plan
    #: fails loudly instead of recovering) — the default, so ideal-fabric
    #: runs stay bit-identical.
    max_retries: int = 0
    #: seconds of zero gather progress before the first NACK round
    timeout: float = 0.005
    #: multiplier on ``timeout`` between successive rounds
    retry_backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.packet_size < 1 or self.headers < 0:
            raise ProtocolError("invalid INIC protocol framing")
        if self.max_retries < 0:
            raise ProtocolError("max_retries must be >= 0")
        if self.timeout <= 0 or self.retry_backoff < 1.0:
            raise ProtocolError("invalid recovery timing parameters")

    @property
    def nack_timeout(self) -> float:
        """Deprecated alias for :attr:`timeout`."""
        warnings.warn(
            "INICProtoConfig.nack_timeout is deprecated; use .timeout",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.timeout

    def to_json(self) -> dict:
        """JSON-safe dict (round-trips through :meth:`from_json`)."""
        return config_to_json(self)

    @classmethod
    def from_json(cls, doc: dict) -> "INICProtoConfig":
        return config_from_json(cls, doc)


class TransferPlan:
    """Expected receive volume per peer for one communication phase.

    With ``tolerate_surplus`` (set by recovery-enabled cards) a peer may
    deliver more than its expected bytes — a retransmission racing a
    late original — and the excess is clamped and counted instead of
    treated as a protocol violation.
    """

    def __init__(
        self,
        sim: Simulator,
        expected: dict[int, int],
        name: str = "plan",
        tolerate_surplus: bool = False,
    ):
        for peer, nbytes in expected.items():
            if nbytes < 0:
                raise ProtocolError(f"negative expected bytes from peer {peer}")
        self.sim = sim
        self.name = name
        self.expected = dict(expected)
        self.received = {peer: 0 for peer in expected}
        self.tolerate_surplus = tolerate_surplus
        self.surplus_bytes = 0
        self._complete = sim.event(name=f"{name}.complete")
        self._check_done()

    @property
    def complete(self) -> Event:
        """Fires when every peer's expected bytes have arrived."""
        return self._complete

    def total_expected(self) -> int:
        return sum(self.expected.values())

    def total_received(self) -> int:
        return self._total_received

    def account(self, src: MacAddress, nbytes: int) -> None:
        """Record ``nbytes`` arriving from ``src``.

        Accounting is O(1): a pending-peer counter and a running received
        total replace the all-peers scan — ``account`` sits on the
        per-chunk hot path, so at 1024 nodes the scan was O(p) work per
        chunk (O(p^3) per alltoall phase).
        """
        peer = src.value
        exp = self.expected.get(peer)
        if exp is None:
            raise ProtocolError(f"{self.name}: unexpected sender {src}")
        prev = self.received[peer]
        new = prev + nbytes
        if new > exp:
            if not self.tolerate_surplus:
                raise ProtocolError(
                    f"{self.name}: peer {peer} overflowed plan "
                    f"({new} > {exp})"
                )
            self.surplus_bytes += new - exp
            new = exp
        self.received[peer] = new
        self._total_received += new - prev
        if prev < exp <= new:
            self._pending -= 1
            if self._pending == 0 and not self._complete.triggered:
                self._complete.succeed(dict(self.received))

    def missing_by_peer(self) -> dict[int, int]:
        """Byte ranges still owed, per incomplete peer — what a recovery
        round asks each sender to re-issue."""
        return {
            peer: self.expected[peer] - self.received[peer]
            for peer in self.expected
            if self.received[peer] < self.expected[peer]
        }

    def _check_done(self) -> None:
        """Rebuild the O(1) accounting state from the dicts (init path)."""
        self._pending = sum(
            1 for p, e in self.expected.items() if self.received[p] < e
        )
        self._total_received = sum(self.received.values())
        if self._pending == 0 and not self._complete.triggered:
            self._complete.succeed(dict(self.received))


class CreditGate:
    """Bounded in-flight bytes toward the fabric (loss avoidance).

    ``acquire(n)`` blocks until ``n`` bytes of budget are free; credits
    return automatically after ``drain_time(n)`` — the deterministic time
    for those bytes to leave the slowest queue in the path — so no
    credit-return packets are needed.
    """

    def __init__(
        self,
        sim: Simulator,
        budget_bytes: float,
        drain_rate: float,
        name: str = "credits",
    ):
        if budget_bytes <= 0:
            raise ProtocolError("credit budget must be > 0")
        if drain_rate <= 0:
            raise ProtocolError("credit drain rate must be > 0")
        self.sim = sim
        self.drain_rate = float(drain_rate)
        self.name = name
        self._pool = Container(
            sim, capacity=budget_bytes, init=budget_bytes, name=f"{name}.pool"
        )

    @property
    def available(self) -> float:
        return self._pool.level

    def acquire(self, nbytes: float):
        """Generator: take ``nbytes`` of budget (blocks until free) and
        schedule its automatic return."""
        if nbytes <= 0:
            raise ProtocolError(f"credit acquire of {nbytes}")
        yield self._pool.get(nbytes)
        delay = nbytes / self.drain_rate
        self.sim.schedule_callback(
            delay, lambda: self._pool.put(nbytes), name=f"{self.name}.return"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CreditGate {self.name!r} {self._pool.level:g} free>"
