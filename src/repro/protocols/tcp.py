"""Simplified packet-level TCP.

This is the paper's baseline transport (FFTW and the parallel sort run
over MPI-on-TCP in Section 6), modelled with exactly the pathologies
Section 4.1 blames for the Gigabit NIC's poor scaling:

* **slow start** — each flow ramps its congestion window from
  ``init_cwnd`` segments, so short messages (small partitions at high P)
  never reach line rate; after an idle period the window restarts;
* **ACK clocking through interrupt mitigation** — ACKs are real frames
  that traverse the switch and the receiver's coalescing NIC, so the
  mitigation delay is added to every window-growth round trip ("it
  interacts poorly with TCP slow-start for short messages");
* **per-segment host CPU cost** — send and receive path processing steals
  CPU from the application (the INIC eliminates this);
* **go-back-N loss recovery** — switch buffer overruns cost a
  retransmission timeout and a window collapse.

Segments may be batched ``quantum`` physical frames per simulation event
(CHUNK fidelity); window arithmetic stays segment-accurate because frame
boundaries are deterministic (chunks are laid out from each message's
start), so retransmissions reproduce identical frames.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Optional

from ..errors import ProtocolError
from ..hw.cpu import CPU
from ..net.addresses import MacAddress
from ..net.batching import BatchPolicy, DEFAULT_BATCH, adaptive_quantum
from ..net.nic import StandardNIC
from ..net.packet import ETHERNET_MTU, IP_TCP_HEADERS, Frame, wire_bytes
from ..sim.engine import Event, Simulator
from .base import Mailbox, MessageView, choose_quantum, next_message_id

__all__ = ["TCPConfig", "TCPStack", "TCPStats"]


@dataclass(frozen=True)
class TCPConfig:
    """Tunables for the TCP model (2001-era Linux-ish defaults)."""

    mss: int = ETHERNET_MTU - IP_TCP_HEADERS  # 1460 payload bytes/segment
    init_cwnd: int = 2  # segments (RFC 2581)
    init_ssthresh: int = 64  # segments
    rwnd: int = 128 * 1024  # receiver window, bytes (caps the flight)
    rto: float = 0.2  # retransmission timeout, seconds
    idle_restart: bool = True  # RFC 2861: collapse cwnd after idle
    per_message_cost: float = 30e-6  # syscall + stack entry per send()
    send_cost_per_segment: float = 4.0e-6  # host TX path CPU (copy+checksum)
    recv_cost_per_segment: float = 4.0e-6  # host RX path CPU (above NIC irq)
    ack_cost: float = 1.0e-6  # generating/processing an ACK
    quantum_target_events: int = 48  # CHUNK fidelity: events per message
    # Quantum batching adds store-and-forward latency per pipeline stage,
    # which inflates the RTT that cwnd must cover; 16 frames (~23 KiB) keeps
    # that artifact below the real window dynamics.
    max_quantum: int = 16
    #: adaptive segment-train batching on top of the static quantum: the
    #: sender may grow a chunk to the largest train within the policy's
    #: timing tolerance, but never past a quarter of the effective window
    #: (so the flight always holds >= 4 chunks and stays ACK-clocked).
    batch: BatchPolicy = DEFAULT_BATCH

    def __post_init__(self) -> None:
        if self.mss < 1 or self.init_cwnd < 1 or self.init_ssthresh < 1:
            raise ProtocolError("invalid TCP window configuration")
        if self.rto <= 0 or self.rwnd < self.mss:
            raise ProtocolError("invalid TCP timer/window configuration")


class TCPStats:
    def __init__(self) -> None:
        self.messages_sent = 0
        self.messages_delivered = 0
        self.data_frames_sent = 0
        self.acks_sent = 0
        self.timeouts = 0
        self.fast_retransmits = 0
        self.retransmitted_frames = 0
        self.bytes_sent = 0.0
        self.bytes_delivered = 0.0


class _OutMsg:
    __slots__ = ("start", "nbytes", "tag", "payload", "done", "msg_id", "quantum")

    def __init__(self, start, nbytes, tag, payload, done, msg_id, quantum):
        self.start = start
        self.nbytes = nbytes
        self.tag = tag
        self.payload = payload
        self.done = done
        self.msg_id = msg_id
        self.quantum = quantum

    @property
    def end(self) -> int:
        return self.start + self.nbytes


class _SendConn:
    """Per-destination sender state."""

    def __init__(self, stack: "TCPStack", remote: MacAddress):
        self.stack = stack
        self.remote = remote
        cfg = stack.config
        self.snd_una = 0  # oldest unacknowledged byte
        self.snd_nxt = 0  # next byte to send
        self.stream_end = 0  # end of enqueued data
        self.cwnd = float(cfg.init_cwnd)  # segments
        self.ssthresh = float(cfg.init_ssthresh)
        self._dup_acks = 0
        self._recover = 0  # NewReno-style: no second fast retransmit
        # until the flight outstanding at loss time is acknowledged
        self.window_msgs: deque[_OutMsg] = deque()
        self.last_progress = stack.sim.now
        self.last_activity = stack.sim.now
        self._send_wakeup: Optional[Event] = None
        self._window_wakeup: Optional[Event] = None
        self._timer_wakeup: Optional[Event] = None
        stack.sim.process(self._sender(), name=f"tcp.snd.{remote}")
        stack.sim.process(self._timer(), name=f"tcp.rtx.{remote}")

    # -- window helpers ------------------------------------------------------------
    @property
    def flight(self) -> int:
        return self.snd_nxt - self.snd_una

    def effective_window(self) -> int:
        cfg = self.stack.config
        return min(int(self.cwnd) * cfg.mss, cfg.rwnd)

    def _wake(self, attr: str) -> None:
        ev: Optional[Event] = getattr(self, attr)
        if ev is not None:
            setattr(self, attr, None)
            ev.succeed(None)

    # -- enqueue -------------------------------------------------------------------
    def enqueue(self, nbytes: int, tag: int, payload: Any) -> Event:
        sim = self.stack.sim
        cfg = self.stack.config
        if cfg.idle_restart and self.flight == 0:
            if sim.now - self.last_activity > cfg.rto:
                self.cwnd = float(cfg.init_cwnd)
        done = sim.event(name="tcp.msg.done")
        segments = -(-nbytes // cfg.mss)
        quantum = choose_quantum(
            segments, cfg.quantum_target_events, cfg.max_quantum
        )
        msg = _OutMsg(
            self.stream_end, nbytes, tag, payload, done, next_message_id(), quantum
        )
        self.stream_end += nbytes
        self.window_msgs.append(msg)
        self.stack.stats.messages_sent += 1
        self._wake("_send_wakeup")
        return done

    # -- frame construction -----------------------------------------------------------
    def _msg_at(self, seq: int) -> _OutMsg:
        for m in self.window_msgs:
            if m.start <= seq < m.end:
                return m
        raise ProtocolError(f"no message covering seq {seq}")

    def _build_frame(self, seq: int, size: int) -> Frame:
        cfg = self.stack.config
        msg = self._msg_at(seq)
        offset = seq - msg.start
        nframes = -(-size // cfg.mss)
        last = seq + size == msg.end
        return Frame(
            src=self.stack.nic.address,
            dst=self.remote,
            payload_bytes=size,
            headers=IP_TCP_HEADERS,
            frame_count=nframes,
            kind="tcp",
            seq=seq,
            payload=msg.payload if last else None,
            meta={
                "msg": msg.msg_id,
                "tag": msg.tag,
                "total": msg.nbytes,
                "offset": offset,
                "last": last,
                # ACK-clocked traffic must not be merged in the fabric:
                # per-hop train delay compounds through the feedback loop
                # (delayed delivery -> delayed ACK -> delayed window
                # growth).  TCP batches at the source instead, via the
                # chunk quantum above.
                "no_merge": True,
            },
        )

    # -- sender process ----------------------------------------------------------------
    def _sender(self):
        sim = self.stack.sim
        cpu = self.stack.cpu
        cfg = self.stack.config
        while True:
            if self.snd_nxt >= self.stream_end:
                ev = sim.event(name="tcp.snd.wakeup")
                self._send_wakeup = ev
                yield ev
                continue
            msg = self._msg_at(self.snd_nxt)
            if self.snd_nxt == msg.start and cpu is not None:
                # Per-send() syscall/stack-entry cost at message start.
                yield from cpu.busy(cfg.per_message_cost)
            # Send whatever the window currently allows (at least one
            # segment), up to a quantum — partial chunks keep the pipe
            # ACK-clocked instead of degenerating to stop-and-wait.
            while self.effective_window() - self.flight < cfg.mss:
                ev = sim.event(name="tcp.snd.window")
                self._window_wakeup = ev
                yield ev
            window_free = self.effective_window() - self.flight
            quantum = msg.quantum
            if cfg.batch.enabled:
                # Grow the chunk to the largest segment train the timing
                # tolerance allows, but keep >= 4 chunks per window so the
                # flight stays ACK-clocked (never stop-and-wait).
                bw = self.stack.nic.wire_bandwidth
                remaining = -(-(msg.end - self.snd_nxt) // cfg.mss)
                q_tol = adaptive_quantum(
                    remaining,
                    wire_bytes(cfg.mss, IP_TCP_HEADERS) / bw if bw > 0 else 0.0,
                    cfg.batch,
                )
                q_win = max(1, self.effective_window() // (4 * cfg.mss))
                quantum = max(quantum, min(q_tol, q_win))
            chunk = min(
                quantum * cfg.mss, msg.end - self.snd_nxt, window_free
            )
            frame = self._build_frame(self.snd_nxt, chunk)
            if cpu is not None:
                yield from cpu.busy(cfg.send_cost_per_segment * frame.frame_count)
            was_idle = self.flight == 0
            self.snd_nxt += frame.payload_bytes
            self.last_activity = sim.now
            if was_idle:
                self.last_progress = sim.now
                self._wake("_timer_wakeup")
            yield from self.stack.nic.transmit(frame)
            self.stack.stats.data_frames_sent += frame.frame_count
            self.stack.stats.bytes_sent += frame.payload_bytes

    # -- ACK handling ---------------------------------------------------------------------
    def on_ack(self, ack: int) -> None:
        cfg = self.stack.config
        if ack <= self.snd_una:
            # Duplicate ACK: the receiver saw a gap.  After three, do a
            # fast retransmit (go back to snd_una, halve the window).
            self._dup_acks += 1
            if self._dup_acks >= 3 and self.flight > 0 and self.snd_una >= self._recover:
                self._recover = self.snd_nxt
                self._dup_acks = 0
                self.stack.stats.fast_retransmits += 1
                flight_segments = max(self.flight / cfg.mss, 2.0)
                self.ssthresh = max(flight_segments / 2.0, 2.0)
                self.cwnd = self.ssthresh
                lost = self.snd_nxt - self.snd_una
                self.snd_nxt = self.snd_una
                self.stack.stats.retransmitted_frames += -(-lost // cfg.mss)
                self.last_progress = self.stack.sim.now
                self._wake("_window_wakeup")
                self._wake("_send_wakeup")
            return
        self._dup_acks = 0
        acked = ack - self.snd_una
        self.snd_una = ack
        if self.snd_nxt < self.snd_una:
            # A retransmission raced a late cumulative ACK: fast-forward.
            self.snd_nxt = self.snd_una
        self.last_progress = self.stack.sim.now
        self.last_activity = self.stack.sim.now
        # Window growth, per acked segment.
        acked_segments = acked / cfg.mss
        if self.cwnd < self.ssthresh:
            self.cwnd += acked_segments  # slow start
        else:
            self.cwnd += acked_segments / max(self.cwnd, 1.0)  # AIMD
        # Complete fully acknowledged messages.
        while self.window_msgs and self.window_msgs[0].end <= self.snd_una:
            msg = self.window_msgs.popleft()
            msg.done.succeed(None)
        self._wake("_window_wakeup")

    # -- retransmission timer ----------------------------------------------------------------
    def _timer(self):
        sim = self.stack.sim
        cfg = self.stack.config
        while True:
            if self.flight == 0:
                ev = sim.event(name="tcp.timer.arm")
                self._timer_wakeup = ev
                yield ev
                continue
            deadline = self.last_progress + cfg.rto
            if sim.now < deadline:
                yield sim.timeout(deadline - sim.now)
                continue
            # Timeout: go-back-N and collapse the window.
            self.stack.stats.timeouts += 1
            flight_segments = max(self.flight / cfg.mss, 1.0)
            self.ssthresh = max(flight_segments / 2.0, 2.0)
            self.cwnd = float(cfg.init_cwnd)
            lost = self.snd_nxt - self.snd_una
            self.snd_nxt = self.snd_una
            self.stack.stats.retransmitted_frames += -(-lost // cfg.mss)
            self.last_progress = sim.now
            self._wake("_window_wakeup")
            self._wake("_send_wakeup")


class _RecvState:
    """Per-source receiver state (go-back-N: in-order only)."""

    __slots__ = ("rcv_nxt", "msg_progress")

    def __init__(self) -> None:
        self.rcv_nxt = 0
        #: msg_id -> bytes received so far
        self.msg_progress: dict[int, int] = {}


class TCPStack:
    """Host TCP bound to one NIC + CPU."""

    def __init__(
        self,
        sim: Simulator,
        nic: StandardNIC,
        cpu: Optional[CPU] = None,
        config: TCPConfig = TCPConfig(),
        name: str = "tcp",
    ):
        self.sim = sim
        self.nic = nic
        self.cpu = cpu
        self.config = config
        self.name = name
        self.stats = TCPStats()
        self.mailbox = Mailbox(sim, name=f"{name}.mbox")
        self._send_conns: dict[int, _SendConn] = {}
        self._recv_states: dict[int, _RecvState] = {}
        nic.bind_receiver(self._on_frame)

    def register_telemetry(self, registry, prefix: str) -> None:
        """Register this stack's instruments under ``prefix``."""
        stats = self.stats
        registry.counter(f"{prefix}.messages_sent", lambda: stats.messages_sent)
        registry.counter(
            f"{prefix}.messages_delivered", lambda: stats.messages_delivered
        )
        registry.counter(f"{prefix}.data_frames_sent", lambda: stats.data_frames_sent)
        registry.counter(f"{prefix}.acks_sent", lambda: stats.acks_sent)
        registry.counter(f"{prefix}.timeouts", lambda: stats.timeouts)
        registry.counter(
            f"{prefix}.fast_retransmits", lambda: stats.fast_retransmits
        )
        registry.counter(
            f"{prefix}.retransmitted_frames", lambda: stats.retransmitted_frames
        )
        registry.counter(f"{prefix}.bytes_sent", lambda: stats.bytes_sent, unit="B")
        registry.counter(
            f"{prefix}.bytes_delivered", lambda: stats.bytes_delivered, unit="B"
        )

    # -- API ---------------------------------------------------------------------
    def send(
        self, dst: MacAddress, nbytes: int, payload: Any = None, tag: int = 0
    ) -> Event:
        """Queue a message; the event fires when it is fully ACKed."""
        if nbytes < 1:
            raise ProtocolError(f"cannot send {nbytes} bytes")
        if dst == self.nic.address:
            raise ProtocolError("TCP loopback not modelled; use local copy")
        conn = self._send_conns.get(dst.value)
        if conn is None:
            conn = _SendConn(self, dst)
            self._send_conns[dst.value] = conn
        return conn.enqueue(nbytes, tag, payload)

    def recv(
        self, src: Optional[MacAddress] = None, tag: Optional[int] = None
    ) -> Event:
        """Event yielding the next matching :class:`MessageView`."""
        return self.mailbox.recv(src, tag)

    # -- frame dispatch ----------------------------------------------------------------
    def _on_frame(self, frame: Frame) -> None:
        if frame.kind == "tcp":
            self._on_data(frame)
        elif frame.kind == "tcp-ack":
            self._on_ack_frame(frame)
        else:
            raise ProtocolError(f"TCP stack got foreign frame kind {frame.kind!r}")

    def _on_data(self, frame: Frame) -> None:
        cfg = self.config
        state = self._recv_states.setdefault(frame.src.value, _RecvState())
        if self.cpu is not None:
            self.cpu.steal(cfg.recv_cost_per_segment * frame.frame_count)
        if frame.seq == state.rcv_nxt:
            state.rcv_nxt += frame.payload_bytes
            msg_id = frame.meta["msg"]
            got = state.msg_progress.get(msg_id, 0) + frame.payload_bytes
            if frame.meta["last"]:
                if got != frame.meta["total"]:
                    raise ProtocolError(
                        f"message {msg_id} reassembly mismatch: {got} != "
                        f"{frame.meta['total']}"
                    )
                state.msg_progress.pop(msg_id, None)
                self.stats.messages_delivered += 1
                self.stats.bytes_delivered += frame.meta["total"]
                self.mailbox.deliver(
                    MessageView(
                        src=frame.src,
                        tag=frame.meta["tag"],
                        nbytes=frame.meta["total"],
                        payload=frame.payload,
                    )
                )
            else:
                state.msg_progress[msg_id] = got
        # else: out-of-order after a loss -> discarded, cumulative ACK below
        self._send_ack(frame.src, state.rcv_nxt)

    def _send_ack(self, dst: MacAddress, ack: int) -> None:
        if self.cpu is not None:
            self.cpu.steal(self.config.ack_cost)
        self.stats.acks_sent += 1
        self.nic.transmit_nowait(
            Frame(
                src=self.nic.address,
                dst=dst,
                payload_bytes=0,
                headers=IP_TCP_HEADERS,
                kind="tcp-ack",
                meta={"ack": ack},
            )
        )

    def _on_ack_frame(self, frame: Frame) -> None:
        if self.cpu is not None:
            self.cpu.steal(self.config.ack_cost)
        conn = self._send_conns.get(frame.src.value)
        if conn is not None:
            conn.on_ack(frame.meta["ack"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TCPStack {self.name!r} on {self.nic.name!r}>"
