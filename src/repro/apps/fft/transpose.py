"""Distributed-matrix transpose kernels (host-side, functional).

The FFTW-style distributed transpose (Section 3.1.2) in three parts:

1. **local transpose** — each node splits its (M x N) panel into P
   blocks of M columns and transposes each (M = N / P);
2. **all-to-all** — block p goes to node p;
3. **final permutation** — received blocks are interleaved into the
   local panel of the transposed matrix.

These are the *baseline host* kernels; the INIC implementation performs
the same transforms inside the card via
:mod:`repro.inic.cores.transpose` / :mod:`repro.inic.cores.permute`.
"""

from __future__ import annotations

import numpy as np

from ...errors import ApplicationError

__all__ = [
    "split_rows",
    "extract_block",
    "transpose_block",
    "interleave_blocks",
    "gather_panels",
]


def split_rows(matrix: np.ndarray, p: int) -> list[np.ndarray]:
    """Row-block distribution: panel r holds rows r*M .. (r+1)*M."""
    n = matrix.shape[0]
    if n % p != 0:
        raise ApplicationError(f"{n} rows do not distribute over {p} ranks")
    m = n // p
    return [np.ascontiguousarray(matrix[r * m : (r + 1) * m]) for r in range(p)]


def extract_block(panel: np.ndarray, dst: int, p: int) -> np.ndarray:
    """Destination ``dst``'s column block of a local panel."""
    m, n = panel.shape
    if n % p != 0:
        raise ApplicationError(f"{n} columns do not split into {p} blocks")
    w = n // p
    return panel[:, dst * w : (dst + 1) * w]


def transpose_block(block: np.ndarray) -> np.ndarray:
    """Local transpose of one (square) block."""
    if block.ndim != 2 or block.shape[0] != block.shape[1]:
        raise ApplicationError(f"expected a square block, got {block.shape}")
    return np.ascontiguousarray(block.T)


def interleave_blocks(blocks_by_source: dict[int, np.ndarray]) -> np.ndarray:
    """Final permutation: source p's block becomes column band p."""
    if not blocks_by_source:
        raise ApplicationError("no blocks to interleave")
    p = len(blocks_by_source)
    if sorted(blocks_by_source) != list(range(p)):
        raise ApplicationError(f"expected sources 0..{p - 1}")
    m = blocks_by_source[0].shape[0]
    out = np.empty((m, m * p), dtype=blocks_by_source[0].dtype)
    for src in range(p):
        blk = blocks_by_source[src]
        if blk.shape != (m, m):
            raise ApplicationError(f"block {src} has shape {blk.shape}")
        out[:, src * m : (src + 1) * m] = blk
    return out


def gather_panels(panels: list[np.ndarray]) -> np.ndarray:
    """Reassemble the full matrix from per-rank row panels."""
    if not panels:
        raise ApplicationError("no panels to gather")
    return np.vstack(panels)
