"""From-scratch FFT kernels.

A complete 1-D/2-D complex FFT implemented for this reproduction (the
paper's baseline is FFTW; we implement the same algorithmic structure
rather than linking an external library):

* iterative radix-2 Cooley-Tukey for power-of-two sizes, vectorized
  over leading axes so a whole panel of rows transforms in one sweep
  (the guides' "vectorize the loop over rows" idiom);
* Bluestein's chirp-z algorithm for arbitrary sizes (built on the
  radix-2 kernel);
* a 2-D transform via the row-FFT / transpose / row-FFT / transpose
  decomposition of Section 3.1 — the exact step structure the parallel
  implementations distribute.

Correctness is cross-checked against ``numpy.fft`` in the test suite;
``numpy.fft`` is never used in library code.
"""

from __future__ import annotations

import numpy as np

from ...errors import ApplicationError

__all__ = ["fft1d", "ifft1d", "fft2d", "ifft2d", "is_power_of_two"]


def is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def _bit_reversal_indices(n: int) -> np.ndarray:
    """Permutation indices for the radix-2 reordering pass."""
    bits = n.bit_length() - 1
    idx = np.arange(n, dtype=np.int64)
    rev = np.zeros_like(idx)
    for _ in range(bits):
        rev = (rev << 1) | (idx & 1)
        idx >>= 1
    return rev


def _twiddles(half: int, step: int, sign: float) -> np.ndarray:
    return np.exp(sign * 2j * np.pi * np.arange(half) / step)


def _fft_pow2(x: np.ndarray, sign: float) -> np.ndarray:
    """Iterative radix-2 over the last axis (n a power of two)."""
    n = x.shape[-1]
    a = np.ascontiguousarray(x, dtype=np.complex128)[..., _bit_reversal_indices(n)]
    lead = a.shape[:-1]
    half = 1
    while half < n:
        step = half * 2
        w = _twiddles(half, step, sign)
        b = a.reshape(*lead, n // step, step)
        even = b[..., :half]
        odd = b[..., half:] * w
        upper = even + odd
        lower = even - odd
        b[..., :half] = upper
        b[..., half:] = lower
        half = step
    return a


def _fft_bluestein(x: np.ndarray, sign: float) -> np.ndarray:
    """Chirp-z transform: arbitrary n via a 2n-padded power-of-two FFT."""
    n = x.shape[-1]
    a = np.asarray(x, dtype=np.complex128)
    k = np.arange(n)
    chirp = np.exp(sign * 1j * np.pi * (k * k % (2 * n)) / n)
    m = 1 << (2 * n - 1).bit_length()
    fa = np.zeros(a.shape[:-1] + (m,), dtype=np.complex128)
    fa[..., :n] = a * chirp
    fb = np.zeros(m, dtype=np.complex128)
    fb[:n] = np.conj(chirp)
    fb[m - n + 1 :] = np.conj(chirp[1:][::-1])
    conv = _ifft_pow2_unscaled(_fft_pow2(fa, -1.0) * _fft_pow2(fb, -1.0)) / m
    return conv[..., :n] * chirp


def _ifft_pow2_unscaled(x: np.ndarray) -> np.ndarray:
    return _fft_pow2(x, +1.0)


def fft1d(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Forward DFT along ``axis`` (any length)."""
    a = np.asarray(x, dtype=np.complex128)
    if a.shape[axis] == 0:
        raise ApplicationError("cannot transform an empty axis")
    a = np.moveaxis(a, axis, -1)
    n = a.shape[-1]
    if n == 1:
        out = a.copy()
    elif is_power_of_two(n):
        out = _fft_pow2(a, -1.0)
    else:
        out = _fft_bluestein(a, -1.0)
    return np.moveaxis(out, -1, axis)


def ifft1d(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Inverse DFT along ``axis`` (normalized by 1/n)."""
    a = np.asarray(x, dtype=np.complex128)
    a = np.moveaxis(a, axis, -1)
    n = a.shape[-1]
    if n == 1:
        out = a.copy()
    elif is_power_of_two(n):
        out = _fft_pow2(a, +1.0) / n
    else:
        out = _fft_bluestein(a, +1.0) / n
    return np.moveaxis(out, -1, axis)


def fft2d(x: np.ndarray) -> np.ndarray:
    """2-D DFT via the Section-3.1 four-step template:
    row FFTs, transpose, row FFTs, transpose."""
    a = np.asarray(x, dtype=np.complex128)
    if a.ndim != 2:
        raise ApplicationError(f"fft2d expects a matrix, got shape {a.shape}")
    a = fft1d(a, axis=-1)  # step 1: 1D-FFT of each row
    a = a.T  # step 2: transpose
    a = fft1d(a, axis=-1)  # step 3: 1D-FFT of each row
    return np.ascontiguousarray(a.T)  # step 4: transpose back


def ifft2d(x: np.ndarray) -> np.ndarray:
    """Inverse 2-D DFT (same template)."""
    a = np.asarray(x, dtype=np.complex128)
    if a.ndim != 2:
        raise ApplicationError(f"ifft2d expects a matrix, got shape {a.shape}")
    a = ifft1d(a, axis=-1)
    a = a.T
    a = ifft1d(a, axis=-1)
    return np.ascontiguousarray(a.T)
