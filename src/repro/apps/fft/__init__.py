"""2-D FFT application: from-scratch kernels, baseline, INIC variant."""

from .inic import inic_fft2d, inic_ifft2d, inic_transpose
from .parallel import (
    baseline_fft2d,
    baseline_ifft2d,
    distributed_transpose,
    fft_row_pass,
)
from .plans import FFTPlan, clear_plan_cache, plan_dft
from .serial import fft1d, fft2d, ifft1d, ifft2d, is_power_of_two
from .transpose import (
    extract_block,
    gather_panels,
    interleave_blocks,
    split_rows,
    transpose_block,
)

__all__ = [
    "FFTPlan",
    "baseline_fft2d",
    "baseline_ifft2d",
    "clear_plan_cache",
    "distributed_transpose",
    "extract_block",
    "fft1d",
    "fft2d",
    "fft_row_pass",
    "gather_panels",
    "ifft1d",
    "ifft2d",
    "inic_fft2d",
    "inic_ifft2d",
    "inic_transpose",
    "interleave_blocks",
    "is_power_of_two",
    "plan_dft",
    "split_rows",
    "transpose_block",
]
