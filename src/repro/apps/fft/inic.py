"""INIC-offloaded distributed 2-D FFT (Figure 2(b)).

Identical four-step template to the baseline, but the entire transpose
— local block transpose, the exchange, and the final permutation — is
"pushed onto the INIC ... embedded in the communication at minimal
additional cost" (Section 3.1.2).  The host computes row FFTs and posts
descriptors; the card does the rest and raises one interrupt per
transpose.

Trace spans: ``fft-compute`` (host) and ``inic-exchange`` (card,
recorded by the driver) — Figure 4(b)'s "INIC Transpose Time".
"""

from __future__ import annotations

import numpy as np

from ...cluster.app import AppResult, ParallelApp
from ...cluster.builder import Cluster
from ...cluster.mpi import RankContext
from ...core.design import fft_transpose_design
from ...core.manager import INICManager
from ...errors import ApplicationError
from ...inic.card import SendBlock
from ...models.params import DEFAULT_PARAMS, MachineParams
from ...net.addresses import MacAddress
from ...protocols.inicproto import TransferPlan
from .parallel import fft_row_pass
from .transpose import extract_block, split_rows

__all__ = ["inic_fft2d", "inic_ifft2d", "inic_transpose"]


def inic_transpose(
    ctx: RankContext,
    manager: INICManager,
    panel: np.ndarray,
    phase_tag: int,
):
    """Generator: the fully offloaded transpose for one rank."""
    p = ctx.size
    m, n = panel.shape
    if n % p != 0 or n // p != m:
        raise ApplicationError(
            f"panel {panel.shape} is not a square-matrix row block over {p} ranks"
        )
    driver = manager.driver(ctx.rank)
    card = driver.card
    tcore = card.require_core("local-transpose")
    pcore = card.require_core("final-permutation")
    block_bytes = m * m * panel.dtype.itemsize

    # Send blocks in rotated order (self last): the card streams them
    # host->card->wire, transposing inline via the transpose core.
    order = [(ctx.rank + shift) % p for shift in range(1, p)] + [ctx.rank]
    blocks = [
        SendBlock(
            dst=MacAddress(dst),
            nbytes=block_bytes,
            data=tcore.apply(extract_block(panel, dst, p)),
        )
        for dst in order
    ]

    # The custom protocol knows exactly how much to expect from whom.
    plan = TransferPlan(
        ctx.sim,
        {src: block_bytes for src in range(p)},
        name=f"transpose.{ctx.rank}.{phase_tag}",
    )

    def assemble(payloads: dict[int, list]) -> np.ndarray:
        return pcore.assemble({src: items[0] for src, items in payloads.items()})

    result = yield from driver.exchange(phase_tag, blocks, plan, assemble)
    return result


def inic_fft2d(
    cluster: Cluster,
    manager: INICManager,
    matrix: np.ndarray,
    params: MachineParams = DEFAULT_PARAMS,
    configure: bool = True,
) -> tuple[np.ndarray, AppResult]:
    """Run the INIC 2-D FFT; returns (result, timing).

    ``configure=True`` loads the transpose design first (outside the
    timed region, as the paper's one-time setup).
    """
    a = np.ascontiguousarray(matrix, dtype=np.complex128)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ApplicationError(f"need a square matrix, got {a.shape}")
    p = cluster.size
    if configure:
        manager.configure_all(fft_transpose_design)
    panels = split_rows(a, p)

    def program(ctx: RankContext):
        panel = panels[ctx.rank].copy()
        panel = yield from fft_row_pass(ctx, panel, params)  # step 1
        panel = yield from inic_transpose(ctx, manager, panel, 0xF1)  # step 2
        panel = yield from fft_row_pass(ctx, panel, params)  # step 3
        panel = yield from inic_transpose(ctx, manager, panel, 0xF2)  # step 4
        return panel

    app = ParallelApp(cluster)
    result = app.run(program)
    full = np.vstack(result.rank_results)
    return full, result


def inic_ifft2d(
    cluster: Cluster,
    manager: INICManager,
    matrix: np.ndarray,
    params: MachineParams = DEFAULT_PARAMS,
    configure: bool = True,
) -> tuple[np.ndarray, AppResult]:
    """Inverse 2-D FFT on the ACC (conjugation around the forward run)."""
    a = np.ascontiguousarray(matrix, dtype=np.complex128)
    out, result = inic_fft2d(cluster, manager, np.conj(a), params, configure)
    n = a.shape[0] * a.shape[1] if a.ndim == 2 else 0
    return np.conj(out) / n, result
