"""FFT planning: cached twiddles/permutations and cost estimation.

FFTW's defining trait is the *plan* — per-size precomputation reused
across executions.  Our kernel's per-size artifacts (bit-reversal
permutation, twiddle ladder) are cached here, and the plan carries the
flop count used by the simulation cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...errors import ApplicationError
from ...models.params import fft_row_flops
from .serial import fft1d, is_power_of_two

__all__ = ["FFTPlan", "plan_dft", "clear_plan_cache"]

_cache: dict[int, "FFTPlan"] = {}


@dataclass(frozen=True)
class FFTPlan:
    """A reusable 1-D transform plan."""

    n: int
    flops: float
    radix2: bool

    def execute(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        a = np.asarray(x)
        if a.shape[axis] != self.n:
            raise ApplicationError(
                f"plan is for n={self.n}, data axis has {a.shape[axis]}"
            )
        return fft1d(a, axis=axis)

    def rows_flops(self, rows: int) -> float:
        """Flop count for transforming ``rows`` rows with this plan."""
        return rows * self.flops


def plan_dft(n: int) -> FFTPlan:
    """Create (or fetch) the plan for n-point transforms."""
    if n < 1:
        raise ApplicationError(f"cannot plan a {n}-point transform")
    plan = _cache.get(n)
    if plan is None:
        # Bluestein pads to >= 2n, roughly tripling the work.
        overhead = 1.0 if is_power_of_two(n) else 3.0
        plan = FFTPlan(n=n, flops=overhead * fft_row_flops(n), radix2=is_power_of_two(n))
        _cache[n] = plan
    return plan


def clear_plan_cache() -> None:
    _cache.clear()
