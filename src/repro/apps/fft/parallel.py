"""Baseline distributed 2-D FFT (FFTW-style over SimMPI/TCP).

The exact four-step structure of Section 3.1.1:

  1. compute the 1D-FFT for each local row          (host compute)
  2. transpose the matrix                           (host + network)
  3. compute the 1D-FFT for each row                (host compute)
  4. transpose the matrix                           (host + network)

with the transpose decomposed as Section 3.1.2 describes: host local
transpose, TCP all-to-all, host final permutation.  Every phase is both
*functional* (numpy really transforms the data) and *timed* (CPU costs
from :mod:`repro.models.params`, network from the packet-level DES).

Trace spans: ``fft-compute``, ``transpose-compute``, ``transpose-comm``
— the decomposition Figure 4(b) plots.
"""

from __future__ import annotations

import numpy as np

from ...cluster.app import AppResult, ParallelApp
from ...cluster.builder import Cluster
from ...cluster.collectives import alltoall
from ...cluster.mpi import RankContext
from ...errors import ApplicationError
from ...models.params import (
    DEFAULT_PARAMS,
    MachineParams,
    fft_compute_time,
    interleave_time,
    local_transpose_time,
)
from .plans import plan_dft
from .serial import fft1d
from .transpose import extract_block, interleave_blocks, split_rows, transpose_block

__all__ = ["baseline_fft2d", "baseline_ifft2d", "distributed_transpose", "fft_row_pass"]


def fft_row_pass(ctx: RankContext, panel: np.ndarray, params: MachineParams):
    """Generator: one pass of row FFTs (timed + functional)."""
    rows, n = panel.shape
    plan = plan_dft(n)
    cost = fft_compute_time(params, ctx.node.hierarchy, rows, n)
    span = ctx.trace.open("fft-compute", rank=ctx.rank)
    yield from ctx.compute(cost)
    span.close()
    return plan.execute(panel, axis=-1)


def distributed_transpose(
    ctx: RankContext, panel: np.ndarray, params: MachineParams
):
    """Generator: the three-part FFTW transpose over TCP."""
    p = ctx.size
    m, n = panel.shape
    if n % p != 0 or n // p != m:
        raise ApplicationError(
            f"panel {panel.shape} is not a square-matrix row block over {p} ranks"
        )
    block_bytes = m * m * panel.dtype.itemsize

    # Part 1: local transpose of each destination block (host).
    span = ctx.trace.open("transpose-compute", rank=ctx.rank)
    yield from ctx.compute(
        local_transpose_time(params, ctx.node.hierarchy, panel.nbytes)
    )
    span.close()
    blocks = [
        (block_bytes, transpose_block(extract_block(panel, dst, p)))
        for dst in range(p)
    ]

    # Part 2: all-to-all over the wire.
    span = ctx.trace.open("transpose-comm", rank=ctx.rank)
    received = yield from alltoall(ctx, blocks)
    span.close()

    # Part 3: final permutation (host interleave).
    span = ctx.trace.open("transpose-compute", rank=ctx.rank)
    yield from ctx.compute(
        interleave_time(params, ctx.node.hierarchy, panel.nbytes)
    )
    span.close()
    return interleave_blocks({src: received[src] for src in range(p)})


def baseline_fft2d(
    cluster: Cluster,
    matrix: np.ndarray,
    params: MachineParams = DEFAULT_PARAMS,
) -> tuple[np.ndarray, AppResult]:
    """Run the four-step parallel 2-D FFT; returns (result, timing)."""
    a = np.ascontiguousarray(matrix, dtype=np.complex128)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ApplicationError(f"need a square matrix, got {a.shape}")
    p = cluster.size
    panels = split_rows(a, p)

    def program(ctx: RankContext):
        panel = panels[ctx.rank].copy()
        panel = yield from fft_row_pass(ctx, panel, params)  # step 1
        panel = yield from distributed_transpose(ctx, panel, params)  # step 2
        panel = yield from fft_row_pass(ctx, panel, params)  # step 3
        panel = yield from distributed_transpose(ctx, panel, params)  # step 4
        return panel

    app = ParallelApp(cluster)
    result = app.run(program)
    full = np.vstack(result.rank_results)
    return full, result


def baseline_ifft2d(
    cluster: Cluster,
    matrix: np.ndarray,
    params: MachineParams = DEFAULT_PARAMS,
) -> tuple[np.ndarray, AppResult]:
    """Inverse 2-D FFT via conjugation: ifft(x) = conj(fft(conj(x)))/n^2.

    Reuses the full forward distributed pipeline (identical cost), so
    inverse transforms inherit every offload/baseline property.
    """
    a = np.ascontiguousarray(matrix, dtype=np.complex128)
    out, result = baseline_fft2d(cluster, np.conj(a), params)
    n = a.shape[0] * a.shape[1] if a.ndim == 2 else 0
    return np.conj(out) / n, result
