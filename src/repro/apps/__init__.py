"""Applications: 2-D FFT, integer sort, collectives, microbenchmarks."""

from . import fft, sort
from .collective import inic_allreduce
from .compute import host_map, inic_map
from .netbench import (
    NetBenchResult,
    inic_pingpong,
    inic_stream,
    tcp_pingpong,
    tcp_stream,
)

__all__ = [
    "NetBenchResult",
    "fft",
    "host_map",
    "inic_allreduce",
    "inic_map",
    "inic_pingpong",
    "inic_stream",
    "sort",
    "tcp_pingpong",
    "tcp_stream",
]
