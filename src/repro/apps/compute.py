"""Compute-accelerator mode as an application (Section 2, mode 1).

"Compute Accelerator — Defined as using the FPGAs strictly for
application computing tasks, this mode significantly enhances the
computing power of a node.  A cluster with reconfigurable computing at
every node, such as the Tower of Power [13], amplifies this
capability."

``inic_map`` distributes a bag of independent work items across the
cluster and runs each item's kernel *on the node's card* (DMA in,
streaming kernel, DMA out, one completion interrupt), leaving the host
CPU almost idle; ``host_map`` is the all-host baseline.  Both return
bit-identical results — the card kernels are the same Python callables,
costed at card streaming rates instead of host roofline rates.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from ..cluster.app import AppResult, ParallelApp
from ..cluster.builder import Cluster
from ..cluster.mpi import RankContext
from ..core.design import compute_design
from ..core.manager import INICManager
from ..errors import ApplicationError
from ..hw.memory import AccessPattern

__all__ = ["host_map", "inic_map"]


def _chunk_assignments(n_items: int, p: int) -> list[list[int]]:
    """Round-robin item indices over ranks."""
    return [list(range(r, n_items, p)) for r in range(p)]


def host_map(
    cluster: Cluster,
    kernel: Callable[[np.ndarray], np.ndarray],
    items: Sequence[np.ndarray],
    flops_per_byte: float = 4.0,
) -> tuple[list[Any], AppResult]:
    """Baseline: every item computed on its rank's host CPU."""
    if not items:
        raise ApplicationError("no work items")
    p = cluster.size
    assignments = _chunk_assignments(len(items), p)
    results: list[Any] = [None] * len(items)

    def program(ctx: RankContext):
        for i in assignments[ctx.rank]:
            data = items[i]
            cost = ctx.node.cpu.task_time(
                flops=flops_per_byte * data.nbytes,
                nbytes=2 * data.nbytes,
                working_set=data.nbytes,
                pattern=AccessPattern.STREAM,
            )
            yield from ctx.compute(cost)
            results[i] = kernel(data)
        return None

    app = ParallelApp(cluster)
    res = app.run(program)
    return results, res


def inic_map(
    cluster: Cluster,
    manager: INICManager,
    kernel: Callable[[np.ndarray], np.ndarray],
    items: Sequence[np.ndarray],
    cores: Sequence = (),
    configure: bool = True,
) -> tuple[list[Any], AppResult]:
    """Offloaded: every item computed on its rank's card.

    ``cores`` optionally names the design's compute cores (defaults to a
    reduce core as a stand-in kernel block); the kernel itself is the
    same callable as the host baseline, so results match exactly.
    """
    if not items:
        raise ApplicationError("no work items")
    p = cluster.size
    if configure:
        from ..inic.cores import ReduceCore

        core_list = list(cores) if cores else [ReduceCore("sum")]
        manager.configure_all(lambda: compute_design(list(core_list)))
    assignments = _chunk_assignments(len(items), p)
    results: list[Any] = [None] * len(items)

    def program(ctx: RankContext):
        card = manager.driver(ctx.rank).card
        for i in assignments[ctx.rank]:
            data = items[i]
            out = yield card.compute(
                data, kernel, in_bytes=data.nbytes, out_bytes=data.nbytes
            )
            results[i] = out
        return None

    app = ParallelApp(cluster)
    res = app.run(program)
    return results, res
