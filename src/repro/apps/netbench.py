"""Network microbenchmarks: latency and bandwidth, TCP vs INIC protocol.

The paper's Section-4 protocol argument in its rawest form: the same
two nodes, the same Gigabit wire, measured with a netperf-style
request/response (latency) and a streaming (bandwidth) test under

* the host TCP stack (with interrupt mitigation and per-packet costs),
* the INIC protocol-processor mode ("all of the protocol processing
  for a node ... higher bandwidth, and lower latency").

These feed the protocol-overhead benches and give downstream users a
calibration tool for their own cluster configurations.

Each microbenchmark exists twice: the original generator ("callback
state machine") form and a coroutine twin (``*_proc``) authored through
the process API of :mod:`repro.sim.process`.  The twins are
**event-for-event identical** — same events, same makespans, same
``(time, priority, seq)`` trace order — which ``python -m repro.sim
--ab-process`` pins across every scheduler kind, the same way ``--ab``
pins scheduler identity.  They double as the porting example in
``docs/processes.md``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.app import ParallelApp
from ..cluster.builder import Cluster, ClusterSpec
from ..core.api import Experiment
from ..core.design import protocol_processor_design
from ..core.manager import INICManager
from ..errors import ApplicationError
from ..inic.card import CardSpec, IDEAL_INIC
from ..net.addresses import MacAddress
from ..net.fabric import NetworkTechnology, GIGABIT_ETHERNET
from ..sim.process import drive

__all__ = [
    "NetBenchResult",
    "tcp_pingpong",
    "tcp_pingpong_proc",
    "tcp_stream",
    "inic_pingpong",
    "inic_pingpong_proc",
    "inic_stream",
    "inic_stream_proc",
]


@dataclass(frozen=True)
class NetBenchResult:
    """One microbenchmark outcome."""

    label: str
    nbytes: int
    repetitions: int
    total_time: float

    @property
    def latency(self) -> float:
        """One-way latency per message (half the round trip)."""
        return self.total_time / (2 * self.repetitions)

    @property
    def bandwidth(self) -> float:
        """Payload bytes per second."""
        return self.nbytes * self.repetitions / self.total_time


def _check(nbytes: int, repetitions: int) -> None:
    if nbytes < 1 or repetitions < 1:
        raise ApplicationError("netbench needs positive size and repetitions")


def tcp_pingpong(
    nbytes: int = 64,
    repetitions: int = 20,
    network: NetworkTechnology = GIGABIT_ETHERNET,
) -> NetBenchResult:
    """Request/response over the host TCP stack."""
    _check(nbytes, repetitions)
    cluster = Cluster.build(ClusterSpec(n_nodes=2, network=network))
    app = ParallelApp(cluster)

    def program(ctx):
        for i in range(repetitions):
            if ctx.rank == 0:
                yield ctx.send(1, nbytes, tag=i)
                yield ctx.recv(src=1, tag=i)
            else:
                yield ctx.recv(src=0, tag=i)
                yield ctx.send(0, nbytes, tag=i)
        return None

    res = app.run(program)
    return NetBenchResult("tcp-pingpong", nbytes, repetitions, res.makespan)


def tcp_pingpong_proc(
    nbytes: int = 64,
    repetitions: int = 20,
    network: NetworkTechnology = GIGABIT_ETHERNET,
) -> NetBenchResult:
    """Coroutine twin of :func:`tcp_pingpong` (event-for-event identical)."""
    _check(nbytes, repetitions)
    cluster = Cluster.build(ClusterSpec(n_nodes=2, network=network))
    app = ParallelApp(cluster)

    async def program(ctx):
        for i in range(repetitions):
            if ctx.rank == 0:
                await ctx.send(1, nbytes, tag=i)
                await ctx.recv(src=1, tag=i)
            else:
                await ctx.recv(src=0, tag=i)
                await ctx.send(0, nbytes, tag=i)
        return None

    res = app.run(program)
    return NetBenchResult("tcp-pingpong", nbytes, repetitions, res.makespan)


def tcp_stream(
    nbytes: int = 1 << 20,
    repetitions: int = 4,
    network: NetworkTechnology = GIGABIT_ETHERNET,
) -> NetBenchResult:
    """One-way bulk transfer over the host TCP stack."""
    _check(nbytes, repetitions)
    cluster = Cluster.build(ClusterSpec(n_nodes=2, network=network))
    app = ParallelApp(cluster)

    def program(ctx):
        for i in range(repetitions):
            if ctx.rank == 0:
                yield ctx.send(1, nbytes, tag=i)
            else:
                yield ctx.recv(src=0, tag=i)
        return None

    res = app.run(program)
    return NetBenchResult("tcp-stream", nbytes, repetitions, res.makespan)


def _acc_pair(card: CardSpec) -> tuple:
    session = Experiment().nodes(2).card(card).build()
    session.manager.configure_all(protocol_processor_design)
    return session.cluster, session.manager


def inic_pingpong(
    nbytes: int = 64, repetitions: int = 20, card: CardSpec = IDEAL_INIC
) -> NetBenchResult:
    """Request/response through INIC protocol-processor mode."""
    _check(nbytes, repetitions)
    cluster, manager = _acc_pair(card)
    sim = cluster.sim
    t0 = sim.now

    def node(rank: int):
        driver = manager.driver(rank)
        peer = MacAddress(1 - rank)
        for i in range(repetitions):
            if rank == 0:
                yield from driver.send_message(peer, nbytes, tag=2 * i)
                yield from driver.recv_message(peer, nbytes, tag=2 * i + 1)
            else:
                yield from driver.recv_message(peer, nbytes, tag=2 * i)
                yield from driver.send_message(peer, nbytes, tag=2 * i + 1)

    procs = [sim.process(node(r)) for r in (0, 1)]
    sim.run(until=sim.all_of(procs))
    return NetBenchResult("inic-pingpong", nbytes, repetitions, sim.now - t0)


def inic_pingpong_proc(
    nbytes: int = 64, repetitions: int = 20, card: CardSpec = IDEAL_INIC
) -> NetBenchResult:
    """Coroutine twin of :func:`inic_pingpong`.

    The driver's ``send_message``/``recv_message`` generator helpers
    are reused unchanged through :func:`~repro.sim.process.drive`, the
    coroutine spelling of ``yield from`` — no child process, no extra
    events, identical trace.
    """
    _check(nbytes, repetitions)
    cluster, manager = _acc_pair(card)
    sim = cluster.sim
    t0 = sim.now

    async def node(rank: int):
        driver = manager.driver(rank)
        peer = MacAddress(1 - rank)
        for i in range(repetitions):
            if rank == 0:
                await drive(driver.send_message(peer, nbytes, tag=2 * i))
                await drive(driver.recv_message(peer, nbytes, tag=2 * i + 1))
            else:
                await drive(driver.recv_message(peer, nbytes, tag=2 * i))
                await drive(driver.send_message(peer, nbytes, tag=2 * i + 1))

    procs = [sim.process(node(r)) for r in (0, 1)]
    sim.run(until=sim.all_of(procs))
    return NetBenchResult("inic-pingpong", nbytes, repetitions, sim.now - t0)


def inic_stream(
    nbytes: int = 1 << 20, repetitions: int = 4, card: CardSpec = IDEAL_INIC
) -> NetBenchResult:
    """One-way bulk transfer through INIC protocol-processor mode."""
    _check(nbytes, repetitions)
    cluster, manager = _acc_pair(card)
    sim = cluster.sim
    t0 = sim.now

    def sender():
        driver = manager.driver(0)
        for i in range(repetitions):
            yield from driver.send_message(MacAddress(1), nbytes, tag=i)

    def receiver():
        driver = manager.driver(1)
        for i in range(repetitions):
            yield from driver.recv_message(MacAddress(0), nbytes, tag=i)

    procs = [sim.process(sender()), sim.process(receiver())]
    sim.run(until=sim.all_of(procs))
    return NetBenchResult("inic-stream", nbytes, repetitions, sim.now - t0)


def inic_stream_proc(
    nbytes: int = 1 << 20, repetitions: int = 4, card: CardSpec = IDEAL_INIC
) -> NetBenchResult:
    """Coroutine twin of :func:`inic_stream` (event-for-event identical)."""
    _check(nbytes, repetitions)
    cluster, manager = _acc_pair(card)
    sim = cluster.sim
    t0 = sim.now

    async def sender():
        driver = manager.driver(0)
        for i in range(repetitions):
            await drive(driver.send_message(MacAddress(1), nbytes, tag=i))

    async def receiver():
        driver = manager.driver(1)
        for i in range(repetitions):
            await drive(driver.recv_message(MacAddress(0), nbytes, tag=i))

    procs = [sim.process(sender()), sim.process(receiver())]
    sim.run(until=sim.all_of(procs))
    return NetBenchResult("inic-stream", nbytes, repetitions, sim.now - t0)
