"""INIC-offloaded collective operations (the paper's future work).

Section 8: "...the potential to accelerate functions ranging from
collective operations to MPI derived data types."  This module builds a
cluster-wide **allreduce** from the card primitives:

1. every rank scatters its contribution to rank 0 (the root's own
   contribution loops back inside its card);
2. the root's card *reduces each arriving stream into its accumulator
   in the datapath* (:class:`~repro.inic.cores.collective.ReduceCore`) —
   the host never touches the operands;
3. the root broadcasts the result as a single switch-replicated frame
   stream; every other card completes a one-source gather.

Each host pays two descriptor posts and one completion interrupt —
compare with the host-driven :func:`repro.cluster.collectives.allreduce`
baseline, which moves every operand through host memory and the TCP
stack.
"""

from __future__ import annotations

import numpy as np

from ..cluster.app import AppResult, ParallelApp
from ..cluster.builder import Cluster
from ..cluster.mpi import RankContext
from ..core.design import collective_design
from ..core.manager import INICManager
from ..errors import ApplicationError
from ..inic.card import SendBlock
from ..net.addresses import BROADCAST, MacAddress
from ..protocols.inicproto import TransferPlan

__all__ = ["inic_allreduce"]

_REDUCE_TAG = 0xA1
_BCAST_TAG = 0xA2


def inic_allreduce(
    cluster: Cluster,
    manager: INICManager,
    contributions: list[np.ndarray],
    op: str = "sum",
    configure: bool = True,
) -> tuple[np.ndarray, AppResult]:
    """All-reduce ``contributions`` (one array per rank) on the cards.

    Returns the reduced array (identical on every rank, also verified
    inside) and the timing result.
    """
    p = cluster.size
    if len(contributions) != p:
        raise ApplicationError(f"need {p} contributions, got {len(contributions)}")
    shape = contributions[0].shape
    dtype = contributions[0].dtype
    for c in contributions:
        if c.shape != shape or c.dtype != dtype:
            raise ApplicationError("contributions must agree in shape/dtype")
    nbytes = int(contributions[0].nbytes)
    element_bytes = contributions[0].dtype.itemsize
    if configure:
        manager.configure_all(lambda: collective_design(op, element_bytes))
    # Incast safety: P-1 cards converge on the root's switch port, so the
    # per-sender window must divide the port buffer among them.
    buffer_bytes = cluster.spec.network.switch_buffer_per_port
    window = max(
        cluster.spec.inic.proto.packet_size,
        int(min(cluster.spec.inic.flow_window, 0.75 * buffer_bytes / max(1, p - 1))),
    )

    def program(ctx: RankContext):
        driver = manager.driver(ctx.rank)
        card = driver.card
        mine = contributions[ctx.rank]

        if ctx.rank == 0:
            # Root: reduce-gather from everyone (incl. own loopback).
            plan = TransferPlan(
                ctx.sim, {src: nbytes for src in range(p)}, name="allreduce.root"
            )
            gop = yield from driver.gather(
                _REDUCE_TAG, plan, reduce_core=card.require_core(f"reduce-{op}")
            )
            yield from driver.scatter(
                _REDUCE_TAG,
                [SendBlock(MacAddress(0), nbytes, mine)],
                window_bytes=window,
            )
            result = yield gop.done
            if p > 1:
                # Broadcast the reduced array to all peers in one pass.
                sop = yield from driver.scatter(
                    _BCAST_TAG, [SendBlock(BROADCAST, nbytes, result)]
                )
                yield sop.sent
            return result

        # Leaves: contribute, then await the broadcast.
        plan = TransferPlan(ctx.sim, {0: nbytes}, name=f"allreduce.{ctx.rank}")
        gop = yield from driver.gather(_BCAST_TAG, plan)
        yield from driver.scatter(
            _REDUCE_TAG,
            [SendBlock(MacAddress(0), nbytes, mine)],
            window_bytes=window,
        )
        payloads = yield gop.done
        return payloads[0][-1]

    app = ParallelApp(cluster)
    result = app.run(program)
    expected = result.rank_results[0]
    for r, got in enumerate(result.rank_results):
        if not np.array_equal(got, expected):
            raise ApplicationError(f"rank {r} disagrees with the root's result")
    return expected, result
