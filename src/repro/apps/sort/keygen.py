"""Key generation for the integer-sort workload.

Section 3.2: "our input data is synthetically generated and uniformly
distributed ... a well-established precedent" that "permits our results
to be compared directly with previously reported numbers."  A skewed
(Gaussian-sum, NAS-EP-style) generator is also provided for the
sampling/ balance ablation the paper alludes to.
"""

from __future__ import annotations

import numpy as np

from ...errors import ApplicationError

__all__ = ["uniform_keys", "gaussian_keys", "split_keys"]


def uniform_keys(n: int, rng: np.random.Generator) -> np.ndarray:
    """``n`` uniform 32-bit unsigned keys."""
    if n < 0:
        raise ApplicationError(f"cannot generate {n} keys")
    return rng.integers(0, 2**32, size=n, dtype=np.uint32)


def gaussian_keys(n: int, rng: np.random.Generator, terms: int = 4) -> np.ndarray:
    """Sum-of-uniforms keys (approximately Gaussian, as in NAS IS [2])."""
    if n < 0:
        raise ApplicationError(f"cannot generate {n} keys")
    if terms < 1:
        raise ApplicationError("need at least one term")
    acc = np.zeros(n, dtype=np.uint64)
    for _ in range(terms):
        acc += rng.integers(0, 2**32, size=n, dtype=np.uint64)
    return (acc // terms).astype(np.uint32)


def split_keys(keys: np.ndarray, p: int) -> list[np.ndarray]:
    """Initial block distribution of the key array over ``p`` ranks."""
    n = keys.shape[0]
    if n % p != 0:
        raise ApplicationError(f"{n} keys do not distribute over {p} ranks")
    chunk = n // p
    return [keys[r * chunk : (r + 1) * chunk].copy() for r in range(p)]
