"""Integer-sort application: kernels, baseline, INIC variant."""

from .bucketsort import (
    cache_bucket_count,
    phase1_destination_buckets,
    phase2_cache_buckets,
    split_by_bits,
)
from .countsort import count_sort, counting_pass, digit_histogram, is_sorted
from .inic import inic_sort
from .keygen import gaussian_keys, split_keys, uniform_keys
from .parallel import baseline_sort, host_final_sort
from .quicksort import quicksort
from .sampling import (
    choose_splitters,
    imbalance,
    sample_local,
    split_by_splitters,
)

__all__ = [
    "baseline_sort",
    "cache_bucket_count",
    "count_sort",
    "counting_pass",
    "digit_histogram",
    "gaussian_keys",
    "host_final_sort",
    "inic_sort",
    "is_sorted",
    "phase1_destination_buckets",
    "phase2_cache_buckets",
    "quicksort",
    "choose_splitters",
    "imbalance",
    "sample_local",
    "split_by_splitters",
    "split_by_bits",
    "split_keys",
    "uniform_keys",
]
