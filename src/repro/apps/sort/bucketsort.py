"""Host-side bucket-sort kernels.

Two uses in the paper's sort (Section 3.2):

* **phase 1** — bin local keys into P destination buckets by their top
  ``log2 P`` bits (bucket i goes to processor i);
* **phase 2** — bin received keys into cache-sized buckets before count
  sort ("it is important to first bucket sort the data such that the
  buckets fit in the processor cache"); on the prototype the card only
  pre-bins 16 ways and the host refines each 16th into N buckets
  (Section 6's two-phase scheme).

``split_by_bits`` is the shared kernel: bin by ``n_buckets`` consecutive
key bits starting below ``start_bit`` leading bits.
"""

from __future__ import annotations

import numpy as np

from ...errors import ApplicationError

__all__ = [
    "split_by_bits",
    "phase1_destination_buckets",
    "phase2_cache_buckets",
    "cache_bucket_count",
]


def _check_pow2(n: int, what: str) -> int:
    if n < 1 or n & (n - 1):
        raise ApplicationError(f"{what} must be a power of two, got {n}")
    return n.bit_length() - 1


def split_by_bits(
    keys: np.ndarray, start_bit: int, n_buckets: int
) -> list[np.ndarray]:
    """Stable-bin ``keys`` by ``log2(n_buckets)`` bits after skipping the
    ``start_bit`` most significant bits."""
    a = np.asarray(keys)
    if a.dtype != np.uint32:
        raise ApplicationError(f"expected uint32 keys, got {a.dtype}")
    bits = _check_pow2(n_buckets, "bucket count")
    if start_bit < 0 or start_bit + bits > 32:
        raise ApplicationError(
            f"bit window [{start_bit}, {start_bit + bits}) outside 32-bit keys"
        )
    if bits == 0:
        return [a.copy()]
    shift = np.uint32(32 - start_bit - bits)
    # Narrowest dtype that holds the bucket index: numpy's stable sort
    # is an LSD radix sort for integers, so its cost scales with the
    # key *width* — uint8/uint16 indices sort several times faster than
    # the equivalent int64 ones (the permutation is identical).
    dtype = np.uint8 if bits <= 8 else np.uint16 if bits <= 16 else np.uint32
    idx = ((a >> shift) & np.uint32(n_buckets - 1)).astype(dtype)
    order = np.argsort(idx, kind="stable")
    binned = a[order]
    counts = np.bincount(idx, minlength=n_buckets)
    bounds = np.concatenate(([0], np.cumsum(counts)))
    return [binned[bounds[b] : bounds[b + 1]] for b in range(n_buckets)]


def phase1_destination_buckets(keys: np.ndarray, p: int) -> list[np.ndarray]:
    """Bucket i of the result belongs on processor i."""
    return split_by_bits(keys, 0, p)


def phase2_cache_buckets(
    keys: np.ndarray, p: int, n_buckets: int
) -> list[np.ndarray]:
    """Refine a processor's keys (which share their top log2 P bits)
    into ``n_buckets`` cache-fit buckets."""
    return split_by_bits(keys, _check_pow2(p, "processor count"), n_buckets)


def cache_bucket_count(n_keys: int, keys_per_bucket: int, minimum: int = 128) -> int:
    """Bucket count so each bucket fits cache (Section 3.2.1: at least
    128 buckets from 2^21 keys up); power of two."""
    if n_keys < 0 or keys_per_bucket < 1:
        raise ApplicationError("bad cache-bucket sizing")
    need = max(1, -(-n_keys // keys_per_bucket))
    n = 1
    while n < need:
        n *= 2
    if n_keys >= 2**21:
        n = max(n, minimum)
    return n
