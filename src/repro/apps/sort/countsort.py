"""Count sort (Agarwal-style radix/count sort, reference [1]).

The paper's final sorting phase: "Each bucket is sorted with Count
Sort.  The Count Sort is the final sorting phase — with 32 bit integers
and more than 128 buckets there is no need for the final bubble sort
described in [1]."

Reference implementation: least-significant-digit radix sort with 8-bit
digits — four stable counting passes.  Each pass computes the digit
histogram (``np.bincount``), derives bucket offsets by prefix sum, and
scatters keys stably.  The stable scatter uses numpy's stable integer
argsort as its primitive (itself a counting scatter — an explicit
Python loop over tens of millions of keys would be pointlessly slow in
a numpy library; the *algorithm* here is the classic counting sort).
Large inputs take a ``np.sort`` fast path — see :func:`count_sort`.
"""

from __future__ import annotations

import numpy as np

from ...errors import ApplicationError

__all__ = ["count_sort", "counting_pass", "digit_histogram", "is_sorted"]

_DIGIT_BITS = 8
_DIGIT_MASK = (1 << _DIGIT_BITS) - 1
_RADIX = 1 << _DIGIT_BITS


def digit_histogram(keys: np.ndarray, shift: int) -> np.ndarray:
    """Counts of each 8-bit digit at ``shift`` (the 'count' of count sort)."""
    digits = (keys >> np.uint32(shift)) & np.uint32(_DIGIT_MASK)
    return np.bincount(digits, minlength=_RADIX)


def counting_pass(keys: np.ndarray, shift: int) -> np.ndarray:
    """One stable counting-sort pass on the digit at ``shift``."""
    digits = ((keys >> np.uint32(shift)) & np.uint32(_DIGIT_MASK)).astype(np.uint8)
    # Stable scatter into per-digit regions.  argsort(stable) over a
    # 256-value key IS the counting scatter (see module docstring).
    order = np.argsort(digits, kind="stable")
    return keys[order]


def count_sort(keys: np.ndarray) -> np.ndarray:
    """Full 32-bit sort of ``keys``; returns a sorted copy.

    Small inputs run the four 8-bit counting passes (the algorithm the
    paper describes, kept exercised by the kernel tests).  Large inputs
    delegate to ``np.sort``: the keys are plain ``uint32`` *values*, so
    every correct sort produces the byte-identical array and the
    counting passes buy nothing but host wall time — the *simulated*
    cost of the paper's count sort comes from
    :func:`repro.models.params.count_sort_time` either way.
    """
    a = np.asarray(keys)
    if a.dtype != np.uint32:
        raise ApplicationError(f"count sort expects uint32 keys, got {a.dtype}")
    if a.ndim != 1:
        raise ApplicationError(f"count sort expects a 1-D array, got {a.shape}")
    if a.shape[0] >= 1 << 12:
        return np.sort(a)
    out = a.copy()
    for shift in range(0, 32, _DIGIT_BITS):
        out = counting_pass(out, shift)
    return out


def is_sorted(keys: np.ndarray) -> bool:
    """True if ``keys`` is non-decreasing."""
    a = np.asarray(keys)
    return bool(np.all(a[:-1] <= a[1:])) if a.size else True
