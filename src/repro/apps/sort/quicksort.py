"""Quicksort baseline.

Section 3.2: "We found that Count Sort was as much as 2.5x faster than
quicksort."  This module provides the quicksort side of that claim: an
in-place iterative three-way (Dutch-flag) quicksort with median-of-three
pivoting, written from scratch on numpy arrays.  The partition step is
vectorized; segment management is explicit (no recursion) so deep inputs
cannot overflow the Python stack.
"""

from __future__ import annotations

import numpy as np

from ...errors import ApplicationError

__all__ = ["quicksort"]

#: below this, a segment is finished with a binary-insertion pass
_SMALL = 32


def _insertion(seg: np.ndarray) -> None:
    """In-place binary insertion sort for small segments."""
    for i in range(1, seg.shape[0]):
        key = seg[i]
        lo = int(np.searchsorted(seg[:i], key, side="right"))
        if lo < i:
            seg[lo + 1 : i + 1] = seg[lo:i]
            seg[lo] = key


def _median_of_three(seg: np.ndarray):
    a, b, c = seg[0], seg[seg.shape[0] // 2], seg[-1]
    if a > b:
        a, b = b, a
    if b > c:
        b = c if a <= c else a
    return b


def quicksort(keys: np.ndarray) -> np.ndarray:
    """Sort a copy of ``keys`` (any integer/float dtype) via quicksort."""
    a = np.asarray(keys)
    if a.ndim != 1:
        raise ApplicationError(f"quicksort expects a 1-D array, got {a.shape}")
    out = a.copy()
    stack: list[tuple[int, int]] = [(0, out.shape[0])]
    while stack:
        lo, hi = stack.pop()
        n = hi - lo
        if n <= 1:
            continue
        seg = out[lo:hi]
        if n <= _SMALL:
            _insertion(seg)
            continue
        pivot = _median_of_three(seg)
        less = seg[seg < pivot]
        equal = seg[seg == pivot]
        greater = seg[seg > pivot]
        seg[: less.shape[0]] = less
        seg[less.shape[0] : less.shape[0] + equal.shape[0]] = equal
        seg[less.shape[0] + equal.shape[0] :] = greater
        # Push the larger side first so the stack stays O(log n).
        left = (lo, lo + less.shape[0])
        right = (lo + less.shape[0] + equal.shape[0], hi)
        if left[1] - left[0] > right[1] - right[0]:
            stack.append(left)
            stack.append(right)
        else:
            stack.append(right)
            stack.append(left)
    return out
