"""Baseline distributed integer sort (Section 3.2.1, over SimMPI/TCP).

Per rank:

  1. bucket sort local keys into P destination buckets (host, random-
     write bound);
  2. all-to-all: bucket i to processor i;
  3. bucket sort received keys into cache-fit buckets (host);
  4. count sort each bucket (host, cache-resident).

All phases are functional (the returned per-rank arrays concatenate to
the globally sorted sequence) and timed.  Trace spans: ``sort-phase1``,
``sort-comm``, ``sort-phase2``, ``sort-countsort`` — the decomposition
of Figure 5(a).
"""

from __future__ import annotations

import numpy as np

from ...cluster.app import AppResult, ParallelApp
from ...cluster.builder import Cluster
from ...cluster.collectives import allgather, alltoall
from ...cluster.mpi import RankContext
from ...errors import ApplicationError
from ...models.params import (
    DEFAULT_PARAMS,
    MachineParams,
    bucket_sort_time,
    count_sort_time,
)
from .bucketsort import cache_bucket_count, phase1_destination_buckets, phase2_cache_buckets
from .countsort import count_sort
from .keygen import split_keys
from .sampling import choose_splitters, sample_local, split_by_splitters

__all__ = ["baseline_sort", "host_final_sort"]


def host_final_sort(
    ctx: RankContext,
    local_keys: np.ndarray,
    p: int,
    params: MachineParams,
    pre_binned_ways: int = 1,
):
    """Generator: phase-2 cache binning + per-bucket count sort.

    ``pre_binned_ways``: how many ways the data is already binned when
    it reaches the host (1 = not at all; 16 = the prototype INIC's
    card-side pre-split, which discounts the host refine).
    """
    n_local = int(local_keys.shape[0])
    n_buckets = cache_bucket_count(
        n_local, params.keys_per_cache_bucket, params.min_cache_buckets
    )
    hierarchy = ctx.node.hierarchy

    if n_buckets > pre_binned_ways:
        t_phase2 = bucket_sort_time(params, hierarchy, n_local, n_buckets)
        if pre_binned_ways > 1:
            t_phase2 *= params.host_phase2_factor
        span = ctx.trace.open("sort-phase2", rank=ctx.rank)
        yield from ctx.compute(t_phase2)
        span.close()

    t_count = count_sort_time(
        params,
        hierarchy,
        n_local,
        bucket_keys=max(1, n_local // max(n_buckets, 1)),
    )
    span = ctx.trace.open("sort-countsort", rank=ctx.rank)
    yield from ctx.compute(t_count)
    span.close()
    # Functionally, binning + per-bucket count sort == full count sort.
    return count_sort(local_keys) if n_local else local_keys


def baseline_sort(
    cluster: Cluster,
    keys: np.ndarray,
    params: MachineParams = DEFAULT_PARAMS,
    balance_sampling: bool = False,
    oversample: int = 32,
) -> tuple[list[np.ndarray], AppResult]:
    """Run the parallel sort; returns (per-rank sorted arrays, timing).

    ``balance_sampling=True`` enables the pre-sort sampling phase the
    paper alludes to for non-uniform keys (Section 3.2): ranks gather a
    key sample, agree on P-1 splitters, and bin by range search instead
    of top bits — balancing skewed (e.g. Gaussian) distributions.
    """
    a = np.ascontiguousarray(keys, dtype=np.uint32)
    p = cluster.size
    if p & (p - 1):
        raise ApplicationError(
            f"the parallel sort assumes P is a power of two (Section 3.2.1); got {p}"
        )
    shards = split_keys(a, p)

    def program(ctx: RankContext):
        mine = shards[ctx.rank]
        hierarchy = ctx.node.hierarchy

        splitters = None
        if balance_sampling:
            # Pre-sort sampling phase: tiny communication, big balance win
            # on skewed keys.
            rng = cluster.streams.stream(f"sampling.{ctx.rank}")
            local_sample = sample_local(mine, oversample, p, rng)
            span = ctx.trace.open("sort-sampling", rank=ctx.rank)
            gathered = yield from allgather(
                ctx, local_sample, max(int(local_sample.nbytes), 4)
            )
            span.close()
            pool = np.concatenate(
                [np.asarray(g, dtype=np.uint32).ravel() for g in gathered]
            )
            splitters = choose_splitters(pool, p)

        # Phase 1: destination binning.
        span = ctx.trace.open("sort-phase1", rank=ctx.rank)
        yield from ctx.compute(
            bucket_sort_time(params, hierarchy, mine.shape[0], p)
        )
        span.close()
        buckets = (
            split_by_splitters(mine, splitters)
            if splitters is not None
            else phase1_destination_buckets(mine, p)
        )

        # All-to-all: bucket i -> processor i.
        blocks = [(int(b.nbytes), b) for b in buckets]
        span = ctx.trace.open("sort-comm", rank=ctx.rank)
        received = yield from alltoall(ctx, blocks)
        span.close()
        local = np.concatenate(
            [np.asarray(r, dtype=np.uint32).ravel() for r in received if r is not None]
            or [np.empty(0, dtype=np.uint32)]
        )

        # Phases 2 + count sort.
        result = yield from host_final_sort(ctx, local, p, params)
        return result

    app = ParallelApp(cluster)
    result = app.run(program)
    return list(result.rank_results), result
