"""Sample-based splitter selection for skewed key distributions.

Section 3.2: uniform keys are assumed "to focus on evaluating the basic
I/O and computational performance", and the paper notes that "as others
have recognized, sampling in a pre-sort phase helps address the
shortcomings of our assumption by leading to a more balanced workload."

This module implements that pre-sort phase: each rank samples its local
keys; the samples are gathered, sorted, and P-1 splitters chosen by
regular sampling; destination buckets are then formed by splitter
search instead of top bits.  With splitters, the Gaussian-ish keys of
:func:`repro.apps.sort.keygen.gaussian_keys` distribute evenly where
top-bits binning would overload the middle ranks.

Works with both the host baseline and the INIC (the card's binning core
is configured with splitter registers instead of a bit mask — same
stream rate, so the offload story is unchanged).
"""

from __future__ import annotations

import numpy as np

from ...errors import ApplicationError

__all__ = [
    "sample_local",
    "choose_splitters",
    "split_by_splitters",
    "imbalance",
]


def sample_local(
    keys: np.ndarray, oversample: int, p: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``oversample * p`` sample keys from a local partition."""
    if oversample < 1 or p < 1:
        raise ApplicationError("oversample and p must be >= 1")
    n = keys.shape[0]
    if n == 0:
        return np.empty(0, dtype=keys.dtype)
    count = min(n, oversample * p)
    idx = rng.choice(n, size=count, replace=False)
    return keys[idx]


def choose_splitters(all_samples: np.ndarray, p: int) -> np.ndarray:
    """P-1 splitters by regular sampling of the sorted sample pool."""
    if p < 1:
        raise ApplicationError("p must be >= 1")
    if p == 1:
        return np.empty(0, dtype=all_samples.dtype)
    if all_samples.size < p - 1:
        raise ApplicationError(
            f"need at least {p - 1} samples, got {all_samples.size}"
        )
    s = np.sort(all_samples)
    positions = (np.arange(1, p) * s.size) // p
    return s[positions]


def split_by_splitters(
    keys: np.ndarray, splitters: np.ndarray
) -> list[np.ndarray]:
    """Stable-partition ``keys`` into ``len(splitters)+1`` range buckets.

    Bucket i holds keys in [splitters[i-1], splitters[i]); the
    concatenation of all buckets is a permutation of the input and
    bucket ranges are globally ordered.
    """
    if splitters.size == 0:
        return [keys.copy()]
    idx = np.searchsorted(splitters, keys, side="right")
    order = np.argsort(idx, kind="stable")
    binned = keys[order]
    counts = np.bincount(idx, minlength=splitters.size + 1)
    bounds = np.concatenate(([0], np.cumsum(counts)))
    return [
        binned[bounds[b] : bounds[b + 1]] for b in range(splitters.size + 1)
    ]


def imbalance(bucket_sizes: list[int]) -> float:
    """max/mean bucket-size ratio (1.0 = perfectly balanced)."""
    if not bucket_sizes:
        raise ApplicationError("no buckets")
    mean = sum(bucket_sizes) / len(bucket_sizes)
    if mean == 0:
        return 1.0
    return max(bucket_sizes) / mean
