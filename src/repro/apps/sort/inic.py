"""INIC-offloaded integer sort (Figures 3(b) and 7).

Both bucket sorts run in the cards: the send side bins into P
destination buckets as data streams host->card, the receive side bins
arrivals into cache-fit buckets before the 64 KiB-threshold DMA to the
host.  The host keeps only the cache-friendly count sort — and, on the
ACEII prototype, the phase-2 refine of the card's 16-way pre-split
(Section 6).

The transfer plan (how many keys each peer will send) is data-dependent;
the implementation exchanges the counts in a prologue all-to-all of one
packet per peer via the cards (cheap, and exactly the kind of metadata
exchange the custom protocol's "knows how much data to expect" property
presumes).
"""

from __future__ import annotations

import numpy as np

from ...cluster.app import AppResult, ParallelApp
from ...cluster.builder import Cluster
from ...cluster.mpi import RankContext
from ...core.design import integer_sort_design
from ...core.manager import INICManager
from ...errors import ApplicationError
from ...inic.card import SendBlock
from ...models.params import DEFAULT_PARAMS, MachineParams
from ...net.addresses import MacAddress
from ...protocols.inicproto import TransferPlan
from .bucketsort import phase1_destination_buckets
from .keygen import split_keys
from .parallel import host_final_sort

__all__ = ["inic_sort"]


def _counts_exchange(ctx: RankContext, manager: INICManager, counts: list[int], tag: int):
    """Generator: one-packet-per-peer metadata all-to-all via the cards."""
    p = ctx.size
    driver = manager.driver(ctx.rank)
    plan = TransferPlan(ctx.sim, {src: 4 * p for src in range(p)}, name=f"counts.{ctx.rank}")
    payload = np.asarray(counts, dtype=np.uint32)
    blocks = [
        SendBlock(MacAddress((ctx.rank + s) % p), 4 * p, payload)
        for s in range(1, p)
    ] + [SendBlock(MacAddress(ctx.rank), 4 * p, payload)]
    received = yield from driver.exchange(tag, blocks, plan)
    return {src: items[0] for src, items in received.items()}


def inic_sort(
    cluster: Cluster,
    manager: INICManager,
    keys: np.ndarray,
    params: MachineParams = DEFAULT_PARAMS,
    configure: bool = True,
) -> tuple[list[np.ndarray], AppResult]:
    """Run the INIC sort; returns (per-rank sorted arrays, timing)."""
    a = np.ascontiguousarray(keys, dtype=np.uint32)
    p = cluster.size
    if p & (p - 1):
        raise ApplicationError(
            f"the parallel sort assumes P is a power of two (Section 3.2.1); got {p}"
        )
    card_spec = cluster.spec.inic
    if configure:
        manager.configure_all(lambda: integer_sort_design(card_spec))
    card_buckets = manager.driver(0).card.design.cores[-1].n_buckets
    shards = split_keys(a, p)

    def program(ctx: RankContext):
        mine = shards[ctx.rank]
        driver = manager.driver(ctx.rank)
        bucket_core = driver.card.design.core(f"bucket-sort-{card_buckets}")

        # Send-side bucket sort happens IN the card as data streams out:
        # zero host cost (functional equivalent below).
        buckets = phase1_destination_buckets(mine, p)
        for b in buckets:
            bucket_core.bytes_processed += b.nbytes

        counts = [int(b.shape[0]) for b in buckets]
        counts_by_src = yield from _counts_exchange(ctx, manager, counts, 0x50)

        order = [(ctx.rank + s) % p for s in range(1, p)] + [ctx.rank]
        blocks = [
            SendBlock(
                MacAddress(dst),
                max(int(buckets[dst].nbytes), 4),
                buckets[dst],
            )
            for dst in order
        ]
        plan = TransferPlan(
            ctx.sim,
            {
                src: max(int(counts_by_src[src][ctx.rank]) * 4, 4)
                for src in range(p)
            },
            name=f"sort.{ctx.rank}",
        )

        def assemble(payloads: dict[int, list]) -> np.ndarray:
            parts = [
                np.asarray(items[0], dtype=np.uint32).ravel()
                for _, items in sorted(payloads.items())
                if items[0] is not None
            ]
            local = (
                np.concatenate(parts) if parts else np.empty(0, dtype=np.uint32)
            )
            # Receive-side binning in the card (functional bookkeeping).
            bucket_core.bytes_processed += local.nbytes
            return local

        span = ctx.trace.open("inic-sort-comm", rank=ctx.rank)
        local = yield from driver.exchange(0x51, blocks, plan, assemble)
        span.close()

        # Host work: count sort (+ phase-2 refine on the prototype, whose
        # card only pre-binned card_buckets ways).
        result = yield from host_final_sort(
            ctx, local, p, params, pre_binned_ways=card_buckets
        )
        return result

    app = ParallelApp(cluster)
    result = app.run(program)
    return list(result.rank_results), result
