"""Physical units and conversion helpers used throughout the simulator.

The paper (and the 2001-era hardware it describes) mixes decimal network
units (Gigabit Ethernet = :math:`10^9` bits/s) with binary memory units
(the analytical model divides by ``80 * 1024 * 1024`` bytes/s).  To keep
every constant auditable we define both families explicitly and never use
bare magic numbers in model code.

All simulation time is expressed in **seconds** as ``float``.  All data
quantities are **bytes** as ``int`` (or ``float`` for rates).
"""

from __future__ import annotations

# --- data sizes (binary, as used by the paper's equations) -----------------
KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB

# --- data sizes (decimal, as used by network marketing) --------------------
KB: int = 1000
MB: int = 1000 * KB
GB: int = 1000 * MB

# --- time -------------------------------------------------------------------
SECOND: float = 1.0
MILLISECOND: float = 1e-3
MICROSECOND: float = 1e-6
NANOSECOND: float = 1e-9

# Convenience aliases matching common notation.
MS = MILLISECOND
US = MICROSECOND
NS = NANOSECOND


def mbps(megabits_per_second: float) -> float:
    """Convert decimal megabits/s to bytes/s.

    >>> mbps(100)  # Fast Ethernet
    12500000.0
    """
    return megabits_per_second * 1e6 / 8.0


def gbps(gigabits_per_second: float) -> float:
    """Convert decimal gigabits/s to bytes/s.

    >>> gbps(1)  # Gigabit Ethernet
    125000000.0
    """
    return gigabits_per_second * 1e9 / 8.0


def mib_per_s(mebibytes_per_second: float) -> float:
    """Convert MiB/s to bytes/s (the unit of the paper's Eqs. 6-9, 13-16)."""
    return mebibytes_per_second * MiB


def mb_per_s(megabytes_per_second: float) -> float:
    """Convert decimal MB/s to bytes/s (e.g. PCI 132 MB/s)."""
    return megabytes_per_second * 1e6


def bytes_to_kib(n: float) -> float:
    """Bytes to KiB (the paper's 'Partition Size (in KB)' axes are KiB)."""
    return n / KiB


def bytes_to_mib(n: float) -> float:
    """Bytes to MiB."""
    return n / MiB


def seconds_to_ms(t: float) -> float:
    """Seconds to milliseconds (the paper's time axes are ms)."""
    return t / MILLISECOND


def transfer_time(nbytes: float, rate_bytes_per_s: float) -> float:
    """Time to move ``nbytes`` at ``rate_bytes_per_s``.

    Guards against zero/negative rates so model bugs fail loudly instead of
    silently producing infinities.
    """
    if rate_bytes_per_s <= 0.0:
        raise ValueError(f"non-positive transfer rate: {rate_bytes_per_s!r}")
    if nbytes < 0:
        raise ValueError(f"negative byte count: {nbytes!r}")
    return nbytes / rate_bytes_per_s


def fmt_bytes(n: float) -> str:
    """Human-readable byte count (binary units), for reports and traces."""
    x = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(x) < 1024.0 or unit == "GiB":
            return f"{x:.4g} {unit}" if unit != "B" else f"{int(x)} B"
        x /= 1024.0
    raise AssertionError("unreachable")


def fmt_time(t: float) -> str:
    """Human-readable time, for reports and traces."""
    if t == 0:
        return "0 s"
    at = abs(t)
    if at >= 1.0:
        return f"{t:.4g} s"
    if at >= MILLISECOND:
        return f"{t / MILLISECOND:.4g} ms"
    if at >= MICROSECOND:
        return f"{t / MICROSECOND:.4g} us"
    return f"{t / NANOSECOND:.4g} ns"
