"""The Intelligent NIC: FPGA fabric, stream cores, and card models."""

from .bitstream import Design, INFRASTRUCTURE_CLBS, INFRASTRUCTURE_RAM_KBITS
from .card import (
    ACEII_PROTOTYPE,
    CardSpec,
    GatherOp,
    IDEAL_INIC,
    INICCard,
    ScatterOp,
    SendBlock,
)
from .fpga import FPGADevice, FPGAFabric, VIRTEX_1000, XILINX_4085XLA
from .memory import INICMemory

__all__ = [
    "ACEII_PROTOTYPE",
    "CardSpec",
    "Design",
    "FPGADevice",
    "FPGAFabric",
    "GatherOp",
    "IDEAL_INIC",
    "INFRASTRUCTURE_CLBS",
    "INFRASTRUCTURE_RAM_KBITS",
    "INICCard",
    "INICMemory",
    "ScatterOp",
    "SendBlock",
    "VIRTEX_1000",
    "XILINX_4085XLA",
]
