"""The INIC card: datapath, ops, and the ideal/prototype variants.

This is Figure 1(b) made executable.  A card is a station on the
Ethernet fabric (like a :class:`~repro.net.nic.StandardNIC`) whose
datapath contains the configured FPGA design.  Hosts interact through
descriptor posts (free — "starting a send is handled by hardware that
sits idle if no send is in progress", Section 3.2.2) and receive a
**single completion interrupt per operation** ("Initiation of the
transfer of data to the host memory may require a single interrupt per
transpose", Section 4.1 footnote).

Two datapath geometries:

* **Ideal INIC** (Section 4's analysis): dedicated host path at
  80 MiB/s and network path at 90 MiB/s — the paper's Eqs. (6)-(9)
  rates — fully pipelined.
* **ACEII prototype** (Sections 5-6): one shared 132 MB/s card bus
  carries host DMA *and* MAC traffic, so every payload byte crosses it
  twice per direction; plus a denser-design-limiting FPGA.

Operations are all-to-all-shaped primitives (scatter with per-block
payloads, gather against a :class:`~repro.protocols.inicproto.TransferPlan`)
from which the applications build transposes and sort redistributions,
plus reduce/broadcast extensions and a compute-accelerator mode.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..errors import ConfigurationError, OffloadError, TransferAborted
from ..hw.cpu import CPU
from ..hw.pci import DEFAULT_ARBITRATION
from ..net.addresses import BROADCAST, MacAddress
from ..net.batching import adaptive_quantum
from ..net.link import Wire
from ..net.packet import Frame, wire_bytes
from ..protocols.base import choose_quantum
from ..protocols.inicproto import INICProtoConfig, TransferPlan
from ..sim.bus import FCFSBus, FairShareBus
from ..sim.engine import Event, Simulator
from ..sim.resources import Store
from ..units import KiB, mb_per_s, mib_per_s
from .bitstream import Design
from .fpga import FPGADevice, FPGAFabric, VIRTEX_1000, XILINX_4085XLA
from .memory import INICMemory

__all__ = [
    "CardSpec",
    "IDEAL_INIC",
    "ACEII_PROTOTYPE",
    "SendBlock",
    "ScatterOp",
    "GatherOp",
    "INICCard",
]


@dataclass(frozen=True)
class CardSpec:
    """Physical parameters of an INIC card."""

    name: str
    devices: tuple[FPGADevice, ...]
    memory_bytes: int
    memory_bandwidth: float  # bytes/s, card RAM
    shared_bus: bool  # True: one bus for host DMA + MAC traffic
    host_rate: float  # bytes/s host<->card (dedicated or bus raw)
    net_rate: float  # bytes/s card<->network
    dma_threshold: int = 64 * KiB  # Eq. (15): receive->host granule
    completion_irq_cost: float = 10e-6
    #: per-destination in-flight byte window (Section 4.1's no-loss
    #: property: never put more into the fabric than the buffers hold).
    #: Credits return as tiny frames — the protocol's "minimal
    #: acknowledgement information".
    flow_window: int = 64 * KiB
    proto: INICProtoConfig = field(default_factory=INICProtoConfig)

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0 or self.memory_bandwidth <= 0:
            raise ConfigurationError(f"{self.name}: bad memory parameters")
        if self.host_rate <= 0 or self.net_rate <= 0:
            raise ConfigurationError(f"{self.name}: bad path rates")
        if self.dma_threshold < 1:
            raise ConfigurationError(f"{self.name}: bad DMA threshold")


#: Section 4's next-generation single-chip INIC: dedicated pipelined
#: paths at the measured-derated 80/90 MiB/s of Eqs. (6)-(9).
IDEAL_INIC = CardSpec(
    name="ideal-inic",
    devices=(VIRTEX_1000,),
    memory_bytes=32 * 1024 * KiB,
    memory_bandwidth=mb_per_s(400),
    shared_bus=False,
    host_rate=mib_per_s(80),
    net_rate=mib_per_s(90),
)

#: Sections 5-6's ACEII prototype: everything over one 132 MB/s bus
#: (85% efficient), one app-usable XC4085XLA, limited memory.
ACEII_PROTOTYPE = CardSpec(
    name="aceii-prototype",
    devices=(XILINX_4085XLA,),
    memory_bytes=8 * 1024 * KiB,
    memory_bandwidth=mb_per_s(200),
    shared_bus=True,
    host_rate=mb_per_s(132) * 0.85,
    net_rate=mb_per_s(132) * 0.85,
)


@dataclass
class SendBlock:
    """One destination's share of a scatter operation.

    ``data`` is the functional payload *after* the datapath transform
    (the application applies the design's core, mirroring the hardware
    doing it inline); ``nbytes`` is its logical size.
    """

    dst: MacAddress
    nbytes: int
    data: Any = None

    def __post_init__(self) -> None:
        if self.nbytes < 1:
            raise OffloadError(f"send block of {self.nbytes} bytes")


class ScatterOp:
    """A posted scatter: streams blocks host->card->network."""

    def __init__(
        self,
        sim: Simulator,
        tag: int,
        blocks: list[SendBlock],
        window_bytes: Optional[int] = None,
        train: bool = False,
    ):
        self.tag = tag
        self.blocks = blocks
        self.window_bytes = window_bytes  # per-destination flow window
        #: exchange-phase marker: the poster vouches that this scatter is
        #: one sender's slice of a bulk all-to-all, making it a candidate
        #: for the flow-clock fast path (when the card enables it)
        self.train = train
        self.sent: Event = sim.event(name=f"scatter#{tag}.sent")
        self.bytes_total = sum(b.nbytes for b in blocks)


class GatherOp:
    """A posted gather: accounts arrivals against a plan, DMAs to host."""

    def __init__(
        self,
        sim: Simulator,
        tag: int,
        plan: TransferPlan,
        assemble: Optional[Callable[[dict[int, list]], Any]] = None,
        reduce_core=None,
    ):
        self.tag = tag
        self.plan = plan
        self.assemble = assemble
        self.reduce_core = reduce_core
        self.done: Event = sim.event(name=f"gather#{tag}.done")
        self.payloads: dict[int, list] = {}
        self.accumulator = None
        self.delivered_bytes = 0
        self.pending_delivery = 0.0
        self.last_seen_received = -1
        self.stalled_polls = 0
        # -- loss recovery (active only when the card's protocol config
        #    enables retries) ------------------------------------------------
        self.retries = 0
        self.dedupe_payloads = False
        self._payload_seen: set[int] = set()

    def store_payload(self, src: MacAddress, payload: Any) -> None:
        if payload is None:
            return
        if self.dedupe_payloads:
            # A retransmitted final packet racing its late original must
            # not fold a contribution twice.
            if src.value in self._payload_seen:
                return
            self._payload_seen.add(src.value)
        if self.reduce_core is not None:
            self.accumulator = self.reduce_core.apply(
                payload, accumulator=self.accumulator
            )
        else:
            self.payloads.setdefault(src.value, []).append(payload)

    def payload_missing(self, peer: int) -> bool:
        """True if ``peer``'s functional payload has not been stored yet
        (its ``last``-marked packet was lost) — the NACK asks for it."""
        if self.dedupe_payloads:
            return peer not in self._payload_seen
        return peer not in self.payloads

    def result(self) -> Any:
        if self.reduce_core is not None:
            return self.accumulator
        if self.assemble is not None:
            return self.assemble(self.payloads)
        return self.payloads


class CardStats:
    def __init__(self) -> None:
        self.bytes_ingested = 0.0  # host -> card
        self.bytes_egressed = 0.0  # card -> network
        self.bytes_received = 0.0  # network -> card
        self.bytes_delivered = 0.0  # card -> host
        self.frames_sent = 0
        self.frames_received = 0
        self.completion_interrupts = 0
        self.peak_memory_bytes = 0.0
        # -- loss recovery (nonzero only with faults + retries enabled) --
        self.nacks_sent = 0
        self.nacks_received = 0
        self.retransmits = 0
        self.retransmitted_bytes = 0.0
        self.transfer_aborts = 0


class INICCard:
    """A reconfigurable intelligent NIC on the cluster fabric."""

    #: simulated seconds of zero progress after which a gather fails
    STALL_TIMEOUT = 10.0

    def __init__(
        self,
        sim: Simulator,
        address: MacAddress,
        spec: CardSpec = IDEAL_INIC,
        cpu: Optional[CPU] = None,
        name: str = "inic",
    ):
        self.sim = sim
        self.address = address
        self.spec = spec
        self.cpu = cpu
        self.name = name
        self.stats = CardStats()

        self.fabric = FPGAFabric(sim, list(spec.devices), name=f"{name}.fpga")
        self.memory = INICMemory(
            sim, spec.memory_bytes, spec.memory_bandwidth, name=f"{name}.mem"
        )
        if spec.shared_bus:
            # Section 6: "a single 132 MB/s bus used to access both the
            # Gigabit Ethernet and host memory" — every crossing contends.
            bus = FCFSBus(
                sim,
                bandwidth=spec.host_rate,
                arbitration_latency=DEFAULT_ARBITRATION,
                name=f"{name}.bus",
            )
            self.host_tx = self.host_rx = self.net_tx = self.net_rx = bus
        else:
            # Ideal single-chip INIC: independent DMA engines per
            # direction, each at the measured-derated Eq. (6)-(9) rates.
            self.host_tx = FairShareBus(
                sim, spec.host_rate, DEFAULT_ARBITRATION, name=f"{name}.host-tx"
            )
            self.host_rx = FairShareBus(
                sim, spec.host_rate, DEFAULT_ARBITRATION, name=f"{name}.host-rx"
            )
            self.net_tx = FairShareBus(
                sim, spec.net_rate, DEFAULT_ARBITRATION, name=f"{name}.net-tx"
            )
            self.net_rx = FairShareBus(
                sim, spec.net_rate, DEFAULT_ARBITRATION, name=f"{name}.net-rx"
            )

        self.design: Optional[Design] = None
        #: datapath_rate cache: min core rate of the configured design.
        #: Keyed on design identity — recomputed only when the design
        #: changes, not per chunk (the per-chunk min-over-cores scan was
        #: a measurable cost at 256+ nodes).
        self._rate_design: Optional[Design] = None
        self._design_min_rate: float = float("inf")
        self._chunk_cache: dict[tuple[int, Optional[int]], list[int]] = {}
        self._wire_out: Optional[Wire] = None
        #: opt-in for the exchange-phase bulk fast path (set by the
        #: cluster builder from ``ClusterSpec.fastpath``); eligibility
        #: is still checked per operation (:meth:`_fast_eligible`)
        self.fastpath = False

        self._scatter_q: Store = Store(sim, name=f"{name}.scatters")
        self._egress_q: Store = Store(sim, capacity=8, name=f"{name}.egress")
        self._rx_q: Store = Store(sim, name=f"{name}.rx")
        self._gathers: dict[int, GatherOp] = {}
        self._pending_rx: dict[int, deque[Frame]] = {}
        self._mem_in_use = 0.0
        #: per-destination unacknowledged bytes (flow control)
        self._outstanding: dict[int, float] = {}
        self._credit_wakeups: dict[int, Event] = {}
        #: (tag, dst) -> (block, window) retained to serve NACK-driven
        #: retransmits; populated only when ``proto.max_retries > 0``
        self._sent_blocks: dict[tuple[int, int], tuple[SendBlock, Optional[int]]] = {}

        sim.process(self._ingest_loop(), name=f"{name}.ingest")
        sim.process(self._egress_loop(), name=f"{name}.egress")
        sim.process(self._rx_loop(), name=f"{name}.rxloop")

    # -- configuration --------------------------------------------------------------
    def configure(self, design: Design):
        """Generator: load ``design`` onto the fabric (fit check + time)."""
        yield from self.fabric.configure(design, design.clbs, design.ram_kbits)
        self.design = design
        return design

    def require_core(self, core_name: str):
        if self.design is None:
            raise ConfigurationError(f"{self.name}: no design configured")
        return self.design.core(core_name)

    def datapath_rate(self, path_rate: float) -> float:
        """Effective stream rate: the slower of the bus path and the
        configured design's slowest core."""
        design = self.design
        if design is None:
            return path_rate
        if design is not self._rate_design:
            clock = self.fabric.clock_hz
            self._design_min_rate = min(
                (core.rate(clock) for core in design.cores),
                default=float("inf"),
            )
            self._rate_design = design
        min_rate = self._design_min_rate
        return path_rate if path_rate < min_rate else min_rate

    def register_telemetry(self, registry, prefix: str) -> None:
        """Register this card's instruments under ``prefix``.

        Covers the datapath counters, the card's bus(es) — one shared
        ``{prefix}.bus`` on the prototype, four per-direction buses on
        the ideal card — the FPGA fabric, and the uplink wire.
        """
        stats = self.stats
        registry.counter(f"{prefix}.bytes_ingested", lambda: stats.bytes_ingested, unit="B")
        registry.counter(f"{prefix}.bytes_egressed", lambda: stats.bytes_egressed, unit="B")
        registry.counter(f"{prefix}.bytes_received", lambda: stats.bytes_received, unit="B")
        registry.counter(f"{prefix}.bytes_delivered", lambda: stats.bytes_delivered, unit="B")
        registry.counter(f"{prefix}.frames_sent", lambda: stats.frames_sent)
        registry.counter(f"{prefix}.frames_received", lambda: stats.frames_received)
        registry.counter(
            f"{prefix}.completion_interrupts", lambda: stats.completion_interrupts
        )
        registry.gauge(
            f"{prefix}.peak_memory_bytes", lambda: stats.peak_memory_bytes, unit="B"
        )
        registry.counter(f"{prefix}.nacks_sent", lambda: stats.nacks_sent)
        registry.counter(f"{prefix}.retransmits", lambda: stats.retransmits)
        registry.counter(f"{prefix}.transfer_aborts", lambda: stats.transfer_aborts)
        if self.host_tx is self.net_rx:
            self.host_tx.register_telemetry(registry, f"{prefix}.bus")
        else:
            self.host_tx.register_telemetry(registry, f"{prefix}.host-tx")
            self.host_rx.register_telemetry(registry, f"{prefix}.host-rx")
            self.net_tx.register_telemetry(registry, f"{prefix}.net-tx")
            self.net_rx.register_telemetry(registry, f"{prefix}.net-rx")
        self.fabric.register_telemetry(registry, f"{prefix}.fpga")
        if self._wire_out is not None:
            self._wire_out.register_telemetry(registry, f"{prefix}.uplink")

    # -- fabric station interface -----------------------------------------------------
    def attach_wire(self, wire: Wire) -> None:
        if self._wire_out is not None:
            raise ConfigurationError(f"{self.name}: wire already attached")
        self._wire_out = wire

    def receive_frame(self, frame: Frame) -> None:
        if frame.kind == "inic-credit":
            # Flow-control credit: free window toward that destination.
            dst = frame.src.value
            self._outstanding[dst] = max(
                0.0, self._outstanding.get(dst, 0.0) - frame.meta["credit"]
            )
            wake = self._credit_wakeups.pop(dst, None)
            if wake is not None:
                wake.succeed(None)
            return
        if frame.kind == "inic-nack":
            self._handle_nack(frame)
            return
        self._rx_q.put(frame)

    def _handle_nack(self, frame: Frame) -> None:
        """A receiver reports ``missing`` undelivered bytes for one of our
        scatter tags: resync the flow window (lost frames never returned
        credits) and re-issue the missing range from the retained block."""
        peer = frame.src.value
        tag = frame.meta["op"]
        missing = frame.meta["missing"]
        self.stats.nacks_received += 1
        self._outstanding[peer] = max(
            0.0, self._outstanding.get(peer, 0.0) - missing
        )
        wake = self._credit_wakeups.pop(peer, None)
        if wake is not None:
            wake.succeed(None)
        retained = self._sent_blocks.get((tag, peer))
        if retained is None:
            # Nothing to resend: we never scattered to this peer under
            # this tag (the plan was wrong) or retention is off.  The
            # receiver's retry budget bounds how long it keeps asking.
            return
        block, window = retained
        nbytes = min(missing, block.nbytes)
        if nbytes < 1:
            return
        data = block.data if frame.meta.get("need_payload") else None
        self.stats.retransmits += 1
        self.stats.retransmitted_bytes += nbytes
        retry = ScatterOp(
            self.sim, tag, [SendBlock(block.dst, nbytes, data)], window
        )
        self._scatter_q.put(retry)

    # -- operation posting ---------------------------------------------------------------
    def post_scatter(
        self,
        tag: int,
        blocks: list[SendBlock],
        window_bytes: Optional[int] = None,
        train: bool = False,
    ) -> ScatterOp:
        """Post a scatter descriptor (free for the host CPU).

        ``window_bytes`` overrides the card's per-destination flow
        window for this operation (incast-heavy collectives pass a
        smaller one so the fabric's no-loss invariant holds).
        ``train`` marks the scatter as one sender's slice of a bulk
        exchange — a flow-clock fast-path candidate.
        """
        if not blocks:
            raise OffloadError("scatter with no blocks")
        op = ScatterOp(self.sim, tag, blocks, window_bytes, train=train)
        if self.spec.proto.max_retries > 0:
            # Retain each destination's block so a NACK can be served.
            # Recovery assumes one block per (tag, destination), which is
            # how every collective in this repo shapes its scatters.
            for block in blocks:
                self._sent_blocks[(tag, block.dst.value)] = (block, window_bytes)
        self._scatter_q.put(op)
        return op

    def post_gather(
        self,
        tag: int,
        plan: TransferPlan,
        assemble: Optional[Callable[[dict[int, list]], Any]] = None,
        reduce_core=None,
    ) -> GatherOp:
        """Post a gather descriptor for phase ``tag``."""
        if tag in self._gathers:
            raise OffloadError(f"gather tag {tag} already active")
        op = GatherOp(self.sim, tag, plan, assemble, reduce_core)
        if self.spec.proto.max_retries > 0:
            # Recovery mode: a retransmission racing its late original may
            # over-deliver — clamp instead of treating it as a protocol
            # violation, and fold each peer's payload at most once.
            plan.tolerate_surplus = True
            op.dedupe_payloads = True
        self._gathers[tag] = op
        self.sim.process(self._gather_watch(op), name=f"{self.name}.gw{tag}")
        # Replay frames that arrived before the gather was posted.
        backlog = self._pending_rx.pop(tag, None)
        if backlog:
            for frame in backlog:
                self._account_rx(op, frame)
        return op

    # -- send datapath ------------------------------------------------------------------
    def _chunks_of(self, nbytes: int, window: Optional[int] = None) -> list[int]:
        # Chunking is a pure function of (nbytes, window) for a given
        # card spec, and an alltoall posts p blocks per node drawn from a
        # handful of distinct sizes — memoize per card.  Callers iterate
        # the list without mutating it.
        cached = self._chunk_cache.get((nbytes, window))
        if cached is not None:
            return cached
        proto = self.spec.proto
        pkt = proto.packet_size
        n_packets = -(-nbytes // pkt)
        q = choose_quantum(
            n_packets,
            proto.quantum_target_events,
            proto.max_quantum,
        )
        # Adaptive batching: grow the quantum to the largest packet train
        # whose serialization stays within the timing tolerance (the
        # window/4 cap below still preserves the credit pipeline).  With
        # batching disabled this falls back to the target-events quantum.
        packet_time = wire_bytes(pkt, proto.headers) / self.spec.net_rate
        q = max(q, adaptive_quantum(n_packets, packet_time, proto.batch))
        chunk = q * pkt
        if window is not None:
            # Keep several chunks in flight inside one window so the
            # credit round trip (which returns per chunk) never drains
            # the pipeline: chunk <= window/4.
            chunk = max(pkt, min(chunk, window // 4))
        sizes = []
        left = nbytes
        while left > 0:
            sizes.append(min(chunk, left))
            left -= sizes[-1]
        self._chunk_cache[(nbytes, window)] = sizes
        return sizes

    def _track_mem(self, delta: float) -> None:
        in_use = self._mem_in_use + delta
        self._mem_in_use = in_use
        if in_use > self.stats.peak_memory_bytes:
            self.stats.peak_memory_bytes = in_use

    def _ingest_loop(self):
        """host memory -> (transform cores) -> card memory, chunked."""
        ingest_rate_fn = lambda: self.datapath_rate(self.host_tx.bandwidth)
        while True:
            op: ScatterOp = yield self._scatter_q.get()
            if op.train and self._fast_eligible(op):
                self._run_scatter_fast(op)
                continue
            window = op.window_bytes or self.spec.flow_window
            for block in op.blocks:
                sizes = self._chunks_of(block.nbytes, window)
                for i, size in enumerate(sizes):
                    yield self.host_tx.transfer(size)
                    # The datapath cores run inline; if the slowest core is
                    # slower than the bus, the stream stalls to its rate.
                    extra = size / ingest_rate_fn() - size / self.host_tx.bandwidth
                    if extra > 1e-12:
                        yield self.sim.timeout(extra)
                    self.stats.bytes_ingested += size
                    self._track_mem(size)
                    last = i == len(sizes) - 1
                    yield self._egress_q.put(
                        _EgressChunk(op, block, size, last)
                    )

    def _egress_loop(self):
        """card memory -> (packetize) -> MAC -> wire, chunked."""
        proto = self.spec.proto
        while True:
            chunk: _EgressChunk = yield self._egress_q.get()
            op, block = chunk.op, chunk.block
            if block.dst == self.address:
                # Self-addressed block: loops back inside the card
                # (host->card->host), never touching the MAC.
                self._track_mem(-chunk.size)
                self._local_deliver(op, block, chunk)
                continue
            # Flow control: never exceed the per-destination window of
            # unacknowledged bytes (broadcast is exempt — one stream per
            # port, no incast).
            if not block.dst.is_broadcast:
                window = op.window_bytes or self.spec.flow_window
                dst = block.dst.value
                while self._outstanding.get(dst, 0.0) + chunk.size > window:
                    wake = self.sim.event(name=f"{self.name}.credit")
                    self._credit_wakeups[dst] = wake
                    yield wake
                self._outstanding[dst] = (
                    self._outstanding.get(dst, 0.0) + chunk.size
                )
            yield self.net_tx.transfer(chunk.size)
            self._track_mem(-chunk.size)
            if self._wire_out is None:
                raise OffloadError(f"{self.name}: egress with no wire attached")
            n_packets = -(-chunk.size // proto.packet_size)
            frame = Frame(
                src=self.address,
                dst=block.dst,
                payload_bytes=chunk.size,
                headers=proto.headers,
                frame_count=n_packets,
                kind="inic",
                payload=block.data if chunk.last else None,
                meta={"op": op.tag, "last": chunk.last, "total": block.nbytes},
            )
            self._wire_out.send(frame)
            self.stats.frames_sent += n_packets
            self.stats.bytes_egressed += chunk.size
            if chunk.last and block is op.blocks[-1]:
                op.sent.succeed(None)

    def _local_deliver(self, op: ScatterOp, block: SendBlock, chunk) -> None:
        gather = self._gathers.get(op.tag)
        frame = Frame(
            src=self.address,
            dst=self.address,
            payload_bytes=chunk.size,
            headers=0,
            kind="inic-local",
            payload=block.data if chunk.last else None,
            meta={"op": op.tag, "last": chunk.last, "total": block.nbytes},
        )
        if gather is None:
            self._pending_rx.setdefault(op.tag, deque()).append(frame)
        else:
            self._account_rx(gather, frame)
        if chunk.last and block is op.blocks[-1]:
            op.sent.succeed(None)

    # -- exchange-phase fast path (repro.net.flowclock) ---------------------------------
    def _fast_eligible(self, op: ScatterOp) -> bool:
        """Can this train scatter take the bulk path exactly?

        Requires the shared-bus geometry (one FCFS clock carries the
        whole cascade, so it reduces to closed form), no loss recovery
        (retention/NACK state must see every frame individually), a
        train-capable fault-free fabric, and a quiescent flow window —
        each block within it and nothing outstanding toward its
        destination, so credit elision cannot overrun a receiver.
        """
        if not self.fastpath or self.spec.proto.max_retries > 0:
            return False
        bus = self.host_tx
        if bus is not self.net_tx or not isinstance(bus, FCFSBus):
            return False
        wire = self._wire_out
        if wire is None or not hasattr(wire, "send_train"):
            return False
        if wire.fault is not None or not wire.fabric.fastpath_ok():
            return False
        window = op.window_bytes or self.spec.flow_window
        addr = self.address
        outstanding = self._outstanding
        for block in op.blocks:
            if block.dst.is_broadcast or block.nbytes > window:
                return False
            if block.dst != addr and outstanding.get(block.dst.value, 0.0) > 0.0:
                return False
        return True

    def _run_scatter_fast(self, op: ScatterOp) -> None:
        """Whole-scatter datapath in closed form: zero events per chunk.

        The slow path's per-chunk event cascade (ingest transfer,
        datapath stall, egress-queue rendezvous, credit gate, egress
        transfer) collapses onto the shared bus clock: chunks alternate
        ingest/egress strictly, each egress starting no earlier than its
        chunk's datapath-ready time.  The bus clock and statistics are
        committed in bulk, the frame train is handed to the fabric's
        flow clock in one call, and the operation completes with two
        scheduled callbacks total (delivery of self-addressed blocks
        adds one each).  Credits are elided (``nocredit``): eligibility
        already guaranteed the window cannot overrun.
        """
        sim = self.sim
        now = sim.now
        bus = self.host_tx
        proto = self.spec.proto
        stats = self.stats
        window = op.window_bytes or self.spec.flow_window
        bw = bus.bandwidth
        ingest_rate = self.datapath_rate(bw)
        arb = bus.arbitration_latency
        busy = bus._busy_until
        if now > busy:
            busy = now
        n_xfers = 0
        bus_bytes = 0.0
        busy_add = 0.0
        frames: list[Frame] = []
        times: list[float] = []
        local: list[tuple[float, SendBlock, int, bool]] = []
        last_t = now
        addr = self.address
        for block in op.blocks:
            sizes = self._chunks_of(block.nbytes, window)
            is_local = block.dst == addr
            n_sizes = len(sizes)
            for i, size in enumerate(sizes):
                d_in = arb + size / bw
                fin_i = busy + d_in
                busy = fin_i
                n_xfers += 1
                bus_bytes += size
                busy_add += d_in
                extra = size / ingest_rate - size / bw
                ready = fin_i + extra if extra > 1e-12 else fin_i
                stats.bytes_ingested += size
                self._track_mem(size)
                last_chunk = i == n_sizes - 1
                if is_local:
                    self._track_mem(-size)
                    local.append((ready, block, size, last_chunk))
                    if ready > last_t:
                        last_t = ready
                    continue
                d_out = arb + size / bw
                start_e = busy if busy > ready else ready
                fin_e = start_e + d_out
                busy = fin_e
                n_xfers += 1
                bus_bytes += size
                busy_add += d_out
                self._track_mem(-size)
                n_packets = -(-size // proto.packet_size)
                frames.append(
                    Frame(
                        src=addr,
                        dst=block.dst,
                        payload_bytes=size,
                        headers=proto.headers,
                        frame_count=n_packets,
                        kind="inic",
                        payload=block.data if last_chunk else None,
                        meta={
                            "op": op.tag,
                            "last": last_chunk,
                            "total": block.nbytes,
                            "nocredit": True,
                        },
                    )
                )
                times.append(fin_e)
                stats.frames_sent += n_packets
                stats.bytes_egressed += size
                if fin_e > last_t:
                    last_t = fin_e
        bus._busy_until = busy
        bus_stats = bus.stats
        bus_stats.bytes_transferred += bus_bytes
        bus_stats.transfer_count += n_xfers
        bus_stats.busy_time += busy_add
        if frames:
            self._wire_out.send_train(frames, times)
        for ready, block, size, last_chunk in local:
            sim.call_after(
                ready - now, self._fast_local_deliver, op, block, size, last_chunk
            )
        sim.call_after(last_t - now, op.sent.succeed, None)

    def _fast_local_deliver(
        self, op: ScatterOp, block: SendBlock, size: int, last: bool
    ) -> None:
        """Self-addressed chunk landing (the fast-path twin of
        :meth:`_local_deliver`; completion is signalled separately)."""
        gather = self._gathers.get(op.tag)
        frame = Frame(
            src=self.address,
            dst=self.address,
            payload_bytes=size,
            headers=0,
            kind="inic-local",
            payload=block.data if last else None,
            meta={"op": op.tag, "last": last, "total": block.nbytes},
        )
        if gather is None:
            self._pending_rx.setdefault(op.tag, deque()).append(frame)
        else:
            self._account_rx(gather, frame)

    def receive_train(self, frames: list[Frame], times: list[float]) -> None:
        """Bulk receive from the fabric's delivery batcher.

        One card-bus reservation covers the whole group's payload
        crossing (``len(frames)`` back-to-back transfers, exactly the
        slow path's per-frame bus occupancy), and one callback at its
        completion accounts every frame.  Non-datapath frames (credits,
        NACKs) fall through to :meth:`receive_frame` unchanged.
        """
        inic: list[Frame] = []
        for frame in frames:
            if frame.kind == "inic":
                inic.append(frame)
            else:
                self.receive_frame(frame)
        if not inic:
            return
        bus = self.net_rx
        reserve = getattr(bus, "reserve", None)
        if reserve is None:
            for frame in inic:
                self._rx_q.put(frame)
            return
        total = sum(f.payload_bytes for f in inic)
        _start, finish = reserve(total, len(inic))
        self.sim.call_after(finish - self.sim.now, self._finish_rx_train, inic)

    def _finish_rx_train(self, frames: list[Frame]) -> None:
        """The group's bus crossing completed: account every frame."""
        stats = self.stats
        wire = self._wire_out
        for frame in frames:
            stats.frames_received += frame.frame_count
            stats.bytes_received += frame.payload_bytes
            self._track_mem(frame.payload_bytes)
            if (
                not frame.meta.get("nocredit")
                and not frame.dst.is_broadcast
                and wire is not None
            ):
                wire.send(
                    Frame(
                        src=self.address,
                        dst=frame.src,
                        payload_bytes=0,
                        headers=self.spec.proto.headers,
                        kind="inic-credit",
                        meta={"credit": frame.payload_bytes},
                    )
                )
            tag = frame.meta["op"]
            gather = self._gathers.get(tag)
            if gather is None:
                self._pending_rx.setdefault(tag, deque()).append(frame)
            else:
                self._account_rx(gather, frame)

    # -- receive datapath ---------------------------------------------------------------
    def _rx_loop(self):
        """MAC -> (depacketize, transform) -> card memory, chunked."""
        while True:
            frame: Frame = yield self._rx_q.get()
            # On the prototype the MAC shares the card bus, so arriving
            # payloads cross it before reaching card memory; the ideal
            # card's dedicated network path is modelled the same way.
            yield self.net_rx.transfer(frame.payload_bytes)
            self.stats.frames_received += frame.frame_count
            self.stats.bytes_received += frame.payload_bytes
            self._track_mem(frame.payload_bytes)
            if (
                not frame.dst.is_broadcast
                and self._wire_out is not None
                and not frame.meta.get("nocredit")
            ):
                # Return a credit: the bytes have left the fabric.
                self._wire_out.send(
                    Frame(
                        src=self.address,
                        dst=frame.src,
                        payload_bytes=0,
                        headers=self.spec.proto.headers,
                        kind="inic-credit",
                        meta={"credit": frame.payload_bytes},
                    )
                )
            tag = frame.meta["op"]
            gather = self._gathers.get(tag)
            if gather is None:
                self._pending_rx.setdefault(tag, deque()).append(frame)
            else:
                self._account_rx(gather, frame)

    def _account_rx(self, op: GatherOp, frame: Frame) -> None:
        op.plan.account(frame.src, frame.payload_bytes)
        op.pending_delivery += frame.payload_bytes
        if frame.meta.get("last"):
            op.store_payload(frame.src, frame.payload)

    def _gather_watch(self, op: GatherOp):
        """Deliver card->host in DMA-threshold granules; finish with a
        single completion interrupt.

        With ``proto.max_retries > 0`` the watch doubles as the loss
        detector: a plan that stops progressing for the (exponentially
        backed-off) NACK timeout triggers a NACK round asking each
        incomplete peer to re-issue its missing bytes; after the retry
        budget is spent the gather fails with
        :class:`~repro.errors.TransferAborted`.
        """
        threshold = float(self.spec.dma_threshold)
        proto = self.spec.proto
        plan_done = op.plan.complete
        while True:
            if op.pending_delivery >= threshold:
                take = threshold
            elif plan_done.processed and op.pending_delivery > 0:
                take = op.pending_delivery
            elif plan_done.processed:
                break
            else:
                # Wait for more arrivals or completion; poll on delivery
                # progress via a short event rendezvous with the rx loop.
                received = op.plan.total_received()
                if received == op.last_seen_received:
                    op.stalled_polls += 1
                    stalled_for = op.stalled_polls * self._poll_dt()
                    if proto.max_retries > 0:
                        # Exponential backoff between recovery rounds.
                        deadline = proto.timeout * (
                            proto.retry_backoff ** op.retries
                        )
                        if stalled_for >= deadline:
                            if op.retries >= proto.max_retries:
                                err = TransferAborted(
                                    f"{self.name}: gather #{op.tag} gave up "
                                    f"at {received}/{op.plan.total_expected()}"
                                    f" bytes after {op.retries} retransmit "
                                    "rounds"
                                )
                                self.stats.transfer_aborts += 1
                                self._gathers.pop(op.tag, None)
                                op.done.fail(err)
                                return
                            self._send_nacks(op)
                            op.retries += 1
                            op.stalled_polls = 0
                    elif stalled_for > self.STALL_TIMEOUT:
                        err = OffloadError(
                            f"{self.name}: gather #{op.tag} stalled at "
                            f"{received}/{op.plan.total_expected()} bytes — "
                            "data lost in the fabric (flow-control window "
                            "too large for this traffic pattern?)"
                        )
                        self._gathers.pop(op.tag, None)
                        op.done.fail(err)
                        return
                else:
                    op.stalled_polls = 0
                    op.last_seen_received = received
                yield self.sim.any_of([plan_done, self.sim.timeout(self._poll_dt())])
                continue
            yield self.host_rx.transfer(take)
            op.pending_delivery -= take
            op.delivered_bytes += take
            self._track_mem(-take)
            self.stats.bytes_delivered += take
        # Single completion interrupt for the whole operation.
        self.stats.completion_interrupts += 1
        if self.cpu is not None:
            self.cpu.steal(self.spec.completion_irq_cost)
        self._gathers.pop(op.tag, None)
        op.done.succeed(op.result())

    def _send_nacks(self, op: GatherOp) -> None:
        """One recovery round: ask every incomplete peer for its missing
        bytes (``need_payload`` marks peers whose functional payload —
        the ``last``-flagged packet — was among the losses)."""
        if self._wire_out is None:
            return
        proto = self.spec.proto
        for peer, missing in op.plan.missing_by_peer().items():
            if peer == self.address.value:
                continue  # local loopback cannot lose data
            self.stats.nacks_sent += 1
            self._wire_out.send(
                Frame(
                    src=self.address,
                    dst=MacAddress(peer),
                    payload_bytes=0,
                    headers=proto.headers,
                    kind="inic-nack",
                    meta={
                        "op": op.tag,
                        "missing": missing,
                        "need_payload": op.payload_missing(peer),
                    },
                )
            )

    def _poll_dt(self) -> float:
        """Polling granule for the delivery engine: time for one DMA
        threshold to arrive at the network rate."""
        return self.spec.dma_threshold / self.net_rx.bandwidth

    # -- compute-accelerator mode -----------------------------------------------------------
    def compute(self, data, kernel: Callable, in_bytes: int, out_bytes: int) -> Event:
        """Run ``kernel(data)`` on the card: DMA in, process, DMA out.

        Used in COMPUTE mode (Section 2): the FPGAs as an application
        accelerator with a separate path to host memory for networking.
        """
        if in_bytes < 1 or out_bytes < 0:
            raise OffloadError("bad compute transfer sizes")
        done = self.sim.event(name=f"{self.name}.compute")

        def proc():
            yield self.host_tx.transfer(in_bytes)
            rate = self.datapath_rate(self.memory.bandwidth)
            yield self.sim.timeout(max(in_bytes, out_bytes) / rate)
            result = kernel(data)
            if out_bytes > 0:
                yield self.host_rx.transfer(out_bytes)
            if self.cpu is not None:
                self.cpu.steal(self.spec.completion_irq_cost)
            self.stats.completion_interrupts += 1
            done.succeed(result)

        self.sim.process(proc(), name=f"{self.name}.compute")
        return done

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<INICCard {self.name!r} spec={self.spec.name} addr={self.address}>"


class _EgressChunk:
    __slots__ = ("op", "block", "size", "last")

    def __init__(self, op: ScatterOp, block: SendBlock, size: int, last: bool):
        self.op = op
        self.block = block
        self.size = size
        self.last = last
