"""FPGA fabric model: resource budget, clocking, reconfiguration.

The prototype's reconfigurable logic is a pair of Xilinx 4085XLA parts —
"an older generation of reconfigurable logic" (Section 5) whose density
forces the two-phase bucket sort of Section 6 ("the Xilinx 4085XLA
devices we have are not dense enough to perform the full bucket sort on
the INIC").  The ideal INIC of Section 4 assumes a then-next-generation
(Virtex-class) part.

We model an FPGA as a budget of CLBs and on-chip RAM kilobits, a clock,
and a configuration (bitstream load) time.  Designs composed of cores
(:mod:`repro.inic.bitstream`) must fit the budget; ``configure`` charges
the reconfiguration latency — which matters when an application switches
the card between modes mid-run (an ablation the paper's mode taxonomy in
Section 2 invites).
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Callable, Optional

from ..errors import ConfigurationError, FPGAResourceError
from ..sim.engine import Simulator

__all__ = ["FPGADevice", "XILINX_4085XLA", "VIRTEX_1000", "FPGAFabric"]


@dataclass(frozen=True)
class FPGADevice:
    """One FPGA part."""

    part: str
    clbs: int  # configurable logic blocks
    ram_kbits: int  # on-chip RAM
    clock_hz: float  # achievable design clock
    config_time: float  # full bitstream load, seconds

    def __post_init__(self) -> None:
        if self.clbs <= 0 or self.ram_kbits < 0:
            raise FPGAResourceError(f"{self.part}: bad resource counts")
        if self.clock_hz <= 0 or self.config_time < 0:
            raise FPGAResourceError(f"{self.part}: bad timing parameters")


#: the prototype's part (XC4085XLA: 56x56 CLB array, no block RAM —
#: distributed LUT RAM only: each CLB can hold 32 bits, ~100 kbit total,
#: rounded up for the control CLBs we do not model individually)
XILINX_4085XLA = FPGADevice(
    part="XC4085XLA",
    clbs=3136,
    ram_kbits=160,
    clock_hz=50e6,
    config_time=0.120,
)

#: the "next generation" part the Section-4 analysis assumes
VIRTEX_1000 = FPGADevice(
    part="XCV1000",
    clbs=12288,
    ram_kbits=512,
    clock_hz=100e6,
    config_time=0.080,
)


class FPGAFabric:
    """The card's reconfigurable resources: one or more devices."""

    def __init__(self, sim: Simulator, devices: list[FPGADevice], name: str = "fpga"):
        if not devices:
            raise FPGAResourceError("fabric needs at least one device")
        self.sim = sim
        self.devices = list(devices)
        self.name = name
        self._configured: object = None
        self.configurations = 0
        self.config_failures = 0
        #: accumulated seconds spent loading bitstreams (every attempt
        #: pays the full reconfiguration latency, successful or not)
        self.config_busy_time = 0.0
        #: optional fault hook: ``fn(attempt_index) -> bool`` (True: this
        #: bitstream load fails); installed by the cluster builder from a
        #: scenario's :class:`~repro.faults.FaultPlan`
        self._config_fault: Optional[Callable[[int], bool]] = None
        self._config_attempts = 0

    def install_config_fault(self, fn: Callable[[int], bool]) -> None:
        """Attach a per-attempt bitstream-load failure predicate."""
        self._config_fault = fn

    @property
    def total_clbs(self) -> int:
        return sum(d.clbs for d in self.devices)

    @property
    def total_ram_kbits(self) -> int:
        return sum(d.ram_kbits for d in self.devices)

    @property
    def clock_hz(self) -> float:
        """Design clock = slowest device's achievable clock."""
        return min(d.clock_hz for d in self.devices)

    @property
    def config_time(self) -> float:
        """Devices configure in parallel; the slowest bounds the time."""
        return max(d.config_time for d in self.devices)

    @property
    def current_design(self) -> object:
        return self._configured

    def register_telemetry(self, registry, prefix: str) -> None:
        """Register this fabric's instruments under ``prefix``."""
        registry.busy(f"{prefix}.config_time", lambda: self.config_busy_time)
        registry.counter(f"{prefix}.configurations", lambda: self.configurations)
        registry.counter(f"{prefix}.config_failures", lambda: self.config_failures)

    def fits(self, clbs: int, ram_kbits: int) -> bool:
        return clbs <= self.total_clbs and ram_kbits <= self.total_ram_kbits

    def check_fit(self, clbs: int, ram_kbits: int, what: str = "design") -> None:
        if clbs > self.total_clbs:
            raise FPGAResourceError(
                f"{what} needs {clbs} CLBs but fabric {self.name!r} has "
                f"{self.total_clbs}"
            )
        if ram_kbits > self.total_ram_kbits:
            raise FPGAResourceError(
                f"{what} needs {ram_kbits} kbit RAM but fabric {self.name!r} "
                f"has {self.total_ram_kbits}"
            )

    def configure(self, design, clbs: int, ram_kbits: int):
        """Generator: load ``design`` (checks fit, charges config time).

        With a fault hook installed, a load attempt may fail *after*
        paying the full reconfiguration latency (a bad bitstream is only
        detected by the post-load CRC/readback check), raising
        :class:`~repro.errors.ConfigurationError`.  The caller decides
        whether to retry or degrade.
        """
        self.check_fit(clbs, ram_kbits, getattr(design, "name", "design"))
        attempt = self._config_attempts
        self._config_attempts += 1
        if self.config_time > 0:
            yield self.sim.timeout(self.config_time)
            self.config_busy_time += self.config_time
        if self._config_fault is not None and self._config_fault(attempt):
            self.config_failures += 1
            raise ConfigurationError(
                f"{self.name}: bitstream load attempt {attempt} failed "
                f"readback verification (injected configuration fault)"
            )
        self._configured = design
        self.configurations += 1
        return design

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = "+".join(d.part for d in self.devices)
        return f"<FPGAFabric {self.name!r} {parts} {self.total_clbs} CLBs>"
