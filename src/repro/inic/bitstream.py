"""Design composition and resource accounting.

A *design* is what gets loaded onto the INIC's FPGA fabric: a named set
of stream cores plus the always-present infrastructure (PCI interface,
MAC interface, FIFOs — the fixed blocks of Figure 1(b)).  The design
carries its operating :class:`~repro.core.modes.Mode`; resource fit
against a fabric decides prototype-vs-ideal capability differences (the
16-bucket limit of Section 6 falls out of CLB arithmetic here).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cores.base import StreamCore

__all__ = ["INFRASTRUCTURE_CLBS", "INFRASTRUCTURE_RAM_KBITS", "Design"]

#: fixed cost of the non-reconfigurable-looking plumbing every design
#: needs: PCI/PMC interface logic, MAC glue, control state machines.
INFRASTRUCTURE_CLBS = 600
INFRASTRUCTURE_RAM_KBITS = 16


@dataclass
class Design:
    """A loadable card configuration."""

    name: str
    cores: list["StreamCore"] = field(default_factory=list)
    mode: str = "combined"

    def __post_init__(self) -> None:
        names = [c.spec.name for c in self.cores]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"design {self.name!r} has duplicate cores")

    @property
    def clbs(self) -> int:
        return INFRASTRUCTURE_CLBS + sum(c.spec.clbs for c in self.cores)

    @property
    def ram_kbits(self) -> int:
        return INFRASTRUCTURE_RAM_KBITS + sum(c.spec.ram_kbits for c in self.cores)

    def core(self, name: str) -> "StreamCore":
        for c in self.cores:
            if c.spec.name == name:
                return c
        raise ConfigurationError(f"design {self.name!r} has no core {name!r}")

    def has_core(self, name: str) -> bool:
        return any(c.spec.name == name for c in self.cores)

    def with_cores(self, extra: Iterable["StreamCore"]) -> "Design":
        return Design(self.name, list(self.cores) + list(extra), self.mode)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cores = ",".join(c.spec.name for c in self.cores)
        return f"<Design {self.name!r} mode={self.mode} cores=[{cores}] {self.clbs} CLBs>"
