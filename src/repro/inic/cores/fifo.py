"""FIFO core: the elastic buffers of Figures 2(b)/3(b).

Decouples datapath stages clocked at different effective rates (PCI
side vs MAC side).  Resource cost is dominated by the on-chip RAM.
"""

from __future__ import annotations

from ...errors import OffloadError
from .base import CoreSpec, StreamCore

__all__ = ["FIFOCore"]


class FIFOCore(StreamCore):
    """An on-chip elastic buffer of ``depth_bytes``."""

    def __init__(self, depth_bytes: int = 4096, name: str = "fifo"):
        if depth_bytes < 1:
            raise OffloadError("FIFO depth must be >= 1 byte")
        self.depth_bytes = depth_bytes
        super().__init__(
            CoreSpec(
                name=name,
                clbs=100,
                ram_kbits=max(1, depth_bytes * 8 // 1024),
                bytes_per_cycle=8.0,
                description=f"{depth_bytes}-byte elastic buffer",
            )
        )

    def fill_latency(self, clock_hz: float) -> float:
        """Worst-case added latency: time to drain a full FIFO."""
        return self.processing_time(self.depth_bytes, clock_hz)
