"""Bucket-sort stream core (Figures 3(b) and 7).

Streams 32-bit keys into ``n_buckets`` bins by their top bits, as the
data crosses the card.  Resource usage grows with the bucket count (each
bucket needs a bin FIFO, a fill counter and a memory region pointer), so
the bucket count a card can support is decided by CLB arithmetic against
its FPGA fabric — this is exactly why the prototype "must be performed
in two phases.  The card sorts the data into 16 buckets and the host
sorts each of those buckets into N buckets" (Section 6).

``apply`` does the real binning with numpy; keys are assumed uniform
32-bit unsigned (Section 3.2's workload).
"""

from __future__ import annotations

import numpy as np

from ...errors import OffloadError
from .base import CoreSpec, StreamCore

__all__ = ["BucketSortCore", "bucket_sort_core_clbs", "max_buckets_for_clbs"]

#: control/state machine cost independent of bucket count
_BASE_CLBS = 512
#: per-bucket cost: bin FIFO, threshold counter, region pointer
_PER_BUCKET_CLBS = 64
#: per-bucket on-chip staging (kilobits)
_PER_BUCKET_RAM_KBITS = 0.5


def bucket_sort_core_clbs(n_buckets: int) -> int:
    """CLBs needed for an ``n_buckets`` binning core."""
    if n_buckets < 2:
        raise OffloadError("bucket sort needs at least 2 buckets")
    return _BASE_CLBS + _PER_BUCKET_CLBS * n_buckets


def max_buckets_for_clbs(clb_budget: int) -> int:
    """Largest power-of-two bucket count fitting in ``clb_budget`` CLBs."""
    n = 2
    while bucket_sort_core_clbs(n * 2) <= clb_budget:
        n *= 2
    if bucket_sort_core_clbs(n) > clb_budget:
        raise OffloadError(f"not even 2 buckets fit in {clb_budget} CLBs")
    return n


class BucketSortCore(StreamCore):
    """Bins a stream of uint32 keys by their ``log2(n_buckets)`` top bits."""

    def __init__(self, n_buckets: int):
        if n_buckets < 2 or n_buckets & (n_buckets - 1):
            raise OffloadError(
                f"bucket count must be a power of two >= 2, got {n_buckets}"
            )
        self.n_buckets = n_buckets
        super().__init__(
            CoreSpec(
                name=f"bucket-sort-{n_buckets}",
                clbs=bucket_sort_core_clbs(n_buckets),
                ram_kbits=int(_PER_BUCKET_RAM_KBITS * n_buckets) + 8,
                bytes_per_cycle=4.0,  # one 32-bit key per cycle
                description=f"{n_buckets}-way top-bits binning",
            )
        )

    @property
    def shift(self) -> int:
        return 32 - self.n_buckets.bit_length() + 1

    def bucket_of(self, keys: np.ndarray) -> np.ndarray:
        """Bucket index per key (vectorized)."""
        return (keys.astype(np.uint32) >> np.uint32(self.shift)).astype(np.int64)

    def apply(self, data: np.ndarray, **context) -> list[np.ndarray]:
        """Bin ``data`` (uint32 keys); returns a list of per-bucket arrays.

        The concatenation of the buckets is a permutation of the input,
        and every key in bucket b is smaller than every key in bucket
        b+1 with respect to the top bits — the invariants the tests and
        the host-side count sort rely on.
        """
        keys = np.asarray(data)
        if keys.dtype != np.uint32:
            raise OffloadError(f"bucket sort expects uint32 keys, got {keys.dtype}")
        self.bytes_processed += keys.nbytes
        idx = self.bucket_of(keys)
        order = np.argsort(idx, kind="stable")
        sorted_by_bucket = keys[order]
        counts = np.bincount(idx, minlength=self.n_buckets)
        bounds = np.concatenate(([0], np.cumsum(counts)))
        return [
            sorted_by_bucket[bounds[b] : bounds[b + 1]]
            for b in range(self.n_buckets)
        ]
