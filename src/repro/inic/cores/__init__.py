"""Stream-core library for INIC designs."""

from .base import CoreSpec, StreamCore
from .bucketsort import BucketSortCore, bucket_sort_core_clbs, max_buckets_for_clbs
from .collective import REDUCE_OPS, BroadcastCore, ReduceCore
from .datatype import DatatypeEngineCore, IndexedLayout, VectorLayout
from .fifo import FIFOCore
from .packetizer import DepacketizerCore, PacketizerCore
from .permute import FinalPermutationCore
from .transpose import LocalTransposeCore, local_transpose_blocks

__all__ = [
    "BroadcastCore",
    "BucketSortCore",
    "CoreSpec",
    "DatatypeEngineCore",
    "DepacketizerCore",
    "FIFOCore",
    "FinalPermutationCore",
    "IndexedLayout",
    "LocalTransposeCore",
    "PacketizerCore",
    "REDUCE_OPS",
    "ReduceCore",
    "StreamCore",
    "VectorLayout",
    "bucket_sort_core_clbs",
    "local_transpose_blocks",
    "max_buckets_for_clbs",
]
