"""MPI derived-datatype engine (the paper's future work, Section 8).

Gathers strided/indexed host-memory regions into a contiguous stream on
the way out (and scatters on the way in) — the NIC-side realization of
MPI derived datatypes, so non-contiguous sends cost no host pack/unpack
pass.

The functional model supports the two classic layouts:

* ``VectorLayout`` — count blocks of ``blocklen`` elements every
  ``stride`` elements (``MPI_Type_vector``),
* ``IndexedLayout`` — explicit block offsets (``MPI_Type_indexed``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...errors import OffloadError
from .base import CoreSpec, StreamCore

__all__ = ["VectorLayout", "IndexedLayout", "DatatypeEngineCore"]


@dataclass(frozen=True)
class VectorLayout:
    """count blocks of blocklen elements, start-to-start stride elements."""

    count: int
    blocklen: int
    stride: int

    def __post_init__(self) -> None:
        if self.count < 1 or self.blocklen < 1:
            raise OffloadError("vector layout needs positive count/blocklen")
        if self.stride < self.blocklen:
            raise OffloadError("vector stride smaller than block length")

    def indices(self) -> np.ndarray:
        base = np.arange(self.count)[:, None] * self.stride
        offs = np.arange(self.blocklen)[None, :]
        return (base + offs).ravel()

    @property
    def elements(self) -> int:
        return self.count * self.blocklen


@dataclass(frozen=True)
class IndexedLayout:
    """Explicit (offset, blocklen) pairs, in element units."""

    offsets: tuple[int, ...]
    blocklens: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.offsets) != len(self.blocklens) or not self.offsets:
            raise OffloadError("indexed layout needs matching non-empty lists")
        if any(b < 1 for b in self.blocklens):
            raise OffloadError("indexed block lengths must be positive")

    def indices(self) -> np.ndarray:
        parts = [
            np.arange(off, off + blen)
            for off, blen in zip(self.offsets, self.blocklens)
        ]
        return np.concatenate(parts)

    @property
    def elements(self) -> int:
        return int(sum(self.blocklens))


class DatatypeEngineCore(StreamCore):
    """Gather/scatter address generator in the DMA path."""

    def __init__(self):
        super().__init__(
            CoreSpec(
                name="datatype-engine",
                clbs=800,
                ram_kbits=64,
                bytes_per_cycle=8.0,
                description="strided/indexed gather-scatter DMA addressing",
            )
        )

    def gather(self, source: np.ndarray, layout) -> np.ndarray:
        """Pack ``layout`` elements of ``source`` into a contiguous array."""
        flat = np.ascontiguousarray(source).ravel()
        idx = layout.indices()
        if idx.max() >= flat.size:
            raise OffloadError(
                f"layout reaches element {int(idx.max())} of a {flat.size}-element buffer"
            )
        out = flat[idx].copy()
        self.bytes_processed += out.nbytes
        return out

    def scatter(self, packed: np.ndarray, layout, target: np.ndarray) -> None:
        """Unpack a contiguous array into ``layout`` positions of ``target``."""
        flat = target.ravel()
        idx = layout.indices()
        if idx.max() >= flat.size:
            raise OffloadError(
                f"layout reaches element {int(idx.max())} of a {flat.size}-element buffer"
            )
        if packed.size != idx.size:
            raise OffloadError(
                f"packed size {packed.size} != layout elements {idx.size}"
            )
        flat[idx] = packed
        self.bytes_processed += packed.nbytes
