"""Packetize / de-packetize cores (present in every INIC design).

These are the MAC-adjacent blocks of Figures 2(b)/3(b): they frame card
memory into the custom protocol's 1024-byte packets and strip headers on
the way in.  Their functional job in the simulator is bookkeeping
(chunk geometry); the real framing happens in the card datapath.
"""

from __future__ import annotations

from ...errors import OffloadError
from .base import CoreSpec, StreamCore

__all__ = ["PacketizerCore", "DepacketizerCore"]


class PacketizerCore(StreamCore):
    """Frames outgoing card-memory data into protocol packets."""

    def __init__(self, packet_size: int = 1024):
        if packet_size < 1:
            raise OffloadError("packet size must be >= 1")
        self.packet_size = packet_size
        super().__init__(
            CoreSpec(
                name="packetize",
                clbs=250,
                ram_kbits=8,
                bytes_per_cycle=8.0,
                description=f"{packet_size}-byte framing onto the MAC",
            )
        )

    def packets_for(self, nbytes: int) -> int:
        """Number of protocol packets for an ``nbytes`` transfer."""
        if nbytes < 0:
            raise OffloadError("negative byte count")
        return -(-nbytes // self.packet_size)


class DepacketizerCore(StreamCore):
    """Strips protocol headers from incoming MAC frames."""

    def __init__(self, packet_size: int = 1024):
        if packet_size < 1:
            raise OffloadError("packet size must be >= 1")
        self.packet_size = packet_size
        super().__init__(
            CoreSpec(
                name="depacketize",
                clbs=250,
                ram_kbits=8,
                bytes_per_cycle=8.0,
                description="header strip + plan accounting",
            )
        )
