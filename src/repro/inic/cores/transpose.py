"""Local-transpose stream core (Figure 2(b), send side).

The FFTW-style distributed transpose first transposes each M x M block
of the local M x N panel, then ships block p to processor p.  On the
INIC, this block transpose happens *as the data streams from host memory
into card memory* — the "Local Transpose" box of Figure 2(b) — so it
costs no host time and no extra pass over DRAM.

``apply`` performs the real transpose with numpy (the simulation is
functional); the streaming rate models a 64-bit datapath writing
INIC memory with a transposed address generator.
"""

from __future__ import annotations

import numpy as np

from ...errors import OffloadError
from .base import CoreSpec, StreamCore

__all__ = ["LocalTransposeCore", "local_transpose_blocks"]


def local_transpose_blocks(panel: np.ndarray, n_parts: int) -> list[np.ndarray]:
    """Split a local (M x N) panel into ``n_parts`` M-column blocks and
    transpose each — the per-destination payloads of the FFT transpose.

    ``panel`` has M = N / n_parts rows on each of ``n_parts`` processors.
    """
    if panel.ndim != 2:
        raise OffloadError(f"panel must be 2-D, got shape {panel.shape}")
    m, n = panel.shape
    if n % n_parts != 0:
        raise OffloadError(f"{n} columns do not split into {n_parts} blocks")
    width = n // n_parts
    return [
        np.ascontiguousarray(panel[:, p * width : (p + 1) * width].T)
        for p in range(n_parts)
    ]


class LocalTransposeCore(StreamCore):
    """Transposes M x M blocks in the host->card stream."""

    def __init__(self, block_rows_hint: int = 0):
        super().__init__(
            CoreSpec(
                name="local-transpose",
                clbs=700,
                ram_kbits=32,
                bytes_per_cycle=8.0,  # 64-bit address-swizzled write port
                description="block transpose via address generation into card RAM",
            )
        )
        self.block_rows_hint = block_rows_hint

    def apply(self, data: np.ndarray, **context) -> np.ndarray:
        """Transpose one block (must be square for an in-stream swizzle)."""
        if data.ndim != 2 or data.shape[0] != data.shape[1]:
            raise OffloadError(
                f"local transpose expects square blocks, got {data.shape}"
            )
        self.bytes_processed += data.nbytes
        return np.ascontiguousarray(data.T)
