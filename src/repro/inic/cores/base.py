"""Stream-core abstraction.

A *stream core* is a hardware function block in the INIC datapath
(the rectangles of Figures 2(b), 3(b) and 7): it transforms data at a
fixed number of bytes per fabric clock cycle as the data flows through.

Cores are **functional**: ``apply(...)`` really performs the transform
on numpy data (so simulated applications produce bit-correct results),
while ``processing_time`` yields the simulated cost of streaming bytes
through the block.  A passive core in the datapath costs zero *extra*
time whenever its rate exceeds the surrounding transfer rates — the
paper's "processing data as it passes through the device at zero cost"
(Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ...errors import ConfigurationError

__all__ = ["CoreSpec", "StreamCore"]


@dataclass(frozen=True)
class CoreSpec:
    """Static properties of a core design."""

    name: str
    clbs: int
    ram_kbits: int
    bytes_per_cycle: float
    description: str = ""

    def __post_init__(self) -> None:
        if self.clbs < 0 or self.ram_kbits < 0:
            raise ConfigurationError(f"core {self.name!r}: negative resources")
        if self.bytes_per_cycle <= 0:
            raise ConfigurationError(f"core {self.name!r}: bad throughput")


class StreamCore:
    """Base class: identity transform at ``bytes_per_cycle``."""

    def __init__(self, spec: CoreSpec):
        self.spec = spec
        #: bytes pushed through this core (statistics)
        self.bytes_processed = 0.0

    def rate(self, clock_hz: float) -> float:
        """Streaming throughput in bytes/s at the given fabric clock."""
        if clock_hz <= 0:
            raise ConfigurationError("clock must be > 0")
        return self.spec.bytes_per_cycle * clock_hz

    def processing_time(self, nbytes: float, clock_hz: float) -> float:
        """Seconds to stream ``nbytes`` through the core."""
        if nbytes < 0:
            raise ConfigurationError("negative byte count")
        return nbytes / self.rate(clock_hz)

    def apply(self, data: Any, **context: Any) -> Any:
        """Functional transform (identity by default)."""
        self.bytes_processed += getattr(data, "nbytes", 0)
        return data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.spec.name!r} {self.spec.clbs} CLBs>"
