"""Collective-operation cores (the paper's future work, Section 8).

"The implications of this architecture are far reaching, with the
potential to accelerate functions ranging from collective operations to
MPI derived data types..."  These cores realize that extension: reduce
and broadcast elements processed in the NIC datapath, so a cluster-wide
allreduce costs each host a single descriptor post and a single
completion interrupt.

``ReduceCore.apply`` combines two operand arrays element-wise at stream
rate; the card applies it to each arriving contribution against its
accumulator (see :meth:`repro.inic.card.INICCard.reduce_accumulate`).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ...errors import OffloadError
from .base import CoreSpec, StreamCore

__all__ = ["ReduceCore", "BroadcastCore", "REDUCE_OPS"]

REDUCE_OPS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "sum": np.add,
    "max": np.maximum,
    "min": np.minimum,
    "prod": np.multiply,
}


class ReduceCore(StreamCore):
    """Element-wise reduction in the datapath."""

    def __init__(self, op: str = "sum", element_bytes: int = 8):
        if op not in REDUCE_OPS:
            raise OffloadError(f"unknown reduce op {op!r}; have {sorted(REDUCE_OPS)}")
        if element_bytes not in (4, 8):
            raise OffloadError("reduce supports 4- or 8-byte elements")
        self.op = op
        self.element_bytes = element_bytes
        super().__init__(
            CoreSpec(
                name=f"reduce-{op}",
                clbs=900 if element_bytes == 8 else 600,
                ram_kbits=32,
                # one element in + one accumulator read per cycle
                bytes_per_cycle=float(element_bytes),
                description=f"streaming {op} over {element_bytes}-byte elements",
            )
        )

    def apply(self, data: np.ndarray, accumulator: np.ndarray = None, **context):
        arr = np.asarray(data)
        self.bytes_processed += arr.nbytes
        if accumulator is None:
            return arr.copy()
        if accumulator.shape != arr.shape:
            raise OffloadError(
                f"reduce shape mismatch {accumulator.shape} vs {arr.shape}"
            )
        return REDUCE_OPS[self.op](accumulator, arr)


class BroadcastCore(StreamCore):
    """Replicates one stream to all peers (switch-assisted fan-out)."""

    def __init__(self):
        super().__init__(
            CoreSpec(
                name="broadcast",
                clbs=300,
                ram_kbits=16,
                bytes_per_cycle=8.0,
                description="replicated transmit of one card-memory region",
            )
        )
