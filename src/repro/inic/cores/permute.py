"""Final-permutation stream core (Figure 2(b), receive side).

After the all-to-all, processor i holds one M x M block from every
other processor; interleaving them column-block-wise yields its panel of
the transposed matrix.  On the INIC this happens in "Permutation Memory"
as frames are de-packetized — again zero host cost.

``assemble`` is the functional gather: blocks keyed by source rank are
placed into the local (M x N) result panel.
"""

from __future__ import annotations

import numpy as np

from ...errors import OffloadError
from .base import CoreSpec, StreamCore

__all__ = ["FinalPermutationCore"]


class FinalPermutationCore(StreamCore):
    """Interleaves received blocks into the transposed panel."""

    def __init__(self):
        super().__init__(
            CoreSpec(
                name="final-permutation",
                clbs=650,
                ram_kbits=48,
                bytes_per_cycle=8.0,
                description="block interleave via permutation memory addressing",
            )
        )

    def assemble(self, blocks_by_source: dict[int, np.ndarray]) -> np.ndarray:
        """Place block ``p`` (from source rank p) at column band p.

        Each block is M x M; the result is M x (M * n_sources).
        """
        if not blocks_by_source:
            raise OffloadError("no blocks to assemble")
        ranks = sorted(blocks_by_source)
        if ranks != list(range(len(ranks))):
            raise OffloadError(f"non-contiguous source ranks {ranks}")
        first = blocks_by_source[0]
        if first.ndim != 2 or first.shape[0] != first.shape[1]:
            raise OffloadError(f"blocks must be square, got {first.shape}")
        m = first.shape[0]
        for r in ranks:
            if blocks_by_source[r].shape != (m, m):
                raise OffloadError(
                    f"block {r} has shape {blocks_by_source[r].shape}, expected {(m, m)}"
                )
        out = np.empty((m, m * len(ranks)), dtype=first.dtype)
        for r in ranks:
            out[:, r * m : (r + 1) * m] = blocks_by_source[r]
            self.bytes_processed += blocks_by_source[r].nbytes
        return out

    def apply(self, data: np.ndarray, **context) -> np.ndarray:
        """Per-block pass-through (placement happens in ``assemble``)."""
        self.bytes_processed += data.nbytes
        return data
