"""INIC on-card memory.

The ACEII card has "limited memory attached to the FPGAs" (Section 5);
the ideal INIC is "a single chip with external RAM" (Section 5).  The
model is a byte-budget (:class:`~repro.sim.resources.Container`) plus a
bandwidth number used by cores whose work is memory-bound — the paper's
reason to *keep count sort on the host*: "cache memory bandwidth on a
commodity processor is much higher than the comparable memory bandwidth
for an INIC" (Section 3.2.2).
"""

from __future__ import annotations

from ..errors import INICError
from ..sim.engine import Simulator
from ..sim.resources import Container

__all__ = ["INICMemory"]


class INICMemory:
    """Byte-accounted card SRAM/SDRAM."""

    def __init__(
        self,
        sim: Simulator,
        capacity: int,
        bandwidth: float,
        name: str = "inic-mem",
    ):
        if capacity <= 0:
            raise INICError("INIC memory capacity must be > 0")
        if bandwidth <= 0:
            raise INICError("INIC memory bandwidth must be > 0")
        self.sim = sim
        self.capacity = int(capacity)
        self.bandwidth = float(bandwidth)
        self.name = name
        self._space = Container(
            sim, capacity=float(capacity), init=float(capacity), name=f"{name}.space"
        )

    @property
    def free_bytes(self) -> float:
        return self._space.level

    @property
    def used_bytes(self) -> float:
        return self.capacity - self._space.level

    def allocate(self, nbytes: float):
        """Generator: reserve ``nbytes`` (blocks until available)."""
        if nbytes <= 0:
            raise INICError(f"allocate of {nbytes} bytes")
        if nbytes > self.capacity:
            raise INICError(
                f"allocation of {nbytes} B exceeds card memory ({self.capacity} B)"
            )
        yield self._space.get(nbytes)

    def release(self, nbytes: float) -> None:
        if nbytes <= 0:
            raise INICError(f"release of {nbytes} bytes")
        self._space.put(nbytes)

    def touch_time(self, nbytes: float) -> float:
        """Seconds for a memory-bound pass over ``nbytes`` on the card."""
        if nbytes < 0:
            raise INICError("negative byte count")
        return nbytes / self.bandwidth

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<INICMemory {self.name!r} {self.used_bytes:g}/{self.capacity} B used>"
