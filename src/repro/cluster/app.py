"""Parallel-application harness.

Runs one program per rank inside a built cluster and collects per-rank
results and the overall makespan — the quantity the paper's speedup
plots are computed from.  A rank program may be a generator function
(``yield`` events) or an ``async`` function (``await`` events); the two
styles drive the same process machinery and produce identical event
schedules (see :mod:`repro.sim.process`).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..errors import ApplicationError
from .builder import Cluster
from .mpi import Communicator, RankContext

__all__ = ["AppResult", "ParallelApp"]


@dataclass
class AppResult:
    """Outcome of one parallel run."""

    makespan: float  # time from t0 until the last rank finished
    rank_times: list[float]  # per-rank completion times (relative to t0)
    rank_results: list[Any]  # per-rank return values
    breakdown: dict[str, float] = field(default_factory=dict)  # trace phases

    @property
    def size(self) -> int:
        return len(self.rank_times)


class ParallelApp:
    """Drives a per-rank program over a cluster."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self.comm = Communicator(cluster)

    def run(
        self,
        rank_program: Callable[[RankContext], Any],
        max_events: Optional[int] = None,
    ) -> AppResult:
        """Run ``rank_program(ctx)`` on every rank.

        ``rank_program`` is a generator function or an ``async``
        function of one :class:`RankContext` argument.  Returns
        per-rank results and the makespan.  May be called repeatedly on
        the same cluster (phases accumulate on the clock).
        """
        sim = self.cluster.sim
        t0 = sim.now
        results: list[Any] = [None] * self.comm.size
        times: list[float] = [0.0] * self.comm.size

        def wrap(ctx: RankContext):
            # Creating the body runs no program code, so generator and
            # coroutine ranks spawn with identical event/seq schedules.
            body = rank_program(ctx)
            if inspect.iscoroutine(body):

                async def awrap():
                    value = await body
                    results[ctx.rank] = value
                    times[ctx.rank] = sim.now - t0
                    return value

                return awrap()

            def gwrap():
                value = yield from body
                results[ctx.rank] = value
                times[ctx.rank] = sim.now - t0
                return value

            return gwrap()

        procs = [
            sim.process(wrap(ctx), name=f"rank{ctx.rank}") for ctx in self.comm
        ]
        done = sim.all_of(procs)
        sim.run(until=done, max_events=max_events)
        if not all(p.processed for p in procs):
            raise ApplicationError("some ranks did not finish")  # pragma: no cover
        makespan = max(times) if times else 0.0
        return AppResult(
            makespan=makespan,
            rank_times=times,
            rank_results=results,
            breakdown=self.cluster.trace.breakdown(),
        )
