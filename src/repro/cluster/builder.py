"""Cluster assembly: specs and the builder.

``ClusterSpec`` describes a whole machine; ``Cluster.build`` turns it
into a wired simulation: nodes, their protocol stacks, and either
standard NICs or INIC cards on a switched star fabric.

``athlon_node()`` captures the prototype node of Section 5 (1 GHz
Athlon, 64 KiB L1 / 256 KiB L2, PC133 SDRAM, 32-bit/33 MHz PCI).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..faults import FaultPlan, FaultSpec
from ..hw.cpu import CPU
from ..hw.interrupts import CoalescePolicy
from ..hw.memory import CacheLevel, MemoryHierarchy
from ..hw.pci import pci_32_33
from ..inic.card import CardSpec, IDEAL_INIC, INICCard
from ..net.fabric import (
    GIGABIT_ETHERNET,
    AggregateFabric,
    NetworkTechnology,
    build_aggregate_star,
    build_star,
)
from ..net.topology import HierarchicalFabric, build_fattree, build_torus
from ..net.nic import StandardNIC
from ..net.switch import Switch
from ..protocols.tcp import TCPConfig, TCPStack
from ..sim.engine import Simulator
from ..sim.rand import RandomStreams
from ..sim.trace import TraceRecorder
from ..units import KiB
from .node import Node

__all__ = ["NodeHardware", "ClusterSpec", "Cluster", "FABRIC_KINDS", "athlon_node"]

#: supported ``ClusterSpec.fabric`` values, alphabetical
FABRIC_KINDS = ("aggregate", "fattree", "torus", "wire")

_FABRIC_BUILDERS = {
    "wire": build_star,
    "aggregate": build_aggregate_star,
    "fattree": build_fattree,
    "torus": build_torus,
}


@dataclass(frozen=True)
class NodeHardware:
    """Per-node hardware parameters."""

    clock_hz: float = 1e9  # 1 GHz Athlon
    flops_per_cycle: float = 1.0
    l1_bytes: int = 64 * KiB
    l1_stream_bw: float = 8e9
    l1_random_bw: float = 4e9
    l2_bytes: int = 256 * KiB
    l2_stream_bw: float = 2.5e9
    l2_random_bw: float = 1.2e9
    dram_stream_bw: float = 0.5e9  # PC133 SDRAM
    dram_random_bw: float = 0.1e9
    interrupt_cost: float = 8e-6
    # SysKonnect-style mitigation: fire after 70us or 10 frames.
    coalesce: CoalescePolicy = field(
        default_factory=lambda: CoalescePolicy(delay=70e-6, max_frames=10)
    )

    def hierarchy(self) -> MemoryHierarchy:
        return MemoryHierarchy(
            [
                CacheLevel("L1", self.l1_bytes, self.l1_stream_bw, self.l1_random_bw),
                CacheLevel("L2", self.l2_bytes, self.l2_stream_bw, self.l2_random_bw),
                CacheLevel(
                    "DRAM", float("inf"), self.dram_stream_bw, self.dram_random_bw
                ),
            ]
        )


def athlon_node() -> NodeHardware:
    """The prototype's node hardware (Section 5)."""
    return NodeHardware()


@dataclass(frozen=True)
class ClusterSpec:
    """A whole machine description."""

    n_nodes: int
    network: NetworkTechnology = GIGABIT_ETHERNET
    node: NodeHardware = field(default_factory=athlon_node)
    tcp: TCPConfig = field(default_factory=TCPConfig)
    inic: Optional[CardSpec] = None  # None: standard NICs + TCP
    seed: int = 0x5EED
    #: fault-injection scenario; ``None`` (or an all-default spec) keeps
    #: the ideal fabric with zero extra hooks installed
    faults: Optional[FaultSpec] = None
    #: fabric topology/fidelity: ``"wire"`` builds the full per-wire
    #: star, ``"aggregate"`` the O(ports) busy-until star, ``"fattree"``
    #: and ``"torus"`` the hierarchical multi-hop models
    #: (:mod:`repro.net.topology`)
    fabric: str = "wire"
    #: topology builder keyword options as sorted ``(key, value)`` pairs
    #: (kept hashable so the frozen spec stays usable as a cache key) —
    #: e.g. ``(("oversub", 2),)`` for a 2:1 fat-tree
    fabric_options: tuple[tuple[str, object], ...] = ()
    #: opt-in for the exchange-phase bulk fast path
    #: (:mod:`repro.net.flowclock`): cards admit train scatters in
    #: closed form when per-operation eligibility holds
    fastpath: bool = False

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("cluster needs at least one node")
        if self.fabric not in FABRIC_KINDS:
            raise ValueError(
                f"unknown fabric {self.fabric!r} for ClusterSpec.fabric "
                f"(choose from {', '.join(FABRIC_KINDS)})"
            )
        opts = tuple(
            sorted(
                (str(k), tuple(v) if isinstance(v, list) else v)
                for k, v in self.fabric_options
            )
        )
        object.__setattr__(self, "fabric_options", opts)
        if opts and self.fabric in ("wire", "aggregate"):
            names = ", ".join(k for k, _ in opts)
            raise ValueError(
                f"fabric options ({names}) are only valid for hierarchical "
                f"fabrics (fattree, torus), not fabric={self.fabric!r}"
            )

    # -- builders ----------------------------------------------------------
    # Every builder swaps exactly one field on an otherwise-unchanged
    # copy, so chaining is order-independent by construction:
    # ``spec.with_inic(c).with_faults(f) == spec.with_faults(f).with_inic(c)``
    # (tests/test_api_facade.py pins this down).

    def replace(self, **changes) -> "ClusterSpec":
        """A copy with ``changes`` applied (frozen-dataclass replace)."""
        return replace(self, **changes)

    def with_inic(self, card: Optional[CardSpec] = IDEAL_INIC) -> "ClusterSpec":
        """With an INIC in every node (``None`` reverts to NIC+TCP)."""
        return replace(self, inic=card)

    def with_faults(self, faults: Optional[FaultSpec]) -> "ClusterSpec":
        """With a fault scenario (``None`` restores the ideal fabric)."""
        return replace(self, faults=faults)

    def with_network(self, network: NetworkTechnology) -> "ClusterSpec":
        return replace(self, network=network)

    def with_tcp(self, tcp: TCPConfig) -> "ClusterSpec":
        return replace(self, tcp=tcp)

    def with_node(self, node: NodeHardware) -> "ClusterSpec":
        return replace(self, node=node)

    def with_seed(self, seed: int) -> "ClusterSpec":
        return replace(self, seed=seed)

    def with_fabric(self, fabric: str, **options) -> "ClusterSpec":
        """With the given fabric kind (see :data:`FABRIC_KINDS`).

        Keyword options parameterize hierarchical topologies, e.g.
        ``with_fabric("fattree", oversub=2)`` or
        ``with_fabric("torus", dims=(8, 8, 4))``.
        """
        opts = tuple(sorted(options.items()))
        return replace(self, fabric=fabric, fabric_options=opts)


class Cluster:
    """A built, wired cluster simulation."""

    def __init__(
        self,
        spec: ClusterSpec,
        sim: Simulator,
        nodes: list[Node],
        switch: Switch | AggregateFabric | HierarchicalFabric,
        trace: TraceRecorder,
        streams: RandomStreams,
        fault_plan: Optional[FaultPlan] = None,
    ):
        self.spec = spec
        self.sim = sim
        self.nodes = nodes
        self.switch = switch
        self.trace = trace
        self.streams = streams
        #: the scenario's fault injectors (``None`` on an ideal fabric);
        #: runners read its counters and realized schedule after a run
        self.fault_plan = fault_plan

    @property
    def size(self) -> int:
        return len(self.nodes)

    @classmethod
    def build(cls, spec: ClusterSpec) -> "Cluster":
        sim = Simulator()
        trace = TraceRecorder(sim)
        streams = RandomStreams(spec.seed)
        plan: Optional[FaultPlan] = None
        if spec.faults is not None and spec.faults.enabled:
            plan = FaultPlan(spec.faults)
        nodes: list[Node] = []
        stations = []
        for rank in range(spec.n_nodes):
            hw = spec.node
            cpu = CPU(
                sim,
                hw.hierarchy(),
                clock_hz=hw.clock_hz,
                flops_per_cycle=hw.flops_per_cycle,
                interrupt_cost=hw.interrupt_cost,
                name=f"cpu{rank}",
            )
            pci = pci_32_33(sim, name=f"pci{rank}")
            nic = tcp = inic = None
            if spec.inic is None:
                nic_kwargs = {}
                if plan is not None:
                    nic_kwargs["rx_ring"] = plan.rx_ring_depth(256)
                nic = StandardNIC(
                    sim,
                    address=NodeAddr(rank),
                    host_bus=pci,
                    cpu=cpu,
                    coalesce=hw.coalesce,
                    name=f"nic{rank}",
                    **nic_kwargs,
                )
                tcp = TCPStack(sim, nic, cpu, config=spec.tcp, name=f"tcp{rank}")
                stations.append((nic.address, nic))
            else:
                inic = INICCard(
                    sim,
                    address=NodeAddr(rank),
                    spec=spec.inic,
                    cpu=cpu,
                    name=f"inic{rank}",
                )
                inic.fastpath = spec.fastpath
                if plan is not None:
                    inic.fabric.install_config_fault(
                        lambda attempt, _name=inic.name: plan.config_attempt_fails(
                            _name, attempt
                        )
                    )
                stations.append((inic.address, inic))
            nodes.append(Node(sim, rank, cpu, pci, nic=nic, tcp=tcp, inic=inic))
        builder = _FABRIC_BUILDERS[spec.fabric]
        switch = builder(
            sim,
            stations,
            tech=spec.network,
            faults=plan,
            **dict(spec.fabric_options),
        )
        if plan is not None and plan.spec.components:
            install = getattr(switch, "install_component_faults", None)
            if install is None:
                names = ", ".join(
                    c.component for c in plan.spec.components
                )
                raise ValueError(
                    f"fabric {spec.fabric!r} cannot schedule component "
                    f"faults ({names}): the full wire star has no "
                    f"failable components (choose from "
                    f"{', '.join(k for k in FABRIC_KINDS if k != 'wire')})"
                )
            install(plan)
        return cls(spec, sim, nodes, switch, trace, streams, fault_plan=plan)

    def run(self, until=None, max_events=None):
        return self.sim.run(until=until, max_events=max_events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "inic" if self.spec.inic else "tcp"
        return f"<Cluster {self.size}x {kind} over {self.spec.network.name}>"


def NodeAddr(rank: int):
    """Address for a rank (thin alias to keep builder readable)."""
    from ..net.addresses import MacAddress

    return MacAddress(rank)
