"""SimMPI: a rank-oriented message-passing veneer over the simulation.

The baseline applications (FFTW-style FFT, parallel sort) are written
against this tiny MPI-flavoured interface, exactly as the paper's
baselines run over MPI-on-TCP.  Each rank's code is a generator or
coroutine driven by the DES kernel; sends/recvs return events, so both
``yield ctx.send(...)`` and ``await ctx.send(...)`` work (generator
helpers like ``ctx.compute`` are awaited via
:func:`repro.sim.process.drive`).

Self-sends never touch the network (MPI semantics); they pay a host
memcpy through the memory hierarchy instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..errors import ApplicationError
from ..hw.memory import AccessPattern
from ..net.addresses import MacAddress
from ..protocols.base import MessageView
from ..sim.engine import Event
from .builder import Cluster
from .node import Node

__all__ = ["MPIConfig", "RankContext", "Communicator"]


@dataclass(frozen=True)
class MPIConfig:
    """MPI-library layer costs (era: MPICH ch_p4 over TCP, ~2001).

    The paper's baselines run MPI over TCP; the library itself adds
    per-message host costs and, for large messages, an eager/rendezvous
    split: above ``eager_limit`` the sender first posts a
    request-to-send and waits for a clear-to-send, adding a round trip
    — the behaviour contemporary MPICH/LAM exhibited.
    """

    send_cost: float = 80e-6  # send-path library + syscall cost
    recv_match_cost: float = 50e-6  # matching + user-buffer copy cost
    eager_limit: int = 64 * 1024  # rendezvous above this
    control_bytes: int = 32  # RTS/CTS message size

    def __post_init__(self) -> None:
        if self.send_cost < 0 or self.recv_match_cost < 0:
            raise ApplicationError("negative MPI cost")
        if self.eager_limit < 1 or self.control_bytes < 1:
            raise ApplicationError("bad MPI protocol limits")


#: tag space reserved for the rendezvous control channel
_RTS_TAG = 1 << 28
_CTS_TAG_BASE = 1 << 29


class RankContext:
    """What a rank's program sees: its node plus send/recv primitives."""

    def __init__(self, comm: "Communicator", rank: int):
        self.comm = comm
        self.rank = rank
        self.node: Node = comm.cluster.nodes[rank]
        self.sim = comm.cluster.sim
        self.trace = comm.cluster.trace
        self.mpi_config = comm.mpi_config
        #: SPMD collective-phase counter (advanced in lock-step by usage)
        self._phase = 0
        self._rdv_tokens = 0
        if self.node.tcp is not None:
            self.sim.process(
                self._rendezvous_responder(), name=f"mpi.ctl.{rank}"
            )

    @property
    def size(self) -> int:
        return self.comm.size

    def next_phase_tag(self) -> int:
        """A tag unique to the current collective phase.

        All ranks call collectives in the same order (SPMD), so the
        counter agrees cluster-wide without communication.
        """
        self._phase += 1
        return self.comm.TAG_PHASE_BASE + self._phase

    # -- point to point ------------------------------------------------------------
    def send(
        self, dst: int, nbytes: int, payload: Any = None, tag: int = 0
    ) -> Event:
        """Start an MPI send; the returned event fires at completion.

        Small messages go eagerly; messages above the MPI eager limit
        first exchange an RTS/CTS handshake with the receiver's library
        (rendezvous), as era MPI implementations over TCP did.
        """
        if not 0 <= dst < self.size:
            raise ApplicationError(f"bad destination rank {dst}")
        if dst == self.rank:
            return self._self_send(nbytes, payload, tag)
        done = self.sim.event(name=f"mpi.send.{self.rank}->{dst}")
        self.sim.process(
            self._send_proc(dst, nbytes, payload, tag, done),
            name=f"mpi.snd.{self.rank}",
        )
        return done

    def _send_proc(self, dst: int, nbytes: int, payload: Any, tag: int, done: Event):
        cfg = self.mpi_config
        tcp = self.node.require_tcp()
        yield from self.node.cpu.busy(cfg.send_cost)
        if nbytes > cfg.eager_limit:
            # Rendezvous: RTS carries a token; wait for the CTS echo.
            self._rdv_tokens += 1
            token = (self.rank << 16) | (self._rdv_tokens & 0xFFFF)
            tcp.send(
                MacAddress(dst),
                cfg.control_bytes,
                payload=token,
                tag=_RTS_TAG,
            )
            yield tcp.recv(src=MacAddress(dst), tag=_CTS_TAG_BASE + token)
        yield tcp.send(MacAddress(dst), nbytes, payload=payload, tag=tag)
        done.succeed(None)

    def _rendezvous_responder(self):
        """Library-side progress loop answering RTS with CTS."""
        cfg = self.mpi_config
        tcp = self.node.require_tcp()
        while True:
            msg = yield tcp.recv(tag=_RTS_TAG)
            self.node.cpu.steal(cfg.recv_match_cost)
            tcp.send(
                msg.src,
                cfg.control_bytes,
                tag=_CTS_TAG_BASE + int(msg.payload),
            )

    def _self_send(self, nbytes: int, payload: Any, tag: int) -> Event:
        """MPI self-send: one memcpy, no wire."""
        done = self.sim.event(name="self-send")
        copy_time = self.node.hierarchy.touch_time(
            2 * nbytes, pattern=AccessPattern.STREAM
        )

        def proc():
            yield from self.node.cpu.busy(copy_time)
            self.node.require_tcp().mailbox.deliver(
                MessageView(
                    src=MacAddress(self.rank), tag=tag, nbytes=nbytes, payload=payload
                )
            )
            done.succeed(None)

        self.sim.process(proc(), name=f"selfsend.{self.rank}")
        return done

    def recv(self, src: Optional[int] = None, tag: Optional[int] = None) -> Event:
        """Event yielding the next matching :class:`MessageView`.

        Charges the MPI matching/copy cost when the message lands.
        """
        addr = MacAddress(src) if src is not None else None
        ev = self.node.require_tcp().recv(src=addr, tag=tag)
        ev.add_callback(
            lambda _e: self.node.cpu.steal(self.mpi_config.recv_match_cost)
        )
        return ev

    # -- compute helpers -------------------------------------------------------------
    def compute(self, seconds: float):
        """Generator: occupy this rank's CPU for ``seconds``."""
        yield from self.node.cpu.busy(seconds)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RankContext {self.rank}/{self.size}>"


class Communicator:
    """The cluster-wide rank namespace."""

    TAG_PHASE_BASE = 1 << 20

    def __init__(self, cluster: Cluster, mpi_config: MPIConfig = MPIConfig()):
        self.cluster = cluster
        self.mpi_config = mpi_config
        self.ranks = [RankContext(self, r) for r in range(cluster.size)]

    @property
    def size(self) -> int:
        return self.cluster.size

    def __getitem__(self, rank: int) -> RankContext:
        return self.ranks[rank]

    def __iter__(self):
        return iter(self.ranks)
