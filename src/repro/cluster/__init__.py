"""Cluster assembly, SimMPI, collectives, and the app harness."""

from .app import AppResult, ParallelApp
from .builder import Cluster, ClusterSpec, NodeHardware, athlon_node
from .collectives import (
    allgather,
    allreduce,
    alltoall,
    alltoall_concurrent,
    barrier,
    bcast,
    gather,
    reduce,
    scatter,
)
from .mpi import Communicator, MPIConfig, RankContext
from .node import Node

__all__ = [
    "AppResult",
    "Cluster",
    "ClusterSpec",
    "Communicator",
    "MPIConfig",
    "Node",
    "NodeHardware",
    "ParallelApp",
    "RankContext",
    "allgather",
    "allreduce",
    "alltoall",
    "alltoall_concurrent",
    "barrier",
    "bcast",
    "gather",
    "reduce",
    "scatter",
    "athlon_node",
]
