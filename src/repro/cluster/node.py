"""A Beowulf node: CPU + memory + PCI + NIC (+ optional INIC).

Mirrors the prototype node of Section 5: "a 32-bit PCI motherboard with
a 1 GHz Athlon and 512 MB of RAM.  On the PCI system bus is a
SysKonnect PCI Gigabit Ethernet NIC, and a Fast Ethernet NIC.  Eight of
the systems include an ACEII card."
"""

from __future__ import annotations

from typing import Optional

from ..hw.cpu import CPU
from ..hw.memory import MemoryHierarchy
from ..inic.card import INICCard
from ..net.addresses import MacAddress
from ..net.nic import StandardNIC
from ..protocols.tcp import TCPStack
from ..sim.bus import FairShareBus
from ..sim.engine import Simulator

__all__ = ["Node"]


class Node:
    """One cluster node and its device complement."""

    def __init__(
        self,
        sim: Simulator,
        rank: int,
        cpu: CPU,
        pci: FairShareBus,
        nic: Optional[StandardNIC] = None,
        tcp: Optional[TCPStack] = None,
        inic: Optional[INICCard] = None,
    ):
        self.sim = sim
        self.rank = rank
        self.address = MacAddress(rank)
        self.cpu = cpu
        self.pci = pci
        self.nic = nic
        self.tcp = tcp
        self.inic = inic

    @property
    def hierarchy(self) -> MemoryHierarchy:
        return self.cpu.hierarchy

    def require_tcp(self) -> TCPStack:
        if self.tcp is None:
            raise RuntimeError(f"node {self.rank} has no TCP stack configured")
        return self.tcp

    def require_inic(self) -> INICCard:
        if self.inic is None:
            raise RuntimeError(f"node {self.rank} has no INIC card")
        return self.inic

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        devs = [d for d, present in (("nic", self.nic), ("inic", self.inic)) if present]
        return f"<Node {self.rank} [{'+'.join(devs)}]>"
