"""Collective operations over SimMPI (host-driven baselines).

These are the software collectives an MPI library would run over TCP —
the comparison points for the INIC's in-datapath collectives.  All are
generators to be driven from a rank's program::

    results = yield from alltoall(ctx, my_blocks)

Every collective derives its message tag from the rank context's SPMD
phase counter, so phases never cross-match.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

import numpy as np

from ..errors import ApplicationError
from .mpi import RankContext

__all__ = [
    "allgather",
    "allreduce",
    "alltoall",
    "alltoall_concurrent",
    "barrier",
    "bcast",
    "gather",
    "reduce",
    "scatter",
]


def barrier(ctx: RankContext):
    """Dissemination barrier: ceil(log2 P) rounds of tiny messages."""
    p = ctx.size
    if p == 1:
        return
    tag = ctx.next_phase_tag()
    k = 1
    while k < p:
        dst = (ctx.rank + k) % p
        src = (ctx.rank - k) % p
        ctx.send(dst, 4, tag=tag + k.bit_length())
        yield ctx.recv(src=src, tag=tag + k.bit_length())
        k *= 2


def bcast(ctx: RankContext, data: Any, nbytes: int, root: int = 0):
    """Binomial-tree broadcast; returns the data on every rank."""
    p = ctx.size
    tag = ctx.next_phase_tag()
    if p == 1:
        return data
    vrank = (ctx.rank - root) % p
    # Receive from the parent (unless root): strip the lowest set bit.
    if vrank != 0:
        parent = vrank & (vrank - 1)
        msg = yield ctx.recv(src=(parent + root) % p, tag=tag)
        data = msg.payload
        nbytes = msg.nbytes
    # Forward to children: vrank + 2^k for 2^k > vrank's lowest bits.
    k = 1
    while k < p:
        if vrank % (2 * k) == 0 and vrank + k < p:
            ctx.send(((vrank + k) + root) % p, nbytes, payload=data, tag=tag)
        k *= 2
    return data


def allgather(ctx: RankContext, data: Any, nbytes: int):
    """Ring allgather; returns a list indexed by rank."""
    p = ctx.size
    out: list[Any] = [None] * p
    out[ctx.rank] = data
    if p == 1:
        return out
    tag = ctx.next_phase_tag()
    right = (ctx.rank + 1) % p
    left = (ctx.rank - 1) % p
    carry = data
    carry_bytes = nbytes
    for step in range(p - 1):
        ctx.send(right, carry_bytes, payload=carry, tag=tag + step)
        msg = yield ctx.recv(src=left, tag=tag + step)
        carry = msg.payload
        carry_bytes = msg.nbytes
        out[(ctx.rank - 1 - step) % p] = carry
    return out


def alltoall(ctx: RankContext, blocks: Sequence[tuple[int, Any]]):
    """Personalized all-to-all, pairwise-exchange schedule.

    ``blocks`` is a sequence of ``(nbytes, payload)`` indexed by
    destination rank (length P; the self block is delivered locally).

    This is FFTW 2.x's MPI transpose schedule: P-1 *sequential* rounds
    of sendrecv with a single partner per round (XOR matching when P is
    a power of two, rotation otherwise).  Each round pays the full
    message latency — the latency-serialization that makes TCP all-to-
    alls flatten as partitions shrink.  The fully concurrent variant is
    :func:`alltoall_concurrent` (used by ablation benches).

    Returns a list indexed by source rank of received payloads.
    """
    p = ctx.size
    if len(blocks) != p:
        raise ApplicationError(f"alltoall needs {p} blocks, got {len(blocks)}")
    tag = ctx.next_phase_tag()
    out: list[Any] = [None] * p

    # Self block: local "copy".
    self_bytes, self_payload = blocks[ctx.rank]
    yield ctx.send(ctx.rank, max(self_bytes, 4), payload=self_payload, tag=tag)
    msg = yield ctx.recv(src=ctx.rank, tag=tag)
    out[ctx.rank] = msg.payload

    pow2 = p & (p - 1) == 0
    for rnd in range(1, p):
        partner = (ctx.rank ^ rnd) if pow2 else (ctx.rank + rnd) % p
        if partner == ctx.rank:
            continue
        nbytes, payload = blocks[partner]
        # Empty blocks still send a header-sized message so receivers
        # need not know the (data-dependent) counts in advance.
        send_ev = ctx.send(partner, max(nbytes, 4), payload=payload, tag=tag)
        src = partner if pow2 else (ctx.rank - rnd) % p
        msg = yield ctx.recv(src=src, tag=tag)
        out[src] = msg.payload
        yield send_ev
    return out


def alltoall_concurrent(ctx: RankContext, blocks: Sequence[tuple[int, Any]]):
    """All sends posted at once (a modern nonblocking all-to-all).

    Kept as the ablation comparison for the pairwise schedule above.
    """
    p = ctx.size
    if len(blocks) != p:
        raise ApplicationError(f"alltoall needs {p} blocks, got {len(blocks)}")
    tag = ctx.next_phase_tag()
    out: list[Any] = [None] * p

    send_events = []
    for shift in range(1, p):
        dst = (ctx.rank + shift) % p
        nbytes, payload = blocks[dst]
        send_events.append(ctx.send(dst, max(nbytes, 4), payload=payload, tag=tag))

    self_bytes, self_payload = blocks[ctx.rank]
    yield ctx.send(ctx.rank, max(self_bytes, 4), payload=self_payload, tag=tag)
    msg = yield ctx.recv(src=ctx.rank, tag=tag)
    out[ctx.rank] = msg.payload

    for shift in range(1, p):
        src = (ctx.rank - shift) % p
        msg = yield ctx.recv(src=src, tag=tag)
        out[src] = msg.payload
    for ev in send_events:
        yield ev
    return out


def allreduce(
    ctx: RankContext,
    data: np.ndarray,
    op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
    compute_cost_per_byte: float = 0.0,
):
    """Reduce-to-root + broadcast (simple but representative baseline)."""
    p = ctx.size
    arr = np.asarray(data)
    nbytes = arr.nbytes
    tag = ctx.next_phase_tag()
    if p == 1:
        return arr.copy()
    if ctx.rank == 0:
        acc = arr.copy()
        for _ in range(p - 1):
            msg = yield ctx.recv(tag=tag)
            if compute_cost_per_byte > 0:
                yield from ctx.compute(compute_cost_per_byte * nbytes)
            acc = op(acc, msg.payload)
        result = acc
    else:
        yield ctx.send(0, nbytes, payload=arr, tag=tag)
        result = None
    result = yield from bcast(ctx, result, nbytes, root=0)
    return result


def gather(ctx: RankContext, data: Any, nbytes: int, root: int = 0):
    """Gather one item per rank at ``root``; returns the list there
    (None elsewhere)."""
    p = ctx.size
    tag = ctx.next_phase_tag()
    if ctx.rank == root:
        out: list[Any] = [None] * p
        out[root] = data
        for _ in range(p - 1):
            msg = yield ctx.recv(tag=tag)
            out[msg.src.value] = msg.payload
        return out
    yield ctx.send(root, max(nbytes, 4), payload=data, tag=tag)
    return None


def scatter(ctx: RankContext, items: Optional[Sequence[Any]], nbytes: int, root: int = 0):
    """Scatter one item per rank from ``root``; returns this rank's item."""
    p = ctx.size
    tag = ctx.next_phase_tag()
    if ctx.rank == root:
        if items is None or len(items) != p:
            raise ApplicationError(f"root must supply {p} items")
        for dst in range(p):
            if dst != root:
                ctx.send(dst, max(nbytes, 4), payload=items[dst], tag=tag)
        return items[root]
    msg = yield ctx.recv(src=root, tag=tag)
    return msg.payload


def reduce(
    ctx: RankContext,
    data: np.ndarray,
    op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
    root: int = 0,
):
    """Reduce to ``root``; returns the result there (None elsewhere)."""
    p = ctx.size
    arr = np.asarray(data)
    tag = ctx.next_phase_tag()
    if p == 1:
        return arr.copy()
    if ctx.rank == root:
        acc = arr.copy()
        for _ in range(p - 1):
            msg = yield ctx.recv(tag=tag)
            acc = op(acc, msg.payload)
        return acc
    yield ctx.send(root, arr.nbytes, payload=arr, tag=tag)
    return None
