"""Output-queued store-and-forward Ethernet switch.

The paper's INIC protocol argument hinges on switch buffering: "there
should be no packet loss as the total amount of data put into the
network never exceeds the total size of the network buffers (combined
NIC and switch buffers)" (Section 4.1).  So the switch models finite
per-output-port byte buffers with tail drop, and exposes drop/occupancy
statistics the tests use to verify that claim for the INIC protocol —
and to produce losses for mis-tuned configurations.

Each output port: a byte-accounted FIFO drained at line rate onto the
attached wire.  Frames become eligible for transmission a fixed lookup
latency after ingress.

Hot path
--------
Ports are event-driven state machines, not generator processes: a frame
through an idle port costs two pooled timed callbacks (transmit start at
lookup-latency, transmit done at serialization end) plus the wire's
delivery — no process spawn per busy period and no separate
forwarding-latency event.  While draining, the port also **coalesces
frame trains**: consecutive queued frames of the same message stream are
merged into one ``frame_count``-weighted frame within the switch's
:class:`~repro.net.batching.BatchPolicy` timing tolerance, so a backlog
of back-to-back MTU frames costs O(trains) events instead of O(frames).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..errors import SwitchError
from ..sim.engine import Simulator
from .addresses import MacAddress
from .batching import BatchPolicy, WIRE_BATCH
from .link import Wire
from .packet import Frame

__all__ = ["Switch", "PortStats"]


class PortStats:
    """Per-output-port counters."""

    def __init__(self) -> None:
        self.frames_forwarded = 0
        self.frames_dropped = 0
        self.bytes_forwarded = 0.0
        self.bytes_dropped = 0.0
        self.max_queue_bytes = 0.0


class _PortIngress:
    """Adapter: terminates the device->switch wire for one port."""

    __slots__ = ("switch", "port")

    def __init__(self, switch: "Switch", port: int):
        self.switch = switch
        self.port = port

    def receive_frame(self, frame: Frame) -> None:
        self.switch._ingress(frame, self.port)


class _OutputPort:
    """One output port: byte-bounded FIFO + event-driven drain."""

    __slots__ = ("switch", "index", "wire", "queue", "queued_bytes", "stats", "_busy")

    def __init__(self, switch: "Switch", index: int):
        self.switch = switch
        self.index = index
        self.wire: Optional[Wire] = None
        #: (frame, ready_time) — ready_time is ingress + lookup latency
        self.queue: deque[tuple[Frame, float]] = deque()
        self.queued_bytes = 0.0
        self.stats = PortStats()
        self._busy = False

    def enqueue(self, frame: Frame, ready_time: float) -> None:
        sw = self.switch
        if self.queued_bytes + frame.wire_size > sw.buffer_bytes_per_port:
            self.stats.frames_dropped += frame.frame_count
            self.stats.bytes_dropped += frame.wire_size
            return
        self.queue.append((frame, ready_time))
        self.queued_bytes += frame.wire_size
        if self.queued_bytes > self.stats.max_queue_bytes:
            self.stats.max_queue_bytes = self.queued_bytes
        if not self._busy:
            self._busy = True
            self._arm(ready_time)

    def _arm(self, ready_time: float) -> None:
        sim = self.switch.sim
        delay = ready_time - sim.now
        if delay > 0:
            sim.call_after(delay, self._start_tx)
        else:
            self._start_tx()

    def _start_tx(self) -> None:
        sim = self.switch.sim
        if self.wire is None:
            raise SwitchError(f"switch port {self.index} has no wire attached")
        frame, _ready = self.queue.popleft()
        # Byte-accounting must free exactly what enqueue charged, which can
        # exceed the coalesced frame's wire size when a padded runt merges
        # into a train.
        acct_bytes = frame.wire_size
        policy = self.switch.batch
        if policy.enabled and self.queue:
            budget = policy.timing_tolerance * self.wire.bandwidth
            extra = 0.0
            while self.queue:
                nxt, nxt_ready = self.queue[0]
                if (
                    nxt_ready > sim.now
                    or extra + nxt.wire_size > budget
                    or frame.frame_count + nxt.frame_count > policy.max_quantum
                    or not frame.can_coalesce(nxt)
                ):
                    break
                self.queue.popleft()
                extra += nxt.wire_size
                acct_bytes += nxt.wire_size
                frame = frame.coalesced(nxt)
        tx_time = frame.wire_size / self.wire.bandwidth
        self.wire.send(frame)
        sim.call_after(tx_time, self._tx_done, acct_bytes, frame.frame_count)

    def _tx_done(self, acct_bytes: float, frame_count: int) -> None:
        # Buffer space is freed once the frame has left the port.
        self.queued_bytes -= acct_bytes
        self.stats.frames_forwarded += frame_count
        self.stats.bytes_forwarded += acct_bytes
        if self.queue:
            self._arm(self.queue[0][1])
        else:
            self._busy = False


class Switch:
    """A non-blocking crossbar with output queueing."""

    def __init__(
        self,
        sim: Simulator,
        n_ports: int,
        buffer_bytes_per_port: float = 512 * 1024,
        forwarding_latency: float = 4e-6,
        batch: BatchPolicy = WIRE_BATCH,
        name: str = "switch",
    ):
        if n_ports < 1:
            raise SwitchError("switch needs at least one port")
        if buffer_bytes_per_port <= 0:
            raise SwitchError("switch buffers must be > 0 bytes")
        if forwarding_latency < 0:
            raise SwitchError("negative forwarding latency")
        self.sim = sim
        self.name = name
        self.n_ports = n_ports
        self.buffer_bytes_per_port = float(buffer_bytes_per_port)
        self.forwarding_latency = float(forwarding_latency)
        self.batch = batch
        self._outputs = [_OutputPort(self, i) for i in range(n_ports)]
        self._table: dict[MacAddress, int] = {}
        self._frames_in = 0

    # -- wiring -----------------------------------------------------------------
    def ingress_sink(self, port: int) -> _PortIngress:
        """The sink to attach to the device->switch wire of ``port``."""
        self._check_port(port)
        return _PortIngress(self, port)

    def attach_output(self, port: int, wire: Wire) -> None:
        """Attach the switch->device wire of ``port``."""
        self._check_port(port)
        if self._outputs[port].wire is not None:
            raise SwitchError(f"port {port} output already attached")
        self._outputs[port].wire = wire

    def learn(self, address: MacAddress, port: int) -> None:
        """Install a static forwarding entry (the fabric builder does this)."""
        self._check_port(port)
        self._table[address] = port

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.n_ports:
            raise SwitchError(f"port {port} out of range 0..{self.n_ports - 1}")

    # -- data path ---------------------------------------------------------------
    def _ingress(self, frame: Frame, in_port: int) -> None:
        # The lookup latency is folded into per-frame readiness instead of
        # a separate scheduled callback: the frame queues now and becomes
        # eligible to transmit ``forwarding_latency`` later.
        ready = self.sim.now + self.forwarding_latency
        if frame.dst.is_broadcast:
            for port, out in enumerate(self._outputs):
                if port != in_port and out.wire is not None:
                    self._frames_in += frame.frame_count
                    out.enqueue(frame.clone_for(frame.dst), ready)
            return
        port = self._table.get(frame.dst)
        if port is None:
            raise SwitchError(f"no forwarding entry for {frame.dst}")
        self._frames_in += frame.frame_count
        self._outputs[port].enqueue(frame, ready)

    # -- statistics ---------------------------------------------------------------
    def register_telemetry(self, registry, prefix: str) -> None:
        """Register switch-wide and per-output-port instruments.

        Names follow ``{prefix}.port{p}.*`` for ports (the ISSUE's
        ``switch.port2.drops`` scheme); each port's downlink wire
        registers under ``{prefix}.port{p}.wire``.
        """
        registry.counter(f"{prefix}.drops", self.total_dropped)
        registry.counter(f"{prefix}.forwarded", self.total_forwarded)
        for out in self._outputs:
            p = f"{prefix}.port{out.index}"
            stats = out.stats
            registry.counter(f"{p}.frames", lambda s=stats: s.frames_forwarded)
            registry.counter(f"{p}.bytes", lambda s=stats: s.bytes_forwarded, unit="B")
            registry.counter(f"{p}.drops", lambda s=stats: s.frames_dropped)
            registry.counter(
                f"{p}.dropped_bytes", lambda s=stats: s.bytes_dropped, unit="B"
            )
            registry.gauge(
                f"{p}.max_queue_bytes", lambda s=stats: s.max_queue_bytes, unit="B"
            )
            registry.gauge(f"{p}.queued_bytes", lambda o=out: o.queued_bytes, unit="B")
            if out.wire is not None:
                out.wire.register_telemetry(registry, f"{p}.wire")

    def port_stats(self, port: int) -> PortStats:
        self._check_port(port)
        return self._outputs[port].stats

    def total_dropped(self) -> int:
        return sum(o.stats.frames_dropped for o in self._outputs)

    def total_dropped_bytes(self) -> float:
        return sum(o.stats.bytes_dropped for o in self._outputs)

    def total_forwarded(self) -> int:
        return sum(o.stats.frames_forwarded for o in self._outputs)

    def conservation_counters(self) -> dict:
        """Frame-conservation ledger: every frame that entered the
        crossbar is forwarded, tail-dropped, or still queued at the
        snapshot (the chaos harness asserts the ledger balances)."""
        return {
            "frames_in": self._frames_in,
            "frames_delivered": self.total_forwarded(),
            "frames_dropped": self.total_dropped(),
            "partition_drops": 0,
            "frames_queued": sum(
                f.frame_count for o in self._outputs for f, _ in o.queue
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Switch {self.name!r} {self.n_ports} ports>"
