"""Frame-train batching policy (CHUNK fidelity, adaptive quantum).

The simulator's unit of work is a :class:`~repro.net.packet.Frame`, which
may stand for ``frame_count`` back-to-back physical MTU frames of one
message (DESIGN.md §7).  This module decides *how many* frames one event
may stand for.

The cost of batching is timing fidelity: a train of ``q`` frames is
serialized as one unit, so at every store-and-forward stage its first
frame's payload is held back by up to ``(q - 1)`` frame times relative
to the per-frame schedule.  :class:`BatchPolicy` therefore bounds the
quantum by a **timing tolerance** — the maximum per-hop added latency a
train may introduce — and :func:`adaptive_quantum` picks the largest
quantum the tolerance allows on a given wire:

    q  <=  1 + timing_tolerance / frame_wire_time

With the default 200 us tolerance a Gigabit Ethernet sender (12.3 us per
MTU frame) may batch ~17 frames per event while a Fast Ethernet sender
(123 us per frame) may batch only ~2 — the *event count* adapts to the
wire so the *timing error* stays fixed.

Protocol stacks combine this bound with their own structural caps (TCP:
the congestion/receive window; the INIC protocol: a fraction of the
flow-control window) so batching never changes windowing arithmetic,
only event granularity.  ``PER_FRAME`` disables batching entirely — the
determinism tests compare batched against per-frame runs.

Two default policies exist because latency tolerance is *not* one
number:

* ``DEFAULT_BATCH`` governs protocol-level chunking (how many segments
  or packets a sender emits as one frame).  Open-loop senders (raw
  datagrams, the INIC's planned transfers) absorb the whole tolerance
  as a one-off pipeline-fill artifact.
* ``WIRE_BATCH`` governs in-flight train merging at switch output
  ports and NIC TX rings.  That path sits inside TCP's ACK feedback
  loop, where per-hop delay compounds (a delayed delivery delays the
  ACK, which delays the window growth that gates the next burst), so
  its tolerance is kept well under the fabric's ACK-clock round trip.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PacketError

__all__ = [
    "BatchPolicy",
    "DEFAULT_BATCH",
    "PER_FRAME",
    "WIRE_BATCH",
    "adaptive_quantum",
]


@dataclass(frozen=True)
class BatchPolicy:
    """How aggressively to coalesce frame trains into single events.

    Attributes
    ----------
    enabled:
        ``False`` forces per-frame simulation (quantum 1) everywhere the
        policy is consulted.
    timing_tolerance:
        seconds of extra store-and-forward latency a train may add per
        hop, compared to the per-frame schedule.  The quantum is chosen
        so ``(quantum - 1) * frame_wire_time <= timing_tolerance``.
    max_quantum:
        hard cap on frames per event, whatever the tolerance allows.
    """

    enabled: bool = True
    timing_tolerance: float = 200e-6
    max_quantum: int = 256

    def __post_init__(self) -> None:
        if self.timing_tolerance < 0:
            raise PacketError(f"negative timing tolerance {self.timing_tolerance}")
        if self.max_quantum < 1:
            raise PacketError(f"max_quantum must be >= 1, got {self.max_quantum}")

    def to_json(self) -> dict:
        """JSON-safe dict (round-trips through :meth:`from_json`)."""
        from ..config import config_to_json

        return config_to_json(self)

    @classmethod
    def from_json(cls, doc: dict) -> "BatchPolicy":
        from ..config import config_from_json

        return config_from_json(cls, doc)


#: protocol-level chunking default: 200 us of pipeline-fill slack keeps
#: millisecond-scale figure sweeps within a few percent (documented in
#: docs/performance.md) while letting the INIC reach window/4 chunks
DEFAULT_BATCH = BatchPolicy()

#: wire-level train merging default (switch ports, NIC TX rings): this
#: path is inside TCP's ACK feedback loop, so the per-hop delay budget
#: stays a small fraction of the fabric round trip
WIRE_BATCH = BatchPolicy(timing_tolerance=30e-6, max_quantum=64)

#: per-frame fidelity: every physical frame is its own event
PER_FRAME = BatchPolicy(enabled=False)


def adaptive_quantum(
    total_units: int, unit_wire_time: float, policy: BatchPolicy = DEFAULT_BATCH
) -> int:
    """Largest frames-per-event quantum within ``policy``'s tolerance.

    Parameters
    ----------
    total_units:
        physical frames (or packets) in the transfer; the quantum never
        exceeds it.
    unit_wire_time:
        seconds to serialize one unit on the constraining wire.  Pass 0
        (or negative) when the rate is unknown — the tolerance bound is
        then skipped and only ``max_quantum`` applies.
    """
    if total_units < 0:
        raise PacketError(f"negative unit count {total_units}")
    if total_units <= 1 or not policy.enabled:
        return 1
    quantum = policy.max_quantum
    if unit_wire_time > 0:
        quantum = min(quantum, 1 + int(policy.timing_tolerance / unit_wire_time))
    return max(1, min(quantum, total_units))
