"""Network addressing.

Addresses are small integers (node ranks) wrapped for type safety and
pretty-printing.  The cluster is a single Ethernet segment behind one
switch, so flat MAC-style addressing suffices — exactly the environment
the paper assumes when it argues an application-specific protocol can be
"built directly on Ethernet" (Section 4.2).
"""

from __future__ import annotations

from ..errors import AddressError

__all__ = ["MacAddress", "BROADCAST"]


class MacAddress:
    """A station address on the simulated segment."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        if not isinstance(value, int):
            raise AddressError(f"address must be an int, got {value!r}")
        if value < -1:
            raise AddressError(f"invalid address {value!r}")
        self.value = value

    @property
    def is_broadcast(self) -> bool:
        return self.value == -1

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MacAddress) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("MacAddress", self.value))

    def __repr__(self) -> str:
        if self.is_broadcast:
            return "MacAddress(broadcast)"
        return f"MacAddress({self.value})"

    def __str__(self) -> str:
        if self.is_broadcast:
            return "ff:ff"
        return f"02:{self.value:02x}"


#: the all-stations address
BROADCAST = MacAddress(-1)
