"""Ethernet substrate: frames, wires, switch, NICs, topology."""

from .addresses import BROADCAST, MacAddress
from .batching import (
    BatchPolicy,
    DEFAULT_BATCH,
    PER_FRAME,
    WIRE_BATCH,
    adaptive_quantum,
)
from .fabric import (
    FAST_ETHERNET,
    GIGABIT_ETHERNET,
    NetworkTechnology,
    build_star,
)
from .link import Link, Wire
from .nic import NICStats, StandardNIC
from .packet import (
    ETHERNET_MTU,
    ETHERNET_OVERHEAD,
    IP_TCP_HEADERS,
    MIN_FRAME_PAYLOAD,
    Frame,
    wire_bytes,
)
from .switch import PortStats, Switch

__all__ = [
    "BROADCAST",
    "BatchPolicy",
    "DEFAULT_BATCH",
    "PER_FRAME",
    "WIRE_BATCH",
    "adaptive_quantum",
    "ETHERNET_MTU",
    "ETHERNET_OVERHEAD",
    "FAST_ETHERNET",
    "Frame",
    "GIGABIT_ETHERNET",
    "IP_TCP_HEADERS",
    "Link",
    "MIN_FRAME_PAYLOAD",
    "MacAddress",
    "NICStats",
    "NetworkTechnology",
    "PortStats",
    "StandardNIC",
    "Switch",
    "Wire",
    "build_star",
    "wire_bytes",
]
