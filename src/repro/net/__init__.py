"""Ethernet substrate: frames, wires, switch, NICs, topology."""

from .addresses import BROADCAST, MacAddress
from .batching import (
    BatchPolicy,
    DEFAULT_BATCH,
    PER_FRAME,
    WIRE_BATCH,
    adaptive_quantum,
)
from .fabric import (
    FAST_ETHERNET,
    GIGABIT_ETHERNET,
    AggregateFabric,
    NetworkTechnology,
    build_aggregate_star,
    build_star,
)
from .topology import (
    FatTreeTopology,
    HierarchicalFabric,
    TorusTopology,
    build_fattree,
    build_torus,
    torus_dims,
)
from .link import Link, Wire
from .nic import NICStats, StandardNIC
from .packet import (
    ETHERNET_MTU,
    ETHERNET_OVERHEAD,
    IP_TCP_HEADERS,
    MIN_FRAME_PAYLOAD,
    Frame,
    wire_bytes,
)
from .switch import PortStats, Switch

__all__ = [
    "AggregateFabric",
    "BROADCAST",
    "BatchPolicy",
    "DEFAULT_BATCH",
    "FatTreeTopology",
    "HierarchicalFabric",
    "PER_FRAME",
    "TorusTopology",
    "WIRE_BATCH",
    "adaptive_quantum",
    "ETHERNET_MTU",
    "ETHERNET_OVERHEAD",
    "FAST_ETHERNET",
    "Frame",
    "GIGABIT_ETHERNET",
    "IP_TCP_HEADERS",
    "Link",
    "MIN_FRAME_PAYLOAD",
    "MacAddress",
    "NICStats",
    "NetworkTechnology",
    "PortStats",
    "StandardNIC",
    "Switch",
    "Wire",
    "build_aggregate_star",
    "build_fattree",
    "build_star",
    "build_torus",
    "torus_dims",
    "wire_bytes",
]
