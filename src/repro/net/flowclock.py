"""Bulk flow-clock admission: the exchange-phase fast path.

Every fabric since the aggregate star reduces contention to
``busy_until`` float clocks — an uplink clock per station, an output
(or per-hop link) clock per destination.  That makes the arrival time
of every frame in a bulk exchange a *closed-form function* of the send
times: no event needs to fire per frame, the clock recurrences just
have to be replayed in admission order.  This module does exactly that
for a frame **train** — the unit a sender's exchange phase produces:

``admit_train(fabric, uplink, frames, times)``
    Computes per-frame serialization times in one vectorized numpy
    pass (elementwise division is IEEE-identical to the scalar
    division the frame-level path performs), then replays the fabric's
    own ``_admit`` recurrence per frame at its logical send time with
    delivery *collected* instead of scheduled.  Port clocks, per-hop
    telemetry, and the tail-drop ledger advance exactly as if each
    frame had been sent individually — the sequential recurrence is
    kept sequential on purpose, because prefix-scan reassociation is
    **not** float-identical.  Collected deliveries are then dispatched
    in bulk: stations that implement ``receive_train`` get whole
    delivery groups (one pooled event per group, via
    :class:`DeliveryBatcher`); everything else gets the frame-level
    ``call_after`` per frame, byte-identically.

Fault composition
-----------------
The fast path disables itself per component, never approximately:

* a staged component-fault schedule (uplink or switch windows) marks
  the whole fabric (``fastpath_ok() -> False``);
* a per-uplink :class:`~repro.faults.WireFault` injector marks that
  uplink only.

In either case the train falls back to per-frame ``_send`` calls at
the exact per-frame send times, so seeded fault schedules (RNG draw
sequences, outage windows, component transitions) stay bit-identical
to the frame-level path.

Identity argument (see docs/architecture.md §3)
-----------------------------------------------
A ``busy_until`` clock's state depends only on the *order* and logical
times of its admissions.  Admitting a train's frames inside one DES
event, each at its recorded send time, performs the identical float
operations in the identical order as separate sends — provided no
other admission interleaves on a shared clock in between.  Admission is
therefore *sliced*: one event admits the frames due within
:data:`ADMIT_SLICE` of logical time, so overlapping senders interleave
at slice (not frame) granularity and a port clock never runs more than
one slice ahead of global time — whole-train admission would let one
train's tail count as phantom backlog against another train's head and
manufacture tail-drops the frame-level path never takes.  A single
train's frames stay sequentially ordered across its slices, so where
trains do not overlap (the A/B harness's staggered phase) equality is
exact to the last bit; under overlap the residual skew is bounded by
one slice, documented, measurable, and disabled by ``--no-fastpath``.

Run ``python -m repro.net.flowclock --ab`` to replay the scale suite's
exchange patterns frame-level vs bulk on every fabric and diff arrival
floats and conservation ledgers exactly (a CI step).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..sim.engine import Simulator
from .packet import Frame

__all__ = ["admit_train", "DeliveryBatcher", "TRAIN_TOLERANCE", "TRAIN_CAP"]

#: delivery grouping window, seconds — arrivals within this span of a
#: group's opener ride one pooled event (same scale as the NIC batch
#: policies in :mod:`repro.net.batching`)
TRAIN_TOLERANCE = 200e-6
#: frames per delivery group before a new one is opened
TRAIN_CAP = 256


class _TrainGroup:
    """One pending delivery group for a destination port."""

    __slots__ = ("t0", "t_last", "frames", "times")

    def __init__(self, t0: float):
        self.t0 = t0
        self.t_last = t0
        self.frames: list[Frame] = []
        self.times: list[float] = []


class DeliveryBatcher:
    """Coalesces per-frame deliveries to one station into train events.

    Arrivals for a port are non-decreasing in time (its egress clock is
    FIFO), so grouping is a single open group: an arrival within
    ``TRAIN_TOLERANCE`` of the group's opener joins it, anything later
    (or past ``TRAIN_CAP``) opens a new group.  Each group fires exactly
    one pooled callback at its *last* member's arrival — never earlier
    than any member, never padded past it — handing the device the
    frames *and their exact per-frame arrival times*, so receivers
    account arrival-time semantics losslessly.  The flush is scheduled
    at the opener's arrival and lazily chases the tail if the group
    grew meanwhile (one extra pooled event, no cancellation), so
    dispatch stays deterministic given the admission sequence.
    """

    __slots__ = ("sim", "device", "_group")

    def __init__(self, sim: Simulator, device):
        self.sim = sim
        self.device = device
        self._group: _TrainGroup | None = None

    def add(self, frame: Frame, at: float) -> None:
        g = self._group
        if (
            g is not None
            and at - g.t0 <= TRAIN_TOLERANCE
            and len(g.frames) < TRAIN_CAP
        ):
            g.frames.append(frame)
            g.times.append(at)
            g.t_last = at
            return
        g = _TrainGroup(at)
        g.frames.append(frame)
        g.times.append(at)
        self._group = g
        self.sim.call_after(at - self.sim.now, self._flush, g)

    def _flush(self, group: _TrainGroup) -> None:
        now = self.sim.now
        if group.t_last > now:
            # The group grew after its flush was scheduled: chase the
            # tail arrival instead of delivering early.
            self.sim.call_after(group.t_last - now, self._flush, group)
            return
        if self._group is group:
            self._group = None
        self.device.receive_train(group.frames, group.times)


#: logical seconds of a train admitted per DES event.  Bulk admission
#: of *overlapping* trains interleaves at segment (not frame)
#: granularity, so a port clock never runs more than one slice of
#: cross-sender traffic ahead of global time — at line rate that is
#: ~25 KB of admission-order skew against a 128 KB tail-drop buffer,
#: which is why slicing keeps the drop ledger honest where whole-train
#: admission manufactured spurious overflows.  A single train's frames
#: stay in sequential order across its slices, so single-train
#: admission remains bit-exact at any slice width.
ADMIT_SLICE = 200e-6


def admit_train(
    fabric, uplink, frames: Sequence[Frame], times: Sequence[float]
) -> float:
    """Bulk-admit ``frames`` on ``uplink`` at per-frame send ``times``.

    ``times`` must be non-decreasing and ``>= sim.now`` (the sender's
    own serialization schedule).  Admission proceeds in
    :data:`ADMIT_SLICE` segments — one DES event covers every frame
    whose send time falls within the slice; a continuation event is
    scheduled at the next frame's send time.  Returns the last send
    time.
    """
    sim = fabric.sim
    now = sim.now
    if not frames:
        return now
    if len(frames) != len(times):
        raise ValueError(
            f"train mismatch: {len(frames)} frames, {len(times)} times"
        )
    if uplink.fault is not None or not fabric.fastpath_ok():
        _frame_fallback(fabric, uplink, frames, times, 0)
        return times[-1]
    # Vectorized serialization times: elementwise float64 division is
    # IEEE-identical to the scalar division in the frame-level path.
    tx_times = (
        np.fromiter(
            (f.wire_size for f in frames), dtype=np.float64, count=len(frames)
        )
        / fabric.bandwidth
    )
    fabric.trains_fast += 1
    _admit_segment(fabric, uplink, list(frames), list(times), tx_times, 0)
    return times[-1]


def _frame_fallback(fabric, uplink, frames, times, start: int) -> None:
    """Frame-level remainder: replay each frame through the full
    ``_send`` (fault dispositions included) at its exact send time, so
    seeded fault schedules stay bit-identical."""
    sim = fabric.sim
    now = sim.now
    for i in range(start, len(frames)):
        t = times[i]
        if t <= now:
            fabric._send(uplink, frames[i])
        else:
            sim.call_after(t - now, fabric._send, uplink, frames[i])


def _admit_segment(fabric, uplink, frames, times, tx_times, start: int) -> None:
    """Admit the slice of the train due within :data:`ADMIT_SLICE`."""
    sim = fabric.sim
    now = sim.now
    if uplink.fault is not None or not fabric.fastpath_ok():
        # A fault armed mid-train: the remainder goes frame-level, at
        # the exact per-frame send times.
        _frame_fallback(fabric, uplink, frames, times, start)
        return
    horizon = now + ADMIT_SLICE
    n = len(frames)
    end = start
    while end < n and times[end] <= horizon:
        end += 1
    sink: list = []
    fabric._collect = sink
    mark = 0
    try:
        admit = fabric._admit
        for i in range(start, end):
            t = times[i]
            admit(uplink, frames[i], t, float(tx_times[i]))
            grown = len(sink)
            if grown != mark:
                # Frame-level delivery fires at ``t + (deliver_at - t)``
                # — the scheduler's reconstruction of the absolute time,
                # one rounding away from ``deliver_at`` itself.  Replay
                # that exact arithmetic so receivers observe bit-equal
                # arrival clocks on either path.
                while mark < grown:
                    port, fr, at = sink[mark]
                    sink[mark] = (port, fr, t + (at - t))
                    mark += 1
    finally:
        fabric._collect = None
    devices = fabric._devices
    batchers = fabric._train_batchers
    for port, frame, at in sink:
        device = devices[port]
        if hasattr(device, "receive_train"):
            batcher = batchers.get(port)
            if batcher is None:
                batcher = batchers[port] = DeliveryBatcher(sim, device)
            batcher.add(frame, at)
        else:
            sim.call_after(at - now, device.receive_frame, frame)
    if end < n:
        sim.call_after(
            times[end] - now,
            _admit_segment, fabric, uplink, frames, times, tx_times, end,
        )


# ---------------------------------------------------------------------------
# A/B equivalence harness (`python -m repro.net.flowclock --ab`)
# ---------------------------------------------------------------------------
class _TrainProbe:
    """Frame device recording (dst-visible) arrivals, train-capable."""

    def __init__(self, sim: Simulator, port: int):
        self.sim = sim
        self.port = port
        self.wire = None
        self.got: list[tuple[int, float, float]] = []

    def attach_wire(self, wire) -> None:
        self.wire = wire

    def receive_frame(self, frame: Frame) -> None:
        self.got.append((self.port, self.sim.now, frame.payload_bytes))

    def receive_train(self, frames: Sequence[Frame], times: Sequence[float]) -> None:
        # Record the exact per-frame arrival floats the batcher carried,
        # not the (later) flush time — that is the identity under test.
        for frame, t in zip(frames, times):
            self.got.append((self.port, t, frame.payload_bytes))


#: A/B time grid: dyadic constants, so ``base + i * intra`` round-trips
#: exactly through the scheduler's relative-delay arithmetic (the send
#: times are then bit-equal between the scheduled frame-level path and
#: the logical times bulk admission replays)
_AB_GAP = 2.0 ** -8     # ~3.9 ms between train starts: no overlap
_AB_INTRA = 2.0 ** -18  # ~3.8 us intra-train spacing: uplink chain engaged


def _exchange_trains(n: int, repeat: int = 2):
    """The scale suite's exchange shape: every station sends a train
    covering all peers ``repeat`` times (so destination egress clocks
    see intra-train contention), then an 8-sender incast burst — all
    trains admitted at one timestamp, grouped in train order on both
    paths — that overfills one egress buffer, so the tail-drop ledger
    is exercised inside trains.  Staggered trains never overlap — the
    regime where bulk admission is exact.

    Returns ``[(base_t, src, intra_gap, [(dst, size), ...]), ...]``.
    """
    trains = []
    for src in range(n):
        entries = []
        for j in range(repeat * (n - 1)):
            dst = (src + 1 + j % (n - 1)) % n
            size = 64 + (src * 131 + j * 17) % 1400
            entries.append((dst, size))
        trains.append((src * _AB_GAP, src, _AB_INTRA, entries))
    # Incast: 8 senders x 20 x 1400 B (~227 KB) at one egress port vs
    # the 128 KB gigabit buffer; send times all equal the burst start.
    # Senders ring the victim so some share its leaf on the fat-tree —
    # remote incast serializes through one spine downlink and never
    # overflows, but same-leaf senders hit the egress clock directly.
    burst_at = n * _AB_GAP
    victim = n // 2
    for delta in range(-4, 5):
        src = (victim + delta) % n
        if src == victim or src == 0:
            continue
        trains.append((burst_at, src, 0.0, [(victim, 1400)] * 20))
    return trains


def _replay(builder, opts, n: int, bulk: bool, fault_spec=None):
    """Run the exchange pattern one way; return (arrivals, ledger, fabric)."""
    from ..net.addresses import MacAddress

    sim = Simulator()
    stations = [_TrainProbe(sim, p) for p in range(n)]
    addrs = [MacAddress(i) for i in range(n)]
    fabric = builder(sim, list(zip(addrs, stations)), **opts)
    if fault_spec is not None:
        fabric.uplink(0).install_fault(
            _wire_fault(fault_spec, fabric.uplink(0).name)
        )
    for base_t, src, intra, entries in _exchange_trains(n):
        wire = stations[src].wire

        def fire(wire=wire, src=src, base_t=base_t, intra=intra, entries=entries):
            frames = [
                Frame(addrs[src], addrs[dst], payload_bytes=size, headers=8)
                for dst, size in entries
            ]
            times = [base_t + i * intra for i in range(len(frames))]
            if bulk:
                wire.send_train(frames, times)
            else:
                # Mirror the fallback's scheduling exactly: immediate
                # sends inline (train order), future ones per frame.
                now = sim.now
                for frame, t in zip(frames, times):
                    if t <= now:
                        wire.send(frame)
                    else:
                        sim.call_after(t - now, wire.send, frame)

        sim.call_after(base_t, fire)
    sim.run()
    arrivals = sorted(got for st in stations for got in st.got)
    return arrivals, fabric.conservation_counters(), fabric


def _wire_fault(spec, name: str):
    from ..faults import WireFault

    return WireFault(spec, name)


def _ab_main(argv=None) -> int:
    import argparse

    ap = argparse.ArgumentParser(
        prog="python -m repro.net.flowclock",
        description="A/B: bulk flow-clock admission vs frame-level sends",
    )
    ap.add_argument("--ab", action="store_true", help="run the equivalence check")
    ap.add_argument("--n", type=int, default=32, help="stations (default 32)")
    args = ap.parse_args(argv)
    if not args.ab:
        ap.error("nothing to do (pass --ab)")
    from ..faults import FaultSpec
    from .fabric import build_aggregate_star
    from .topology import build_fattree, build_torus

    n = args.n
    fault = FaultSpec(seed=7, loss_rate=0.25, corrupt_rate=0.1)
    cases = [
        ("aggregate", build_aggregate_star, {}, None),
        ("fattree", build_fattree, {}, None),
        ("fattree-oversub2", build_fattree, {"oversub": 2}, None),
        ("torus", build_torus, {}, None),
        ("aggregate-faulted", build_aggregate_star, {}, fault),
    ]
    failed = False
    for label, builder, opts, fault_spec in cases:
        ref, ref_ledger, ref_fabric = _replay(
            builder, opts, n, bulk=False, fault_spec=fault_spec
        )
        got, ledger, fabric = _replay(
            builder, opts, n, bulk=True, fault_spec=fault_spec
        )
        ok = got == ref and ledger == ref_ledger
        events = (ref_fabric.sim.event_count, fabric.sim.event_count)
        if fault_spec is None:
            # The fast path must actually have run (and cut events).
            mode_ok = fabric.trains_fast > 0 and events[1] < events[0]
        else:
            # Per-component disable: the faulted uplink's trains fall
            # back (its injector's decision log must be bit-identical),
            # every other sender still takes the fast path.
            total = len(_exchange_trains(n))
            mode_ok = (
                0 < fabric.trains_fast < total
                and fabric.uplink(0).fault.log == ref_fabric.uplink(0).fault.log
            )
        status = "PASS" if ok and mode_ok else "FAIL"
        failed = failed or status == "FAIL"
        dropped = ref_ledger["frames_dropped"]
        print(
            f"[ab] {label:18s} {status}  n={n} arrivals={len(ref)} "
            f"dropped={dropped} events {events[0]} -> {events[1]}"
            + ("" if ok else "  (arrivals or ledgers diverge)")
            + (
                ""
                if mode_ok
                else "  (fast path did not engage as expected)"
            )
        )
    print(f"[ab] bulk-admission equivalence: {'FAIL' if failed else 'PASS'}")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(_ab_main())
