"""Frames: the unit of simulated network transfer.

A :class:`Frame` models one Ethernet frame *or*, at reduced fidelity, a
quantum of ``frame_count`` back-to-back MTU frames treated as a single
simulation event (DESIGN.md §7).  Either way it knows:

* logical payload byte count (what the application asked to move),
* on-wire byte count (payload + per-frame header/preamble/IFG overhead),
* an optional *payload object* — a real numpy array or application
  message riding along so the simulation is functional, not just timed.

Header overhead constants follow the real protocols so the bandwidth
numbers work out: a 1500-byte TCP segment on the wire costs
1500 + 38 (Ethernet + preamble + IFG) + 40 (IP + TCP) bytes of time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from ..errors import PacketError
from .addresses import MacAddress

__all__ = [
    "ETHERNET_MTU",
    "ETHERNET_OVERHEAD",
    "IP_TCP_HEADERS",
    "MIN_FRAME_PAYLOAD",
    "Frame",
    "wire_bytes",
]

#: standard Ethernet MTU (payload bytes per frame)
ETHERNET_MTU = 1500
#: Ethernet framing cost per frame: 14 hdr + 4 FCS + 8 preamble + 12 IFG
ETHERNET_OVERHEAD = 38
#: IPv4 + TCP headers without options
IP_TCP_HEADERS = 40
#: minimum Ethernet payload (frames are padded up to this)
MIN_FRAME_PAYLOAD = 46

_frame_ids = itertools.count()


def wire_bytes(payload: int, per_frame_headers: int, frame_count: int = 1) -> int:
    """On-wire bytes for ``payload`` split over ``frame_count`` frames."""
    if payload < 0 or frame_count < 1:
        raise PacketError(f"bad frame geometry payload={payload} count={frame_count}")
    padded = max(payload, MIN_FRAME_PAYLOAD * frame_count)
    return padded + frame_count * (ETHERNET_OVERHEAD + per_frame_headers)


@dataclass(slots=True)
class Frame:
    """One simulated wire transfer unit.

    Attributes
    ----------
    src, dst:
        station addresses.
    payload_bytes:
        logical data bytes carried.
    headers:
        per-frame protocol headers *above* Ethernet (e.g. 40 for TCP/IP,
        small for the INIC protocol).
    frame_count:
        how many physical frames this event stands for (fidelity quantum).
    kind:
        protocol discriminator ("tcp", "tcp-ack", "inic", "raw", ...).
    seq:
        protocol sequence number (byte offset for TCP-like streams).
    payload:
        optional functional payload (numpy array slice, message object).
    meta:
        free-form annotations (flow ids, timestamps, experiment tags).
    """

    src: MacAddress
    dst: MacAddress
    payload_bytes: int
    headers: int = IP_TCP_HEADERS
    frame_count: int = 1
    kind: str = "raw"
    seq: int = 0
    payload: Any = None
    meta: dict[str, Any] = field(default_factory=dict)
    uid: int = field(default_factory=_frame_ids.__next__)
    #: total on-wire bytes (drives serialization time) — computed once
    #: at construction; the geometry fields are never mutated after
    #: construction, and this is read several times per frame along the
    #: fabric path, so a plain attribute beats a memoizing property
    wire_size: int = field(default=0, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise PacketError(f"negative payload {self.payload_bytes}")
        if self.frame_count < 1:
            raise PacketError(f"frame_count must be >= 1, got {self.frame_count}")
        if self.headers < 0:
            raise PacketError(f"negative header size {self.headers}")
        self.wire_size = wire_bytes(self.payload_bytes, self.headers, self.frame_count)

    def can_coalesce(self, other: "Frame") -> bool:
        """True if ``other`` is the back-to-back continuation of this frame.

        Two frames form a *train* when they belong to the same message
        stream (same endpoints, kind, headers, message id) and ``other``
        starts exactly where this frame ends — so merging them into one
        ``frame_count``-weighted frame changes event granularity but not
        on-wire bytes (``wire_bytes`` is additive for MTU trains) or the
        delivery time of the train's tail.

        A frame tagged ``meta["no_merge"]`` never joins a train: senders
        whose traffic sits inside a feedback loop (TCP's ACK clock) mark
        their frames so in-fabric merging cannot delay the deliveries
        that gate the sender's own window growth — such stacks batch at
        the source, where the window arithmetic can account for it.
        """
        return (
            self.payload_bytes > 0
            and other.payload_bytes > 0
            and not self.meta.get("no_merge", False)
            and not other.meta.get("no_merge", False)
            and self.src == other.src
            and self.dst == other.dst
            and self.kind == other.kind
            and self.headers == other.headers
            and self.meta.get("msg") is not None
            and self.meta.get("msg") == other.meta.get("msg")
            and not self.meta.get("last", False)
            and other.seq == self.seq + self.payload_bytes
        )

    def coalesced(self, other: "Frame") -> "Frame":
        """The single frame standing for this train followed by ``other``.

        Caller must have checked :meth:`can_coalesce`.  The merged frame
        keeps this frame's sequence origin and takes the tail's payload
        object and ``last`` marker (only the final physical frame of a
        message carries the functional payload).
        """
        meta = dict(other.meta)
        meta["offset"] = self.meta.get("offset", self.seq)
        return Frame(
            src=self.src,
            dst=self.dst,
            payload_bytes=self.payload_bytes + other.payload_bytes,
            headers=self.headers,
            frame_count=self.frame_count + other.frame_count,
            kind=self.kind,
            seq=self.seq,
            payload=other.payload,
            meta=meta,
        )

    def clone_for(self, dst: MacAddress) -> "Frame":
        """Copy addressed to a different station (for broadcast fan-out)."""
        return Frame(
            src=self.src,
            dst=dst,
            payload_bytes=self.payload_bytes,
            headers=self.headers,
            frame_count=self.frame_count,
            kind=self.kind,
            seq=self.seq,
            payload=self.payload,
            meta=dict(self.meta),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Frame#{self.uid} {self.kind} {self.src}->{self.dst} "
            f"{self.payload_bytes}B x{self.frame_count} seq={self.seq}>"
        )
