"""Point-to-point wires and full-duplex links.

A :class:`Wire` is one direction: frames are serialized FIFO at the line
rate, then delivered to the sink after a propagation delay.  A
:class:`Link` is a pair of wires (full duplex, as both Fast and Gigabit
Ethernet are in switched mode).

Sinks implement ``receive_frame(frame)``; anything — NIC, switch port,
INIC MAC — can terminate a wire.

Fault injection: a wire may carry a :class:`~repro.faults.WireFault`
injector (installed by the cluster builder when the scenario's
:class:`~repro.faults.FaultSpec` targets it).  Dropped transfers vanish
before serialization (outage/cable semantics); corrupted transfers
occupy the wire but are discarded instead of delivered (the receiver's
CRC check).  Without an injector the datapath is byte-for-byte the
pre-fault-subsystem one.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol

from ..errors import LinkError
from ..sim.engine import Simulator
from .packet import Frame

__all__ = ["FrameSink", "Wire", "Link"]


class FrameSink(Protocol):
    """Anything that can terminate a wire."""

    def receive_frame(self, frame: Frame) -> None:  # pragma: no cover - protocol
        ...


class Wire:
    """One direction of a link: FIFO serialization + propagation."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float,
        propagation_delay: float = 0.0,
        name: str = "wire",
    ):
        if bandwidth <= 0:
            raise LinkError(f"wire bandwidth must be > 0, got {bandwidth}")
        if propagation_delay < 0:
            raise LinkError("negative propagation delay")
        self.sim = sim
        self.bandwidth = float(bandwidth)
        self.propagation_delay = float(propagation_delay)
        self.name = name
        self._sink: Optional[FrameSink] = None
        self._busy_until = 0.0
        #: optional fault injector (see :mod:`repro.faults`)
        self.fault = None
        # -- statistics ----------------------------------------------------
        self.frames_sent = 0
        self.bytes_sent = 0.0
        self.busy_time = 0.0

    def attach(self, sink: FrameSink) -> None:
        if self._sink is not None:
            raise LinkError(f"wire {self.name!r} already attached")
        self._sink = sink

    def install_fault(self, fault) -> None:
        """Attach a :class:`~repro.faults.WireFault` injector."""
        if self.fault is not None:
            raise LinkError(f"wire {self.name!r} already has a fault injector")
        self.fault = fault

    @property
    def sink(self) -> FrameSink:
        if self._sink is None:
            raise LinkError(f"wire {self.name!r} has no sink attached")
        return self._sink

    def send(self, frame: Frame) -> float:
        """Queue ``frame`` for transmission; returns its delivery time.

        Serialization is FIFO at line rate; delivery happens
        serialization + propagation later.  The caller does not block —
        backpressure, if desired, is the *sender's* job (NICs block on
        their TX ring, switches drop on full buffers).
        """
        sink = self.sink
        if self.fault is not None:
            verdict = self.fault.disposition(frame, self.sim.now)
            if verdict == "drop":
                # The transfer never makes it onto the wire.
                return self.sim.now
            if verdict == "corrupt":
                # Bit errors: the train occupies the wire for its full
                # serialization, then fails CRC at the sink — time is
                # burned, nothing is delivered.
                start = max(self.sim.now, self._busy_until)
                tx_time = frame.wire_size / self.bandwidth
                self._busy_until = start + tx_time
                self.busy_time += tx_time
                return self._busy_until + self.propagation_delay
        now = self.sim.now
        start = now if now > self._busy_until else self._busy_until
        wire_size = frame.wire_size
        tx_time = wire_size / self.bandwidth
        done_serializing = start + tx_time
        self._busy_until = done_serializing
        deliver_at = done_serializing + self.propagation_delay
        self.frames_sent += frame.frame_count
        self.bytes_sent += wire_size
        self.busy_time += tx_time
        # Closure-free pooled delivery: this is the single hottest timed
        # callback in every figure sweep.
        self.sim.call_after(deliver_at - now, sink.receive_frame, frame)
        return deliver_at

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def register_telemetry(self, registry, prefix: str) -> None:
        """Register this wire's instruments under ``prefix``."""
        registry.busy(f"{prefix}.busy_time", lambda: self.busy_time)
        registry.counter(f"{prefix}.frames", lambda: self.frames_sent)
        registry.counter(f"{prefix}.bytes", lambda: self.bytes_sent, unit="B")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Wire {self.name!r} {self.bandwidth:g} B/s>"


class Link:
    """A full-duplex link: two wires between stations A and B."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float,
        propagation_delay: float = 0.0,
        name: str = "link",
    ):
        self.sim = sim
        self.name = name
        self.a_to_b = Wire(sim, bandwidth, propagation_delay, name=f"{name}.a>b")
        self.b_to_a = Wire(sim, bandwidth, propagation_delay, name=f"{name}.b>a")

    @property
    def bandwidth(self) -> float:
        return self.a_to_b.bandwidth

    def attach_a(self, sink: FrameSink) -> None:
        """``sink`` receives frames travelling B -> A."""
        self.b_to_a.attach(sink)

    def attach_b(self, sink: FrameSink) -> None:
        """``sink`` receives frames travelling A -> B."""
        self.a_to_b.attach(sink)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name!r} {self.bandwidth:g} B/s full-duplex>"
