"""Topology builder: the cluster's switched-star Ethernet fabric.

The prototype (Section 5) is a star: every node's NIC plugs into one
switch.  ``build_star`` wires any set of frame devices (standard NICs or
INIC cards) to a freshly created switch and installs static forwarding.

Device contract: ``attach_wire(wire)`` (device transmits on it) and
``receive_frame(frame)`` (device terminates the downlink).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, Sequence, TYPE_CHECKING

from ..errors import NetworkError
from ..sim.engine import Simulator
from ..units import gbps, mbps
from .addresses import MacAddress
from .batching import BatchPolicy, WIRE_BATCH
from .link import Wire
from .packet import Frame
from .switch import Switch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults import FaultPlan

__all__ = ["NetworkTechnology", "FAST_ETHERNET", "GIGABIT_ETHERNET", "build_star"]


@dataclass(frozen=True)
class NetworkTechnology:
    """Line-rate/latency bundle for a network generation."""

    name: str
    bandwidth: float  # bytes/s line rate
    propagation_delay: float  # seconds, cable + PHY
    switch_latency: float  # seconds, forwarding decision
    switch_buffer_per_port: float  # bytes


#: 100 Mb/s switched Fast Ethernet (the paper's low-end baseline)
FAST_ETHERNET = NetworkTechnology(
    name="fast-ethernet",
    bandwidth=mbps(100),
    propagation_delay=1e-6,
    switch_latency=6e-6,
    switch_buffer_per_port=64 * 1024,
)

#: 1 Gb/s Ethernet (SysKonnect PCI NIC + switch of the prototype)
GIGABIT_ETHERNET = NetworkTechnology(
    name="gigabit-ethernet",
    bandwidth=gbps(1),
    propagation_delay=1e-6,
    switch_latency=4e-6,
    switch_buffer_per_port=128 * 1024,
)


class FrameDevice(Protocol):
    """A station: transmits on an uplink, terminates a downlink."""

    def attach_wire(self, wire: Wire) -> None:  # pragma: no cover - protocol
        ...

    def receive_frame(self, frame: Frame) -> None:  # pragma: no cover - protocol
        ...


def build_star(
    sim: Simulator,
    stations: Sequence[tuple[MacAddress, FrameDevice]],
    tech: NetworkTechnology = GIGABIT_ETHERNET,
    batch: BatchPolicy = WIRE_BATCH,
    name: str = "fabric",
    faults: Optional["FaultPlan"] = None,
) -> Switch:
    """Wire ``stations`` to a new switch; returns the switch.

    Each station gets a dedicated full-duplex link at ``tech.bandwidth``.
    ``batch`` sets the switch's frame-train coalescing policy (pass
    ``PER_FRAME`` for per-frame fidelity runs).  A ``faults`` plan
    installs per-wire link-fault injectors (on matching wire names) and
    applies forced switch-buffer pressure.
    """
    if not stations:
        raise NetworkError("cannot build a fabric with no stations")
    addresses = [addr for addr, _ in stations]
    if len(set(a.value for a in addresses)) != len(addresses):
        raise NetworkError("duplicate station addresses in fabric")

    buffer_bytes = tech.switch_buffer_per_port
    if faults is not None:
        buffer_bytes = faults.switch_buffer(buffer_bytes)
    switch = Switch(
        sim,
        n_ports=len(stations),
        buffer_bytes_per_port=buffer_bytes,
        forwarding_latency=tech.switch_latency,
        batch=batch,
        name=f"{name}.switch",
    )
    for port, (addr, device) in enumerate(stations):
        uplink = Wire(
            sim, tech.bandwidth, tech.propagation_delay, name=f"{name}.up{port}"
        )
        uplink.attach(switch.ingress_sink(port))
        device.attach_wire(uplink)

        downlink = Wire(
            sim, tech.bandwidth, tech.propagation_delay, name=f"{name}.down{port}"
        )
        downlink.attach(device)
        switch.attach_output(port, downlink)

        switch.learn(addr, port)
        if faults is not None:
            for wire in (uplink, downlink):
                wf = faults.wire_fault(wire.name)
                if wf is not None:
                    wire.install_fault(wf)
    return switch
