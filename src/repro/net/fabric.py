"""Topology builder: the cluster's switched-star Ethernet fabric.

The prototype (Section 5) is a star: every node's NIC plugs into one
switch.  ``build_star`` wires any set of frame devices (standard NICs or
INIC cards) to a freshly created switch and installs static forwarding.

Device contract: ``attach_wire(wire)`` (device transmits on it) and
``receive_frame(frame)`` (device terminates the downlink).

Two fidelity levels share that contract:

``build_star``
    The full model — one :class:`~repro.net.link.Wire` pair per station
    plus an output-queued :class:`~repro.net.switch.Switch`.  Every hop
    is its own object with its own timed callbacks.

``build_aggregate_star``
    The scale-out model (``Scale.large``, 32-128 nodes) — a single
    :class:`AggregateFabric` that folds uplink serialization, the
    forwarding decision, and per-output-port queueing into busy-until
    arithmetic on two floats per port.  A frame costs exactly one timed
    callback end to end instead of the full model's four, and no
    per-station wire/port objects exist at all; contention and tail
    drop are still modelled per port, so congestion curves keep their
    shape (see docs/performance.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, Sequence, TYPE_CHECKING

from ..errors import NetworkError
from ..sim.engine import Simulator
from ..units import gbps, mbps
from .addresses import MacAddress
from .batching import BatchPolicy, WIRE_BATCH
from .link import Wire
from .packet import Frame
from .switch import PortStats, Switch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults import FaultPlan

__all__ = [
    "NetworkTechnology",
    "FAST_ETHERNET",
    "GIGABIT_ETHERNET",
    "AggregateFabric",
    "build_star",
    "build_aggregate_star",
    "validate_stations",
]


def validate_stations(
    stations: Sequence[tuple[MacAddress, "FrameDevice"]]
) -> None:
    """Shared builder precondition: non-empty, no duplicate addresses."""
    if not stations:
        raise NetworkError("cannot build a fabric with no stations")
    addresses = [addr for addr, _ in stations]
    if len(set(a.value for a in addresses)) != len(addresses):
        raise NetworkError("duplicate station addresses in fabric")


@dataclass(frozen=True)
class NetworkTechnology:
    """Line-rate/latency bundle for a network generation."""

    name: str
    bandwidth: float  # bytes/s line rate
    propagation_delay: float  # seconds, cable + PHY
    switch_latency: float  # seconds, forwarding decision
    switch_buffer_per_port: float  # bytes


#: 100 Mb/s switched Fast Ethernet (the paper's low-end baseline)
FAST_ETHERNET = NetworkTechnology(
    name="fast-ethernet",
    bandwidth=mbps(100),
    propagation_delay=1e-6,
    switch_latency=6e-6,
    switch_buffer_per_port=64 * 1024,
)

#: 1 Gb/s Ethernet (SysKonnect PCI NIC + switch of the prototype)
GIGABIT_ETHERNET = NetworkTechnology(
    name="gigabit-ethernet",
    bandwidth=gbps(1),
    propagation_delay=1e-6,
    switch_latency=4e-6,
    switch_buffer_per_port=128 * 1024,
)


class FrameDevice(Protocol):
    """A station: transmits on an uplink, terminates a downlink."""

    def attach_wire(self, wire: Wire) -> None:  # pragma: no cover - protocol
        ...

    def receive_frame(self, frame: Frame) -> None:  # pragma: no cover - protocol
        ...


def build_star(
    sim: Simulator,
    stations: Sequence[tuple[MacAddress, FrameDevice]],
    tech: NetworkTechnology = GIGABIT_ETHERNET,
    batch: BatchPolicy = WIRE_BATCH,
    name: str = "fabric",
    faults: Optional["FaultPlan"] = None,
) -> Switch:
    """Wire ``stations`` to a new switch; returns the switch.

    Each station gets a dedicated full-duplex link at ``tech.bandwidth``.
    ``batch`` sets the switch's frame-train coalescing policy (pass
    ``PER_FRAME`` for per-frame fidelity runs).  A ``faults`` plan
    installs per-wire link-fault injectors (on matching wire names) and
    applies forced switch-buffer pressure.
    """
    validate_stations(stations)

    buffer_bytes = tech.switch_buffer_per_port
    if faults is not None:
        buffer_bytes = faults.switch_buffer(buffer_bytes)
    switch = Switch(
        sim,
        n_ports=len(stations),
        buffer_bytes_per_port=buffer_bytes,
        forwarding_latency=tech.switch_latency,
        batch=batch,
        name=f"{name}.switch",
    )
    for port, (addr, device) in enumerate(stations):
        uplink = Wire(
            sim, tech.bandwidth, tech.propagation_delay, name=f"{name}.up{port}"
        )
        uplink.attach(switch.ingress_sink(port))
        device.attach_wire(uplink)

        downlink = Wire(
            sim, tech.bandwidth, tech.propagation_delay, name=f"{name}.down{port}"
        )
        downlink.attach(device)
        switch.attach_output(port, downlink)

        switch.learn(addr, port)
        if faults is not None:
            for wire in (uplink, downlink):
                wf = faults.wire_fault(wire.name)
                if wf is not None:
                    wire.install_fault(wf)
    return switch


class _AggregateUplink:
    """Station-side TX handle of an :class:`AggregateFabric`.

    Presents the slice of the :class:`~repro.net.link.Wire` surface the
    NIC/INIC datapaths actually use (``bandwidth``, ``send``,
    ``register_telemetry``) while the shared fabric does all timing.
    Serialization onto the uplink is still FIFO per station — a float
    ``_busy_until`` instead of a wire object.
    """

    __slots__ = (
        "fabric",
        "port",
        "name",
        "bandwidth",
        "propagation_delay",
        "_busy_until",
        "fault",
        "frames_sent",
        "bytes_sent",
        "busy_time",
    )

    def __init__(self, fabric, port: int, name: str):
        self.fabric = fabric
        self.port = port
        self.name = name
        self.bandwidth = fabric.bandwidth
        self.propagation_delay = fabric.propagation_delay
        self._busy_until = 0.0
        #: optional :class:`~repro.faults.WireFault` injector — same
        #: surface as :class:`~repro.net.link.Wire`
        self.fault = None
        self.frames_sent = 0
        self.bytes_sent = 0.0
        self.busy_time = 0.0

    def send(self, frame: Frame) -> float:
        return self.fabric._send(self, frame)

    def send_train(self, frames: Sequence[Frame], times: Sequence[float]) -> float:
        """Bulk-admit a frame train (see :mod:`repro.net.flowclock`)."""
        return self.fabric.send_train(self, frames, times)

    def install_fault(self, fault) -> None:
        """Attach a :class:`~repro.faults.WireFault` injector."""
        if self.fault is not None:
            raise NetworkError(f"uplink {self.name!r} already has a fault injector")
        self.fault = fault

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def register_telemetry(self, registry, prefix: str) -> None:
        registry.busy(f"{prefix}.busy_time", lambda: self.busy_time)
        registry.counter(f"{prefix}.frames", lambda: self.frames_sent)
        registry.counter(f"{prefix}.bytes", lambda: self.bytes_sent, unit="B")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<AggregateUplink {self.name!r} port={self.port}>"


class AggregateFabric:
    """Whole-star contention model in O(ports) floats.

    The full star spends four timed callbacks and three objects' worth
    of state per frame (uplink wire, output port, downlink wire).  At
    128 nodes that dominates the event budget without changing any
    figure: the switch is non-blocking, so the only shared resources
    are each station's uplink and each output port's drain rate.  This
    model keeps exactly those two, as ``busy_until`` clocks:

    * **uplink** — ``start = max(now, up.busy_until)``; the frame is on
      the switch input ``tx_time`` later.
    * **output port** — arrival is ``start + tx + propagation +
      forwarding_latency``; the port drains FIFO at line rate, so
      ``done = max(arrival, out_busy) + tx``.  The backlog *in bytes*
      at arrival is ``(out_busy - arrival) * bandwidth``; a frame that
      would stretch it past ``buffer_bytes_per_port`` is tail-dropped,
      mirroring the full switch's byte-accounted FIFO.

    Delivery is a single pooled ``call_after`` at ``done +
    propagation``.  Frame trains arrive pre-coalesced by the sending
    NIC's batch policy; the in-switch train merging of the full model
    is deliberately absent (it exists to cut event count, and here a
    frame already costs one event).

    The statistics surface matches :class:`~repro.net.switch.Switch`
    (``total_dropped``/``port_stats``/telemetry names), so runners and
    instruments work unchanged on either fabric.
    """

    def __init__(
        self,
        sim: Simulator,
        n_ports: int,
        bandwidth: float,
        propagation_delay: float = 1e-6,
        forwarding_latency: float = 4e-6,
        buffer_bytes_per_port: float = 128 * 1024,
        name: str = "fabric",
    ):
        if n_ports < 1:
            raise NetworkError("aggregate fabric needs at least one port")
        if bandwidth <= 0:
            raise NetworkError(f"fabric bandwidth must be > 0, got {bandwidth}")
        if buffer_bytes_per_port <= 0:
            raise NetworkError("fabric buffers must be > 0 bytes")
        self.sim = sim
        self.name = name
        self.n_ports = n_ports
        self.bandwidth = float(bandwidth)
        self.propagation_delay = float(propagation_delay)
        self.forwarding_latency = float(forwarding_latency)
        self.buffer_bytes_per_port = float(buffer_bytes_per_port)
        self._uplinks: list[_AggregateUplink] = [
            _AggregateUplink(self, p, f"{name}.up{p}") for p in range(n_ports)
        ]
        self._devices: list[Optional[FrameDevice]] = [None] * n_ports
        self._out_busy = [0.0] * n_ports
        self._stats = [PortStats() for _ in range(n_ports)]
        #: forwarding table keyed on the raw address value — an int hash
        #: per frame instead of a tuple-building ``MacAddress.__hash__``
        self._table: dict[int, int] = {}
        # -- component-failure state (empty unless a fault plan
        # schedules uplink windows; the hot path pays a falsy check) ----
        self._dead_uplinks: set[int] = set()
        #: uplink windows awaiting the fabric's first frame (armed
        #: lazily so schedules align with the workload, not with however
        #: long setup — e.g. INIC bitstream configuration — took)
        self._pending_components: list[tuple[int, float, float]] = []
        self._frames_in = 0
        self._uplink_drops = 0
        self._uplink_drop_bytes = 0.0
        self._component_transitions = 0
        # -- bulk-admission fast path (repro.net.flowclock) -------------
        #: when non-None, ``_deliver`` appends ``(port, frame,
        #: deliver_at)`` here instead of scheduling — the flow clock
        #: dispatches the whole train afterwards
        self._collect: Optional[list] = None
        #: per-destination-port delivery batchers, lazily created
        self._train_batchers: dict = {}
        #: True once a component-fault schedule is staged; bulk
        #: admission then falls back to frame-level so seeded fault
        #: schedules stay bit-identical
        self._faults_armed = False
        #: trains admitted via the vectorized fast path
        self.trains_fast = 0

    # -- wiring -----------------------------------------------------------------
    def uplink(self, port: int) -> _AggregateUplink:
        """The TX handle to hand to the station on ``port``."""
        self._check_port(port)
        return self._uplinks[port]

    def attach_station(self, port: int, device: FrameDevice) -> None:
        """Attach the frame-terminating device of ``port``."""
        self._check_port(port)
        if self._devices[port] is not None:
            raise NetworkError(f"fabric port {port} already attached")
        self._devices[port] = device

    def learn(self, address: MacAddress, port: int) -> None:
        """Install a static forwarding entry."""
        self._check_port(port)
        self._table[address.value] = port

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.n_ports:
            raise NetworkError(f"port {port} out of range 0..{self.n_ports - 1}")

    # -- component failures ------------------------------------------------------
    def install_component_faults(self, plan: "FaultPlan") -> None:
        """Validate and stage uplink fail/repair windows from ``plan``.

        Window starts are **relative to the fabric's first frame** (see
        :meth:`HierarchicalFabric.install_component_faults` for the
        rationale); the schedule arms lazily when traffic begins.

        The aggregate star folds the whole switch into per-port clocks,
        so the only failable components at this fidelity are the station
        uplinks (``up<P>``): during a window the port's entire uplink
        capacity is gone and every transfer it would have carried is
        dropped and counted.  ``kind="switch"`` components are rejected
        loudly — a single-star switch failure is a whole-cluster outage,
        not a reroute scenario; model it on a hierarchical fabric.
        """
        staged: list[tuple[int, float, float]] = []
        for comp in plan.spec.components:
            if comp.kind != "uplink":
                raise NetworkError(
                    f"aggregate star cannot fail switch component "
                    f"{comp.component!r}: its single switch is every "
                    f"station's only path (choose uplink components "
                    f"up0..up{self.n_ports - 1}, or a fattree/torus "
                    f"fabric for switch failures)"
                )
            if not (
                comp.component.startswith("up")
                and comp.component[2:].isdigit()
                and int(comp.component[2:]) < self.n_ports
            ):
                raise NetworkError(
                    f"unknown uplink component {comp.component!r} "
                    f"(choose from up0..up{self.n_ports - 1})"
                )
            port = int(comp.component[2:])
            staged.extend(
                (port, start, duration) for start, duration in comp.windows
            )
        self._pending_components = staged
        if staged:
            self._faults_armed = True

    def _arm_component_faults(self) -> None:
        """First fabric traffic: schedule the staged windows relative to
        now.  A window starting at exactly 0 fails synchronously, so the
        arming frame itself already sees the outage."""
        staged, self._pending_components = self._pending_components, []
        sim = self.sim
        for port, start, duration in staged:
            if start <= 0:
                self._uplink_down(port)
            else:
                sim.call_after(start, self._uplink_down, port)
            sim.call_after(start + duration, self._uplink_up, port)

    def _uplink_down(self, port: int) -> None:
        self._dead_uplinks.add(port)
        self._component_transitions += 1

    def _uplink_up(self, port: int) -> None:
        self._dead_uplinks.discard(port)
        self._component_transitions += 1

    def component_counters(self) -> dict:
        """Uplink-failure accounting (JSON-safe; feeds sweep reports)."""
        return {
            "reroutes": 0,
            "failover_drops": 0,
            "failover_drop_bytes": 0.0,
            "partition_drops": 0,
            "partition_drop_bytes": 0.0,
            "uplink_drops": self._uplink_drops,
            "uplink_drop_bytes": float(self._uplink_drop_bytes),
            "transitions": self._component_transitions,
        }

    def conservation_counters(self) -> dict:
        """Frame-conservation ledger (see the hierarchical fabric's):
        every frame that reached forwarding is delivered or tail-dropped."""
        return {
            "frames_in": self._frames_in,
            "frames_delivered": self.total_forwarded(),
            "frames_dropped": self.total_dropped(),
            "partition_drops": 0,
        }

    # -- data path ---------------------------------------------------------------
    def _send(self, uplink: _AggregateUplink, frame: Frame) -> float:
        sim = self.sim
        now = sim.now
        if self._pending_components:
            self._arm_component_faults()
        if self._dead_uplinks and uplink.port in self._dead_uplinks:
            # Whole-uplink capacity loss: the transfer vanishes at the
            # NIC; recovery (if enabled) retries past the window.
            self._uplink_drops += frame.frame_count
            self._uplink_drop_bytes += frame.wire_size
            return now
        fault = uplink.fault
        wire_size = frame.wire_size
        tx_time = wire_size / self.bandwidth
        if fault is not None:
            # Same semantics as Wire.send: a dropped transfer vanishes
            # before serialization; a corrupted one burns its uplink
            # serialization time and is discarded unreceived.
            verdict = fault.disposition(frame, now)
            if verdict == "drop":
                return now
            if verdict == "corrupt":
                start = now if now > uplink._busy_until else uplink._busy_until
                uplink._busy_until = start + tx_time
                uplink.busy_time += tx_time
                return uplink._busy_until + self.propagation_delay
        return self._admit(uplink, frame, now, tx_time)

    def _admit(
        self, uplink: _AggregateUplink, frame: Frame, now: float, tx_time: float
    ) -> float:
        """Fault-free admission at logical time ``now``.

        The tail of :meth:`_send` with the clock reading parameterized:
        the flow-clock fast path replays it per frame of a train at the
        frame's send time, so bulk admission runs the exact float
        recurrences of the frame-level path.
        """
        start = now if now > uplink._busy_until else uplink._busy_until
        uplink._busy_until = start + tx_time
        uplink.frames_sent += frame.frame_count
        uplink.bytes_sent += frame.wire_size
        uplink.busy_time += tx_time
        arrival = start + tx_time + self.propagation_delay + self.forwarding_latency
        dst = frame.dst
        if dst.value == -1:  # broadcast
            last = now
            src_port = uplink.port
            for port in range(self.n_ports):
                if port != src_port and self._devices[port] is not None:
                    last = self._deliver(port, frame.clone_for(dst), arrival, tx_time)
            return last
        port = self._table.get(dst.value)
        if port is None:
            raise NetworkError(f"no forwarding entry for {dst}")
        return self._deliver(port, frame, arrival, tx_time)

    def fastpath_ok(self) -> bool:
        """True when bulk admission preserves identity fabric-wide.

        Component fault windows perturb admission outcomes mid-train,
        so a staged schedule pins every train to the frame-level path
        (per-uplink wire injectors are checked per train instead).
        """
        return not self._faults_armed

    def send_train(
        self, uplink: _AggregateUplink, frames: Sequence[Frame], times: Sequence[float]
    ) -> float:
        from .flowclock import admit_train

        return admit_train(self, uplink, frames, times)

    def _deliver(self, port: int, frame: Frame, arrival: float, tx_time: float) -> float:
        stats = self._stats[port]
        busy = self._out_busy[port]
        wire_size = frame.wire_size
        self._frames_in += frame.frame_count
        backlog = (busy - arrival) * self.bandwidth if busy > arrival else 0.0
        queued = backlog + wire_size
        if queued > self.buffer_bytes_per_port:
            stats.frames_dropped += frame.frame_count
            stats.bytes_dropped += wire_size
            return self.sim.now
        if queued > stats.max_queue_bytes:
            stats.max_queue_bytes = queued
        done = (busy if busy > arrival else arrival) + tx_time
        self._out_busy[port] = done
        stats.frames_forwarded += frame.frame_count
        stats.bytes_forwarded += wire_size
        deliver_at = done + self.propagation_delay
        device = self._devices[port]
        if device is None:
            raise NetworkError(f"fabric port {port} has no station attached")
        collect = self._collect
        if collect is not None:
            collect.append((port, frame, deliver_at))
            return deliver_at
        sim = self.sim
        sim.call_after(deliver_at - sim.now, device.receive_frame, frame)
        return deliver_at

    # -- statistics ---------------------------------------------------------------
    def register_telemetry(self, registry, prefix: str) -> None:
        """Register fabric-wide and per-port instruments.

        Uses the same naming scheme as the full switch so dashboards
        and report code do not care which fabric a session ran on.
        """
        registry.counter(f"{prefix}.drops", self.total_dropped)
        registry.counter(f"{prefix}.forwarded", self.total_forwarded)
        for port, stats in enumerate(self._stats):
            p = f"{prefix}.port{port}"
            registry.counter(f"{p}.frames", lambda s=stats: s.frames_forwarded)
            registry.counter(f"{p}.bytes", lambda s=stats: s.bytes_forwarded, unit="B")
            registry.counter(f"{p}.drops", lambda s=stats: s.frames_dropped)
            registry.counter(
                f"{p}.dropped_bytes", lambda s=stats: s.bytes_dropped, unit="B"
            )
            registry.gauge(
                f"{p}.max_queue_bytes", lambda s=stats: s.max_queue_bytes, unit="B"
            )

    def port_stats(self, port: int) -> PortStats:
        self._check_port(port)
        return self._stats[port]

    def total_dropped(self) -> int:
        return sum(s.frames_dropped for s in self._stats)

    def total_dropped_bytes(self) -> float:
        return sum(s.bytes_dropped for s in self._stats)

    def total_forwarded(self) -> int:
        return sum(s.frames_forwarded for s in self._stats)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<AggregateFabric {self.name!r} {self.n_ports} ports>"


def build_aggregate_star(
    sim: Simulator,
    stations: Sequence[tuple[MacAddress, FrameDevice]],
    tech: NetworkTechnology = GIGABIT_ETHERNET,
    batch: BatchPolicy = WIRE_BATCH,
    name: str = "fabric",
    faults: Optional["FaultPlan"] = None,
) -> AggregateFabric:
    """Wire ``stations`` to an :class:`AggregateFabric`.

    Drop-in alternative to :func:`build_star` for scale-out runs.
    ``batch`` is accepted for signature parity; in-fabric train merging
    does not exist at this fidelity (see :class:`AggregateFabric`).

    A ``faults`` plan installs per-uplink link-fault injectors (the
    uplinks carry the same ``<name>.up<port>`` names as the full star's
    wires, so a spec's ``wires`` pattern selects the same links) and
    applies forced switch-buffer pressure.  At this fidelity there are
    no downlink objects: a downlink fault in the full model and an
    uplink fault here both cost the sender one lost transfer, so the
    uplink stream is where all link faults are drawn.  Without a plan
    the datapath is byte-for-byte the pre-fault one.
    """
    validate_stations(stations)

    buffer_bytes = tech.switch_buffer_per_port
    if faults is not None:
        buffer_bytes = faults.switch_buffer(buffer_bytes)
    fabric = AggregateFabric(
        sim,
        n_ports=len(stations),
        bandwidth=tech.bandwidth,
        propagation_delay=tech.propagation_delay,
        forwarding_latency=tech.switch_latency,
        buffer_bytes_per_port=buffer_bytes,
        name=name,
    )
    for port, (addr, device) in enumerate(stations):
        uplink = fabric.uplink(port)
        device.attach_wire(uplink)
        fabric.attach_station(port, device)
        fabric.learn(addr, port)
        if faults is not None:
            wf = faults.wire_fault(uplink.name)
            if wf is not None:
                uplink.install_fault(wf)
    return fabric
