"""Hierarchical fabrics: fat-tree and 3D-torus topologies at O(ports) cost.

The single-star models (:func:`~repro.net.fabric.build_star`,
:func:`~repro.net.fabric.build_aggregate_star`) stop at one switch.
This module generalizes the :class:`~repro.net.fabric.AggregateFabric`
trick — fold every contention point into a ``busy_until`` float clock —
to *multi-hop* topologies: a frame's route is a short tuple of clock
indices, each hop is a few float operations, and delivery is still a
single pooled ``call_after``.  A 1024-node alltoall costs the same
events per frame as the single star did.

Topologies
----------
:class:`FatTreeTopology`
    Two-level leaf/spine Clos.  Stations attach to leaves;
    ``ceil(leaf_ports / oversub)`` spines give an ``oversub``:1
    oversubscription of leaf uplink capacity.  Path selection is
    ECMP-free and deterministic: traffic to destination ``d`` always
    crosses spine ``d % n_spines`` — the same frame sequence routes
    identically on every run and under any ``--jobs`` fan-out.

:class:`TorusTopology`
    3D torus with dimension-ordered (X then Y then Z) routing in the
    spirit of APEnet+: each hop takes the shorter wrap direction, ties
    break toward positive.  Each station's router contributes six
    directional link clocks plus an ejection clock.

Timing model (and where it approximates)
----------------------------------------
The end-to-end *base* latency of every path is kept identical to the
single star's: uplink serialization + one propagation + one forwarding
decision + one egress serialization + one propagation.  Intermediate
hops are *contention-only*: crossing a busy inter-switch link waits for
the link clock (FIFO, line-rate spacing) but an idle one is crossed for
free — cut-through with zero per-hop latency.  Inter-switch links are
lossless (credit-based link-level flow control, as on APEnet+'s torus
links and InfiniBand-style Clos fabrics), so congestion there is
queueing delay, never silent loss; only the final egress port keeps the
star's Ethernet tail-drop semantics.
That is deliberate: at low load a hierarchical fabric reproduces the
single-star arrival times byte-for-byte (the A/B equivalence anchor,
``python -m repro.net.topology --ab``), and under load the extra
contention points shape the curves.  Pass ``hop_latency`` to charge a
per-intermediate-hop store-and-forward cost instead; doing so breaks
star equivalence by construction and is off by default.
"""

from __future__ import annotations

from math import ceil, sqrt
from typing import Optional, Sequence, TYPE_CHECKING

from ..errors import NetworkError
from ..sim.engine import Simulator
from .addresses import MacAddress
from .batching import BatchPolicy, WIRE_BATCH
from .fabric import (
    FrameDevice,
    GIGABIT_ETHERNET,
    NetworkTechnology,
    _AggregateUplink,
    validate_stations,
)
from .packet import Frame
from .switch import PortStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults import FaultPlan

__all__ = [
    "FatTreeTopology",
    "TorusTopology",
    "HierarchicalFabric",
    "build_fattree",
    "build_torus",
    "torus_dims",
]


class FatTreeTopology:
    """Two-level leaf/spine geometry + deterministic routing.

    Clock layout (indices into the fabric's clock arrays):

    * ``0 .. n-1`` — station egress ports (``leafL.downX``), the final
      hop of every route;
    * then ``n_leaves * n_spines`` leaf uplinks (``leafL.upS``);
    * then ``n_spines * n_leaves`` spine downlinks (``spineS.downL``).
    """

    kind = "fattree"
    #: Ethernet leaf/spine: the egress port tail-drops like the star's
    lossless = False

    def __init__(
        self,
        n_stations: int,
        oversub: int = 1,
        leaf_ports: Optional[int] = None,
        leaves: Optional[int] = None,
    ):
        if n_stations < 1:
            raise NetworkError("fat-tree needs at least one station")
        if int(oversub) != oversub or oversub < 1:
            raise NetworkError(
                f"fat-tree oversub must be a positive integer, got {oversub!r}"
            )
        oversub = int(oversub)
        if leaf_ports is None:
            # Near-square default: ~sqrt(n) stations per leaf, so leaf
            # count and leaf radix grow together.
            leaf_ports = max(1, ceil(sqrt(n_stations)))
        if leaf_ports < 1:
            raise NetworkError(f"fat-tree leaf_ports must be >= 1, got {leaf_ports}")
        if leaves is None:
            leaves = ceil(n_stations / leaf_ports)
        if leaves * leaf_ports < n_stations:
            raise NetworkError(
                f"fat-tree out of ports: {leaves} leaves x {leaf_ports} "
                f"ports hold {leaves * leaf_ports} stations, need {n_stations}"
            )
        self.n_stations = n_stations
        self.oversub = oversub
        self.leaf_ports = leaf_ports
        self.n_leaves = leaves
        self.n_spines = max(1, ceil(leaf_ports / oversub))
        self._up_base = n_stations
        self._spine_base = n_stations + self.n_leaves * self.n_spines
        self.n_clocks = self._spine_base + self.n_spines * self.n_leaves

    def route(self, src: int, dst: int) -> tuple[int, ...]:
        """Clock indices the frame traverses; the last is the egress port."""
        lp = self.leaf_ports
        src_leaf = src // lp
        dst_leaf = dst // lp
        if src_leaf == dst_leaf:
            return (dst,)
        spine = dst % self.n_spines
        return (
            self._up_base + src_leaf * self.n_spines + spine,
            self._spine_base + spine * self.n_leaves + dst_leaf,
            dst,
        )

    def route_key(self, src: int, dst: int) -> int:
        """Route-cache key: a fat-tree route only depends on the source
        *leaf*, so the memo stays ``n_leaves * n`` entries, not ``n^2``."""
        return (src // self.leaf_ports) * self.n_stations + dst

    # -- component failures ------------------------------------------------
    def switch_components(self) -> list[str]:
        """Switch names a :class:`~repro.faults.ComponentFaultSpec` may
        fail.  Only spines: a leaf is its stations' sole attachment, so
        its failure is a station failure, not a reroute scenario."""
        return [f"spine{s}" for s in range(self.n_spines)]

    def failure_domain(self, component: str) -> tuple[int, tuple[int, ...]]:
        """``(spine index, clock indices)`` killed by failing ``component``.

        The domain is the spine's downlink clocks: a frame already
        hashed to a dead spine crosses its leaf uplink (charged — the
        leaf did serialize it) and is blackholed at the spine.
        """
        if component.startswith("spine") and component[5:].isdigit():
            k = int(component[5:])
            if k < self.n_spines:
                return k, tuple(
                    self._spine_base + k * self.n_leaves + leaf
                    for leaf in range(self.n_leaves)
                )
        raise NetworkError(
            f"unknown fat-tree switch component {component!r} (choose "
            f"from {', '.join(self.switch_components())}; leaves are "
            f"each their stations' only attachment and are not failable)"
        )

    def route_avoiding(
        self, src: int, dst: int, dead: set, cache: Optional[dict] = None
    ) -> tuple[Optional[tuple[int, ...]], bool]:
        """Fault-tolerant route: ``(hops, rerouted)``.

        Flows whose default spine survives keep their exact
        zero-failure path; flows hashed to a dead spine rehash
        deterministically over the surviving spines
        (``live[dst % len(live)]``).  ``hops`` is ``None`` when no
        spine survives — inter-leaf traffic is partitioned.
        """
        lp = self.leaf_ports
        src_leaf = src // lp
        if src_leaf == dst // lp:
            return (dst,), False
        spine = dst % self.n_spines
        if spine not in dead:
            return self.route(src, dst), False
        live = [s for s in range(self.n_spines) if s not in dead]
        if not live:
            return None, True
        spine = live[dst % len(live)]
        return (
            self._up_base + src_leaf * self.n_spines + spine,
            self._spine_base + spine * self.n_leaves + dst // lp,
            dst,
        ), True

    def clock_name(self, clock: int) -> str:
        if clock < self._up_base:
            return f"leaf{clock // self.leaf_ports}.down{clock % self.leaf_ports}"
        if clock < self._spine_base:
            k = clock - self._up_base
            return f"leaf{k // self.n_spines}.up{k % self.n_spines}"
        k = clock - self._spine_base
        return f"spine{k // self.n_leaves}.down{k % self.n_leaves}"

    def switches(self) -> list[tuple[str, list[int]]]:
        """``(switch name, clock indices)`` pairs for telemetry."""
        out = []
        for leaf in range(self.n_leaves):
            down = [
                c
                for c in range(leaf * self.leaf_ports, (leaf + 1) * self.leaf_ports)
                if c < self.n_stations
            ]
            up = [
                self._up_base + leaf * self.n_spines + s
                for s in range(self.n_spines)
            ]
            out.append((f"leaf{leaf}", down + up))
        for spine in range(self.n_spines):
            out.append(
                (
                    f"spine{spine}",
                    [
                        self._spine_base + spine * self.n_leaves + leaf
                        for leaf in range(self.n_leaves)
                    ],
                )
            )
        return out

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "leaves": self.n_leaves,
            "spines": self.n_spines,
            "leaf_ports": self.leaf_ports,
            "oversub": self.oversub,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FatTreeTopology {self.n_stations} stations, "
            f"{self.n_leaves}x{self.leaf_ports} leaves, {self.n_spines} spines>"
        )


def torus_dims(n: int) -> tuple[int, int, int]:
    """A near-cubic exact factorization of ``n`` (X, Y, Z with XYZ=n)."""
    if n < 1:
        raise NetworkError(f"torus needs at least one station, got {n}")
    target = n ** (1.0 / 3.0)
    x = min(
        (d for d in range(1, n + 1) if n % d == 0),
        key=lambda d: (abs(d - target), d),
    )
    rest = n // x
    target2 = sqrt(rest)
    y = min(
        (d for d in range(1, rest + 1) if rest % d == 0),
        key=lambda d: (abs(d - target2), d),
    )
    return (x, y, rest // y)


class TorusTopology:
    """3D torus with dimension-ordered shortest-wrap routing.

    Every router contributes seven clocks: ``+x,-x,+y,-y,+z,-z`` link
    clocks (``router*7 + 0..5``) and one ejection port
    (``router*7 + 6``) — the final hop of every route, playing the role
    the output port plays in the star.
    """

    kind = "torus"
    #: APEnet+-style system-area interconnect: credit-based link-level
    #: flow control end to end, ejection included — congestion is
    #: queueing delay, never loss
    lossless = True

    #: direction-clock display names, matching the route() encoding
    _DIRS = ("x+", "x-", "y+", "y-", "z+", "z-", "eject")

    def __init__(self, n_stations: int, dims: Optional[Sequence[int]] = None):
        if n_stations < 1:
            raise NetworkError("torus needs at least one station")
        if dims is None:
            dims = torus_dims(n_stations)
        dims = tuple(int(d) for d in dims)
        if len(dims) != 3 or any(d < 1 for d in dims):
            raise NetworkError(
                f"torus dims must be three positive integers, got {dims!r}"
            )
        routers = dims[0] * dims[1] * dims[2]
        if routers < n_stations:
            raise NetworkError(
                f"torus out of ports: dims {dims} hold {routers} stations, "
                f"need {n_stations}"
            )
        self.n_stations = n_stations
        self.dims = dims
        self.n_routers = routers
        self.n_clocks = routers * 7

    def coords(self, router: int) -> tuple[int, int, int]:
        x_dim, y_dim, _ = self.dims
        return (
            router % x_dim,
            (router // x_dim) % y_dim,
            router // (x_dim * y_dim),
        )

    def route(self, src: int, dst: int) -> tuple[int, ...]:
        """Dimension-ordered X->Y->Z, shorter wrap direction, positive
        on ties; ends at the destination router's ejection clock."""
        if src == dst:
            return (dst * 7 + 6,)
        x_dim, y_dim, _ = self.dims
        dims = self.dims
        hops = []
        cur = [src % x_dim, (src // x_dim) % y_dim, src // (x_dim * y_dim)]
        dst_c = (dst % x_dim, (dst // x_dim) % y_dim, dst // (x_dim * y_dim))
        for axis in range(3):
            d = dims[axis]
            delta = (dst_c[axis] - cur[axis]) % d
            if delta == 0:
                continue
            if delta <= d - delta:
                step, direction, count = 1, 2 * axis, delta
            else:
                step, direction, count = -1, 2 * axis + 1, d - delta
            for _ in range(count):
                router = cur[0] + x_dim * (cur[1] + y_dim * cur[2])
                hops.append(router * 7 + direction)
                cur[axis] = (cur[axis] + step) % d
        hops.append(dst * 7 + 6)
        return tuple(hops)

    def route_key(self, src: int, dst: int) -> int:
        """Route-cache key: torus routes depend on the full pair."""
        return src * self.n_stations + dst

    # -- component failures ------------------------------------------------
    def neighbors(self, router: int) -> list[tuple[int, int]]:
        """``(direction, neighbor router)`` pairs in direction order
        (the deterministic tie-break order for detour routing)."""
        x_dim, y_dim, z_dim = self.dims
        c = self.coords(router)
        out = []
        for axis, dim in enumerate(self.dims):
            if dim == 1:
                continue  # a 1-wide axis wraps to self: no link
            for direction, step in ((2 * axis, 1), (2 * axis + 1, -1)):
                n = list(c)
                n[axis] = (n[axis] + step) % dim
                out.append((direction, n[0] + x_dim * (n[1] + y_dim * n[2])))
        return out

    def switch_components(self) -> list[str]:
        """Router names a :class:`~repro.faults.ComponentFaultSpec` may
        fail.  A dead router blocks transit; a station attached to it is
        partitioned for the window."""
        return [f"router{r}" for r in range(self.n_routers)]

    def failure_domain(self, component: str) -> tuple[int, tuple[int, ...]]:
        """``(router index, its seven clocks)`` for ``component``."""
        if component.startswith("router") and component[6:].isdigit():
            r = int(component[6:])
            if r < self.n_routers:
                return r, tuple(range(r * 7, r * 7 + 7))
        raise NetworkError(
            f"unknown torus switch component {component!r} "
            f"(choose from router0..router{self.n_routers - 1})"
        )

    def _nexthop_table(self, dst: int, dead: set) -> dict[int, int]:
        """Fault-tolerant next-hop table toward ``dst``: for every
        router that can still reach ``dst``, the direction clock of a
        shortest detour (BFS over live routers; among equal-length
        choices the lowest direction index wins, so the table — and
        every route walked from it — is deterministic)."""
        dist = {dst: 0}
        frontier = [dst]
        while frontier:
            nxt = []
            for r in frontier:
                for _d, nbr in self.neighbors(r):
                    if nbr not in dist and nbr not in dead:
                        dist[nbr] = dist[r] + 1
                        nxt.append(nbr)
            frontier = nxt
        table: dict[int, int] = {}
        for r, d_r in dist.items():
            if r == dst:
                continue
            for direction, nbr in self.neighbors(r):
                if dist.get(nbr) == d_r - 1:
                    table[r] = r * 7 + direction
                    break
        return table

    def route_avoiding(
        self, src: int, dst: int, dead: set, cache: Optional[dict] = None
    ) -> tuple[Optional[tuple[int, ...]], bool]:
        """Fault-tolerant route: ``(hops, detoured)``.

        The dimension-ordered path is kept verbatim when it crosses no
        dead router (zero-failure pairs stay byte-identical); otherwise
        the frame walks the precomputed next-hop table around the
        failure.  ``hops`` is ``None`` when ``src`` or ``dst`` sits on
        a dead router or the failure partitions the pair.
        """
        if src in dead or dst in dead:
            return None, False
        hops = self.route(src, dst)
        if not any(h // 7 in dead for h in hops):
            return hops, False
        if cache is None:
            cache = {}
        table = cache.get(dst)
        if table is None:
            table = cache[dst] = self._nexthop_table(dst, dead)
        x_dim, y_dim, _ = self.dims
        out = []
        r = src
        while r != dst:
            step = table.get(r)
            if step is None:
                return None, True  # the failure partitions this pair
            out.append(step)
            direction = step % 7
            axis, sign = direction // 2, 1 if direction % 2 == 0 else -1
            c = list(self.coords(r))
            c[axis] = (c[axis] + sign) % self.dims[axis]
            r = c[0] + x_dim * (c[1] + y_dim * c[2])
        out.append(dst * 7 + 6)
        return tuple(out), True

    def clock_name(self, clock: int) -> str:
        return f"router{clock // 7}.{self._DIRS[clock % 7]}"

    def switches(self) -> list[tuple[str, list[int]]]:
        return [
            (f"router{r}", list(range(r * 7, r * 7 + 7)))
            for r in range(self.n_routers)
        ]

    def describe(self) -> dict:
        return {"kind": self.kind, "dims": list(self.dims)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        x, y, z = self.dims
        return f"<TorusTopology {self.n_stations} stations on {x}x{y}x{z}>"


class HierarchicalFabric:
    """Multi-hop fabric over per-hop ``busy_until`` clocks.

    The generalization of :class:`~repro.net.fabric.AggregateFabric`:
    instead of one output-port clock per destination, a topology maps
    each (src, dst) pair to a tuple of clock indices.  Intermediate
    clocks charge contention only (see the module docstring); the final
    clock behaves exactly like the star's output port — FIFO drain at
    line rate, byte-accounted tail drop (unless the topology is
    ``lossless``), delivery one propagation after serialization
    completes, as a single pooled ``call_after``.

    The statistics/telemetry surface is a superset of
    :class:`~repro.net.fabric.AggregateFabric`'s: ``port_stats(i)``
    resolves to station ``i``'s egress clock, and per-switch counters
    aggregate each switch's clocks at snapshot time (pull-based — the
    hot path never touches them).
    """

    def __init__(
        self,
        sim: Simulator,
        topology,
        bandwidth: float,
        propagation_delay: float = 1e-6,
        forwarding_latency: float = 4e-6,
        buffer_bytes_per_port: float = 128 * 1024,
        hop_latency: float = 0.0,
        name: str = "fabric",
    ):
        if bandwidth <= 0:
            raise NetworkError(f"fabric bandwidth must be > 0, got {bandwidth}")
        if buffer_bytes_per_port <= 0:
            raise NetworkError("fabric buffers must be > 0 bytes")
        if hop_latency < 0:
            raise NetworkError(f"negative hop latency {hop_latency}")
        self.sim = sim
        self.name = name
        self.topology = topology
        self.n_stations = topology.n_stations
        self.n_ports = topology.n_stations
        self.bandwidth = float(bandwidth)
        self.propagation_delay = float(propagation_delay)
        self.forwarding_latency = float(forwarding_latency)
        self.buffer_bytes_per_port = float(buffer_bytes_per_port)
        self.hop_latency = float(hop_latency)
        self._lossless = bool(getattr(topology, "lossless", False))
        self._route = topology.route
        #: (route_key -> hop tuple) memo — routes are static, and at a
        #: million frames per run recomputing them dominated the profile.
        #: ``route_key(src, dst)`` is ``route_key(src, 0) + dst`` for
        #: every topology (keys are row-linear in dst), so the per-frame
        #: key is one list index and one add.
        self._routes: dict[int, tuple[int, ...]] = {}
        self._key_base = [
            topology.route_key(s, 0) for s in range(self.n_stations)
        ]
        self._uplinks = [
            _AggregateUplink(self, p, f"{name}.up{p}")
            for p in range(self.n_stations)
        ]
        self._devices: list[Optional[FrameDevice]] = [None] * self.n_stations
        self._clock_busy = [0.0] * topology.n_clocks
        self._stats = [PortStats() for _ in range(topology.n_clocks)]
        self._egress_clock = [
            topology.route(s, s)[-1] for s in range(self.n_stations)
        ]
        self._table: dict[int, int] = {}
        self._hops_total = 0
        self._frames_routed = 0
        self._max_hops = 0
        # -- component-failure state (all empty/zero unless a fault plan
        # schedules ComponentFaultSpec windows; the hot path only pays
        # falsy checks on the empty containers) -------------------------
        self._detection_delay = 0.0
        #: component windows awaiting the fabric's first frame (armed
        #: lazily so schedules align with the workload, not with however
        #: long setup — e.g. INIC bitstream configuration — took)
        self._pending_components: list[tuple] = []
        self._failed_clocks: set[int] = set()   # frames crossing these drop
        self._dead_switches: set[int] = set()   # routing's (detected) view
        self._dead_uplinks: set[int] = set()
        self._detour_keys: set[int] = set()     # route-memo keys on detours
        self._ft_cache: dict[int, dict[int, int]] = {}
        self._frames_in = 0
        self._reroutes = 0
        self._failover_drops = 0
        self._failover_drop_bytes = 0.0
        self._partition_drops = 0
        self._partition_drop_bytes = 0.0
        self._uplink_drops = 0
        self._uplink_drop_bytes = 0.0
        self._component_transitions = 0
        # -- bulk-admission fast path (repro.net.flowclock) -------------
        #: when non-None, ``_route_deliver`` appends ``(port, frame,
        #: deliver_at)`` here instead of scheduling delivery
        self._collect: Optional[list] = None
        #: per-destination-port delivery batchers, lazily created
        self._train_batchers: dict = {}
        #: True once a component-fault schedule is staged; bulk
        #: admission then falls back to frame-level so seeded fault
        #: schedules stay bit-identical
        self._faults_armed = False
        #: trains admitted via the vectorized fast path
        self.trains_fast = 0

    # -- wiring -----------------------------------------------------------------
    def uplink(self, port: int) -> _AggregateUplink:
        """The TX handle to hand to the station on ``port``."""
        self._check_port(port)
        return self._uplinks[port]

    def attach_station(self, port: int, device: FrameDevice) -> None:
        self._check_port(port)
        if self._devices[port] is not None:
            raise NetworkError(f"fabric port {port} already attached")
        self._devices[port] = device

    def learn(self, address: MacAddress, port: int) -> None:
        """Install a static forwarding entry."""
        self._check_port(port)
        self._table[address.value] = port

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.n_stations:
            raise NetworkError(
                f"port {port} out of range 0..{self.n_stations - 1}"
            )

    # -- component failures ------------------------------------------------------
    def install_component_faults(self, plan: "FaultPlan") -> None:
        """Validate and stage every
        :class:`~repro.faults.ComponentFaultSpec` window of ``plan``.

        Window starts are **relative to the fabric's first frame**, not
        to simulation time zero: the schedule arms lazily when traffic
        begins, so setup phases of unpredictable length (INIC bitstream
        configuration, TCP warm-up) never silently consume a campaign's
        horizon.  First-frame time is itself a deterministic function of
        the run, so schedules stay bit-identical across ``--jobs``.

        At window start the component's clocks go dark (frames crossing
        them are dropped and charged); ``detection_delay`` later routing
        reacts — the fat-tree rehashes over surviving spines, the torus
        detours via its next-hop table; at window end the component
        repairs and routes converge back to the zero-failure paths.
        """
        spec = plan.spec
        self._detection_delay = spec.detection_delay
        staged: list[tuple] = []
        for comp in spec.components:
            if comp.kind == "uplink":
                port = self._parse_uplink(comp.component)
                staged.extend(
                    ("uplink", port, None, start, duration)
                    for start, duration in comp.windows
                )
                continue
            entity, clocks = self.topology.failure_domain(comp.component)
            staged.extend(
                ("switch", entity, clocks, start, duration)
                for start, duration in comp.windows
            )
        self._pending_components = staged
        if staged:
            self._faults_armed = True

    def _arm_component_faults(self) -> None:
        """First fabric traffic: turn the staged windows into scheduled
        fail/detect/repair events relative to now.  A window starting at
        exactly 0 fails synchronously, so the arming frame itself
        already sees the outage."""
        staged, self._pending_components = self._pending_components, []
        sim = self.sim
        detect = self._detection_delay
        for kind, entity, clocks, start, duration in staged:
            if kind == "uplink":
                if start <= 0:
                    self._uplink_down(entity)
                else:
                    sim.call_after(start, self._uplink_down, entity)
                sim.call_after(start + duration, self._uplink_up, entity)
                continue
            if start <= 0:
                self._switch_down(entity, clocks)
            else:
                sim.call_after(start, self._switch_down, entity, clocks)
            if 0 < detect < duration:
                sim.call_after(start + detect, self._switch_detected, entity)
            sim.call_after(start + duration, self._switch_up, entity, clocks)

    def _parse_uplink(self, component: str) -> int:
        if component.startswith("up") and component[2:].isdigit():
            port = int(component[2:])
            if port < self.n_stations:
                return port
        raise NetworkError(
            f"unknown uplink component {component!r} "
            f"(choose from up0..up{self.n_stations - 1})"
        )

    def _switch_down(self, entity: int, clocks: tuple[int, ...]) -> None:
        self._failed_clocks.update(clocks)
        self._component_transitions += 1
        if self._detection_delay == 0:
            self._switch_detected(entity)

    def _switch_detected(self, entity: int) -> None:
        self._dead_switches.add(entity)
        self._flush_routes()

    def _switch_up(self, entity: int, clocks: tuple[int, ...]) -> None:
        self._failed_clocks.difference_update(clocks)
        self._component_transitions += 1
        if entity in self._dead_switches:
            self._dead_switches.discard(entity)
            self._flush_routes()

    def _uplink_down(self, port: int) -> None:
        self._dead_uplinks.add(port)
        self._component_transitions += 1

    def _uplink_up(self, port: int) -> None:
        self._dead_uplinks.discard(port)
        self._component_transitions += 1

    def _flush_routes(self) -> None:
        # Routing state changed: recompute every route lazily against
        # the new live set (unaffected pairs recompute to their exact
        # old paths, so zero-failure equivalence is preserved).
        self._routes.clear()
        self._detour_keys.clear()
        self._ft_cache.clear()

    def component_counters(self) -> dict:
        """Failover/detour accounting (JSON-safe; feeds sweep reports)."""
        return {
            "reroutes": self._reroutes,
            "failover_drops": self._failover_drops,
            "failover_drop_bytes": float(self._failover_drop_bytes),
            "partition_drops": self._partition_drops,
            "partition_drop_bytes": float(self._partition_drop_bytes),
            "uplink_drops": self._uplink_drops,
            "uplink_drop_bytes": float(self._uplink_drop_bytes),
            "transitions": self._component_transitions,
        }

    def conservation_counters(self) -> dict:
        """Frame-conservation ledger: every frame the fabric routed is
        delivered, dropped at a clock (tail drop or dead component), or
        dropped at routing time for a partitioned destination — the
        chaos harness asserts ``frames_in`` equals the sum."""
        return {
            "frames_in": self._frames_in,
            "frames_delivered": self.total_forwarded(),
            "frames_dropped": self.total_dropped(),
            "partition_drops": self._partition_drops,
        }

    # -- data path ---------------------------------------------------------------
    def _send(self, uplink: _AggregateUplink, frame: Frame) -> float:
        sim = self.sim
        now = sim.now
        if self._pending_components:
            self._arm_component_faults()
        if self._dead_uplinks and uplink.port in self._dead_uplinks:
            # The station's own uplink is down: the frame vanishes at
            # the NIC (recovery, if enabled, will retry past the window).
            self._uplink_drops += frame.frame_count
            self._uplink_drop_bytes += frame.wire_size
            return now
        fault = uplink.fault
        wire_size = frame.wire_size
        tx_time = wire_size / self.bandwidth
        if fault is not None:
            # Same semantics as Wire.send / AggregateFabric._send.
            verdict = fault.disposition(frame, now)
            if verdict == "drop":
                return now
            if verdict == "corrupt":
                start = now if now > uplink._busy_until else uplink._busy_until
                uplink._busy_until = start + tx_time
                uplink.busy_time += tx_time
                return uplink._busy_until + self.propagation_delay
        return self._admit(uplink, frame, now, tx_time)

    def _admit(
        self, uplink: _AggregateUplink, frame: Frame, now: float, tx_time: float
    ) -> float:
        """Fault-free admission at logical time ``now`` (see
        :meth:`AggregateFabric._admit <repro.net.fabric.AggregateFabric._admit>`)."""
        start = now if now > uplink._busy_until else uplink._busy_until
        uplink._busy_until = start + tx_time
        uplink.frames_sent += frame.frame_count
        uplink.bytes_sent += frame.wire_size
        uplink.busy_time += tx_time
        arrival = start + tx_time + self.propagation_delay + self.forwarding_latency
        dst = frame.dst
        if dst.value == -1:  # broadcast: fan out along each unicast route
            last = now
            src_port = uplink.port
            for port in range(self.n_stations):
                if port != src_port and self._devices[port] is not None:
                    last = self._route_deliver(
                        src_port, port, frame.clone_for(dst), arrival, tx_time
                    )
            return last
        port = self._table.get(dst.value)
        if port is None:
            raise NetworkError(f"no forwarding entry for {dst}")
        return self._route_deliver(uplink.port, port, frame, arrival, tx_time)

    def fastpath_ok(self) -> bool:
        """True when bulk admission preserves identity fabric-wide
        (component windows — switch or uplink — force frame-level)."""
        return not self._faults_armed

    def send_train(
        self, uplink: _AggregateUplink, frames: Sequence[Frame], times: Sequence[float]
    ) -> float:
        from .flowclock import admit_train

        return admit_train(self, uplink, frames, times)

    def _route_deliver(
        self, src_port: int, dst_port: int, frame: Frame, arrival: float,
        tx_time: float,
    ) -> float:
        key = self._key_base[src_port] + dst_port
        self._frames_in += frame.frame_count
        hops = self._routes.get(key)
        if hops is None:
            if self._dead_switches:
                hops, detoured = self.topology.route_avoiding(
                    src_port, dst_port, self._dead_switches, self._ft_cache
                )
                if hops is None:
                    hops = ()  # cached partition sentinel
                elif detoured:
                    self._detour_keys.add(key)
            else:
                hops = self._route(src_port, dst_port)
            self._routes[key] = hops
        if not hops:
            # Destination unreachable on the surviving topology: the
            # frame is dropped at routing time; end-to-end recovery
            # either outlives the window or surfaces TransferAborted.
            self._partition_drops += frame.frame_count
            self._partition_drop_bytes += frame.wire_size
            return self.sim.now
        if self._detour_keys and key in self._detour_keys:
            self._reroutes += frame.frame_count
        n_hops = len(hops)
        self._frames_routed += 1
        self._hops_total += n_hops
        if n_hops > self._max_hops:
            self._max_hops = n_hops
        if self._failed_clocks:
            failed = self._failed_clocks
            for i in range(n_hops):
                if hops[i] in failed:
                    return self._drop_at_failure(
                        hops, i, frame, arrival, tx_time
                    )
        busy = self._clock_busy
        all_stats = self._stats
        wire_size = frame.wire_size
        frame_count = frame.frame_count
        bandwidth = self.bandwidth
        buffer_bytes = self.buffer_bytes_per_port
        hop_latency = self.hop_latency
        # Intermediate hops: FIFO contention on each inter-switch link
        # clock; an idle link adds hop_latency only.  Inter-switch links
        # are *lossless* — credit-based link-level flow control, as in
        # APEnet+'s torus links and InfiniBand-style Clos fabrics —
        # so congestion shows up as queueing delay (watch
        # ``max_queue_bytes``), never as silent loss the end-to-end
        # protocols cannot attribute.  Only the final egress port keeps
        # the star's Ethernet tail-drop semantics.
        for i in range(n_hops - 1):
            k = hops[i]
            b = busy[k]
            stats = all_stats[k]
            backlog = (b - arrival) * bandwidth if b > arrival else 0.0
            queued = backlog + wire_size
            if queued > stats.max_queue_bytes:
                stats.max_queue_bytes = queued
            begin = b if b > arrival else arrival
            busy[k] = begin + tx_time
            stats.frames_forwarded += frame_count
            stats.bytes_forwarded += wire_size
            arrival = begin + hop_latency
        # Final hop: the destination's egress port, exactly the star
        # model — except on lossless topologies (the torus), where the
        # ejection port is credit-backpressured like every other link
        # and overflow becomes delay instead of loss.
        k = hops[n_hops - 1]
        b = busy[k]
        stats = all_stats[k]
        backlog = (b - arrival) * bandwidth if b > arrival else 0.0
        queued = backlog + wire_size
        if queued > buffer_bytes and not self._lossless:
            stats.frames_dropped += frame_count
            stats.bytes_dropped += wire_size
            return self.sim.now
        if queued > stats.max_queue_bytes:
            stats.max_queue_bytes = queued
        done = (b if b > arrival else arrival) + tx_time
        busy[k] = done
        stats.frames_forwarded += frame_count
        stats.bytes_forwarded += wire_size
        deliver_at = done + self.propagation_delay
        device = self._devices[dst_port]
        if device is None:
            raise NetworkError(f"fabric port {dst_port} has no station attached")
        collect = self._collect
        if collect is not None:
            collect.append((dst_port, frame, deliver_at))
            return deliver_at
        sim = self.sim
        sim.call_after(deliver_at - sim.now, device.receive_frame, frame)
        return deliver_at

    def _drop_at_failure(
        self,
        hops: tuple[int, ...],
        dead_index: int,
        frame: Frame,
        arrival: float,
        tx_time: float,
    ) -> float:
        """The frame's route crosses a failed clock (detection window,
        or a partially-detected multi-hop path): charge the live hops it
        actually traversed, then blackhole it at the dead component —
        the drop lands in that clock's :class:`PortStats`, so switch
        drop totals and the conservation ledger both see it."""
        busy = self._clock_busy
        all_stats = self._stats
        wire_size = frame.wire_size
        frame_count = frame.frame_count
        bandwidth = self.bandwidth
        hop_latency = self.hop_latency
        for i in range(dead_index):
            k = hops[i]
            b = busy[k]
            stats = all_stats[k]
            backlog = (b - arrival) * bandwidth if b > arrival else 0.0
            queued = backlog + wire_size
            if queued > stats.max_queue_bytes:
                stats.max_queue_bytes = queued
            begin = b if b > arrival else arrival
            busy[k] = begin + tx_time
            stats.frames_forwarded += frame_count
            stats.bytes_forwarded += wire_size
            arrival = begin + hop_latency
        stats = all_stats[hops[dead_index]]
        stats.frames_dropped += frame_count
        stats.bytes_dropped += wire_size
        self._failover_drops += frame_count
        self._failover_drop_bytes += wire_size
        return self.sim.now

    # -- statistics ---------------------------------------------------------------
    def port_stats(self, port: int) -> PortStats:
        """Station ``port``'s egress-clock stats (star-compatible view)."""
        self._check_port(port)
        return self._stats[self._egress_clock[port]]

    def clock_stats(self, clock: int) -> PortStats:
        """Stats of an arbitrary clock (use ``topology.clock_name``)."""
        return self._stats[clock]

    def total_dropped(self) -> int:
        return sum(s.frames_dropped for s in self._stats)

    def total_dropped_bytes(self) -> float:
        return sum(s.bytes_dropped for s in self._stats)

    def total_forwarded(self) -> int:
        """Frames delivered to stations (egress-clock count, matching
        the single-star fabrics; intermediate hops are not re-counted)."""
        return sum(
            self._stats[c].frames_forwarded for c in set(self._egress_clock)
        )

    def hop_stats(self) -> dict:
        """Routing cost summary (JSON-safe; feeds sweep reports)."""
        frames = self._frames_routed
        return {
            "frames": frames,
            "total_hops": self._hops_total,
            "max_hops": self._max_hops,
            "avg_hops": (self._hops_total / frames) if frames else 0.0,
        }

    def register_telemetry(self, registry, prefix: str) -> None:
        """Fabric-wide, per-station-port, and per-switch instruments.

        Keeps the single-star naming for the shared surface
        (``<prefix>.forwarded`` / ``.drops`` / ``.port<i>.*``) and adds
        ``<prefix>.hops``, ``<prefix>.sw.<switch>.*`` aggregates.  All
        pull-based: registration costs nothing on the data path.
        """
        registry.counter(f"{prefix}.drops", self.total_dropped)
        registry.counter(f"{prefix}.forwarded", self.total_forwarded)
        registry.counter(f"{prefix}.hops", lambda: self._hops_total)
        registry.gauge(
            f"{prefix}.avg_hops", lambda: self.hop_stats()["avg_hops"]
        )
        for port in range(self.n_stations):
            stats = self._stats[self._egress_clock[port]]
            p = f"{prefix}.port{port}"
            registry.counter(f"{p}.frames", lambda s=stats: s.frames_forwarded)
            registry.counter(f"{p}.bytes", lambda s=stats: s.bytes_forwarded, unit="B")
            registry.counter(f"{p}.drops", lambda s=stats: s.frames_dropped)
            registry.counter(
                f"{p}.dropped_bytes", lambda s=stats: s.bytes_dropped, unit="B"
            )
            registry.gauge(
                f"{p}.max_queue_bytes", lambda s=stats: s.max_queue_bytes, unit="B"
            )
        for switch, clocks in self.topology.switches():
            p = f"{prefix}.sw.{switch}"
            group = [self._stats[c] for c in clocks]
            registry.counter(
                f"{p}.frames",
                lambda g=group: sum(s.frames_forwarded for s in g),
            )
            registry.counter(
                f"{p}.bytes",
                lambda g=group: sum(s.bytes_forwarded for s in g),
                unit="B",
            )
            registry.counter(
                f"{p}.drops", lambda g=group: sum(s.frames_dropped for s in g)
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<HierarchicalFabric {self.name!r} {self.topology!r}>"
        )


def _build_hierarchical(
    sim: Simulator,
    stations: Sequence[tuple[MacAddress, FrameDevice]],
    topology,
    tech: NetworkTechnology,
    name: str,
    faults: Optional["FaultPlan"],
    hop_latency: float,
) -> HierarchicalFabric:
    validate_stations(stations)
    buffer_bytes = tech.switch_buffer_per_port
    if faults is not None:
        buffer_bytes = faults.switch_buffer(buffer_bytes)
    fabric = HierarchicalFabric(
        sim,
        topology,
        bandwidth=tech.bandwidth,
        propagation_delay=tech.propagation_delay,
        forwarding_latency=tech.switch_latency,
        buffer_bytes_per_port=buffer_bytes,
        hop_latency=hop_latency,
        name=name,
    )
    for port, (addr, device) in enumerate(stations):
        uplink = fabric.uplink(port)
        device.attach_wire(uplink)
        fabric.attach_station(port, device)
        fabric.learn(addr, port)
        if faults is not None:
            wf = faults.wire_fault(uplink.name)
            if wf is not None:
                uplink.install_fault(wf)
    return fabric


def build_fattree(
    sim: Simulator,
    stations: Sequence[tuple[MacAddress, FrameDevice]],
    tech: NetworkTechnology = GIGABIT_ETHERNET,
    batch: BatchPolicy = WIRE_BATCH,
    name: str = "fabric",
    faults: Optional["FaultPlan"] = None,
    oversub: int = 1,
    leaf_ports: Optional[int] = None,
    leaves: Optional[int] = None,
    hop_latency: float = 0.0,
) -> HierarchicalFabric:
    """Wire ``stations`` to a leaf/spine fat-tree.

    ``batch`` is accepted for builder-signature parity (no in-fabric
    train merging at this fidelity).  ``faults`` installs per-uplink
    injectors and buffer pressure, as on the aggregate star.
    """
    topo = FatTreeTopology(
        len(stations), oversub=oversub, leaf_ports=leaf_ports, leaves=leaves
    )
    return _build_hierarchical(
        sim, stations, topo, tech, name, faults, hop_latency
    )


def build_torus(
    sim: Simulator,
    stations: Sequence[tuple[MacAddress, FrameDevice]],
    tech: NetworkTechnology = GIGABIT_ETHERNET,
    batch: BatchPolicy = WIRE_BATCH,
    name: str = "fabric",
    faults: Optional["FaultPlan"] = None,
    dims: Optional[Sequence[int]] = None,
    hop_latency: float = 0.0,
) -> HierarchicalFabric:
    """Wire ``stations`` to a 3D torus (dimension-ordered routing)."""
    topo = TorusTopology(len(stations), dims=dims)
    return _build_hierarchical(
        sim, stations, topo, tech, name, faults, hop_latency
    )


# ---------------------------------------------------------------------------
# A/B equivalence harness (`python -m repro.net.topology --ab`)
# ---------------------------------------------------------------------------
class _ProbeStation:
    """Minimal frame device that records (frame uid, arrival time)."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.wire = None
        self.got: list[tuple[int, float]] = []

    def attach_wire(self, wire) -> None:
        self.wire = wire

    def receive_frame(self, frame: Frame) -> None:
        self.got.append((frame.uid, self.sim.now))


def _ab_arrivals(builder, n: int, frames: int, gap: float, **opts):
    """Drive a deterministic low-load pattern; return sorted arrivals.

    Senders are scheduled ``gap`` apart (far above a frame's
    serialization time), so no two transfers ever share an uplink, a
    link clock, or an egress port: every fabric must produce the
    *identical* float arrival times if its base path timing matches the
    single star.  Returns ``[(dst, relative arrival), ...]``.
    """
    from .fabric import build_aggregate_star  # noqa: F401  (alias target)

    sim = Simulator()
    stations = [_ProbeStation(sim) for _ in range(n)]
    addrs = [MacAddress(i) for i in range(n)]
    fabric = builder(sim, list(zip(addrs, stations)), **opts)
    sent = []
    for i in range(frames):
        src = (i * 7) % n
        dst = (i * 13 + 5) % n
        if src == dst:
            dst = (dst + 1) % n
        size = 64 + (i * 191) % 1400
        at = i * gap

        def fire(src=src, dst=dst, size=size):
            stations[src].wire.send(
                Frame(addrs[src], addrs[dst], payload_bytes=size, headers=8)
            )

        sim.call_after(at, fire)
        sent.append((at, dst))
    sim.run()
    arrivals = []
    for dst, st in enumerate(stations):
        for _uid, t in st.got:
            arrivals.append((dst, t))
    arrivals.sort()
    return arrivals, fabric


def _ab_main(argv=None) -> int:
    import argparse

    ap = argparse.ArgumentParser(
        prog="python -m repro.net.topology",
        description="A/B: hierarchical fabrics vs the single aggregate star",
    )
    ap.add_argument("--ab", action="store_true", help="run the equivalence check")
    ap.add_argument("--n", type=int, default=64, help="stations (default 64)")
    ap.add_argument(
        "--frames", type=int, default=512, help="probe transfers (default 512)"
    )
    args = ap.parse_args(argv)
    if not args.ab:
        ap.error("nothing to do (pass --ab)")
    from .fabric import build_aggregate_star

    n, frames = args.n, args.frames
    gap = 1e-3  # >> any serialization time at 1 Gb/s: guaranteed low load
    reference, _ = _ab_arrivals(build_aggregate_star, n, frames, gap)
    failed = False
    for label, builder, opts in (
        ("fattree", build_fattree, {}),
        ("fattree-oversub2", build_fattree, {"oversub": 2}),
        ("torus", build_torus, {}),
    ):
        arrivals, fabric = _ab_arrivals(builder, n, frames, gap, **opts)
        hops = fabric.hop_stats()
        ok = arrivals == reference
        multi = hops["max_hops"] > 1
        status = "PASS" if ok and multi else "FAIL"
        failed = failed or status == "FAIL"
        print(
            f"[ab] {label:18s} {status}  n={n} frames={frames} "
            f"avg_hops={hops['avg_hops']:.2f} max_hops={hops['max_hops']}"
            + ("" if ok else "  (arrival times diverge from star)")
            + ("" if multi else "  (no multi-hop paths exercised)")
        )
    print(f"[ab] low-load equivalence: {'FAIL' if failed else 'PASS'}")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(_ab_main())
