"""Standard (non-intelligent) NIC model.

This is Figure 1(a) of the paper: a dumb buffer between the host PCI
bus and the wire.  Everything that makes the baselines slow lives here:

* payloads cross the **host PCI bus** by DMA on both send and receive,
* every received frame raises an **interrupt cause**; the controller's
  coalescing policy (rx-usecs/rx-frames) batches them, adding latency to
  short messages,
* the delivered interrupt **steals host CPU time** (handler cost plus a
  per-frame charge) before frames reach the protocol stack.

The INIC (:mod:`repro.inic.card`) replaces this class on the datapath
and eliminates the per-frame interrupts and host protocol work.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional, Union

from ..errors import NetworkError
from ..hw.cpu import CPU
from ..hw.dma import DMAEngine
from ..hw.interrupts import CoalescePolicy, InterruptController, IMMEDIATE
from ..sim.bus import FCFSBus, FairShareBus
from ..sim.engine import Simulator
from ..sim.resources import Store
from .addresses import MacAddress
from .batching import BatchPolicy, WIRE_BATCH
from .link import Wire
from .packet import Frame

__all__ = ["StandardNIC", "NICStats"]

Bus = Union[FCFSBus, FairShareBus]


class NICStats:
    def __init__(self) -> None:
        self.tx_frames = 0
        self.tx_bytes = 0.0
        self.rx_frames = 0
        self.rx_bytes = 0.0
        self.rx_ring_drops = 0
        self.rx_ring_drop_bytes = 0.0


class StandardNIC:
    """A conventional DMA + interrupt NIC.

    Parameters
    ----------
    sim, address:
        simulator and this station's address.
    host_bus:
        the node's system PCI bus (payloads DMA across it).
    cpu:
        host CPU charged for interrupt handling.
    coalesce:
        interrupt-mitigation policy for RX.
    tx_ring, rx_ring:
        descriptor ring depths (frames).
    irq_handler_cost / per_frame_handler_cost:
        CPU seconds stolen per delivered interrupt / per drained frame.
    """

    def __init__(
        self,
        sim: Simulator,
        address: MacAddress,
        host_bus: Bus,
        cpu: Optional[CPU] = None,
        coalesce: CoalescePolicy = IMMEDIATE,
        tx_ring: int = 256,
        rx_ring: int = 256,
        dma_setup_cost: float = 2e-6,
        irq_handler_cost: float = 8e-6,
        per_frame_handler_cost: float = 1.5e-6,
        batch: BatchPolicy = WIRE_BATCH,
        name: str = "nic",
    ):
        self.sim = sim
        self.address = address
        self.cpu = cpu
        self.name = name
        self.batch = batch
        self.stats = NICStats()
        self.irq_handler_cost = float(irq_handler_cost)
        self.per_frame_handler_cost = float(per_frame_handler_cost)

        self._wire_out: Optional[Wire] = None
        self._on_receive: Optional[Callable[[Frame], None]] = None

        self._tx_dma = DMAEngine(sim, host_bus, setup_cost=dma_setup_cost, name=f"{name}.txdma")
        self._rx_dma = DMAEngine(sim, host_bus, setup_cost=dma_setup_cost, name=f"{name}.rxdma")

        self._tx_ring: Store = Store(sim, capacity=tx_ring, name=f"{name}.txring")
        self._rx_ring: Store = Store(sim, capacity=rx_ring, name=f"{name}.rxring")
        self._ready: deque[Frame] = deque()

        self.irq = InterruptController(
            sim, policy=coalesce, handler=self._irq_handler, name=f"{name}.irq"
        )

        sim.process(self._tx_loop(), name=f"{name}.tx")
        sim.process(self._rx_loop(), name=f"{name}.rx")

    # -- wiring -----------------------------------------------------------------
    def attach_wire(self, wire: Wire) -> None:
        """Attach the NIC->switch wire this NIC transmits on."""
        if self._wire_out is not None:
            raise NetworkError(f"{self.name}: wire already attached")
        self._wire_out = wire

    def bind_receiver(self, callback: Callable[[Frame], None]) -> None:
        """Install the protocol-stack upcall for received frames."""
        self._on_receive = callback

    @property
    def wire_bandwidth(self) -> float:
        """Bytes/s of the attached TX wire (0.0 before attachment).

        Protocol stacks use this to convert a batching policy's timing
        tolerance into a frames-per-event quantum.
        """
        return 0.0 if self._wire_out is None else self._wire_out.bandwidth

    def register_telemetry(self, registry, prefix: str) -> None:
        """Register this NIC's instruments under ``prefix``.

        Covers the NIC's own frame counters, both DMA engines
        (``.txdma``/``.rxdma``), and the attached uplink wire.  The
        interrupt controller registers separately under the node's
        ``irq`` prefix (see :mod:`repro.telemetry.instruments`).
        """
        stats = self.stats
        registry.counter(f"{prefix}.tx_frames", lambda: stats.tx_frames)
        registry.counter(f"{prefix}.tx_bytes", lambda: stats.tx_bytes, unit="B")
        registry.counter(f"{prefix}.rx_frames", lambda: stats.rx_frames)
        registry.counter(f"{prefix}.rx_bytes", lambda: stats.rx_bytes, unit="B")
        registry.counter(f"{prefix}.drops", lambda: stats.rx_ring_drops)
        self._tx_dma.register_telemetry(registry, f"{prefix}.txdma")
        self._rx_dma.register_telemetry(registry, f"{prefix}.rxdma")
        if self._wire_out is not None:
            self._wire_out.register_telemetry(registry, f"{prefix}.uplink")

    # -- host-side API -------------------------------------------------------------
    def transmit(self, frame: Frame):
        """Generator: hand ``frame`` to the NIC (blocks if TX ring full).

        Use as ``yield from nic.transmit(frame)``; returns once the frame
        sits in the ring (actual wire departure is asynchronous).
        """
        yield self._tx_ring.put(frame)

    def transmit_nowait(self, frame: Frame) -> None:
        """Ring-put without backpressure (tests, simple senders)."""
        self._tx_ring.put(frame)

    # -- datapath processes -----------------------------------------------------------
    def _tx_loop(self):
        ring = self._tx_ring
        policy = self.batch
        while True:
            frame: Frame = yield ring.get()
            if self._wire_out is None:
                raise NetworkError(f"{self.name}: transmit with no wire attached")
            # Coalesce a train of back-to-back continuation frames already
            # sitting in the ring into one DMA + one wire transfer.  The
            # tolerance budget bounds how far the train's head is delayed.
            if policy.enabled and ring.items:
                budget = policy.timing_tolerance * self._wire_out.bandwidth
                extra = 0.0
                while ring.items:
                    nxt = ring.items[0]
                    if (
                        extra + nxt.wire_size > budget
                        or frame.frame_count + nxt.frame_count > policy.max_quantum
                        or not frame.can_coalesce(nxt)
                    ):
                        break
                    ring.try_get()
                    extra += nxt.wire_size
                    frame = frame.coalesced(nxt)
            # Payload crosses the host PCI bus by DMA before hitting the wire.
            if frame.payload_bytes > 0:
                yield from self._tx_dma.transfer(frame.payload_bytes)
            self._wire_out.send(frame)
            self.stats.tx_frames += frame.frame_count
            self.stats.tx_bytes += frame.wire_size

    def receive_frame(self, frame: Frame) -> None:
        """Wire-side entry point (FrameSink interface)."""
        if self._rx_ring.is_full:
            self.stats.rx_ring_drops += frame.frame_count
            self.stats.rx_ring_drop_bytes += frame.wire_size
            return
        self._rx_ring.put(frame)

    def _rx_loop(self):
        while True:
            frame: Frame = yield self._rx_ring.get()
            # DMA the payload into host memory, then raise an interrupt
            # cause per physical frame (coalescing may batch them).
            if frame.payload_bytes > 0:
                yield from self._rx_dma.transfer(frame.payload_bytes)
            self.stats.rx_frames += frame.frame_count
            self.stats.rx_bytes += frame.wire_size
            self._ready.append(frame)
            self.irq.raise_irq(frame.frame_count)

    def _irq_handler(self, n_causes: int) -> None:
        frames, self._ready = list(self._ready), deque()
        if self.cpu is not None:
            n_frames = sum(f.frame_count for f in frames)
            self.cpu.steal(self.irq_handler_cost + n_frames * self.per_frame_handler_cost)
        if self._on_receive is not None:
            for f in frames:
                self._on_receive(f)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<StandardNIC {self.name!r} addr={self.address}>"
