"""Pluggable event schedulers for the DES kernel.

The simulator orders events by the unique key ``(time, priority, seq)``
— ``seq`` is a monotone counter, so the order is a *total* order and any
correct priority queue yields the exact same pop sequence.  That is the
contract every scheduler here honours, which is what keeps
``results/fig*.csv`` byte-identical regardless of the scheduler chosen
(pinned by the A/B harness in ``python -m repro.sim --ab``).

Entries are 5-element mutable lists::

    [when, prio, seq, item, owner]

``item`` is the payload (an ``Event`` or ``_Callback``); cancellation
tombstones an entry in place (``item = None``) and the structures drop
dead entries lazily — a cancelled timer is never sorted.  ``owner``
tags which sub-structure of a composite holds the entry so ``cancel``
can fix the right live-count.  List comparison never reaches index 3
because ``seq`` is unique.

A property all cursor movement here leans on: simulation time is
monotone, so an entry pushed *after* the cursor advanced past its
bucket carries a time >= the last popped time.  The calendar ring
handles such pushes by pulling its cursor back to the entry's natural
bucket; the timer wheel routes them into the slot under its cursor
(safe there because the wheel cursor never moves backward while slot
entries exist).  Either way ordering stays exact with no re-scanning.

Three structures:

* :class:`HeapScheduler` — the reference ``heapq`` implementation
  (previous kernel behaviour, used by the A/B harness).
* :class:`CalendarQueue` — R. Brown's calendar queue: a power-of-two
  ring of buckets, each a small heap, scanned with a cursor; resized
  lazily as the population grows or shrinks.
* :class:`TimerWheel` — a 4-level hierarchical timer wheel (256 slots
  per level) for the high-churn ``Timeout``/``call_after`` population:
  O(1) insert and cancel, slots sorted only when the cursor reaches
  them, cancelled entries dropped *unsorted* during cascades.

:class:`CalendarScheduler` (kind ``"calendar"``) composes all three
populations — a calendar ring for general events, a timer wheel for
timers, and plain FIFO deques for delay-0 ("now") events, which need no
ordering work at all beyond priority.

On top of the pure-python structures sits the **compiled backend**
(kind ``"native"``, the default): ``repro.sim._csched.NativeScheduler``,
a C binary heap that caches each entry's ``(when, prio, seq)`` key in a
C struct so every comparison is three scalar compares with no
interpreter involvement.  The extension is optional — built via
``python setup.py build_ext --inplace`` — and when it is absent (or
disabled via ``REPRO_SIM_DISABLE_NATIVE=1``) the ``"native"`` kind
falls back to :class:`PurePythonNativeScheduler`, a calendar-composite
stand-in that reports ``compiled: False`` in its stats.  Either way the
pop stream is identical, so the choice never changes a schedule.
"""

from __future__ import annotations

import os
from collections import deque
from heapq import heapify, heappop, heappush

try:  # optional compiled backend (python setup.py build_ext --inplace)
    from . import _csched
except ImportError:  # no compiler / wheel built without the extension
    _csched = None

__all__ = [
    "HeapScheduler",
    "CalendarQueue",
    "TimerWheel",
    "CalendarScheduler",
    "PurePythonNativeScheduler",
    "make_scheduler",
    "native_available",
    "SCHEDULER_KINDS",
]


class HeapScheduler:
    """Reference scheduler: one binary heap, lazy deletion."""

    kind = "heap"
    __slots__ = ("_heap", "_live", "cancels")

    def __init__(self) -> None:
        self._heap: list[list] = []
        self._live = 0
        self.cancels = 0

    def __len__(self) -> int:
        return self._live

    def push(self, when: float, prio: int, seq: int, item) -> list:
        entry = [when, prio, seq, item, self]
        heappush(self._heap, entry)
        self._live += 1
        return entry

    # Same structure for every population.
    push_timer = push
    push_now = push

    def cancel(self, entry: list) -> None:
        entry[3] = None
        self._live -= 1
        self.cancels += 1

    def pop(self):
        heap = self._heap
        while heap:
            entry = heappop(heap)
            if entry[3] is not None:
                self._live -= 1
                return entry
        return None

    def peek_time(self):
        heap = self._heap
        while heap:
            if heap[0][3] is not None:
                return heap[0][0]
            heappop(heap)
        return None

    def stats(self) -> dict:
        return {"kind": self.kind, "live": self._live, "cancels": self.cancels}


class CalendarQueue:
    """Calendar queue: a power-of-two ring of bucket heaps.

    The bucket ("day") for time ``t`` is ``int(t / width) & mask``; a
    cursor walks the ring one day at a time, and the head is the top of
    the cursor's bucket whenever that top falls inside the current day
    (``top_time < (cursor + 1) * width``).  When a scan visits more
    buckets than there are physical entries the queue is badly tuned
    for the current distribution and the cursor jumps straight to the
    day of the global minimum instead of crawling.

    A push whose day the cursor has already passed (possible when
    ``peek`` ran the cursor ahead of the clock) pulls the cursor *back*
    to that day — entries always live in their natural bucket, so the
    invariant "no live entry has a day before the cursor" holds and a
    forward scan from the cursor always finds the global minimum.

    Resizes are lazy: the ring doubles when the live population exceeds
    twice the bucket count and halves when it drops below a quarter,
    re-deriving the bucket width from the live span.

    ``_live`` (live entries) is maintained by ``push``/``cancel``/
    ``take`` only; ``insert`` and re-bucketing never touch it, which
    lets a composite own the accounting.  ``_count`` tracks physical
    entries including tombstones so scans can terminate.
    """

    kind = "calendar-ring"
    MIN_BUCKETS = 16
    MAX_BUCKETS = 1 << 15
    __slots__ = (
        "_buckets",
        "_mask",
        "_width",
        "_cur",
        "_live",
        "_count",
        "_hint",
        "cancels",
        "resizes",
    )

    def __init__(self) -> None:
        n = self.MIN_BUCKETS
        self._buckets: list[list[list]] = [[] for _ in range(n)]
        self._mask = n - 1
        self._width: float | None = None  # derived from the first timed push
        self._cur = 0  # absolute day index (not masked)
        self._live = 0
        self._count = 0
        #: known lower bound on every held entry time.  Simulation time
        #: is monotone, so any historical head time or insert time stays
        #: a valid bound — composites use it to skip ``head()`` when a
        #: cheaper source already beats it.
        self._hint = -1.0
        self.cancels = 0
        self.resizes = 0

    def __len__(self) -> int:
        return self._live

    # -- insertion ---------------------------------------------------------

    def push(self, when: float, prio: int, seq: int, item) -> list:
        entry = [when, prio, seq, item, self]
        self._live += 1
        self.insert(entry)
        return entry

    def insert(self, entry: list) -> None:
        """Place an externally-counted entry (does not touch ``_live``)."""
        when = entry[0]
        if when < self._hint:
            self._hint = when
        width = self._width
        if width is None:
            if when <= 0.0:
                heappush(self._buckets[0], entry)
                self._count += 1
                return
            # First timed entry seeds the width: an eighth of its
            # horizon so near-term schedules spread over several days.
            width = self._width = when / 8.0
        day = int(when / width)
        if day < self._cur:
            self._cur = day  # cursor ran ahead (peek): pull it back
        heappush(self._buckets[day & self._mask], entry)
        self._count += 1
        if self._live > 2 * (self._mask + 1) and self._mask + 1 < self.MAX_BUCKETS:
            self._resize((self._mask + 1) << 1)

    # -- removal -----------------------------------------------------------

    def cancel(self, entry: list) -> None:
        entry[3] = None
        self._live -= 1
        self.cancels += 1

    def head(self) -> list | None:
        """The minimum live entry (pure peek; ``take`` removes it)."""
        if self._live == 0:
            return None
        nbuckets = self._mask + 1
        if nbuckets > self.MIN_BUCKETS and self._live < (nbuckets >> 2):
            self._resize(nbuckets >> 1)
        width = self._width
        if width is None:
            # Only pre-width (t == 0) entries exist: all in bucket 0.
            bucket = self._buckets[0]
            while bucket[0][3] is None:
                heappop(bucket)
                self._count -= 1
            return bucket[0]
        buckets = self._buckets
        mask = self._mask
        cur = self._cur
        scanned = 0
        limit = self._count
        while True:
            bucket = buckets[cur & mask]
            while bucket and bucket[0][3] is None:
                heappop(bucket)
                self._count -= 1
            if bucket and bucket[0][0] < (cur + 1) * width:
                self._cur = cur
                self._hint = bucket[0][0]
                return bucket[0]
            cur += 1
            scanned += 1
            if scanned > limit:
                # Sparse year: jump straight to the day of the global
                # minimum.  Dead heads are flushed first so every
                # surviving bucket head is live, and same-day entries
                # share a bucket, so min-over-heads is the true min.
                best: list | None = None
                for bucket in buckets:
                    while bucket and bucket[0][3] is None:
                        heappop(bucket)
                        self._count -= 1
                    if bucket and (best is None or bucket[0] < best):
                        best = bucket[0]
                self._cur = int(best[0] / width)
                self._hint = best[0]
                return best

    def take(self, entry: list) -> None:
        """Remove the head just returned by :meth:`head`."""
        heappop(self._buckets[self._cur & self._mask])
        self._count -= 1
        self._live -= 1

    def peek_time(self):
        head = self.head()
        return head[0] if head is not None else None

    def pop(self):
        head = self.head()
        if head is not None:
            self.take(head)
        return head

    # -- resizing ----------------------------------------------------------

    def _resize(self, new_n: int) -> None:
        entries = []
        for bucket in self._buckets:
            for entry in bucket:
                if entry[3] is not None:
                    entries.append(entry)
        self._buckets = [[] for _ in range(new_n)]
        self._mask = new_n - 1
        self._count = len(entries)
        self.resizes += 1
        if not entries:
            self._cur = 0
            return
        tmin = entries[0][0]
        tmax = tmin
        for e in entries:
            t = e[0]
            if t < tmin:
                tmin = t
            elif t > tmax:
                tmax = t
        span = tmax - tmin
        if span > 0.0:
            # Spread the live population over ~a quarter of the ring so
            # a year scan touches few buckets but each day stays small.
            self._width = max(span * 4.0 / len(entries), 1e-12)
        elif self._width is None and tmax > 0.0:
            self._width = tmax / 8.0
        width = self._width
        if width is None:
            bucket0 = self._buckets[0]
            bucket0.extend(entries)
            heapify(bucket0)
            self._cur = 0
            return
        mask = self._mask
        buckets = self._buckets
        self._cur = int(tmin / width)
        for entry in entries:
            buckets[int(entry[0] / width) & mask].append(entry)
        for bucket in buckets:
            if len(bucket) > 1:
                heapify(bucket)

    def stats(self) -> dict:
        return {
            "kind": self.kind,
            "live": self._live,
            "buckets": self._mask + 1,
            "cancels": self.cancels,
            "resizes": self.resizes,
        }


class TimerWheel:
    """Hierarchical timer wheel: 256 slots x 4 levels, lazy sorting.

    Insert hashes the absolute tick ``int(t / w0)`` to a slot: level 0
    covers the next 256 ticks, level k the next ``256^(k+1)``.  Only
    the slot under the cursor is ever heapified — future slots are
    plain appends — so a timer cancelled before its slot comes up is
    dropped during the cascade *without ever being compared*.  That is
    the structural win over a heap for the high-churn
    ``Timeout``/``call_after`` population.

    A push whose tick the cursor has already passed lands in the
    current slot (time monotonicity makes that exact; see module docs).
    Entries beyond level 3's horizon go to an unordered far list that
    is re-bucketed (dropping tombstones) only when the wheel otherwise
    empties.  Like :class:`CalendarQueue`, ``_live`` is owned by
    ``push``/``cancel``/``take``; ``_counts`` are physical per-level
    entry counts (tombstones included) so the cursor can fast-forward
    across empty regions in O(1).
    """

    kind = "timer-wheel"
    SLOTS = 256
    __slots__ = (
        "_level0",
        "_levels",
        "_counts",
        "_cursor",
        "_far",
        "_w0",
        "_inv",
        "_live",
        "_cur_heap",
        "_hint",
        "_clamped",
        "cancels",
        "cascades",
        "far_rebuilds",
        "reseeds",
    )

    def __init__(self) -> None:
        self._level0: list[list[list]] = [[] for _ in range(self.SLOTS)]
        #: levels 1..3, allocated lazily (index 0 unused)
        self._levels: list[list[list[list]] | None] = [None, None, None, None]
        self._counts = [0, 0, 0, 0]
        self._cursor = 0  # absolute level-0 slot index
        self._far: list[list] = []
        self._w0: float | None = None
        self._inv = 0.0
        self._live = 0
        self._cur_heap = False  # current slot heapified?
        #: known lower bound on every held entry time (see CalendarQueue)
        self._hint = -1.0
        #: consecutive pushes that clamped into a heapified current slot
        #: — the signal that ``_w0`` no longer matches the timer
        #: population and the wheel has degenerated into a one-slot heap
        self._clamped = 0
        self.cancels = 0
        self.cascades = 0
        self.far_rebuilds = 0
        self.reseeds = 0

    def __len__(self) -> int:
        return self._live

    # -- insertion ---------------------------------------------------------

    def push(self, when: float, prio: int, seq: int, item) -> list:
        entry = [when, prio, seq, item, self]
        self._live += 1
        if when < self._hint:
            self._hint = when
        # Inline fast path: level-0 placement — a plain append for a
        # strictly-future slot, a heap push into the slot under the
        # cursor.  This is the single hottest insert in every sweep
        # (``call_after`` and ``Timeout`` both land here).
        inv = self._inv
        if inv:
            idx = int(when * inv)
            cur = self._cursor
            d = idx - cur
            if d < 256:
                if d <= 0:
                    slot = self._level0[cur & 255]
                    if self._cur_heap:
                        heappush(slot, entry)
                        self._counts[0] += 1
                        self._clamped += 1
                        if self._clamped >= 64 and len(slot) >= 16:
                            self._reseed()
                        return entry
                    slot.append(entry)
                else:
                    self._clamped = 0
                    self._level0[idx & 255].append(entry)
                self._counts[0] += 1
                return entry
        self._clamped = 0
        self.insert(entry)
        return entry

    push_timer = push

    def insert(self, entry: list) -> None:
        when = entry[0]
        if when < self._hint:
            self._hint = when
        w0 = self._w0
        if w0 is None:
            if when <= 0.0:
                slot = self._level0[self._cursor & 255]
                if self._cur_heap:
                    heappush(slot, entry)
                else:
                    slot.append(entry)
                self._counts[0] += 1
                return
            # First timed entry seeds the tick width: 1/64th of its
            # delay so typical timers land mid-level-0.
            self._w0 = w0 = when / 64.0
            self._inv = 1.0 / w0
        idx = int(entry[0] * self._inv)
        cur = self._cursor
        d = idx - cur
        if d < 256:
            if d <= 0:
                idx = cur  # cursor already passed: current-slot window
                slot = self._level0[cur & 255]
                if self._cur_heap:
                    heappush(slot, entry)
                    self._counts[0] += 1
                    return
            else:
                slot = self._level0[idx & 255]
            slot.append(entry)
            self._counts[0] += 1
            return
        for k in (1, 2, 3):
            if (idx >> (8 * k)) - (cur >> (8 * k)) < 256:
                level = self._levels[k]
                if level is None:
                    level = self._levels[k] = [[] for _ in range(self.SLOTS)]
                level[(idx >> (8 * k)) & 255].append(entry)
                self._counts[k] += 1
                return
        self._far.append(entry)

    # -- removal -----------------------------------------------------------

    def cancel(self, entry: list) -> None:
        entry[3] = None
        self._live -= 1
        self.cancels += 1

    def head(self) -> list | None:
        """The minimum live entry (pure peek; ``take`` removes it)."""
        if self._live == 0:
            return None
        counts = self._counts
        level0 = self._level0
        while True:
            if counts[0]:
                cur = self._cursor
                slot = level0[cur & 255]
                if slot:
                    if not self._cur_heap:
                        # First arrival at this slot: drop tombstones
                        # *unsorted*, then heapify the survivors.
                        live = [e for e in slot if e[3] is not None]
                        counts[0] -= len(slot) - len(live)
                        if len(live) > 1:
                            heapify(live)
                        level0[cur & 255] = slot = live
                        self._cur_heap = True
                    while slot and slot[0][3] is None:
                        heappop(slot)
                        counts[0] -= 1
                    if slot:
                        self._hint = slot[0][0]
                        return slot[0]
                self._cursor = cur + 1
                self._cur_heap = False
                if (cur + 1) & 255 == 0:
                    self._cascade(cur + 1)
                continue
            # Level 0 drained: fast-forward the cursor to the next
            # level boundary that can hold work, then cascade it in.
            if counts[1]:
                nxt = ((self._cursor >> 8) + 1) << 8
            elif counts[2]:
                nxt = ((self._cursor >> 16) + 1) << 16
            elif counts[3]:
                nxt = ((self._cursor >> 24) + 1) << 24
            elif self._far:
                if not self._rebuild_far():
                    return None
                continue
            else:
                return None
            self._cur_heap = False
            self._cascade(nxt)

    def take(self, entry: list) -> None:
        heappop(self._level0[self._cursor & 255])
        self._counts[0] -= 1
        self._live -= 1

    def peek_time(self):
        head = self.head()
        return head[0] if head is not None else None

    def pop(self):
        # Fused head + take: the composite's steady-state path when the
        # ring and now-queues are empty, so the common case (live top of
        # an already-heapified current slot) runs with shared locals.
        if self._live == 0:
            return None
        if self._cur_heap and self._counts[0]:
            slot = self._level0[self._cursor & 255]
            if slot:
                head = slot[0]
                if head[3] is not None:
                    heappop(slot)
                    self._counts[0] -= 1
                    self._live -= 1
                    self._hint = head[0]
                    return head
        head = self.head()
        if head is not None:
            self.take(head)
        return head

    # -- internals ---------------------------------------------------------

    def _cascade(self, cur: int) -> None:
        """Advance to absolute slot ``cur`` and pull down higher levels.

        Highest level first: a level-3 drain places entries into level
        2/1/0 slots *ahead* of the cursor, which the subsequent lower-
        level drains then redistribute — never the reverse.
        """
        self._cursor = cur
        counts = self._counts
        for k in (3, 2, 1):
            if not counts[k]:
                continue
            if cur & ((1 << (8 * k)) - 1):
                continue  # not at a level-k boundary
            level = self._levels[k]
            if level is None:
                continue
            slot_i = (cur >> (8 * k)) & 255
            slot = level[slot_i]
            if not slot:
                continue
            level[slot_i] = []
            counts[k] -= len(slot)
            self.cascades += 1
            for entry in slot:
                # Tombstones are dropped here, unsorted — a cancelled
                # timer is never compared against anything.
                if entry[3] is not None:
                    self.insert(entry)

    def _reseed(self) -> None:
        """Re-derive the tick width from the *pending* timer population.

        ``_w0`` is seeded from the first timer ever pushed; when that
        timer is unrepresentative (a long compute sleep before µs-scale
        wire timers), every later push clamps into the current slot and
        the wheel degenerates into a one-slot heap.  On that signal,
        rebuild with a width matched to the live population's spread so
        typical pushes become plain appends again.

        Ordering safety: the new cursor is ``int(tmin / w0')`` — at or
        before every entry's natural slot — and re-insertion goes
        through :meth:`insert`, so the head scan still visits entries in
        slot order and heapifies each slot on arrival.  ``_hint`` is
        untouched (``tmin`` can only be >= the old bound).
        """
        entries = [e for slot in self._level0 for e in slot if e[3] is not None]
        for level in self._levels:
            if level is not None:
                for slot in level:
                    for e in slot:
                        if e[3] is not None:
                            entries.append(e)
        for e in self._far:
            if e[3] is not None:
                entries.append(e)
        self._clamped = 0
        if not entries:
            return
        times = sorted(e[0] for e in entries)
        tmin = times[0]
        # A robust spread: one far-off watchdog must not re-inflate the
        # width, so size level 0 to hold the densest three quarters of
        # the population with room ahead for newcomers.
        span = times[(3 * len(times)) // 4] - tmin
        if span <= 0.0:
            span = times[-1] - tmin
        w0 = span / 192.0
        if w0 <= 0.0 or w0 >= self._w0 * 0.5:
            # Population genuinely is near-simultaneous (or already
            # matched): nothing to gain, back off before retrying.
            self._clamped = -4096
            return
        self._level0 = [[] for _ in range(self.SLOTS)]
        self._levels = [None, None, None, None]
        self._counts = [0, 0, 0, 0]
        self._far = []
        self._w0 = w0
        self._inv = 1.0 / w0
        self._cursor = int(tmin * self._inv)
        self._cur_heap = False
        self.reseeds += 1
        for entry in entries:
            self.insert(entry)

    def _rebuild_far(self) -> bool:
        far = [e for e in self._far if e[3] is not None]
        self._far = []
        self.far_rebuilds += 1
        if not far:
            return False
        tmin = far[0][0]
        for e in far:
            if e[0] < tmin:
                tmin = e[0]
        self._cursor = int(tmin * self._inv)
        self._cur_heap = False
        for entry in far:
            self.insert(entry)
        return True

    def stats(self) -> dict:
        return {
            "kind": self.kind,
            "live": self._live,
            "cancels": self.cancels,
            "cascades": self.cascades,
            "far_rebuilds": self.far_rebuilds,
            "reseeds": self.reseeds,
        }


class CalendarScheduler:
    """The default composite: ring + wheel + now-queues, exact order.

    Population routing (the engine picks the method):

    * ``push`` — general timed events → calendar ring.
    * ``push_timer`` — ``Timeout``/``call_after`` → timer wheel.
    * ``push_now`` — delay-0 events → plain FIFO deques (one per
      priority).  Delay-0 pushes always carry ``when == sim.now`` and
      monotone ``seq``, so each deque is already sorted; no ordering
      work at all.

    ``pop`` merges the four sources by list comparison of their heads.
    Heads are pure peeks, so nothing needs unwinding after the merge —
    and each structure maintains a monotone *time hint* (a known lower
    bound on everything it holds), so a now-event burst never even
    computes the ring/wheel heads: the hint comparison alone proves the
    deque head wins.

    ``push`` and ``push_timer`` are bound straight to the ring/wheel
    implementations at construction — the sub-structures own their live
    counts, so the composite adds zero overhead on the push paths.
    """

    kind = "calendar"
    __slots__ = (
        "_ring",
        "_wheel",
        "_now_urgent",
        "_now_normal",
        "_now_dead",
        "_now_cancels",
        "push",
        "push_timer",
    )

    def __init__(self) -> None:
        self._ring = CalendarQueue()
        self._wheel = TimerWheel()
        self._now_urgent: deque[list] = deque()
        self._now_normal: deque[list] = deque()
        self._now_dead = 0  # tombstones currently sitting in the deques
        self._now_cancels = 0
        self.push = self._ring.push
        self.push_timer = self._wheel.push

    def __len__(self) -> int:
        return (
            self._ring._live
            + self._wheel._live
            + len(self._now_urgent)
            + len(self._now_normal)
            - self._now_dead
        )

    def push_now(self, when: float, prio: int, seq: int, item) -> list:
        entry = [when, prio, seq, item, None]
        if prio:
            self._now_normal.append(entry)
        else:
            self._now_urgent.append(entry)
        return entry

    def cancel(self, entry: list) -> None:
        owner = entry[4]
        if owner is None:
            entry[3] = None  # now-deques flush tombstones on pop
            self._now_dead += 1
            self._now_cancels += 1
        else:
            owner.cancel(entry)

    def pop(self):
        nu = self._now_urgent
        while nu and nu[0][3] is None:
            nu.popleft()
            self._now_dead -= 1
        nn = self._now_normal
        while nn and nn[0][3] is None:
            nn.popleft()
            self._now_dead -= 1
        if not nu and not nn and not self._ring._live:
            # Steady state between now-bursts: timers only.
            return self._wheel.pop()
        if nu:
            best = nu[0]
            src = 0
            if nn and nn[0] < best:
                best = nn[0]
                src = 1
        elif nn:
            best = nn[0]
            src = 1
        else:
            best = None
            src = -1
        ring = self._ring
        if ring._live and (best is None or ring._hint <= best[0]):
            head = ring.head()
            if best is None or head < best:
                best = head
                src = 2
        wheel = self._wheel
        if wheel._live and (best is None or wheel._hint <= best[0]):
            head = wheel.head()
            if best is None or head < best:
                best = head
                src = 3
        if src == 0:
            nu.popleft()
        elif src == 1:
            nn.popleft()
        elif src == 2:
            ring.take(best)
        elif src == 3:
            wheel.take(best)
        return best

    def peek_time(self):
        nu = self._now_urgent
        while nu and nu[0][3] is None:
            nu.popleft()
            self._now_dead -= 1
        nn = self._now_normal
        while nn and nn[0][3] is None:
            nn.popleft()
            self._now_dead -= 1
        best = nu[0] if nu else None
        if nn and (best is None or nn[0] < best):
            best = nn[0]
        if self._ring._live and (best is None or self._ring._hint <= best[0]):
            head = self._ring.head()
            if best is None or head < best:
                best = head
        if self._wheel._live and (best is None or self._wheel._hint <= best[0]):
            head = self._wheel.head()
            if best is None or head < best:
                best = head
        return best[0] if best is not None else None

    def stats(self) -> dict:
        ring, wheel = self._ring.stats(), self._wheel.stats()
        return {
            "kind": self.kind,
            "live": len(self),
            "ring_live": ring["live"],
            "wheel_live": wheel["live"],
            "buckets": ring["buckets"],
            "cancels": ring["cancels"] + wheel["cancels"] + self._now_cancels,
            "resizes": ring["resizes"],
            "cascades": wheel["cascades"],
            "far_rebuilds": wheel["far_rebuilds"],
            "reseeds": wheel["reseeds"],
        }


SCHEDULER_KINDS = ("native", "calendar", "heap", "ring", "wheel")


def native_available() -> bool:
    """True when the compiled scheduler will actually be used.

    Requires the ``repro.sim._csched`` extension to be importable *and*
    ``REPRO_SIM_DISABLE_NATIVE`` to be unset/empty — the latter is the
    knob CI uses to prove the pure-python fallback is complete on a
    machine that does have the extension built.
    """
    return _csched is not None and not os.environ.get("REPRO_SIM_DISABLE_NATIVE")


class PurePythonNativeScheduler(CalendarScheduler):
    """Pure-python stand-in for the compiled backend.

    Selected by ``make_scheduler("native")`` when the C extension is
    unavailable (not built, or disabled via ``REPRO_SIM_DISABLE_NATIVE``).
    It *is* the calendar composite — the fastest pure-python structure —
    but reports kind ``"native"`` with ``compiled: False`` so callers
    (``sched_stats()``, ``BENCH_perf.json``) can always tell which
    implementation actually ran.
    """

    kind = "native"
    compiled = False
    __slots__ = ()

    def stats(self) -> dict:
        d = super().stats()
        d["compiled"] = False
        d["fallback"] = "calendar"
        return d


class _BareRing(CalendarQueue):
    """A calendar ring serving every population (bench/diagnostic use)."""

    __slots__ = ()
    push_timer = CalendarQueue.push
    push_now = CalendarQueue.push


class _BareWheel(TimerWheel):
    """A timer wheel serving every population (bench/diagnostic use)."""

    __slots__ = ()
    push_now = TimerWheel.push


def make_scheduler(kind: str):
    """Build a scheduler by kind name.

    ``"native"`` (the default) is the compiled C heap, falling back to
    the pure-python composite when the extension is unavailable;
    ``"calendar"`` is the pure-python composite; ``"heap"`` the
    reference binary heap; ``"ring"``/``"wheel"`` expose the bare
    calendar ring and timer wheel (mainly for
    ``python -m repro.sim --bench``).  Unknown kinds raise
    :class:`ValueError` naming every valid choice.
    """
    if kind == "native":
        if native_available():
            return _csched.NativeScheduler()
        return PurePythonNativeScheduler()
    if kind == "calendar":
        return CalendarScheduler()
    if kind == "heap":
        return HeapScheduler()
    if kind == "ring":
        return _BareRing()
    if kind == "wheel":
        return _BareWheel()
    raise ValueError(
        f"unknown scheduler kind {kind!r} (choose from {', '.join(SCHEDULER_KINDS)})"
    )
