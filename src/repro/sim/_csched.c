/* Compiled scheduler backend for the DES kernel.
 *
 * NativeScheduler is a C binary heap honouring the same unique
 * ``(time, priority, seq)`` total order as every scheduler in
 * ``repro.sim.sched``, so its pop stream is identical to the reference
 * heap's (the A/B harness ``python -m repro.sim --ab`` pins this).
 *
 * Entries keep the engine-visible shape — a 5-element Python list
 * ``[when, prio, seq, item, owner]`` — because the run loop mutates
 * ``entry[3]`` in place (detach on dispatch, tombstone on cancel).  The
 * ordering key, however, is *cached in the C node* at push time
 * (``when`` as a double, ``prio`` as a long, ``seq`` as an unsigned
 * 64-bit int), so every heap comparison is three scalar compares — no
 * Python object comparisons, no list protocol, no refcount traffic.
 *
 * Cancellation is O(1): ``entry[3] = None`` plus a live-count decrement;
 * dead entries are dropped lazily when they surface at the heap root.
 * ``owner`` is left as ``None`` — the engine routes cancels through the
 * scheduler object itself, and not storing a self-reference in every
 * entry keeps entries out of GC cycles with the scheduler.
 *
 * The engine's seq counter is an unbounded monotone count starting at
 * zero; this backend accepts any seq in [0, 2**64) and raises
 * OverflowError beyond that (a run would need ~600 years of nanosecond
 * events to get there).
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

typedef struct {
    double when;
    long prio;
    unsigned long long seq;
    PyObject *entry; /* owned reference to the [when, prio, seq, item, owner] list */
} node_t;

typedef struct {
    PyObject_HEAD
    node_t *heap;
    Py_ssize_t size;     /* physical nodes, tombstones included */
    Py_ssize_t capacity;
    Py_ssize_t live;     /* non-tombstoned entries */
    long long cancels;
    Py_ssize_t peak;     /* high-water physical size (stats) */
} NativeScheduler;

/* -- heap primitives (pure C, no Python calls) ---------------------------- */

static inline int
node_lt(const node_t *a, const node_t *b)
{
    if (a->when != b->when)
        return a->when < b->when;
    if (a->prio != b->prio)
        return a->prio < b->prio;
    return a->seq < b->seq;
}

static void
sift_up(node_t *heap, Py_ssize_t pos)
{
    node_t item = heap[pos];
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        if (!node_lt(&item, &heap[parent]))
            break;
        heap[pos] = heap[parent];
        pos = parent;
    }
    heap[pos] = item;
}

static void
sift_down(node_t *heap, Py_ssize_t n, Py_ssize_t pos)
{
    node_t item = heap[pos];
    Py_ssize_t child = 2 * pos + 1;
    while (child < n) {
        if (child + 1 < n && node_lt(&heap[child + 1], &heap[child]))
            child++;
        if (!node_lt(&heap[child], &item))
            break;
        heap[pos] = heap[child];
        pos = child;
        child = 2 * pos + 1;
    }
    heap[pos] = item;
}

static int
ensure_capacity(NativeScheduler *self)
{
    if (self->size < self->capacity)
        return 0;
    Py_ssize_t cap = self->capacity ? self->capacity * 2 : 256;
    node_t *heap = PyMem_Realloc(self->heap, (size_t)cap * sizeof(node_t));
    if (heap == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    self->heap = heap;
    self->capacity = cap;
    return 0;
}

/* -- methods -------------------------------------------------------------- */

static PyObject *
sched_push(NativeScheduler *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 4) {
        PyErr_SetString(PyExc_TypeError,
                        "push expects (when, prio, seq, item)");
        return NULL;
    }
    double when = PyFloat_AsDouble(args[0]);
    if (when == -1.0 && PyErr_Occurred())
        return NULL;
    long prio = PyLong_AsLong(args[1]);
    if (prio == -1 && PyErr_Occurred())
        return NULL;
    unsigned long long seq = PyLong_AsUnsignedLongLong(args[2]);
    if (seq == (unsigned long long)-1 && PyErr_Occurred())
        return NULL;
    if (ensure_capacity(self) < 0)
        return NULL;

    PyObject *entry = PyList_New(5);
    if (entry == NULL)
        return NULL;
    Py_INCREF(args[0]);
    PyList_SET_ITEM(entry, 0, args[0]);
    Py_INCREF(args[1]);
    PyList_SET_ITEM(entry, 1, args[1]);
    Py_INCREF(args[2]);
    PyList_SET_ITEM(entry, 2, args[2]);
    Py_INCREF(args[3]);
    PyList_SET_ITEM(entry, 3, args[3]);
    Py_INCREF(Py_None);
    PyList_SET_ITEM(entry, 4, Py_None);

    node_t *node = &self->heap[self->size];
    node->when = when;
    node->prio = prio;
    node->seq = seq;
    node->entry = entry;
    Py_INCREF(entry); /* the heap's reference; the return is the caller's */
    sift_up(self->heap, self->size);
    self->size++;
    self->live++;
    if (self->size > self->peak)
        self->peak = self->size;
    return entry;
}

static PyObject *
sched_cancel(NativeScheduler *self, PyObject *entry)
{
    if (!PyList_Check(entry) || PyList_GET_SIZE(entry) != 5) {
        PyErr_SetString(PyExc_TypeError,
                        "cancel expects a scheduler entry (5-element list)");
        return NULL;
    }
    /* Tombstone in place; the node surfaces and is dropped lazily. */
    Py_INCREF(Py_None);
    PyList_SetItem(entry, 3, Py_None);
    self->live--;
    self->cancels++;
    Py_RETURN_NONE;
}

static PyObject *
sched_pop(NativeScheduler *self, PyObject *Py_UNUSED(ignored))
{
    node_t *heap = self->heap;
    while (self->size > 0) {
        PyObject *entry = heap[0].entry;
        self->size--;
        if (self->size > 0) {
            heap[0] = heap[self->size];
            sift_down(heap, self->size, 0);
        }
        if (PyList_GET_ITEM(entry, 3) != Py_None) {
            self->live--;
            return entry; /* transfer the heap's reference to the caller */
        }
        Py_DECREF(entry); /* tombstone: drop, keep scanning */
    }
    Py_RETURN_NONE;
}

static PyObject *
sched_peek_time(NativeScheduler *self, PyObject *Py_UNUSED(ignored))
{
    node_t *heap = self->heap;
    while (self->size > 0) {
        PyObject *entry = heap[0].entry;
        if (PyList_GET_ITEM(entry, 3) != Py_None) {
            PyObject *when = PyList_GET_ITEM(entry, 0);
            Py_INCREF(when);
            return when;
        }
        self->size--;
        if (self->size > 0) {
            heap[0] = heap[self->size];
            sift_down(heap, self->size, 0);
        }
        Py_DECREF(entry);
    }
    Py_RETURN_NONE;
}

static PyObject *
sched_stats(NativeScheduler *self, PyObject *Py_UNUSED(ignored))
{
    return Py_BuildValue(
        "{s:s, s:O, s:n, s:L, s:n, s:n}",
        "kind", "native",
        "compiled", Py_True,
        "live", self->live,
        "cancels", self->cancels,
        "pending", self->size,
        "peak", self->peak);
}

static Py_ssize_t
sched_len(NativeScheduler *self)
{
    return self->live >= 0 ? self->live : 0;
}

/* -- type plumbing -------------------------------------------------------- */

static PyObject *
sched_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    NativeScheduler *self = (NativeScheduler *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->heap = NULL;
    self->size = 0;
    self->capacity = 0;
    self->live = 0;
    self->cancels = 0;
    self->peak = 0;
    return (PyObject *)self;
}

static int
sched_traverse(NativeScheduler *self, visitproc visit, void *arg)
{
    for (Py_ssize_t i = 0; i < self->size; i++)
        Py_VISIT(self->heap[i].entry);
    return 0;
}

static int
sched_clear(NativeScheduler *self)
{
    Py_ssize_t n = self->size;
    self->size = 0;
    self->live = 0;
    for (Py_ssize_t i = 0; i < n; i++)
        Py_CLEAR(self->heap[i].entry);
    return 0;
}

static void
sched_dealloc(NativeScheduler *self)
{
    PyObject_GC_UnTrack(self);
    sched_clear(self);
    PyMem_Free(self->heap);
    self->heap = NULL;
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyMethodDef sched_methods[] = {
    {"push", (PyCFunction)(void (*)(void))sched_push, METH_FASTCALL,
     "push(when, prio, seq, item) -> entry list [when, prio, seq, item, None]"},
    {"push_timer", (PyCFunction)(void (*)(void))sched_push, METH_FASTCALL,
     "Alias of push (one structure serves every population)."},
    {"push_now", (PyCFunction)(void (*)(void))sched_push, METH_FASTCALL,
     "Alias of push (one structure serves every population)."},
    {"cancel", (PyCFunction)sched_cancel, METH_O,
     "cancel(entry): O(1) tombstone (entry[3] = None)."},
    {"pop", (PyCFunction)sched_pop, METH_NOARGS,
     "pop() -> the minimum live entry, or None when empty."},
    {"peek_time", (PyCFunction)sched_peek_time, METH_NOARGS,
     "peek_time() -> time of the minimum live entry, or None."},
    {"stats", (PyCFunction)sched_stats, METH_NOARGS,
     "stats() -> {'kind': 'native', 'compiled': True, ...}"},
    {NULL, NULL, 0, NULL},
};

static PySequenceMethods sched_as_sequence = {
    .sq_length = (lenfunc)sched_len,
};

static PyTypeObject NativeSchedulerType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._csched.NativeScheduler",
    .tp_doc = "Compiled (time, priority, seq) binary-heap event scheduler.",
    .tp_basicsize = sizeof(NativeScheduler),
    .tp_itemsize = 0,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_new = sched_new,
    .tp_dealloc = (destructor)sched_dealloc,
    .tp_traverse = (traverseproc)sched_traverse,
    .tp_clear = (inquiry)sched_clear,
    .tp_methods = sched_methods,
    .tp_as_sequence = &sched_as_sequence,
};

static struct PyModuleDef csched_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.sim._csched",
    .m_doc = "Compiled scheduler backend (see repro.sim.sched for the contract).",
    .m_size = -1,
};

PyMODINIT_FUNC
PyInit__csched(void)
{
    if (PyType_Ready(&NativeSchedulerType) < 0)
        return NULL;
    /* Class-level constants mirroring the pure-python schedulers. */
    if (PyDict_SetItemString(NativeSchedulerType.tp_dict, "kind",
                             PyUnicode_FromString("native")) < 0)
        return NULL;
    if (PyDict_SetItemString(NativeSchedulerType.tp_dict, "compiled",
                             Py_True) < 0)
        return NULL;
    PyObject *m = PyModule_Create(&csched_module);
    if (m == NULL)
        return NULL;
    Py_INCREF(&NativeSchedulerType);
    if (PyModule_AddObject(m, "NativeScheduler",
                           (PyObject *)&NativeSchedulerType) < 0) {
        Py_DECREF(&NativeSchedulerType);
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
