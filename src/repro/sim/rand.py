"""Deterministic random-stream management.

Every stochastic component (key generators, jittered timers, ...) draws
from its own named child stream of a single root seed, so

* runs are reproducible end-to-end from one integer seed, and
* adding a new consumer never perturbs the draws of existing ones
  (streams are derived by name, not by draw order).
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "RandomStreams"]


def derive_seed(*parts: object) -> int:
    """A 64-bit seed derived (sha256) from any sequence of parts.

    The standalone form of :meth:`RandomStreams._derive`, shared with
    the sweep engine: a point spec hashed through here gives each sweep
    point its own deterministic stream, independent of which worker
    process runs it or in what order.
    """
    digest = hashlib.sha256(
        ":".join(str(p) for p in parts).encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "little")


class RandomStreams:
    """A factory of independent named :class:`numpy.random.Generator` s."""

    def __init__(self, root_seed: int = 0x5EED):
        if not isinstance(root_seed, int) or root_seed < 0:
            raise ValueError(f"root seed must be a non-negative int, got {root_seed!r}")
        self.root_seed = root_seed
        self._cache: dict[str, np.random.Generator] = {}

    def _derive(self, name: str) -> int:
        return derive_seed(self.root_seed, name)

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name`` (created on first use, then cached)."""
        gen = self._cache.get(name)
        if gen is None:
            gen = np.random.default_rng(self._derive(name))
            self._cache[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """A brand-new generator for ``name`` (ignores/resets the cache)."""
        gen = np.random.default_rng(self._derive(name))
        self._cache[name] = gen
        return gen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RandomStreams seed={self.root_seed:#x} ({len(self._cache)} streams)>"
