"""Bandwidth-shared bus models.

Two arbitration disciplines are provided:

``FCFSBus``
    Transfers are serialized: one transfer owns the full bandwidth until
    it completes.  A good model for a PCI bus doing long DMA bursts
    (which is how the prototype ACEII card behaves — one 132 MB/s bus
    carries *all* card traffic, Section 5 of the paper).

``FairShareBus``
    Processor-sharing: ``k`` concurrent transfers each progress at
    ``bandwidth / k`` (subject to per-transfer rate caps).  A good model
    for interleaved DMA with round-robin arbitration, and for the
    "separate path to host memory" mode of the ideal INIC.

Both support a fixed per-transaction arbitration latency and expose
utilization statistics.  The fair-share bus recomputes completion times
whenever the set of active transfers changes — an event-driven
implementation of generalized processor sharing.

``transfer()`` returns the completion :class:`~repro.sim.engine.Event`,
which is directly awaitable from a coroutine process (``await
bus.transfer(n)``) and yieldable from a generator one — the same single
schedule entry either way.  ``transfer_proc`` remains the ``yield
from`` helper for generator bodies that want the byte count returned
(coroutines get it as the event's value).
"""

from __future__ import annotations

from typing import Optional

from ..errors import BusError
from .engine import Event, Simulator

__all__ = ["FCFSBus", "FairShareBus", "BusStats"]

#: completion slack, in bytes.  Transfers are byte-sized (>= 1), so any
#: residue below this is floating-point noise; treating it as done keeps
#: tick intervals from shrinking below the clock's representable step.
_REMAINING_EPS = 1e-6


class BusStats:
    """Byte/transfer counters shared by both bus models."""

    def __init__(self) -> None:
        self.bytes_transferred: float = 0.0
        self.transfer_count: int = 0
        self.busy_time: float = 0.0

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` during which the bus was busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)


class FCFSBus:
    """Serialized bus: one transfer at a time at full bandwidth."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float,
        arbitration_latency: float = 0.0,
        name: str = "bus",
    ):
        if bandwidth <= 0:
            raise BusError(f"bus bandwidth must be > 0, got {bandwidth}")
        if arbitration_latency < 0:
            raise BusError("negative arbitration latency")
        self.sim = sim
        self.name = name
        self.bandwidth = float(bandwidth)
        self.arbitration_latency = float(arbitration_latency)
        self.stats = BusStats()
        self._busy_until: float = 0.0
        self._xfer_name = f"{name}.xfer"

    @property
    def busy(self) -> bool:
        return self.sim.now < self._busy_until

    def busy_snapshot(self) -> float:
        """Busy seconds so far, capped at the current sim time.

        ``stats.busy_time`` is charged in full when a transfer is
        issued, so mid-transfer it can run ahead of the clock; snapshot
        reads clamp it to what has actually elapsed.
        """
        return min(self.stats.busy_time, self.sim.now)

    def register_telemetry(self, registry, prefix: str) -> None:
        """Register this bus's instruments under ``prefix``."""
        registry.busy(f"{prefix}.busy_time", self.busy_snapshot)
        registry.counter(
            f"{prefix}.bytes", lambda s=self.stats: s.bytes_transferred, unit="B"
        )
        registry.counter(f"{prefix}.transfers", lambda s=self.stats: s.transfer_count)

    def transfer(self, nbytes: float) -> Event:
        """Move ``nbytes`` across the bus; event fires on completion.

        Queueing is implicit: a transfer issued while the bus is busy
        starts when the bus frees up (FIFO order by issue time).  The
        returned event is awaitable (``await bus.transfer(n)``) as well
        as yieldable; its value is the byte count.
        """
        if nbytes <= 0:
            raise BusError(f"bus transfer of {nbytes} bytes on {self.name!r}")
        now = self.sim.now
        start = now if now > self._busy_until else self._busy_until
        duration = self.arbitration_latency + nbytes / self.bandwidth
        finish = start + duration
        self._busy_until = finish
        self.stats.bytes_transferred += nbytes
        self.stats.transfer_count += 1
        self.stats.busy_time += duration
        # One schedule entry: the completion event itself (no trampoline).
        done = self.sim.event(name=self._xfer_name)
        self.sim.succeed_later(done, finish - now, nbytes)
        return done

    def transfer_proc(self, nbytes: float):
        """Generator form: ``yield from bus.transfer_proc(n)``."""
        yield self.transfer(nbytes)
        return nbytes

    def reserve(self, nbytes: float, transactions: int = 1) -> tuple[float, float]:
        """Claim bus time for ``transactions`` back-to-back transfers.

        Event-free companion to :meth:`transfer` for bulk admission: the
        busy clock advances exactly as if ``transactions`` transfers
        totalling ``nbytes`` had been issued one after another (each
        paying the arbitration latency), but no completion event is
        allocated — the caller schedules its own wakeup.  Returns
        ``(start, finish)`` of the reserved window.
        """
        if nbytes <= 0:
            raise BusError(f"bus reserve of {nbytes} bytes on {self.name!r}")
        if transactions < 1:
            raise BusError(f"bus reserve of {transactions} transactions")
        now = self.sim.now
        start = now if now > self._busy_until else self._busy_until
        duration = transactions * self.arbitration_latency + nbytes / self.bandwidth
        finish = start + duration
        self._busy_until = finish
        self.stats.bytes_transferred += nbytes
        self.stats.transfer_count += transactions
        self.stats.busy_time += duration
        return start, finish

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FCFSBus {self.name!r} {self.bandwidth:g} B/s>"


class _Flow:
    """One active transfer on a :class:`FairShareBus`."""

    __slots__ = ("remaining", "rate_cap", "done", "nbytes")

    def __init__(self, nbytes: float, rate_cap: float, done: Event):
        self.nbytes = nbytes
        self.remaining = float(nbytes)
        self.rate_cap = rate_cap
        self.done = done


class FairShareBus:
    """Processor-sharing bus: concurrent transfers split the bandwidth.

    The implementation advances all active flows lazily: whenever a flow
    is added or completes, every flow's ``remaining`` is updated for the
    elapsed interval at the old rate, rates are recomputed, and the next
    completion is rescheduled.  Water-filling honours per-flow caps:
    capped flows take their cap and the surplus is split among the rest.
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float,
        arbitration_latency: float = 0.0,
        name: str = "bus",
    ):
        if bandwidth <= 0:
            raise BusError(f"bus bandwidth must be > 0, got {bandwidth}")
        if arbitration_latency < 0:
            raise BusError("negative arbitration latency")
        self.sim = sim
        self.name = name
        self.bandwidth = float(bandwidth)
        self.arbitration_latency = float(arbitration_latency)
        self.stats = BusStats()
        self._flows: list[_Flow] = []
        self._last_update: float = 0.0
        #: pending completion tick (``call_after`` handle), if any
        self._tick: Optional[list] = None
        self._busy_since: Optional[float] = None
        self._xfer_name = f"{name}.xfer"

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def current_rate(self, flow_count: Optional[int] = None) -> float:
        """Uncapped per-flow rate with ``flow_count`` concurrent flows."""
        n = len(self._flows) if flow_count is None else flow_count
        return self.bandwidth / max(1, n)

    def transfer(self, nbytes: float, rate_cap: float = float("inf")) -> Event:
        """Start a transfer of ``nbytes`` (optionally capped at ``rate_cap``)."""
        if nbytes <= 0:
            raise BusError(f"bus transfer of {nbytes} bytes on {self.name!r}")
        if rate_cap <= 0:
            raise BusError(f"non-positive rate cap {rate_cap}")
        done = self.sim.event(name=self._xfer_name)
        flow = _Flow(nbytes, rate_cap, done)
        if self.arbitration_latency > 0:
            self.sim.call_after(self.arbitration_latency, self._admit, flow)
        else:
            self._admit(flow)
        return done

    def transfer_proc(self, nbytes: float, rate_cap: float = float("inf")):
        """Generator form: ``yield from bus.transfer_proc(n)``."""
        yield self.transfer(nbytes, rate_cap)
        return nbytes

    def busy_snapshot(self) -> float:
        """Busy seconds so far, including the still-open busy period.

        ``stats.busy_time`` is only folded in when the last flow drains;
        a snapshot taken while flows are active must add the in-flight
        interval.
        """
        busy = self.stats.busy_time
        if self._busy_since is not None:
            busy += self.sim.now - self._busy_since
        return busy

    def register_telemetry(self, registry, prefix: str) -> None:
        """Register this bus's instruments under ``prefix``."""
        registry.busy(f"{prefix}.busy_time", self.busy_snapshot)
        registry.counter(
            f"{prefix}.bytes", lambda s=self.stats: s.bytes_transferred, unit="B"
        )
        registry.counter(f"{prefix}.transfers", lambda s=self.stats: s.transfer_count)

    # -- internals --------------------------------------------------------------
    def _admit(self, flow: _Flow) -> None:
        self._advance()
        if not self._flows:
            self._busy_since = self.sim.now
        self._flows.append(flow)
        self.stats.transfer_count += 1
        self._reschedule()

    def _rates(self) -> list[float]:
        """Water-filling allocation honouring per-flow caps."""
        n = len(self._flows)
        if n == 0:
            return []
        if n == 1:
            # Degenerate water-filling (the common case on NIC DMA
            # paths): share == full bandwidth, cap applies directly.
            cap = self._flows[0].rate_cap
            return [cap if cap <= self.bandwidth else self.bandwidth]
        rates = [0.0] * n
        budget = self.bandwidth
        todo = list(range(n))
        while todo:
            share = budget / len(todo)
            capped = [i for i in todo if self._flows[i].rate_cap <= share]
            if not capped:
                for i in todo:
                    rates[i] = share
                break
            for i in capped:
                rates[i] = self._flows[i].rate_cap
                budget -= self._flows[i].rate_cap
                todo.remove(i)
        return rates

    def _advance(self) -> None:
        """Account progress since the last rate change."""
        now = self.sim.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._flows:
            return
        if len(self._flows) == 1:
            flow = self._flows[0]
            cap = flow.rate_cap
            rate = cap if cap <= self.bandwidth else self.bandwidth
            moved = rate * dt
            if moved > flow.remaining:
                moved = flow.remaining
            flow.remaining -= moved
            self.stats.bytes_transferred += moved
            return
        rates = self._rates()
        for flow, rate in zip(self._flows, rates):
            moved = min(flow.remaining, rate * dt)
            flow.remaining -= moved
            self.stats.bytes_transferred += moved

    def _reschedule(self) -> None:
        """Complete finished flows and schedule the next completion.

        A pending completion tick made stale by a membership change is
        *cancelled* in O(1) via its ``call_after`` handle — the timer
        wheel drops it without ever sorting it.
        """
        tick = self._tick
        if tick is not None:
            self._tick = None
            self.sim.cancel_callback(tick)

        flows = self._flows
        finished = [f for f in flows if f.remaining <= _REMAINING_EPS]
        if finished:
            flows = self._flows = [f for f in flows if f.remaining > _REMAINING_EPS]
            for f in finished:
                f.done.succeed(f.nbytes)

        if not flows:
            if self._busy_since is not None:
                self.stats.busy_time += self.sim.now - self._busy_since
                self._busy_since = None
            return

        if len(flows) == 1:
            # Single flow: it is the next (and only) completion.
            flow = flows[0]
            cap = flow.rate_cap
            rate = cap if cap <= self.bandwidth else self.bandwidth
            self._tick = self.sim.call_after(
                flow.remaining / rate, self._on_tick, flows[:]
            )
            return

        rates = self._rates()
        next_dt = min(
            f.remaining / r for f, r in zip(flows, rates) if r > 0
        )

        # The flow(s) chosen to finish at next_dt must actually finish then,
        # independent of rounding in the interim advance.
        finishing = [
            f for f, r in zip(flows, rates) if r > 0 and f.remaining / r == next_dt
        ]
        self._tick = self.sim.call_after(next_dt, self._on_tick, finishing)

    def _on_tick(self, finishing: list[_Flow]) -> None:
        self._tick = None
        self._advance()
        for f in finishing:
            f.remaining = 0.0
        self._reschedule()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FairShareBus {self.name!r} {self.bandwidth:g} B/s "
            f"{len(self._flows)} flows>"
        )
