"""Discrete-event simulation substrate.

Public surface::

    from repro.sim import Simulator, Timeout, Resource, Store, Container
    from repro.sim import FCFSBus, FairShareBus, TraceRecorder, RandomStreams
    from repro.sim import Environment, drive   # coroutine process API
"""

from .engine import (
    AllOf,
    AnyOf,
    Event,
    Process,
    Simulator,
    SimulationRunaway,
    Timeout,
    NORMAL,
    URGENT,
    set_trace_sink,
)
from .bus import BusStats, FCFSBus, FairShareBus
from .process import Environment, drive
from .rand import RandomStreams
from .resources import Container, Request, Resource, Store
from .sched import (
    CalendarQueue,
    CalendarScheduler,
    HeapScheduler,
    SCHEDULER_KINDS,
    TimerWheel,
    make_scheduler,
)
from .trace import Span, TraceRecorder, merge_intervals

__all__ = [
    "AllOf",
    "AnyOf",
    "BusStats",
    "CalendarQueue",
    "CalendarScheduler",
    "Container",
    "Environment",
    "Event",
    "FCFSBus",
    "FairShareBus",
    "HeapScheduler",
    "NORMAL",
    "Process",
    "RandomStreams",
    "Request",
    "Resource",
    "SCHEDULER_KINDS",
    "SimulationRunaway",
    "Simulator",
    "Span",
    "Store",
    "TimerWheel",
    "Timeout",
    "TraceRecorder",
    "URGENT",
    "drive",
    "make_scheduler",
    "merge_intervals",
    "set_trace_sink",
]
