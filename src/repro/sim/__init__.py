"""Discrete-event simulation substrate.

Public surface::

    from repro.sim import Simulator, Timeout, Resource, Store, Container
    from repro.sim import FCFSBus, FairShareBus, TraceRecorder, RandomStreams
"""

from .engine import (
    AllOf,
    AnyOf,
    Event,
    Process,
    Simulator,
    SimulationRunaway,
    Timeout,
    NORMAL,
    URGENT,
)
from .bus import BusStats, FCFSBus, FairShareBus
from .rand import RandomStreams
from .resources import Container, Request, Resource, Store
from .trace import Span, TraceRecorder, merge_intervals

__all__ = [
    "AllOf",
    "AnyOf",
    "BusStats",
    "Container",
    "Event",
    "FCFSBus",
    "FairShareBus",
    "NORMAL",
    "Process",
    "RandomStreams",
    "Request",
    "Resource",
    "SimulationRunaway",
    "Simulator",
    "Span",
    "Store",
    "Timeout",
    "TraceRecorder",
    "URGENT",
    "merge_intervals",
]
